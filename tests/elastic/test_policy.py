"""Tests for the autoscaling policies (pure snapshot -> decision)."""

import pytest

from repro.elastic import (
    BacklogPolicy,
    ClusterSnapshot,
    LatencySLOPolicy,
    POLICY_NAMES,
    UtilizationPolicy,
    make_scaling_policy,
    windowed_mean,
)


def snap(backlog=0.0, occupancy=0.0, p95=0.0, pending=0,
         workers=4, slots=8, cap=0.8):
    return ClusterSnapshot(
        time=100.0, alive_workers=workers, total_slots=slots,
        pending_jobs=pending, backlog_seconds=backlog,
        slot_occupancy=occupancy, recent_p95_delay=p95, slo_delay_cap=cap,
    )


class TestWindowedMean:
    def test_empty_timeline(self):
        assert windowed_mean([], 0.0, 10.0) == 0.0

    def test_flat_level(self):
        assert windowed_mean([(0.0, 4.0)], 0.0, 10.0) == pytest.approx(4.0)

    def test_step_change_weighted(self):
        # Level 2 for the first half, 6 for the second: mean 4.
        timeline = [(0.0, 2.0), (5.0, 6.0)]
        assert windowed_mean(timeline, 0.0, 10.0) == pytest.approx(4.0)

    def test_level_before_first_point_is_zero(self):
        assert windowed_mean([(5.0, 8.0)], 0.0, 10.0) == pytest.approx(4.0)

    def test_points_outside_window_set_entry_level(self):
        timeline = [(0.0, 2.0), (20.0, 100.0)]
        assert windowed_mean(timeline, 5.0, 15.0) == pytest.approx(2.0)

    def test_degenerate_window(self):
        assert windowed_mean([(0.0, 3.0)], 5.0, 5.0) == 0.0


class TestSnapshotProperties:
    def test_backlog_per_slot(self):
        assert snap(backlog=16.0, slots=8).backlog_per_slot == 2.0

    def test_occupancy_fraction(self):
        assert snap(occupancy=4.0, slots=8).occupancy_fraction == 0.5

    def test_zero_slots_guard(self):
        s = snap(backlog=5.0, occupancy=5.0, slots=0)
        assert s.backlog_per_slot == 5.0
        assert s.occupancy_fraction == 5.0


class TestBacklogPolicy:
    def test_scale_out_above_high(self):
        policy = BacklogPolicy(high_backlog=0.5)
        decision = policy.decide(snap(backlog=8.0, slots=8))  # 1.0 s/slot
        assert decision.delta > 0
        assert decision.action == "scale_out"

    def test_proportional_step_capped(self):
        policy = BacklogPolicy(high_backlog=0.5, max_step=4)
        # 10 s/slot of backlog: 20x the threshold, capped at max_step.
        assert policy.decide(snap(backlog=80.0, slots=8)).delta == 4
        assert policy.decide(snap(backlog=8.0, slots=8)).delta == 2

    def test_hold_within_band(self):
        policy = BacklogPolicy(high_backlog=0.5, low_backlog=0.05)
        assert policy.decide(snap(backlog=2.0, slots=8)).delta == 0

    def test_scale_in_needs_idle_occupancy(self):
        policy = BacklogPolicy(low_occupancy=0.4)
        # No backlog but the cluster is busy: hold, don't thrash.
        busy = snap(backlog=0.0, occupancy=6.0, slots=8)
        assert policy.decide(busy).delta == 0
        idle = snap(backlog=0.0, occupancy=1.0, slots=8)
        assert policy.decide(idle).delta == -1
        assert policy.decide(idle).action == "scale_in"

    def test_scale_in_blocked_by_pending_jobs(self):
        policy = BacklogPolicy()
        assert policy.decide(snap(pending=3)).delta == 0

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            BacklogPolicy(high_backlog=0.1, low_backlog=0.2)


class TestUtilizationPolicy:
    def test_scale_out_above_target(self):
        policy = UtilizationPolicy(high=0.85)
        assert policy.decide(snap(occupancy=7.5, slots=8)).delta == 1

    def test_scale_in_below_target(self):
        policy = UtilizationPolicy(low=0.30)
        assert policy.decide(snap(occupancy=1.0, slots=8)).delta == -1

    def test_hold_in_band(self):
        policy = UtilizationPolicy()
        assert policy.decide(snap(occupancy=4.0, slots=8)).delta == 0

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            UtilizationPolicy(high=0.2, low=0.5)
        with pytest.raises(ValueError):
            UtilizationPolicy(high=1.5)


class TestLatencySLOPolicy:
    def test_scale_out_near_cap(self):
        policy = LatencySLOPolicy(headroom=0.75)
        assert policy.decide(snap(p95=0.7, cap=0.8)).delta == 1

    def test_hold_below_headroom(self):
        policy = LatencySLOPolicy(headroom=0.75, relax_margin=0.6)
        busy = snap(p95=0.5, occupancy=6.0, slots=8, cap=0.8)
        assert policy.decide(busy).delta == 0

    def test_scale_in_comfortable_and_idle(self):
        policy = LatencySLOPolicy(relax_margin=0.6, low_occupancy=0.4)
        comfy = snap(p95=0.1, occupancy=1.0, slots=8, cap=0.8)
        assert policy.decide(comfy).delta == -1

    def test_no_scale_in_without_delay_history(self):
        policy = LatencySLOPolicy()
        assert policy.decide(snap(p95=0.0, occupancy=0.0)).delta == 0

    def test_invalid_margins(self):
        with pytest.raises(ValueError):
            LatencySLOPolicy(headroom=0.5, relax_margin=0.6)


class TestFactory:
    def test_all_names(self):
        for name in POLICY_NAMES:
            assert make_scaling_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scaling_policy("nope")
