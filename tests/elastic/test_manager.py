"""Tests for the ResourceManager: scale-out, graceful decommission,
bounds/cooldowns, and worker-seconds accounting."""

import pytest

from repro import StarkContext, obs
from repro.elastic import BacklogPolicy, ResourceManager, make_scaling_policy

from ..conftest import make_pairs


def make_manager(sc, policy=None, **kwargs):
    kwargs.setdefault("min_workers", 1)
    kwargs.setdefault("cooldown_seconds", 0.0)
    return ResourceManager(sc, policy or BacklogPolicy(), **kwargs)


def cached_rdd(sc, n=400, partitions=8):
    rdd = sc.parallelize(make_pairs(n), partitions, name="cached").cache()
    rdd.count()
    return rdd


class TestScaleOut:
    def test_adds_worker_with_registered_store(self, sc):
        manager = make_manager(sc)
        before = len(sc.cluster.alive_workers())
        wid = manager.scale_out()
        assert len(sc.cluster.alive_workers()) == before + 1
        store = sc.block_manager_master.stores[wid]
        assert store.used_bytes == 0
        worker = sc.cluster.get_worker(wid)
        assert store.capacity_bytes == pytest.approx(
            worker.memory_bytes * sc.config.storage_memory_fraction)

    def test_spinup_delays_slot_availability(self, sc):
        manager = make_manager(sc)
        now = sc.cluster.clock.now
        spinup = sc.cost_model.worker_spinup_seconds
        wid = manager.scale_out()
        worker = sc.cluster.get_worker(wid)
        assert all(t == pytest.approx(now + spinup)
                   for t in worker.slot_free_times)
        assert manager.scale_outs == 1
        assert manager.peak_workers == len(sc.cluster.alive_workers())

    def test_posts_provisioned_event(self, sc):
        collector = obs.EventCollector()
        sc.event_bus.subscribe(collector)
        manager = make_manager(sc)
        wid = manager.scale_out()
        events = collector.of_type(obs.WorkerProvisioned)
        assert len(events) == 1
        assert events[0].worker_id == wid
        assert events[0].spinup_seconds == sc.cost_model.worker_spinup_seconds

    def test_new_worker_becomes_schedulable(self, sc):
        manager = make_manager(sc)
        wid = manager.scale_out()
        sc.cluster.clock.advance_to(sc.cost_model.worker_spinup_seconds + 1)
        rdd = sc.parallelize(make_pairs(600), 12)
        assert rdd.count() == 600
        assert wid in sc.cluster.alive_worker_ids()


class TestDecommission:
    def test_migrates_all_cached_blocks(self, sc):
        rdd = cached_rdd(sc)
        manager = make_manager(sc)
        victim = next(w for w in sc.cluster.alive_worker_ids()
                      if sc.block_manager_master.stores[w].used_bytes > 0)
        victim_blocks = sorted(
            sc.block_manager_master.stores[victim].block_ids())
        report = manager.decommission(victim)
        assert report.lost_nothing
        assert report.migrated_blocks == len(victim_blocks)
        bmm = sc.block_manager_master
        for block_id in victim_blocks:
            locations = bmm.locations(block_id)
            assert locations, f"{block_id} lost all locations"
            assert victim not in locations
        assert victim not in bmm.stores
        assert victim not in sc.cluster.worker_ids
        assert rdd.count() == 400

    def test_migration_events_reconcile_with_master_state(self, sc):
        """Zero-loss check: BlocksMigrated totals, per-block "migrated"
        removals, and destination caches must all agree with the
        BlockManagerMaster's final state."""
        cached_rdd(sc)
        collector = obs.EventCollector()
        sc.event_bus.subscribe(collector)
        manager = make_manager(sc)
        victim = next(w for w in sc.cluster.alive_worker_ids()
                      if sc.block_manager_master.stores[w].used_bytes > 0)
        victim_blocks = set(
            sc.block_manager_master.stores[victim].block_ids())
        report = manager.decommission(victim)

        migrated = collector.of_type(obs.BlocksMigrated)
        assert len(migrated) == 1
        assert migrated[0].num_blocks == report.migrated_blocks

        removals = [e for e in collector.of_type(obs.BlockEvicted)
                    if e.reason == "migrated"]
        assert {(e.rdd_id, e.partition) for e in removals} == victim_blocks
        assert all(e.worker_id == victim for e in removals)

        decommissioned = collector.of_type(obs.WorkerDecommissioned)
        assert len(decommissioned) == 1
        assert decommissioned[0].dropped_blocks == 0

        bmm = sc.block_manager_master
        for block_id in victim_blocks:
            destinations = bmm.locations(block_id)
            assert destinations
            for dst in destinations:
                assert block_id in bmm.stores[dst]

    def test_drain_covers_running_tasks(self, sc):
        sc.parallelize(make_pairs(2000), 8).count()
        manager = make_manager(sc)
        now = sc.cluster.clock.now
        busy = max(
            sc.cluster.alive_worker_ids(),
            key=lambda w: max(sc.cluster.get_worker(w).slot_free_times),
        )
        tail = max(sc.cluster.get_worker(busy).slot_free_times)
        if tail <= now:  # ensure there is genuinely queued work
            sc.cluster.kernel.set_slot_free_time(
                sc.cluster.get_worker(busy), 0, now + 5.0)
            tail = now + 5.0
        report = manager.decommission(busy)
        assert report.drain_seconds == pytest.approx(tail - now)
        assert report.complete_at >= tail

    def test_refuses_last_worker(self):
        sc = StarkContext(num_workers=1)
        manager = make_manager(sc)
        with pytest.raises(RuntimeError):
            manager.decommission()

    def test_victim_is_cheapest(self, sc):
        cached_rdd(sc)
        manager = make_manager(sc)
        empty = [w for w in sc.cluster.alive_worker_ids()
                 if sc.block_manager_master.stores[w].used_bytes == 0]
        if empty:
            assert manager._pick_victim() in empty

    def test_budget_exhaustion_drops_to_lineage(self, sc):
        rdd = cached_rdd(sc)
        manager = make_manager(sc, migration_budget_bytes=0.0)
        victim = next(w for w in sc.cluster.alive_worker_ids()
                      if sc.block_manager_master.stores[w].used_bytes > 0)
        report = manager.decommission(victim)
        assert report.dropped_blocks > 0
        assert not report.lost_nothing
        assert report.migrated_bytes == 0.0
        # Lineage recovery still answers the query.
        assert rdd.count() == 400

    def test_locality_and_groups_forget_the_executor(self, sc):
        from repro.engine.partitioner import HashPartitioner

        partitioner = HashPartitioner(8)
        rdd = (sc.parallelize(make_pairs(400), 8)
               .locality_partition_by(partitioner, "ns").cache())
        rdd.count()
        sc.group_manager.report_rdd(rdd)
        manager = make_manager(sc)
        victim = sc.cluster.alive_worker_ids()[0]
        manager.decommission(victim)
        for pid in range(8):
            assert victim not in sc.locality_manager.preferred_executors(
                "ns", pid)


class TestEvaluateBounds:
    def test_scale_out_clamped_to_max(self, sc):
        manager = make_manager(sc, max_workers=len(sc.cluster) + 1)
        decision = manager.evaluate(
            pending_jobs=0,
            now=_overloaded(sc),
        )
        assert decision.delta == 1  # wanted more, clamped at max

    def test_scale_in_clamped_to_min(self, sc):
        manager = make_manager(
            sc, min_workers=len(sc.cluster),
            scale_in_cooldown_seconds=0.0)
        decision = manager.evaluate(now=sc.cluster.clock.now)
        assert decision.delta == 0

    def test_cooldown_blocks_consecutive_actions(self, sc):
        manager = make_manager(sc, cooldown_seconds=100.0,
                               max_workers=len(sc.cluster) + 8)
        first = manager.evaluate(now=_overloaded(sc))
        assert first.delta > 0
        second = manager.evaluate(now=_overloaded(sc))
        assert second.delta == 0
        assert second.reason == "cooldown"

    def test_scale_in_cooldown_longer(self, sc):
        manager = make_manager(sc, cooldown_seconds=10.0,
                               max_workers=len(sc.cluster) + 8)
        assert manager.scale_in_cooldown_seconds == 40.0
        assert manager.evaluate(now=_overloaded(sc)).delta > 0
        # Past the scale-out cooldown but inside the scale-in one: an
        # idle snapshot must hold instead of shrinking.
        clock = sc.cluster.clock
        clock.advance_to(clock.now + 20.0)
        decision = manager.evaluate(now=clock.now)
        assert decision.delta == 0
        assert decision.reason == "scale-in cooldown"

    def test_invalid_bounds(self, sc):
        with pytest.raises(ValueError):
            make_manager(sc, min_workers=0)
        with pytest.raises(ValueError):
            make_manager(sc, min_workers=5, max_workers=2)

    def test_scaling_decision_event(self, sc):
        collector = obs.EventCollector()
        sc.event_bus.subscribe(collector)
        manager = make_manager(sc, max_workers=len(sc.cluster) + 8)
        manager.evaluate(now=_overloaded(sc))
        decisions = collector.of_type(obs.ScalingDecision)
        assert len(decisions) == 1
        assert decisions[0].action == "scale_out"
        assert decisions[0].policy == "backlog"


def _overloaded(sc):
    """Queue several seconds of work on every slot; returns the
    evaluation time at which that backlog is visible."""
    now = sc.cluster.clock.now
    kernel = sc.cluster.kernel
    for worker in sc.cluster.alive_workers():
        for slot in range(worker.cores):
            kernel.set_slot_free_time(worker, slot, now + 10.0)
    return now


class TestWorkerSeconds:
    def test_static_cluster_integrates_linearly(self, sc):
        manager = make_manager(sc)
        sc.cluster.clock.advance_to(100.0)
        expected = 100.0 * len(sc.cluster.alive_workers())
        assert manager.worker_seconds() == pytest.approx(expected)

    def test_scale_out_increases_rate(self, sc):
        manager = make_manager(sc)
        n = len(sc.cluster.alive_workers())
        sc.cluster.clock.advance_to(10.0)
        manager.scale_out()
        sc.cluster.clock.advance_to(20.0)
        assert manager.worker_seconds() == pytest.approx(
            10.0 * n + 10.0 * (n + 1))

    def test_decommission_bills_until_release(self, sc):
        manager = make_manager(sc)
        n = len(sc.cluster.alive_workers())
        sc.cluster.clock.advance_to(10.0)
        report = manager.decommission()
        sc.cluster.clock.advance_to(30.0)
        tail = report.complete_at - 10.0
        assert manager.worker_seconds() == pytest.approx(
            10.0 * n + tail + 20.0 * (n - 1))

    def test_worker_hours(self, sc):
        manager = make_manager(sc)
        sc.cluster.clock.advance_to(3600.0)
        assert manager.worker_hours() == pytest.approx(
            float(len(sc.cluster.alive_workers())))


class TestSnapshotTiming:
    def test_backlog_measured_at_evaluation_time(self, sc):
        """The clock frontier runs ahead of arrivals in the synchronous
        driver; backlog must be visible at the arrival's timestamp."""
        manager = make_manager(sc)
        now = sc.cluster.clock.now
        kernel = sc.cluster.kernel
        for worker in sc.cluster.alive_workers():
            for slot in range(worker.cores):
                kernel.set_slot_free_time(worker, slot, now + 4.0)
        kernel.advance_to(now + 4.0)
        at_frontier = manager.snapshot()
        assert at_frontier.backlog_seconds == 0.0
        at_arrival = manager.snapshot(now=now)
        assert at_arrival.backlog_seconds == pytest.approx(
            4.0 * sc.cluster.total_cores())

    def test_recent_p95_from_noted_delays(self, sc):
        manager = make_manager(sc)
        for delay in [0.1] * 18 + [5.0] * 2:
            manager.note_delay(delay)
        # nearest-rank p95 over 20 samples lands on the 19th value
        assert manager.recent_p95_delay() == pytest.approx(5.0)
        manager.on_job_completed(10.0, 10.25)
        assert 0.25 in manager._recent_delays

    def test_factory_policies_accepted(self, sc):
        for name in ("backlog", "utilization", "latency"):
            manager = make_manager(sc, policy=make_scaling_policy(name))
            assert manager.evaluate(now=sc.cluster.clock.now) is not None
