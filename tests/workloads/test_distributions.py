"""Tests for the statistical workload building blocks."""

import random
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.workloads.distributions import (
    Hotspot,
    HotspotMixture,
    ZipfSampler,
    diurnal_factor,
    poisson_arrivals,
    seeded_rng,
)


class TestSeededRng:
    def test_same_parts_same_stream(self):
        a = seeded_rng(1, "x", 2).random()
        b = seeded_rng(1, "x", 2).random()
        assert a == b

    def test_different_parts_differ(self):
        assert seeded_rng(1, 2).random() != seeded_rng(2, 1).random()


class TestZipfSampler:
    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(100, 1.2)
        rng = random.Random(1)
        counts = [0] * 100
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 5 * (counts[50] + 1)

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        rng = random.Random(2)
        counts = [0] * 10
        for _ in range(10000):
            counts[sampler.sample(rng)] += 1
        assert max(counts) < 2 * min(counts)

    def test_sample_in_range(self):
        sampler = ZipfSampler(5, 1.0)
        rng = random.Random(3)
        assert all(0 <= sampler.sample(rng) < 5 for _ in range(200))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5)

    def test_sample_many(self):
        sampler = ZipfSampler(10, 1.0)
        assert len(sampler.sample_many(random.Random(4), 17)) == 17


class TestDiurnalFactor:
    def test_peak_at_peak_hour(self):
        assert diurnal_factor(20.0, peak_hour=20.0, peak_to_nadir=2.0) == \
            pytest.approx(2.0)

    def test_nadir_is_one(self):
        assert diurnal_factor(8.0, peak_hour=20.0, peak_to_nadir=2.0) == \
            pytest.approx(1.0)

    def test_ratio_one_is_flat(self):
        values = [diurnal_factor(h, peak_to_nadir=1.0) for h in range(24)]
        assert all(v == pytest.approx(1.0) for v in values)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            diurnal_factor(12.0, peak_to_nadir=0.5)

    @given(st.floats(min_value=0.0, max_value=24.0))
    def test_bounded(self, hour):
        f = diurnal_factor(hour, peak_hour=19.0, peak_to_nadir=2.5)
        assert 1.0 - 1e-9 <= f <= 2.5 + 1e-9


class TestHotspotMixture:
    def test_samples_in_unit_square(self):
        mixture = HotspotMixture([Hotspot(0.5, 0.5, 0.1, 1.0)], 0.2)
        rng = random.Random(5)
        for x, y in mixture.sample_many(rng, 300):
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_mass_concentrates_near_hotspot(self):
        mixture = HotspotMixture([Hotspot(0.2, 0.2, 0.03, 1.0)], 0.0)
        rng = random.Random(6)
        points = mixture.sample_many(rng, 500)
        near = sum(1 for x, y in points
                   if abs(x - 0.2) < 0.1 and abs(y - 0.2) < 0.1)
        assert near > 400

    def test_pure_background_is_uniformish(self):
        mixture = HotspotMixture([], 1.0)
        rng = random.Random(7)
        xs = [x for x, _ in mixture.sample_many(rng, 2000)]
        assert 0.4 < statistics.fmean(xs) < 0.6

    def test_invalid_background(self):
        with pytest.raises(ValueError):
            HotspotMixture([], 0.5)
        with pytest.raises(ValueError):
            HotspotMixture([Hotspot(0, 0, 1, 1)], 1.5)

    def test_weights_respected(self):
        heavy = Hotspot(0.1, 0.1, 0.01, 10.0)
        light = Hotspot(0.9, 0.9, 0.01, 1.0)
        mixture = HotspotMixture([heavy, light], 0.0)
        rng = random.Random(8)
        points = mixture.sample_many(rng, 1000)
        near_heavy = sum(1 for x, _ in points if x < 0.5)
        assert near_heavy > 800


class TestPoissonArrivals:
    def test_rate_roughly_matches(self):
        arrivals = poisson_arrivals(10.0, 100.0, random.Random(9))
        assert 800 < len(arrivals) < 1200

    def test_sorted_and_in_range(self):
        arrivals = poisson_arrivals(5.0, 50.0, random.Random(10))
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 50.0 for t in arrivals)

    def test_zero_rate_empty(self):
        assert poisson_arrivals(0.0, 100.0, random.Random(11)) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 10.0, random.Random(12))
