"""Tests for the Wikipedia / taxi / merged Twitter trace generators."""

import random

import pytest

from repro.engine.partitioner import HashPartitioner, StaticRangePartitioner
from repro.workloads.taxi import (
    HOLIDAY_REGIME,
    MORNING_REGIME,
    TaxiTrace,
    TaxiTraceConfig,
)
from repro.workloads.twitter import MergedTaxiTwitterTrace, Tweet
from repro.workloads.wikipedia import WikipediaTrace, WikipediaTraceConfig


class TestWikipediaTrace:
    def setup_method(self):
        self.trace = WikipediaTrace(WikipediaTraceConfig(
            base_requests_per_hour=2000, num_articles=100,
        ))

    def test_deterministic(self):
        a = self.trace.lines_for_hour_partition(3, 1, 4)
        b = self.trace.lines_for_hour_partition(3, 1, 4)
        assert a == b

    def test_partitions_tile_the_hour(self):
        total = self.trace.requests_in_hour(2)
        lines = [
            line
            for pid in range(4)
            for line in self.trace.lines_for_hour_partition(2, pid, 4)
        ]
        assert len(lines) == total

    def test_diurnal_volume(self):
        peak = self.trace.requests_in_hour(20)
        nadir = self.trace.requests_in_hour(8)
        assert peak == pytest.approx(2 * nadir, rel=0.05)

    def test_line_format(self):
        for line in self.trace.lines_for_hour_partition(0, 0, 4)[:20]:
            ts, url, status = line.split(" ")[:3]
            assert int(ts) < 3600
            assert url.startswith("/wiki/Article_")
            assert status in ("200", "ERROR")

    def test_timestamps_inside_hour(self):
        for line in self.trace.lines_for_hour_partition(5, 0, 4)[:50]:
            ts = int(line.split(" ", 1)[0])
            assert 5 * 3600 <= ts < 6 * 3600

    def test_padding_accounted_not_materialized(self):
        padded = WikipediaTrace(WikipediaTraceConfig(
            base_requests_per_hour=100, line_padding_bytes=10_000,
        ))
        line = padded.lines_for_hour_partition(0, 0, 2)[0]
        assert len(line) < 100  # short real string
        assert line.sim_size > 10_000  # accounted bytes

    def test_popular_keyword_occurs_often(self):
        keyword = self.trace.popular_keyword()
        lines = self.trace.lines_for_hour_partition(0, 0, 1)
        hits = sum(1 for line in lines if keyword in line)
        assert hits > len(lines) / 100

    def test_keyed_generator_routes_by_partitioner(self):
        part = HashPartitioner(4)
        gen = self.trace.keyed_hour_generator(0, 4, part)
        for pid in range(4):
            for url, _line in gen(pid)[:50]:
                assert part.get_partition(url) == pid


class TestTaxiTrace:
    def setup_method(self):
        self.trace = TaxiTrace(TaxiTraceConfig(
            base_events_per_step=500, steps_per_day=24,
        ))

    def test_deterministic(self):
        a = self.trace.events_for_step_partition(2, 0, 4)
        b = self.trace.events_for_step_partition(2, 0, 4)
        assert a == b

    def test_partitions_tile_the_step(self):
        total = self.trace.events_in_step(1)
        events = [
            e for pid in range(4)
            for e in self.trace.events_for_step_partition(1, pid, 4)
        ]
        assert len(events) == total

    def test_partitioned_generation_routes_keys(self):
        part = StaticRangePartitioner.uniform(
            0, self.trace.encoder.key_space(), 8
        )
        for pid in (0, 3, 7):
            for zkey, _event in self.trace.events_for_step_partition(
                0, pid, 8, part
            ):
                assert part.get_partition(zkey) == pid

    def test_regimes_change_with_time(self):
        morning = self.trace.regime_for_step(2)    # early steps = morning
        evening = self.trace.regime_for_step(20)
        assert morning is MORNING_REGIME
        assert morning is not evening

    def test_holiday_regime(self):
        holiday = TaxiTrace(TaxiTraceConfig(steps_per_day=24, holiday=True))
        assert holiday.regime_for_step(20) is HOLIDAY_REGIME

    def test_spatial_skew_exists(self):
        """Hotspot regimes must concentrate keys (the premise of the
        extendable-group experiments)."""
        events = self.trace.events_for_step_partition(20, 0, 1)
        keys = sorted(zkey for zkey, _ in events)
        span = self.trace.encoder.key_space()
        top_bucket = max(
            sum(1 for k in keys if b * span // 16 <= k < (b + 1) * span // 16)
            for b in range(16)
        )
        assert top_bucket > len(keys) / 8  # > uniform share

    def test_event_fields(self):
        for zkey, event in self.trace.events_for_step_partition(0, 0, 4)[:20]:
            assert event.zkey == zkey
            assert event.kind in ("pickup", "dropoff")
            assert 0 <= event.timestamp < self.trace.config.step_seconds

    def test_record_bytes_configurable(self):
        scaled = TaxiTrace(TaxiTraceConfig(
            base_events_per_step=10, record_bytes=50_000,
        ))
        _zkey, event = scaled.events_for_step_partition(0, 0, 1)[0]
        assert event.sim_size == 50_000

    def test_random_region_query_valid(self):
        rng = random.Random(3)
        for _ in range(50):
            lo, hi = self.trace.random_region_query(rng)
            assert 0 <= lo <= hi < self.trace.encoder.key_space()


class TestMergedTrace:
    def test_one_tweet_per_event(self):
        merged = MergedTaxiTwitterTrace(TaxiTrace(TaxiTraceConfig(
            base_events_per_step=100,
        )))
        records = merged.records_for_step_partition(0, 0, 1)
        events = [r for _, r in records if not isinstance(r, Tweet)]
        tweets = [r for _, r in records if isinstance(r, Tweet)]
        assert len(events) == len(tweets)

    def test_tweet_inherits_key_and_follows_event(self):
        merged = MergedTaxiTwitterTrace(TaxiTrace(TaxiTraceConfig(
            base_events_per_step=50,
        )))
        records = merged.records_for_step_partition(0, 0, 1)
        for i in range(0, len(records) - 1, 2):
            (k1, event), (k2, tweet) = records[i], records[i + 1]
            assert k1 == k2
            assert isinstance(tweet, Tweet)
            assert tweet.timestamp == event.timestamp + 1

    def test_deterministic(self):
        merged = MergedTaxiTwitterTrace(TaxiTrace(TaxiTraceConfig(
            base_events_per_step=50,
        )))
        assert merged.records_for_step_partition(1, 0, 2) == \
            merged.records_for_step_partition(1, 0, 2)

    def test_topics_are_zipfian(self):
        merged = MergedTaxiTwitterTrace(TaxiTrace(TaxiTraceConfig(
            base_events_per_step=2000,
        )))
        records = merged.records_for_step_partition(0, 0, 1)
        counts = {}
        for _, payload in records:
            if isinstance(payload, Tweet):
                counts[payload.topic] = counts.get(payload.topic, 0) + 1
        top = max(counts.values())
        assert top > 3 * (sorted(counts.values())[len(counts) // 2])
