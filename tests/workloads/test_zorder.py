"""Tests for Z-order encoding and the grid encoder."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.zorder import GridEncoder, z_decode, z_encode, z_key_space


class TestZEncode:
    def test_origin_is_zero(self):
        assert z_encode(0, 0) == 0

    def test_known_small_values(self):
        # Interleaving: x bits even positions, y bits odd.
        assert z_encode(1, 0, bits=4) == 0b01
        assert z_encode(0, 1, bits=4) == 0b10
        assert z_encode(1, 1, bits=4) == 0b11
        assert z_encode(2, 0, bits=4) == 0b0100
        assert z_encode(3, 3, bits=4) == 0b1111

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            z_encode(16, 0, bits=4)
        with pytest.raises(ValueError):
            z_encode(-1, 0, bits=4)

    def test_decode_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            z_decode(1 << 8, bits=4)

    def test_key_space(self):
        assert z_key_space(4) == 256
        assert z_key_space(8) == 65536

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_roundtrip(self, x, y):
        assert z_decode(z_encode(x, y, bits=8), bits=8) == (x, y)

    @given(st.integers(0, 2**16 - 1))
    def test_decode_encode_roundtrip(self, code):
        x, y = z_decode(code, bits=8)
        assert z_encode(x, y, bits=8) == code

    def test_quadrant_locality(self):
        """The defining property used in Fig 8: each quadrant of the grid
        maps to one contiguous quarter of the key space."""
        bits = 4
        side = 1 << bits
        half = side // 2
        quarter_size = z_key_space(bits) // 4
        for x in range(side):
            for y in range(side):
                code = z_encode(x, y, bits)
                quadrant = (x >= half) + 2 * (y >= half)
                assert code // quarter_size == quadrant


class TestGridEncoder:
    def test_defaults_cover_manhattan(self):
        enc = GridEncoder()
        code = enc.encode(-73.98, 40.75)  # Times Square
        assert 0 <= code < enc.key_space()

    def test_out_of_box_clamps(self):
        enc = GridEncoder(bits=4)
        assert enc.cell_of(-200.0, 0.0) == (0, 0)
        x, y = enc.cell_of(200.0, 90.0)
        assert (x, y) == (15, 15)

    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            GridEncoder(lon_min=0, lon_max=0, lat_min=0, lat_max=1)

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            GridEncoder(bits=0)
        with pytest.raises(ValueError):
            GridEncoder(bits=30)

    def test_region_key_range_covers_cells(self):
        enc = GridEncoder(bits=4)
        lo, hi = enc.region_key_range(2, 2, 5, 5)
        for x in range(2, 6):
            for y in range(2, 6):
                assert lo <= z_encode(x, y, 4) <= hi

    def test_empty_region_rejected(self):
        enc = GridEncoder(bits=4)
        with pytest.raises(ValueError):
            enc.region_key_range(5, 5, 4, 4)

    @given(st.floats(min_value=-74.03, max_value=-73.90),
           st.floats(min_value=40.69, max_value=40.88))
    def test_encode_decode_stays_in_cell(self, lon, lat):
        enc = GridEncoder(bits=8)
        cell = enc.cell_of(lon, lat)
        assert enc.decode_cell(enc.encode(lon, lat)) == cell
