"""Property-based tests: GroupManager invariants under random workloads."""

from hypothesis import given, settings, strategies as st

from repro import StarkConfig, StarkContext
from repro.cluster.cost_model import SimStr
from repro.core.extendable_partitioner import ExtendablePartitioner

KEY_SPACE = 1 << 10


@st.composite
def load_streams(draw):
    """A random sequence of dataset loads with varying skew."""
    loads = draw(st.lists(
        st.tuples(
            st.integers(0, 3),          # hot quarter of the key space
            st.integers(20, 150),       # records
            st.sampled_from([50, 500, 2_000]),  # payload bytes
        ),
        min_size=1, max_size=8,
    ))
    max_group = draw(st.sampled_from([20_000.0, 60_000.0, 200_000.0]))
    return loads, max_group


class TestGroupManagerProperties:
    @given(load_streams())
    @settings(max_examples=25, deadline=None)
    def test_invariants_under_any_load_stream(self, params):
        loads, max_group = params
        sc = StarkContext(
            num_workers=4, cores_per_worker=2, memory_per_worker=1e9,
            config=StarkConfig(max_group_mem_size=max_group,
                               min_group_mem_size=max_group / 16),
        )
        part = ExtendablePartitioner.over_key_range(0, KEY_SPACE, 4, 4)
        total_records = 0
        for hot_quarter, records, payload in loads:
            base = hot_quarter * (KEY_SPACE // 4)
            data = [
                (base + (i * 37) % (KEY_SPACE // 4),
                 SimStr("v", sim_size=payload))
                for i in range(records)
            ]
            rdd = sc.parallelize(data, part.num_partitions,
                                 partitioner=part) \
                .locality_partition_by(part, "prop").cache()
            assert rdd.count() == records
            total_records += records
            sc.group_manager.report_rdd(rdd)

            # Invariant 1: the tree still tiles the partition space.
            state = sc.group_manager._state["prop"]
            state.tree.check_invariants()
            # Invariant 2: every leaf group has a placement on alive
            # workers.
            alive = set(sc.cluster.alive_worker_ids())
            for leaf in state.tree.leaves():
                placement = sc.group_manager.preferred_executors(
                    "prop", leaf.start
                )
                assert placement
                assert set(placement) <= alive
            # Invariant 3: partitions map to exactly one group each.
            mapping = state.tree.partition_to_group_map()
            assert sorted(mapping) == list(range(part.num_partitions))

    @given(load_streams())
    @settings(max_examples=10, deadline=None)
    def test_results_stable_across_rebalancing(self, params):
        """Whatever splits/merges happen, query results never change."""
        loads, max_group = params
        sc = StarkContext(
            num_workers=4, cores_per_worker=2, memory_per_worker=1e9,
            config=StarkConfig(max_group_mem_size=max_group,
                               min_group_mem_size=max_group / 16),
        )
        part = ExtendablePartitioner.over_key_range(0, KEY_SPACE, 4, 4)
        rdds = []
        for hot_quarter, records, payload in loads:
            base = hot_quarter * (KEY_SPACE // 4)
            data = [(base + i % (KEY_SPACE // 4), i) for i in range(records)]
            rdd = sc.parallelize(data, part.num_partitions,
                                 partitioner=part) \
                .locality_partition_by(part, "prop").cache()
            rdd.count()
            sc.group_manager.report_rdd(rdd)
            rdds.append((rdd, data))
        for rdd, data in rdds:
            values = sorted(v for _, v in rdd.collect())
            assert values == sorted(v for _, v in data)
