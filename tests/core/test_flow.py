"""Tests for the Dinic max-flow / min-cut, with networkx as an oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.flow import INF, FlowNetwork

networkx = pytest.importorskip("networkx")


def nx_max_flow(edges, source, sink):
    graph = networkx.DiGraph()
    for src, dst, cap in edges:
        cap = 1e15 if cap == INF else cap
        if graph.has_edge(src, dst):
            graph[src][dst]["capacity"] += cap
        else:
            graph.add_edge(src, dst, capacity=cap)
    graph.add_node(source)
    graph.add_node(sink)
    if not networkx.has_path(graph, source, sink):
        return 0.0
    # Pin the oracle to edmonds_karp: the default preflow_push crashes
    # (networkx 3.6, "min() arg is an empty sequence") on graphs with a
    # node that has no forward path to the sink.
    value, _ = networkx.maximum_flow(
        graph, source, sink,
        flow_func=networkx.algorithms.flow.edmonds_karp)
    return value


class TestMaxFlowBasics:
    def test_single_edge(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1) == 5.0

    def test_series_takes_minimum(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == 3.0

    def test_parallel_paths_sum(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(0, 2, 3.0)
        net.add_edge(2, 3, 3.0)
        assert net.max_flow(0, 3) == 5.0

    def test_classic_augmenting_path_case(self):
        # The textbook diamond with a cross edge.
        net = FlowNetwork()
        net.add_edge("s", "a", 10)
        net.add_edge("s", "b", 10)
        net.add_edge("a", "b", 1)
        net.add_edge("a", "t", 10)
        net.add_edge("b", "t", 10)
        # String node ids are fine: the network hashes them.
        assert net.max_flow("s", "t") == 20

    def test_no_path_gives_zero(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 5.0)
        net.add_edge(2, 3, 5.0)
        assert net.max_flow(0, 3) == 0.0

    def test_infinite_edges_pass_through(self):
        net = FlowNetwork()
        net.add_edge(0, 1, INF)
        net.add_edge(1, 2, 7.0)
        net.add_edge(2, 3, INF)
        assert net.max_flow(0, 3) == 7.0

    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().max_flow(0, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge(0, 1, -1.0)


class TestMinCut:
    def test_cut_edges_sum_to_flow(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 4.0)
        net.add_edge(0, 2, 2.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(2, 3, 5.0)
        value = net.max_flow(0, 3)
        cut = net.min_cut_edges(0)
        assert sum(e.capacity for e in cut) == pytest.approx(value)

    def test_cut_separates_source_from_sink(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 2.0)
        net.max_flow(0, 2)
        side = net.min_cut_source_side(0)
        assert 0 in side
        assert 2 not in side

    def test_relaxed_cut_with_f1_is_saturated_edges(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 2, 5.0)
        net.max_flow(0, 2)
        cut = net.relaxed_cut_edges(2, 1.0)
        # Only the saturated 0->1 edge qualifies at f=1.
        assert [(e.src, e.dst) for e in cut] == [(0, 1)]

    def test_relaxed_cut_stops_nearer_sink(self):
        # 0 -(2)-> 1 -(5)-> 2: edge 1->2 carries flow 2, residual 3,
        # 3 <= f*2 for f=1.5 -- so the relaxed cut stops at 1->2.
        net = FlowNetwork()
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 2, 5.0)
        net.max_flow(0, 2)
        cut = net.relaxed_cut_edges(2, 1.5)
        assert [(e.src, e.dst) for e in cut] == [(1, 2)]

    def test_relaxed_factor_below_one_rejected(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 1.0)
        net.max_flow(0, 1)
        with pytest.raises(ValueError):
            net.relaxed_cut_edges(1, 0.5)

    def test_relaxed_cut_breaks_all_flow_paths(self):
        net = FlowNetwork()
        net.add_edge(0, 1, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(1, 3, 5.0)
        net.add_edge(2, 3, 2.0)
        net.max_flow(0, 3)
        for f in (1.0, 2.0, 3.0):
            cut = net.relaxed_cut_edges(3, f)
            assert cut, f"relaxed cut empty at f={f}"


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    edges = []
    for src in range(n - 1):
        for dst in range(src + 1, n):
            if draw(st.booleans()):
                cap = draw(st.floats(min_value=0.5, max_value=20.0))
                edges.append((src, dst, cap))
    return n, edges


class TestAgainstNetworkx:
    @given(random_dags())
    @settings(max_examples=60, deadline=None)
    def test_max_flow_matches_networkx(self, params):
        n, edges = params
        net = FlowNetwork()
        for src, dst, cap in edges:
            net.add_edge(src, dst, cap)
        net.add_node(0)
        net.add_node(n - 1)
        ours = net.max_flow(0, n - 1)
        theirs = nx_max_flow(edges, 0, n - 1)
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_flow_conservation(self, params):
        n, edges = params
        net = FlowNetwork()
        for src, dst, cap in edges:
            net.add_edge(src, dst, cap)
        net.add_node(0)
        net.add_node(n - 1)
        total = net.max_flow(0, n - 1)
        for node in net.nodes():
            inflow = sum(e.flow for e in net.edges if e.dst == node)
            outflow = sum(e.flow for e in net.edges if e.src == node)
            if node == 0:
                assert outflow - inflow == pytest.approx(total, abs=1e-9)
            elif node == n - 1:
                assert inflow - outflow == pytest.approx(total, abs=1e-9)
            else:
                assert inflow == pytest.approx(outflow, abs=1e-9)

    @given(random_dags())
    @settings(max_examples=40, deadline=None)
    def test_min_cut_value_equals_flow(self, params):
        n, edges = params
        net = FlowNetwork()
        for src, dst, cap in edges:
            net.add_edge(src, dst, cap)
        net.add_node(0)
        net.add_node(n - 1)
        total = net.max_flow(0, n - 1)
        cut = net.min_cut_edges(0)
        assert sum(e.capacity for e in cut) == pytest.approx(total, abs=1e-9)
