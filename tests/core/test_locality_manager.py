"""Tests for namespace registration, placement, and replica management."""

import pytest

from repro.core.locality_manager import NamespaceError
from repro.engine.partitioner import HashPartitioner, StaticRangePartitioner

from ..conftest import make_pairs


class TestNamespaceRegistration:
    def test_register_creates_placement(self, sc):
        part = HashPartitioner(8)
        ns = sc.locality_manager.register("logs", part)
        assert len(ns.placement) == 8
        alive = set(sc.cluster.alive_worker_ids())
        for executors in ns.placement.values():
            assert executors
            assert set(executors) <= alive

    def test_round_robin_balances_placement(self, sc):
        part = HashPartitioner(8)
        ns = sc.locality_manager.register("logs", part)
        counts = {}
        for executors in ns.placement.values():
            counts[executors[0]] = counts.get(executors[0], 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_reregister_same_partitioner_ok(self, sc):
        part = HashPartitioner(4)
        first = sc.locality_manager.register("ns", part)
        second = sc.locality_manager.register("ns", HashPartitioner(4))
        assert first is second

    def test_conflicting_partitioner_rejected(self, sc):
        sc.locality_manager.register("ns", HashPartitioner(4))
        with pytest.raises(NamespaceError, match="incompatible"):
            sc.locality_manager.register("ns", HashPartitioner(8))
        with pytest.raises(NamespaceError):
            sc.locality_manager.register("ns", StaticRangePartitioner([5]))

    def test_empty_name_rejected(self, sc):
        with pytest.raises(NamespaceError):
            sc.locality_manager.register("", HashPartitioner(2))

    def test_rdd_with_wrong_partitioner_rejected(self, sc):
        part = HashPartitioner(4)
        sc.locality_manager.register("ns", part)
        rdd = sc.parallelize(make_pairs(10), 2)
        with pytest.raises(NamespaceError, match="does not match"):
            sc.locality_manager.register_rdd("ns", rdd)

    def test_unknown_namespace_rejected(self, sc):
        with pytest.raises(NamespaceError, match="unknown"):
            sc.locality_manager.get_namespace("nope")

    def test_locality_partition_by_registers(self, sc):
        part = HashPartitioner(4)
        rdd = sc.parallelize(make_pairs(20), 4).locality_partition_by(part, "ns")
        assert sc.locality_manager.namespace_of_rdd(rdd.rdd_id) == "ns"
        assert rdd.rdd_id in sc.locality_manager.rdds_in_namespace("ns")

    def test_mismatched_second_rdd_raises(self, sc):
        sc.parallelize(make_pairs(20), 4).locality_partition_by(
            HashPartitioner(4), "ns"
        )
        with pytest.raises(NamespaceError):
            sc.parallelize(make_pairs(20), 8).locality_partition_by(
                HashPartitioner(8), "ns"
            )


class TestPreferredExecutors:
    def test_preferred_executors_stable(self, sc):
        part = HashPartitioner(4)
        sc.locality_manager.register("ns", part)
        first = sc.locality_manager.preferred_executors("ns", 2)
        second = sc.locality_manager.preferred_executors("ns", 2)
        assert first == second
        assert first

    def test_dead_workers_filtered(self, sc):
        part = HashPartitioner(4)
        ns = sc.locality_manager.register("ns", part)
        pid = 0
        primary = ns.placement[pid][0]
        sc.cluster.kill_worker(primary)
        assert primary not in sc.locality_manager.preferred_executors("ns", pid)

    def test_disabled_locality_returns_nothing(self, spark_sc):
        part = HashPartitioner(4)
        spark_sc.locality_manager.register("ns", part)
        assert spark_sc.locality_manager.preferred_executors("ns", 0) == []


class TestReplicas:
    def test_add_replica(self, sc):
        part = HashPartitioner(4)
        sc.locality_manager.register("ns", part)
        before = sc.locality_manager.replica_count("ns", 1)
        sc.locality_manager.add_replica("ns", 1, worker_id=3)
        after = sc.locality_manager.replica_count("ns", 1)
        assert after >= before
        assert 3 in sc.locality_manager.preferred_executors("ns", 1)

    def test_add_replica_idempotent(self, sc):
        sc.locality_manager.register("ns", HashPartitioner(4))
        sc.locality_manager.add_replica("ns", 0, 2)
        count = sc.locality_manager.replica_count("ns", 0)
        sc.locality_manager.add_replica("ns", 0, 2)
        assert sc.locality_manager.replica_count("ns", 0) == count

    def test_remove_replica_keeps_last(self, sc):
        ns = sc.locality_manager.register("ns", HashPartitioner(4))
        only = ns.placement[0][0]
        sc.locality_manager.remove_replica("ns", 0, only)
        assert ns.placement[0] == [only]

    def test_remove_extra_replica(self, sc):
        ns = sc.locality_manager.register("ns", HashPartitioner(4))
        sc.locality_manager.add_replica("ns", 0, 3)
        sc.locality_manager.remove_replica("ns", 0, 3)
        assert 3 not in ns.placement[0] or len(ns.placement[0]) == 1


class TestContentionAccounting:
    def test_counts_unique_collection_partitions(self, sc):
        part = HashPartitioner(4)
        rdds = []
        for _ in range(3):
            r = sc.parallelize(make_pairs(40), 4).locality_partition_by(
                part, "ns"
            ).cache()
            r.count()
            rdds.append(r)
        manager = sc.locality_manager
        total = sum(
            manager.unique_collection_partitions_cached(w)
            for w in sc.cluster.worker_ids
        )
        # 4 collection partitions exist; replicas may add a few more.
        assert total >= 4

    def test_three_rdds_one_partition_counts_once(self, sc):
        """Blocks of different RDDs sharing (ns, pid) count as ONE unique
        collection partition — the core of Algorithm 1's sort key."""
        part = HashPartitioner(2)
        rdds = [
            sc.parallelize(make_pairs(10), 2).locality_partition_by(part, "ns")
            for _ in range(3)
        ]
        from repro.engine.block_manager import Block

        bmm = sc.block_manager_master
        for rdd in rdds:
            bmm.put(0, Block((rdd.rdd_id, 1), ["x"], 10.0))
        assert sc.locality_manager.unique_collection_partitions_cached(0) == 1

    def test_non_namespace_blocks_ignored(self, sc):
        from repro.engine.block_manager import Block

        plain = sc.parallelize(make_pairs(10), 2)
        sc.block_manager_master.put(0, Block((plain.rdd_id, 0), ["x"], 10.0))
        assert sc.locality_manager.unique_collection_partitions_cached(0) == 0
