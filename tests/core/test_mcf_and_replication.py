"""Tests for Minimum-Contention-First scheduling and contention-aware
replication (§III-C3)."""


from repro import StarkConfig, StarkContext
from repro.core.mcf_scheduler import MinimumContentionFirstPolicy
from repro.engine.block_manager import Block
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


def mcf_context(**kwargs):
    defaults = dict(num_workers=4, cores_per_worker=2, memory_per_worker=1e9)
    defaults.update(kwargs)
    return StarkContext(**defaults)


class TestMCFPolicy:
    def _prime_contention(self, sc, counts):
        """Give worker w `counts[w]` unique collection partitions."""
        part = HashPartitioner(8)
        rdd = sc.parallelize(make_pairs(10), 8).locality_partition_by(
            part, "mcf"
        )
        for wid, n in counts.items():
            for pid in range(n):
                sc.block_manager_master.put(
                    wid, Block((rdd.rdd_id, pid), ["x"], 1.0)
                )
        return rdd

    def test_chooses_least_contended(self):
        sc = mcf_context()
        rdd = self._prime_contention(sc, {0: 3, 1: 1, 2: 2, 3: 5})
        policy = MinimumContentionFirstPolicy()

        class FakeTask:
            partition = 0
            stage = None

        chosen = policy.choose_worker(sc, FakeTask(), [0, 1, 2, 3], now=0.0)
        assert chosen == 1

    def test_ties_break_by_free_time_then_id(self):
        sc = mcf_context()
        self._prime_contention(sc, {0: 2, 1: 2, 2: 2, 3: 2})
        w0 = sc.cluster.get_worker(0)
        for slot in range(w0.cores):
            sc.cluster.kernel.set_slot_free_time(w0, slot, 5.0)
        policy = MinimumContentionFirstPolicy()

        class FakeTask:
            partition = 0
            stage = None

        chosen = policy.choose_worker(sc, FakeTask(), [0, 1, 2, 3], now=0.0)
        assert chosen == 1  # same contention, worker 0 busy, 1 by id

    def test_mcf_enabled_by_config(self):
        sc = mcf_context(config=StarkConfig(mcf_enabled=True))
        assert isinstance(sc.task_scheduler.remote_policy,
                          MinimumContentionFirstPolicy)

    def test_mcf_disabled_by_config(self):
        from repro.engine.task_scheduler import DefaultRemotePolicy

        sc = mcf_context(config=StarkConfig(mcf_enabled=False))
        assert isinstance(sc.task_scheduler.remote_policy, DefaultRemotePolicy)

    def test_mcf_spreads_load_away_from_hot_caches(self):
        """End to end: with MCF, remote launches avoid the workers that
        already cache many collection partitions."""
        sc = mcf_context(num_workers=4, cores_per_worker=1)
        part = HashPartitioner(4)
        rdds = []
        for _ in range(3):
            r = sc.parallelize(make_pairs(400), 4).locality_partition_by(
                part, "mcf"
            ).cache()
            r.count()
            rdds.append(r)
        # Hammer one collection partition with narrow jobs so its pinned
        # worker saturates and tasks overflow to remote workers.
        contentions_before = {
            w: sc.locality_manager.unique_collection_partitions_cached(w)
            for w in sc.cluster.worker_ids
        }
        for _ in range(4):
            rdds[0].filter(lambda kv: True).count()
        job = sc.metrics.last_job()
        remote = [t for t in job.tasks if t.locality == "ANY"]
        for t in remote:
            chosen_contention = contentions_before[t.worker_id]
            least = min(contentions_before.values())
            assert chosen_contention <= least + 1


class TestReplication:
    def test_remote_launch_registers_replica(self):
        sc = mcf_context(num_workers=2, cores_per_worker=1,
                         config=StarkConfig(locality_wait=0.0))
        part = HashPartitioner(2)
        rdd = sc.parallelize(make_pairs(2000), 2).locality_partition_by(
            part, "rep"
        ).cache()
        rdd.count()
        # Repeated queries with zero locality wait overflow to ANY.
        for _ in range(6):
            rdd.filter(lambda kv: True).count()
        events = sc.replication_manager.events
        replicas = [e for e in events if e.kind == "replicate"]
        if replicas:  # placement-dependent, but when it happens:
            for e in replicas:
                assert e.namespace == "rep"
                assert e.worker_id in sc.cluster.workers

    def test_eviction_dereplicates(self):
        sc = mcf_context()
        part = HashPartitioner(2)
        rdd = sc.parallelize(make_pairs(10), 2).locality_partition_by(
            part, "rep"
        )
        sc.locality_manager.add_replica("rep", 0, 3)
        assert 3 in sc.locality_manager.get_namespace("rep").placement[0]
        # Simulate cache insert + eviction of the replica's block.
        sc.block_manager_master.put(3, Block((rdd.rdd_id, 0), ["x"], 1.0))
        sc.block_manager_master.remove_block((rdd.rdd_id, 0), 3)
        assert 3 not in sc.locality_manager.get_namespace("rep").placement[0]

    def test_dereplication_spares_partition_with_other_rdd_cached(self):
        sc = mcf_context()
        part = HashPartitioner(2)
        a = sc.parallelize(make_pairs(10), 2).locality_partition_by(part, "rep")
        b = sc.parallelize(make_pairs(10), 2).locality_partition_by(part, "rep")
        sc.locality_manager.add_replica("rep", 0, 3)
        sc.block_manager_master.put(3, Block((a.rdd_id, 0), ["x"], 1.0))
        sc.block_manager_master.put(3, Block((b.rdd_id, 0), ["x"], 1.0))
        # Evicting only RDD a's block keeps the replica: b still lives there.
        sc.block_manager_master.remove_block((a.rdd_id, 0), 3)
        assert 3 in sc.locality_manager.get_namespace("rep").placement[0]

    def test_hotspot_counter(self):
        sc = mcf_context(num_workers=2, cores_per_worker=1,
                         config=StarkConfig(locality_wait=0.0))
        part = HashPartitioner(2)
        rdd = sc.parallelize(make_pairs(3000), 2).locality_partition_by(
            part, "rep"
        ).cache()
        rdd.count()
        for _ in range(8):
            rdd.filter(lambda kv: True).count()
        hot = sc.replication_manager.hottest_partitions()
        # Counter shape only; hotness is placement-dependent.
        for (ns, pid), count in hot:
            assert ns == "rep"
            assert count >= 1

    def test_replication_disabled_records_nothing(self):
        sc = mcf_context(config=StarkConfig(
            replication_enabled=False, locality_wait=0.0,
        ))
        part = HashPartitioner(2)
        rdd = sc.parallelize(make_pairs(500), 2).locality_partition_by(
            part, "rep"
        ).cache()
        for _ in range(4):
            rdd.count()
        assert sc.replication_manager.events == []
