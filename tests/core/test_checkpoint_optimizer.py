"""Tests for the CheckpointOptimizer and the Edge baseline."""

import pytest

from repro.core.checkpoint_optimizer import CheckpointOptimizer
from repro.core.edge_checkpoint import EdgeCheckpointer
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


def chain_rdds(sc, length, records=200):
    """source -> partition_by -> map_values * length, all materialized."""
    rdd = sc.parallelize(make_pairs(records), 4).partition_by(HashPartitioner(4))
    chain = [rdd]
    for i in range(length):
        rdd = rdd.map_values(lambda v: v + 1, name=f"m{i}").cache()
        chain.append(rdd)
    rdd.count()
    return chain


class TestLineageExtraction:
    def test_shuffled_rdd_is_barrier(self, sc):
        chain = chain_rdds(sc, 3)
        opt = CheckpointOptimizer(sc, recovery_bound=1.0)
        nodes = opt.build_lineage([chain[-1]])
        assert nodes[chain[0].rdd_id].barrier

    def test_checkpointed_rdd_is_barrier_and_stops_walk(self, sc):
        chain = chain_rdds(sc, 4)
        chain[2].force_checkpoint()
        opt = CheckpointOptimizer(sc, recovery_bound=1.0)
        nodes = opt.build_lineage([chain[-1]])
        assert nodes[chain[2].rdd_id].barrier
        # The walk must not put chain[1] in the view (hidden by the ckpt).
        assert chain[1].rdd_id not in nodes

    def test_source_rdd_is_barrier(self, sc):
        rdd = sc.parallelize(make_pairs(10), 2).map(lambda kv: kv)
        rdd.count()
        opt = CheckpointOptimizer(sc, recovery_bound=1.0)
        nodes = opt.build_lineage([rdd])
        source_id = rdd.parents()[0].rdd_id
        assert nodes[source_id].barrier

    def test_delays_and_costs_recorded(self, sc):
        chain = chain_rdds(sc, 2)
        opt = CheckpointOptimizer(sc, recovery_bound=1.0)
        nodes = opt.build_lineage([chain[-1]])
        mid = nodes[chain[1].rdd_id]
        assert mid.delay > 0
        assert mid.cost > 1.0  # real data was materialized


class TestViolationDetection:
    def test_short_chain_not_violating(self, sc):
        chain = chain_rdds(sc, 2)
        opt = CheckpointOptimizer(sc, recovery_bound=100.0)
        decision = opt.optimize([chain[-1]])
        assert not decision.triggered
        assert decision.chosen_rdd_ids == []

    def test_long_chain_violates_tight_bound(self, sc):
        chain = chain_rdds(sc, 6, records=500)
        opt = CheckpointOptimizer(sc, recovery_bound=1e-7)
        nodes = opt.build_lineage([chain[-1]])
        assert opt.find_violating_targets(nodes, [chain[-1].rdd_id])

    def test_longest_path_accumulates_narrow_delays(self, sc):
        chain = chain_rdds(sc, 5)
        opt = CheckpointOptimizer(sc, recovery_bound=1.0)
        nodes = opt.build_lineage([chain[-1]])
        shallow = opt.longest_uncheckpointed_delay(nodes, chain[1].rdd_id)
        deep = opt.longest_uncheckpointed_delay(nodes, chain[-1].rdd_id)
        assert deep > shallow

    def test_invalid_parameters_rejected(self, sc):
        with pytest.raises(ValueError):
            CheckpointOptimizer(sc, recovery_bound=0.0)
        with pytest.raises(ValueError):
            CheckpointOptimizer(sc, recovery_bound=1.0, relax_factor=0.9)


class TestOptimization:
    def test_optimize_breaks_violation(self, sc):
        chain = chain_rdds(sc, 6, records=500)
        nodes_probe = CheckpointOptimizer(sc, recovery_bound=1.0)
        view = nodes_probe.build_lineage([chain[-1]])
        full = nodes_probe.longest_uncheckpointed_delay(view, chain[-1].rdd_id)
        opt = CheckpointOptimizer(sc, recovery_bound=full * 0.6)
        decision = opt.optimize([chain[-1]])
        assert decision.triggered
        assert decision.chosen_rdd_ids
        assert decision.residual_path_delay <= full * 0.6 + 1e-12

    def test_picks_cheapest_cut(self, sc):
        """A diamond where one branch is tiny: the optimizer must prefer
        checkpointing the small RDD over the big one."""
        part = HashPartitioner(4)
        base = sc.parallelize(make_pairs(400), 4).partition_by(part)
        big = base.map_values(lambda v: "x" * 50, name="big").cache()
        # Chain below big, so cutting must happen at big or below.
        big2 = big.map_values(lambda v: v, name="big2").cache()
        small = big2.filter(lambda kv: kv[1] is None, name="small").cache()
        tail = small.map_values(lambda v: v, name="tail").cache()
        tail.count()

        opt = CheckpointOptimizer(sc, recovery_bound=1e-9)
        nodes = opt.build_lineage([tail])
        chosen = opt.select_checkpoint_set(nodes, [tail.rdd_id])
        assert chosen
        total = sum(nodes[c].cost for c in chosen)
        assert total <= nodes[big.rdd_id].cost

    def test_non_violating_branch_not_cut(self, sc):
        """Only violating paths are broken (Fig 10): a short side branch
        into the same target must not force extra checkpoints."""
        part = HashPartitioner(2)
        base = sc.parallelize(make_pairs(600), 2).partition_by(part)
        long_branch = base
        for i in range(6):
            long_branch = long_branch.map_values(
                lambda v: v + 1, name=f"long{i}"
            ).cache()
        short_branch = base.map_values(lambda v: v, name="short").cache()
        joined = long_branch.cogroup(short_branch, partitioner=part).map(
            lambda kv: kv, name="joined", preserves_partitioning=True
        ).cache()
        joined.count()

        opt_probe = CheckpointOptimizer(sc, recovery_bound=1.0)
        view = opt_probe.build_lineage([joined])
        long_len = opt_probe.longest_uncheckpointed_delay(
            view, joined.rdd_id
        )
        short_len = view[short_branch.rdd_id].delay + view[base.rdd_id].delay
        bound = (long_len + short_len) / 2  # between the two path lengths
        opt = CheckpointOptimizer(sc, recovery_bound=bound)
        chosen = opt.select_checkpoint_set(view, [joined.rdd_id])
        assert short_branch.rdd_id not in chosen

    def test_after_optimize_rdds_are_checkpointed(self, sc):
        chain = chain_rdds(sc, 6, records=500)
        opt = CheckpointOptimizer(sc, recovery_bound=1e-9)
        decision = opt.optimize([chain[-1]])
        for rdd_id in decision.chosen_rdd_ids:
            assert sc.checkpoint_store.has_checkpoint(rdd_id)

    def test_relaxed_cut_costs_at_most_f_times_optimal(self, sc):
        chain = chain_rdds(sc, 8, records=400)
        probe = CheckpointOptimizer(sc, recovery_bound=1.0)
        view = probe.build_lineage([chain[-1]])
        full = probe.longest_uncheckpointed_delay(view, chain[-1].rdd_id)
        bound = full * 0.5

        exact = CheckpointOptimizer(sc, recovery_bound=bound, relax_factor=1.0)
        exact_set = exact.select_checkpoint_set(view, [chain[-1].rdd_id])
        relaxed = CheckpointOptimizer(sc, recovery_bound=bound, relax_factor=3.0)
        relaxed_set = relaxed.select_checkpoint_set(view, [chain[-1].rdd_id])
        exact_cost = sum(view[c].cost for c in exact_set)
        relaxed_cost = sum(view[c].cost for c in relaxed_set)
        assert relaxed_cost <= 3.0 * exact_cost + 1e-9


class TestEdgeBaseline:
    def test_edge_checkpoints_leaves(self, sc):
        chain = chain_rdds(sc, 6, records=500)
        edge = EdgeCheckpointer(sc, recovery_bound=1e-9)
        decision = edge.optimize([chain[-1]])
        assert decision.triggered
        assert decision.chosen_rdd_ids == [chain[-1].rdd_id]

    def test_edge_ignores_cost(self, sc):
        """Edge checkpoints the big leaf even when a tiny upstream RDD
        would break the same paths."""
        part = HashPartitioner(2)
        base = sc.parallelize(make_pairs(600), 2).partition_by(part)
        small = base.map_values(lambda v: 1, name="small").cache()
        big = small.map_values(lambda v: "y" * 200, name="big").cache()
        big.count()
        edge = EdgeCheckpointer(sc, recovery_bound=1e-9)
        nodes = edge.build_lineage([big])
        chosen = edge.select_checkpoint_set(nodes, [big.rdd_id])
        assert chosen == [big.rdd_id]


class TestPathCounting:
    def test_count_violating_paths_linear_chain(self, sc):
        chain = chain_rdds(sc, 5, records=300)
        opt = CheckpointOptimizer(sc, recovery_bound=1e-9)
        nodes = opt.build_lineage([chain[-1]])
        # A linear chain has exactly one root-to-target path.
        assert opt.count_violating_paths(nodes, chain[-1].rdd_id) == 1

    def test_count_violating_paths_diamond(self, sc):
        part = HashPartitioner(2)
        base = sc.parallelize(make_pairs(400), 2).partition_by(part)
        left = base.map_values(lambda v: v, name="l").cache()
        right = base.filter(lambda kv: True, name="r").cache()
        joined = left.cogroup(right, partitioner=part).map(
            lambda kv: kv, name="j", preserves_partitioning=True
        ).cache()
        joined.count()
        opt = CheckpointOptimizer(sc, recovery_bound=1e-9)
        nodes = opt.build_lineage([joined])
        assert opt.count_violating_paths(nodes, joined.rdd_id) == 2

    def test_no_paths_when_bound_large(self, sc):
        chain = chain_rdds(sc, 3)
        opt = CheckpointOptimizer(sc, recovery_bound=1e9)
        nodes = opt.build_lineage([chain[-1]])
        assert opt.count_violating_paths(nodes, chain[-1].rdd_id) == 0

    def test_decision_reports_path_count(self, sc):
        chain = chain_rdds(sc, 6, records=400)
        opt = CheckpointOptimizer(sc, recovery_bound=1e-9)
        decision = opt.optimize([chain[-1]])
        assert decision.triggered
        assert decision.violating_paths >= 1
