"""Tests for the extendable partitioner."""

import pytest
from hypothesis import given, strategies as st

from repro.core.extendable_partitioner import ExtendablePartitioner
from repro.engine.partitioner import HashPartitioner, StaticRangePartitioner


class TestConstruction:
    def test_over_key_range(self):
        p = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        assert p.num_partitions == 16
        assert p.num_groups == 4
        assert p.partitions_per_group == 4

    def test_base_partition_count_must_match(self):
        base = StaticRangePartitioner.uniform(0, 100, 8)
        with pytest.raises(ValueError, match="g\\*e"):
            ExtendablePartitioner(base, 4, 4)

    def test_tiny_domain_rejected(self):
        with pytest.raises(ValueError):
            ExtendablePartitioner.over_key_range(0, 4, 4, 4)

    def test_wraps_any_base(self):
        base = HashPartitioner(8)
        p = ExtendablePartitioner(base, 2, 4)
        assert p.get_partition("k") == base.get_partition("k")


class TestKeyMapping:
    def test_get_partition_identical_to_base(self):
        p = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        for key in range(0, 1024, 7):
            assert p.get_partition(key) == p.base.get_partition(key)

    def test_initial_group_of(self):
        p = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        assert p.initial_group_of(0) == 0
        assert p.initial_group_of(1023) == 3

    @given(st.integers(min_value=0, max_value=1023))
    def test_partition_in_range(self, key):
        p = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        assert 0 <= p.get_partition(key) < 16

    @given(st.integers(min_value=0, max_value=1022))
    def test_monotone_over_ordered_keys(self, key):
        p = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        assert p.get_partition(key) <= p.get_partition(key + 1)


class TestEquality:
    def test_equal_when_base_equal(self):
        a = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        b = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_on_different_domain(self):
        a = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        b = ExtendablePartitioner.over_key_range(0, 2048, 4, 4)
        assert a != b

    def test_not_equal_to_bare_base(self):
        a = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        assert a != a.base

    def test_copartitioning_survives_group_dynamics(self, sc):
        """Splitting groups must NOT make RDDs look un-co-partitioned —
        that would reintroduce shuffles."""
        part = ExtendablePartitioner.over_key_range(0, 1024, 4, 4)
        a = sc.parallelize([(k, k) for k in range(0, 1024, 8)], 16,
                           partitioner=part).locality_partition_by(part, "eq")
        a.cache().count()
        sc.group_manager.report_rdd(a)
        state = sc.group_manager._state["eq"]
        leaf = next(l for l in state.tree.leaves() if l.num_partitions >= 2)
        state.tree.split(leaf)
        b = sc.parallelize([(k, k) for k in range(0, 1024, 8)], 16,
                           partitioner=part).locality_partition_by(part, "eq")
        b.cache().count()
        cg = a.cogroup(b)
        assert not cg.shuffle_dependencies()
