"""Tests for the GroupManager: size accounting, split/merge triggers,
placement maintenance, and group tasks."""


from repro import StarkConfig, StarkContext
from repro.core.extendable_partitioner import ExtendablePartitioner
from repro.cluster.cost_model import SimStr


KEY_SPACE = 1 << 10


def make_ctx(max_group=80_000.0, min_group=5_000.0, **kwargs):
    config = StarkConfig(
        max_group_mem_size=max_group, min_group_mem_size=min_group,
        group_size_window=6,
    )
    defaults = dict(num_workers=4, cores_per_worker=2, memory_per_worker=1e9)
    defaults.update(kwargs)
    return StarkContext(config=config, **defaults)


def ext_partitioner(groups=4, per_group=4):
    return ExtendablePartitioner.over_key_range(0, KEY_SPACE, groups, per_group)


def load_rdd(sc, part, namespace, keys, payload_bytes=100):
    data = [(k, SimStr("v", sim_size=payload_bytes)) for k in keys]
    rdd = sc.parallelize(data, part.num_partitions, partitioner=part) \
        .locality_partition_by(part, namespace).cache()
    rdd.count()
    return rdd


class TestEnablement:
    def test_extendable_partitioner_auto_enables(self):
        sc = make_ctx()
        part = ext_partitioner()
        load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 16))
        assert sc.group_manager.is_enabled("taxi")
        assert sc.group_manager.groups_for("taxi") is not None

    def test_plain_partitioner_does_not_enable(self):
        from repro.engine.partitioner import HashPartitioner

        sc = make_ctx()
        part = HashPartitioner(8)
        rdd = sc.parallelize([(k, k) for k in range(40)], 8) \
            .locality_partition_by(part, "plain")
        rdd.count()
        assert not sc.group_manager.is_enabled("plain")
        assert sc.group_manager.groups_for("plain") is None

    def test_initial_groups_match_partitioner(self):
        sc = make_ctx()
        part = ext_partitioner(groups=4, per_group=4)
        load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 16))
        groups = sc.group_manager.groups_for("taxi")
        assert len(groups) == 4
        assert all(g.num_partitions == 4 for g in groups)


class TestSizeAccounting:
    def test_partition_sizes_reflect_cached_blocks(self):
        sc = make_ctx()
        part = ext_partitioner()
        load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 4), payload_bytes=50)
        sizes = sc.group_manager.partition_sizes("taxi")
        assert sum(sizes.values()) > 0

    def test_window_limits_counted_rdds(self):
        sc = make_ctx()
        part = ext_partitioner()
        for _ in range(10):
            rdd = load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 16))
            sc.group_manager.report_rdd(rdd)
        state = sc.group_manager._state["taxi"]
        assert len(state.recent_rdds) <= sc.config.group_size_window


class TestSplitAndMerge:
    def test_hot_group_splits(self):
        sc = make_ctx(max_group=20_000.0, min_group=100.0)
        part = ext_partitioner()
        # All keys in the first quarter of the key space: group 0 is hot.
        rdd = load_rdd(sc, part, "taxi",
                       [k % (KEY_SPACE // 4) for k in range(0, 600)],
                       payload_bytes=100)
        actions = sc.group_manager.report_rdd(rdd)
        assert any("split" in a for a in actions)
        stats = sc.group_manager.stats("taxi")
        assert stats["splits"] >= 1
        assert stats["groups"] > 4

    def test_cold_groups_merge(self):
        sc = make_ctx(max_group=1e9, min_group=50_000.0)
        part = ext_partitioner()
        rdd = load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 64),
                       payload_bytes=10)
        actions = sc.group_manager.report_rdd(rdd)
        assert any("merge" in a for a in actions)
        assert sc.group_manager.stats("taxi")["groups"] < 4

    def test_rebalance_reaches_fixed_point(self):
        sc = make_ctx(max_group=15_000.0, min_group=1_000.0)
        part = ext_partitioner()
        rdd = load_rdd(sc, part, "taxi",
                       [k % (KEY_SPACE // 2) for k in range(500)])
        sc.group_manager.report_rdd(rdd)
        # A second rebalance with unchanged data must do nothing.
        assert sc.group_manager.rebalance("taxi") == []

    def test_split_keeps_left_child_placement(self):
        sc = make_ctx(max_group=20_000.0, min_group=100.0)
        part = ext_partitioner()
        state_before = {}
        manager = sc.group_manager
        rdd = load_rdd(sc, part, "taxi",
                       [k % (KEY_SPACE // 4) for k in range(600)])
        state = manager._state["taxi"]
        tree_leaves = state.tree.leaves()
        # After the split, the leftmost leaf's executors must come from
        # the old group-0 placement (data does not move, §III-C2).
        old_exec = manager.preferred_executors("taxi", 0)
        manager.report_rdd(rdd)
        new_exec = manager.preferred_executors("taxi", 0)
        assert set(old_exec) & set(new_exec)

    def test_invariants_hold_after_rebalance(self):
        sc = make_ctx(max_group=10_000.0, min_group=500.0)
        part = ext_partitioner(groups=8, per_group=2)
        for hot in (0, 1, 2):
            rdd = load_rdd(
                sc, part, "taxi",
                [(hot * KEY_SPACE // 4 + k) % KEY_SPACE for k in range(300)],
            )
            sc.group_manager.report_rdd(rdd)
            sc.group_manager._state["taxi"].tree.check_invariants()


class TestGroupTasks:
    def test_jobs_use_one_task_per_group(self):
        sc = make_ctx()
        part = ext_partitioner(groups=4, per_group=4)
        rdd = load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 8))
        rdd.count()
        job = sc.metrics.last_job()
        # 16 partitions but only 4 groups -> 4 tasks.
        assert len(job.tasks) == 4
        assert all(t.group_id is not None for t in job.tasks)

    def test_group_tasks_cover_all_partitions(self):
        sc = make_ctx()
        part = ext_partitioner(groups=4, per_group=4)
        rdd = load_rdd(sc, part, "taxi", range(0, KEY_SPACE))
        assert rdd.count() == KEY_SPACE

    def test_results_correct_after_split(self):
        sc = make_ctx(max_group=20_000.0, min_group=100.0)
        part = ext_partitioner()
        keys = [k % (KEY_SPACE // 4) for k in range(600)]
        rdd = load_rdd(sc, part, "taxi", keys)
        sc.group_manager.report_rdd(rdd)
        assert rdd.count() == 600
        job = sc.metrics.last_job()
        assert len(job.tasks) == sc.group_manager.stats("taxi")["groups"]


class TestPreferredExecutors:
    def test_group_placement_consulted(self):
        sc = make_ctx()
        part = ext_partitioner()
        load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 16))
        execs = sc.group_manager.preferred_executors("taxi", 0)
        assert execs
        # Partition 0 belongs to group 0 -> same placement for partition 1.
        assert sc.group_manager.preferred_executors("taxi", 1) == execs

    def test_out_of_range_partition_empty(self):
        sc = make_ctx()
        part = ext_partitioner()
        load_rdd(sc, part, "taxi", range(0, KEY_SPACE, 16))
        assert sc.group_manager.preferred_executors("taxi", 999) == []

    def test_unknown_namespace_returns_none(self):
        sc = make_ctx()
        assert sc.group_manager.preferred_executors("nope", 0) is None
