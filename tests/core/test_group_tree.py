"""Tests for the GroupTree: invariants under arbitrary split/merge."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.group_tree import GroupTree, GroupTreeError


class TestConstruction:
    def test_initial_layout(self):
        tree = GroupTree(num_groups=4, partitions_per_group=4)
        leaves = tree.leaves()
        assert len(leaves) == 4
        assert [leaf.partitions for leaf in leaves] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15],
        ]

    def test_ith_group_contains_expected_partitions(self):
        # The paper: group i contains partitions e*i .. e*(i+1)-1.
        g, e = 8, 2
        tree = GroupTree(g, e)
        for i, leaf in enumerate(tree.leaves()):
            assert leaf.partitions == list(range(e * i, e * (i + 1)))

    def test_non_power_of_two_groups(self):
        tree = GroupTree(num_groups=3, partitions_per_group=2)
        tree.check_invariants()
        assert tree.num_groups() == 3
        assert tree.num_partitions == 6

    def test_rejects_nonpositive(self):
        with pytest.raises(GroupTreeError):
            GroupTree(0, 4)
        with pytest.raises(GroupTreeError):
            GroupTree(4, 0)

    def test_single_group(self):
        tree = GroupTree(1, 8)
        assert tree.num_groups() == 1
        assert tree.leaves()[0].partitions == list(range(8))


class TestSplitMerge:
    def test_split_halves_partitions(self):
        tree = GroupTree(2, 4)
        leaf = tree.leaves()[0]
        left, right = tree.split(leaf)
        assert left.partitions == [0, 1]
        assert right.partitions == [2, 3]
        tree.check_invariants()

    def test_split_single_partition_rejected(self):
        tree = GroupTree(2, 1)
        with pytest.raises(GroupTreeError, match="cannot split"):
            tree.split(tree.leaves()[0])

    def test_split_non_leaf_rejected(self):
        tree = GroupTree(2, 4)
        with pytest.raises(GroupTreeError, match="leaf"):
            tree.split(tree.root)

    def test_merge_restores_parent(self):
        tree = GroupTree(2, 4)
        leaf = tree.leaves()[0]
        left, right = tree.split(leaf)
        merged = tree.merge(left, right)
        assert merged is leaf
        assert merged.is_leaf
        tree.check_invariants()

    def test_merge_non_siblings_rejected(self):
        tree = GroupTree(4, 2)
        leaves = tree.leaves()
        # leaves[0] and leaves[2] share a grandparent, not a parent.
        with pytest.raises(GroupTreeError, match="siblings"):
            tree.merge(leaves[0], leaves[2])

    def test_merge_sibling_leaves_of_initial_tree(self):
        tree = GroupTree(4, 2)
        leaves = tree.leaves()
        sib = leaves[0].sibling()
        if sib is not None and sib.is_leaf:
            merged = tree.merge(leaves[0], sib)
            assert merged.num_partitions == 4
            tree.check_invariants()

    def test_split_is_inverse_of_merge(self):
        tree = GroupTree(2, 8)
        leaf = tree.leaves()[1]
        left, right = tree.split(leaf)
        tree.merge(left, right)
        assert [l.partitions for l in tree.leaves()] == [
            list(range(0, 8)), list(range(8, 16)),
        ]

    def test_group_of_partition_after_split(self):
        tree = GroupTree(2, 4)
        left, right = tree.split(tree.leaves()[0])
        assert tree.group_of_partition(0) is left
        assert tree.group_of_partition(3) is right
        assert tree.group_of_partition(5) is tree.leaves()[2]

    def test_group_of_partition_out_of_range(self):
        tree = GroupTree(2, 2)
        with pytest.raises(GroupTreeError):
            tree.group_of_partition(4)
        with pytest.raises(GroupTreeError):
            tree.group_of_partition(-1)

    def test_partition_to_group_map_complete(self):
        tree = GroupTree(4, 4)
        tree.split(tree.leaves()[2])
        mapping = tree.partition_to_group_map()
        assert sorted(mapping) == list(range(16))

    def test_find_leaf(self):
        tree = GroupTree(2, 2)
        leaf = tree.leaves()[0]
        assert tree.find_leaf(leaf.group_id) is leaf
        assert tree.find_leaf(-1) is None


@st.composite
def tree_operations(draw):
    """A GroupTree plus a random sequence of valid split/merge ops."""
    g = draw(st.sampled_from([2, 4, 8]))
    e = draw(st.sampled_from([2, 4]))
    ops = draw(st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                        max_size=25))
    return g, e, ops


class TestPropertyInvariants:
    @given(tree_operations())
    @settings(max_examples=60, deadline=None)
    def test_leaves_always_tile_partition_space(self, params):
        g, e, ops = params
        tree = GroupTree(g, e)
        for do_split, index in ops:
            leaves = tree.leaves()
            if do_split:
                candidates = [l for l in leaves if l.num_partitions >= 2]
                if candidates:
                    tree.split(candidates[index % len(candidates)])
            else:
                candidates = [
                    l for l in leaves
                    if l.sibling() is not None and l.sibling().is_leaf
                ]
                if candidates:
                    leaf = candidates[index % len(candidates)]
                    sibling = leaf.sibling()
                    first, second = (
                        (leaf, sibling) if leaf.start < sibling.start
                        else (sibling, leaf)
                    )
                    tree.merge(first, second)
            tree.check_invariants()
            # Every partition maps to exactly the leaf covering it.
            for pid in range(tree.num_partitions):
                leaf = tree.group_of_partition(pid)
                assert leaf.start <= pid < leaf.end
                assert leaf.is_leaf

    @given(st.integers(1, 16), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_any_shape_constructs_consistently(self, g, e):
        tree = GroupTree(g, e)
        tree.check_invariants()
        assert tree.num_groups() == g
        assert sum(l.num_partitions for l in tree.leaves()) == g * e
