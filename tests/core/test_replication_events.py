"""Direct unit tests for the ReplicationManager's event bookkeeping."""

import pytest

from repro import StarkContext
from repro.engine.block_manager import Block
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


@pytest.fixture
def rep_sc():
    return StarkContext(num_workers=3, cores_per_worker=2,
                        memory_per_worker=1e9)


class FakeStage:
    def __init__(self, rdd):
        self.rdd = rdd


class FakeTask:
    def __init__(self, rdd, partition):
        self.stage = FakeStage(rdd)
        self.partition = partition


class TestSignals:
    def test_remote_launch_counts_hotspot(self, rep_sc):
        part = HashPartitioner(3)
        rdd = rep_sc.parallelize(make_pairs(10), 3).locality_partition_by(
            part, "ns"
        )
        manager = rep_sc.replication_manager
        manager.on_remote_launch(FakeTask(rdd, 1), worker_id=2, time=1.0)
        manager.on_remote_launch(FakeTask(rdd, 1), worker_id=0, time=2.0)
        assert manager.hotspot_counts[("ns", 1)] == 2
        kinds = [e.kind for e in manager.events]
        assert kinds == ["replicate", "replicate"]

    def test_non_namespace_rdd_ignored(self, rep_sc):
        plain = rep_sc.parallelize(make_pairs(10), 3)
        rep_sc.replication_manager.on_remote_launch(
            FakeTask(plain, 0), worker_id=1, time=0.0
        )
        assert rep_sc.replication_manager.events == []

    def test_hottest_partitions_ordering(self, rep_sc):
        part = HashPartitioner(3)
        rdd = rep_sc.parallelize(make_pairs(10), 3).locality_partition_by(
            part, "ns"
        )
        manager = rep_sc.replication_manager
        for _ in range(3):
            manager.on_remote_launch(FakeTask(rdd, 2), worker_id=1, time=0.0)
        manager.on_remote_launch(FakeTask(rdd, 0), worker_id=1, time=0.0)
        hottest = manager.hottest_partitions(2)
        assert hottest[0] == (("ns", 2), 3)
        assert hottest[1] == (("ns", 0), 1)


class TestDereplication:
    def test_eviction_event_recorded(self, rep_sc):
        part = HashPartitioner(2)
        rdd = rep_sc.parallelize(make_pairs(10), 2).locality_partition_by(
            part, "ns"
        )
        rep_sc.locality_manager.add_replica("ns", 0, 2)
        bmm = rep_sc.block_manager_master
        bmm.put(2, Block((rdd.rdd_id, 0), ["x"], 10.0))
        bmm.remove_block((rdd.rdd_id, 0), 2)
        kinds = [e.kind for e in rep_sc.replication_manager.events]
        assert "dereplicate" in kinds

    def test_eviction_of_unrelated_block_ignored(self, rep_sc):
        plain = rep_sc.parallelize(make_pairs(10), 2)
        bmm = rep_sc.block_manager_master
        bmm.put(0, Block((plain.rdd_id, 0), ["x"], 10.0))
        bmm.remove_block((plain.rdd_id, 0), 0)
        assert rep_sc.replication_manager.events == []

    def test_replication_count_passthrough(self, rep_sc):
        part = HashPartitioner(2)
        rep_sc.parallelize(make_pairs(10), 2).locality_partition_by(
            part, "ns"
        )
        base = rep_sc.replication_manager.replication_count("ns", 0)
        rep_sc.locality_manager.add_replica("ns", 0, 2)
        assert rep_sc.replication_manager.replication_count("ns", 0) == \
            base + 1
