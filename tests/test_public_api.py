"""Public API surface tests: imports, __all__, and version."""

import importlib

import pytest


PACKAGES = [
    "repro",
    "repro.cache",
    "repro.cluster",
    "repro.core",
    "repro.engine",
    "repro.obs",
    "repro.streaming",
    "repro.workloads",
    "repro.apps",
    "repro.bench",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_docstring_is_runnable_shape(self):
        """The README/`repro` docstring snippet's API calls all exist."""
        from repro import HashPartitioner, StarkContext

        sc = StarkContext(num_workers=2, cores_per_worker=2)
        part = HashPartitioner(2)
        hours = [
            sc.parallelize([(k, 1) for k in range(50)], 2)
            .locality_partition_by(part, namespace="logs")
            .cache()
            for _ in range(2)
        ]
        for rdd in hours:
            rdd.count()
        merged = hours[0].cogroup(*hours[1:])
        assert merged.count() == 50


class TestExtendedOpsInstalled:
    def test_pair_ops_attached_via_top_level_import(self):
        import repro

        rdd_cls = repro.RDD
        for name in ("left_outer_join", "sort_by_key", "aggregate_by_key",
                     "count_by_key", "lookup", "sample"):
            assert hasattr(rdd_cls, name)
