"""Calibration tests: the cost model's absolute anchors.

These pin the simulated-time calibration documented in
``repro.cluster.cost_model`` so that accidental constant changes (which
would silently re-scale every benchmark) fail loudly.
"""


from repro import StarkContext
from repro.cluster.cost_model import CostModel, SimStr
from repro.engine.partitioner import HashPartitioner


class TestAbsoluteAnchors:
    def setup_method(self):
        self.model = CostModel()

    def test_disk_bandwidth_spinning_disk_class(self):
        # ~120 MB/s sequential.
        assert 80e6 <= self.model.disk_bytes_per_sec <= 200e6

    def test_network_bandwidth_gbe_class(self):
        # ~1 GbE effective.
        assert 50e6 <= self.model.network_bytes_per_sec <= 125e6

    def test_task_launch_overhead_milliseconds(self):
        assert 1e-3 <= self.model.task_launch_overhead <= 50e-3

    def test_per_record_cpu_sub_microsecond(self):
        assert self.model.cpu_per_record < 1e-6


class TestEndToEndAnchors:
    """Macro checks: whole-job times land in the paper's ballpark."""

    def test_700mb_load_and_shuffle_is_tens_of_seconds(self):
        from repro.bench.harness import run_fig01

        result = run_fig01(file_bytes=700e6)
        # Paper: ~17 s on their hardware; accept the same order.
        assert 5.0 < result.c_count_delay < 60.0

    def test_cached_count_is_subsecond(self):
        sc = StarkContext(num_workers=4, cores_per_worker=2)
        data = [(str(i), SimStr("x", sim_size=10_000)) for i in range(2_000)]
        rdd = sc.parallelize(data, 8).partition_by(HashPartitioner(8)).cache()
        rdd.count()
        rdd.count()
        assert sc.metrics.last_job().makespan < 1.0

    def test_memory_scan_vs_disk_read_ratio(self):
        # RAM ~ 60x faster than disk in this calibration: a cached read
        # of X bytes must be dramatically cheaper than a disk read.
        model = CostModel()
        size = 500e6
        assert model.disk_read_cost(size) / model.memory_read_cost(size) > 20

    def test_gc_cap_is_about_half_of_busy_time(self):
        # At full heap pressure the GC surcharge approaches ~52% of busy
        # time with default constants — Fig 12's worst case.
        model = CostModel()
        fraction = model.gc_cost(1.0, 1.0)
        assert 0.3 < fraction < 0.8
