"""Tests for the cost model and record sizer."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.cost_model import CostModel, RecordSizer


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_compute_cost_linear_in_records(self):
        assert self.model.compute_cost(2000) == pytest.approx(
            2 * self.model.compute_cost(1000)
        )

    def test_compute_cost_zero_records(self):
        assert self.model.compute_cost(0) == 0.0

    def test_disk_read_of_120mb_takes_about_a_second(self):
        assert self.model.disk_read_cost(120e6) == pytest.approx(1.0)

    def test_network_has_fixed_latency(self):
        assert self.model.network_cost(0) == 0.0
        small = self.model.network_cost(1)
        assert small >= self.model.network_latency

    def test_network_faster_than_disk_is_false_here(self):
        # 1 GbE effective < spinning disk sequential in this calibration;
        # the remote penalty = network + remote disk.
        one_gb = 1e9
        assert self.model.network_cost(one_gb) > self.model.disk_read_cost(one_gb)

    def test_memory_read_much_faster_than_disk(self):
        size = 100e6
        assert self.model.memory_read_cost(size) < self.model.disk_read_cost(size) / 10

    def test_shuffle_reduce_costs_more_than_narrow_compute(self):
        assert self.model.shuffle_reduce_cost(1000) > self.model.compute_cost(1000)

    def test_gc_baseline_fraction(self):
        gc = self.model.gc_cost(10.0, 0.3)
        assert gc == pytest.approx(10.0 * self.model.gc_base_fraction)

    def test_gc_explodes_past_knee(self):
        relaxed = self.model.gc_cost(10.0, 0.5)
        pressured = self.model.gc_cost(10.0, 0.95)
        assert pressured > 3 * relaxed

    def test_gc_clamps_utilisation(self):
        assert self.model.gc_cost(1.0, 1.5) == self.model.gc_cost(1.0, 1.0)
        assert self.model.gc_cost(1.0, -0.5) == self.model.gc_cost(1.0, 0.0)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_gc_non_negative_and_monotone_in_compute(self, u, compute):
        gc = self.model.gc_cost(compute, u)
        assert gc >= 0.0
        assert gc <= self.model.gc_cost(compute + 1.0, u)

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_gc_monotone_in_utilisation(self, u):
        assert self.model.gc_cost(1.0, u) <= self.model.gc_cost(1.0, u + 0.01) + 1e-12


class TestRecordSizer:
    def setup_method(self):
        self.sizer = RecordSizer()

    def test_string_size_includes_length(self):
        small = self.sizer.size_of("ab")
        large = self.sizer.size_of("ab" * 100)
        assert large - small == 198

    def test_tuple_recurses(self):
        assert self.sizer.size_of(("key", "value")) > self.sizer.size_of("key")

    def test_int_and_float_have_fixed_payload(self):
        assert self.sizer.size_of(5) == self.sizer.size_of(123456789)
        assert self.sizer.size_of(1.5) == self.sizer.size_of(5)

    def test_none_has_base_size(self):
        assert self.sizer.size_of(None) == self.sizer.base + 8

    def test_dict_sums_items(self):
        d = {"a": 1, "b": 2}
        assert self.sizer.size_of(d) > self.sizer.size_of({"a": 1})

    def test_partition_size_is_sum(self):
        records = [("k", "v")] * 10
        assert self.sizer.size_of_partition(records) == pytest.approx(
            10 * self.sizer.size_of(("k", "v"))
        )

    def test_opaque_object_has_default_size(self):
        class Thing:
            pass

        assert self.sizer.size_of(Thing()) == self.sizer.base + 48

    @given(st.lists(st.text(max_size=50), max_size=30))
    def test_partition_size_non_negative_and_additive(self, values):
        total = self.sizer.size_of_partition(values)
        assert total == sum(self.sizer.size_of(v) for v in values)
