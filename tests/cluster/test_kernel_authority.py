"""Single time authority: static scan of ``src/repro``.

The SimKernel owns the clock and all worker slot state.  These tests
grep the production sources (everything except the kernel module
itself) for writes that would bypass it:

* assignments to ``Worker.slot_free_times`` (rebinding the list or a
  ``slot_free_times[...] = ...`` element store), and
* clock mutations (``clock.advance_to`` / ``advance_by`` / ``reset``).

A new violation shows up as a failing test with the offending
``file:line`` in the assertion message.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
KERNEL_MODULE = SRC / "cluster" / "events.py"

# An element store or rebind: `.slot_free_times` or `.slot_free_times[...]`
# followed by an assignment operator.  The one blessed declaration in
# worker.py (`self.slot_free_times: List[float] = ...`) is annotated, so
# the `:` after the attribute keeps it out of this pattern.
SLOT_WRITE = re.compile(
    r"\.slot_free_times(\s*\[[^\]]*\])?\s*(?:[+\-*/%]|//|\*\*)?=(?!=)")

# Mutating the clock: only the kernel advances time.
CLOCK_WRITE = re.compile(
    r"\bclock\s*\.\s*(?:advance_to|advance_by|reset)\s*\(")


def production_sources():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return [f for f in files if f != KERNEL_MODULE]


def find_violations(pattern):
    hits = []
    for path in production_sources():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                hits.append(f"{path.relative_to(SRC)}:{lineno}: "
                            f"{line.strip()}")
    return hits


def test_scan_covers_the_tree():
    names = {p.relative_to(SRC).as_posix() for p in production_sources()}
    assert "cluster/worker.py" in names
    assert "engine/task_scheduler.py" in names
    assert "cluster/events.py" not in names


def test_no_slot_free_times_writes_outside_kernel():
    violations = find_violations(SLOT_WRITE)
    assert not violations, (
        "slot_free_times written outside the kernel module "
        "(use SimKernel.occupy_slot / set_slot_free_time):\n"
        + "\n".join(violations))


def test_no_clock_mutation_outside_kernel():
    violations = find_violations(CLOCK_WRITE)
    assert not violations, (
        "SimClock mutated outside the kernel module "
        "(use SimKernel.advance_to / advance_by):\n"
        + "\n".join(violations))


def test_patterns_catch_real_violations():
    # Guard against the patterns rotting into tautologies.
    assert SLOT_WRITE.search("worker.slot_free_times = [0.0]")
    assert SLOT_WRITE.search("w.slot_free_times[slot] = finish")
    assert SLOT_WRITE.search("w.slot_free_times[i] += wall")
    assert not SLOT_WRITE.search("free = worker.slot_free_times[slot]")
    assert not SLOT_WRITE.search(
        "self.slot_free_times: List[float] = [0.0] * self.cores")
    assert not SLOT_WRITE.search("if t == w.slot_free_times[slot]:")
    assert CLOCK_WRITE.search("cluster.clock.advance_to(5.0)")
    assert CLOCK_WRITE.search("self.clock.reset()")
    assert not CLOCK_WRITE.search("now = cluster.clock.now")
