"""Tests for worker slot accounting and the cluster container.

Slot mutations go through the SimKernel (the single time authority);
workers themselves only expose read views.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.events import SimKernel
from repro.cluster.worker import Worker


def attached(cores=2):
    """A worker registered with a fresh kernel; returns (kernel, worker)."""
    kernel = SimKernel()
    worker = Worker(0, cores=cores)
    kernel.register_worker(worker)
    return kernel, worker


class TestWorker:
    def test_slots_start_free(self):
        w = Worker(0, cores=2)
        assert w.earliest_free_time() == 0.0
        assert w.idle_slots(0.0) == 2

    def test_run_task_occupies_slot(self):
        kernel, w = attached(cores=2)
        start, finish = kernel.run_on_earliest_slot(w, 1.0, 3.0)
        assert (start, finish) == (1.0, 4.0)
        assert w.idle_slots(2.0) == 1

    def test_tasks_fill_both_slots_before_queueing(self):
        kernel, w = attached(cores=2)
        kernel.run_on_earliest_slot(w, 0.0, 5.0)
        kernel.run_on_earliest_slot(w, 0.0, 5.0)
        start, _ = kernel.run_on_earliest_slot(w, 0.0, 1.0)
        assert start == 5.0

    def test_earliest_free_slot_picks_minimum(self):
        kernel, w = attached(cores=3)
        for slot, t in enumerate([4.0, 1.0, 9.0]):
            kernel.set_slot_free_time(w, slot, t)
        slot, free = w.earliest_free_slot()
        assert (slot, free) == (1, 1.0)

    def test_bare_worker_reads_fall_back_to_scan(self):
        w = Worker(0, cores=3)
        w.slot_free_times = [4.0, 1.0, 9.0]
        assert w.earliest_free_slot() == (1, 1.0)
        assert w.earliest_free_time() == 1.0

    def test_negative_duration_rejected(self):
        kernel, w = attached()
        with pytest.raises(ValueError):
            kernel.run_on_earliest_slot(w, 0.0, -1.0)

    def test_kill_blocks_new_tasks(self):
        kernel, w = attached()
        kernel.kill_worker(w)
        assert not w.alive
        with pytest.raises(RuntimeError):
            kernel.occupy_slot(w, 0, 6.0, 1.0)

    def test_restart_frees_slots_at_now(self):
        kernel, w = attached(cores=2)
        kernel.kill_worker(w)
        kernel.restart_worker(w, at=8.0)
        assert w.alive
        assert w.earliest_free_time() == 8.0

    def test_pending_work(self):
        kernel, w = attached(cores=2)
        kernel.run_on_earliest_slot(w, 0.0, 4.0)
        assert w.pending_work_until(1.0) == pytest.approx(3.0)

    def test_reset(self):
        kernel, w = attached()
        kernel.run_on_earliest_slot(w, 0.0, 10.0)
        w.shuffle_disk[(0, 0, 0)] = 5.0
        kernel.reset_worker(w)
        w.shuffle_disk.clear()
        assert w.earliest_free_time() == 0.0
        assert not w.shuffle_disk

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Worker(0, cores=0)
        with pytest.raises(ValueError):
            Worker(0, memory_bytes=0)


class TestCluster:
    def test_creates_workers(self):
        cluster = Cluster(num_workers=5)
        assert len(cluster) == 5
        assert cluster.worker_ids == [0, 1, 2, 3, 4]

    def test_total_cores(self):
        cluster = Cluster(num_workers=3, cores_per_worker=4)
        assert cluster.total_cores() == 12

    def test_kill_removes_from_alive(self):
        cluster = Cluster(num_workers=3)
        cluster.kill_worker(1)
        assert cluster.alive_worker_ids() == [0, 2]
        assert cluster.total_cores() == 2 * cluster.get_worker(0).cores

    def test_earliest_free_worker(self):
        cluster = Cluster(num_workers=3, cores_per_worker=1)
        cluster.kernel.run_on_earliest_slot(cluster.get_worker(0), 0.0, 5.0)
        cluster.kernel.run_on_earliest_slot(cluster.get_worker(1), 0.0, 2.0)
        assert cluster.earliest_free_worker() == 2

    def test_earliest_free_worker_candidates(self):
        cluster = Cluster(num_workers=3, cores_per_worker=1)
        cluster.kernel.run_on_earliest_slot(cluster.get_worker(1), 0.0, 5.0)
        assert cluster.earliest_free_worker([1, 2]) == 2

    def test_earliest_free_all_dead_raises(self):
        cluster = Cluster(num_workers=1)
        cluster.kill_worker(0)
        with pytest.raises(RuntimeError):
            cluster.earliest_free_worker()

    def test_unknown_worker_raises(self):
        with pytest.raises(KeyError):
            Cluster(num_workers=1).get_worker(9)

    def test_reset(self):
        cluster = Cluster(num_workers=2)
        cluster.kernel.advance_to(50.0)
        cluster.kill_worker(0)
        cluster.reset()
        assert cluster.clock.now == 0.0
        assert cluster.get_worker(0).alive

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)


class TestElasticMembership:
    def test_add_worker_assigns_next_id(self):
        cluster = Cluster(num_workers=3)
        assert cluster.add_worker() == 3
        assert cluster.worker_ids == [0, 1, 2, 3]

    def test_add_worker_reuses_template_shape(self):
        cluster = Cluster(num_workers=2, cores_per_worker=3,
                          memory_per_worker=5e9)
        wid = cluster.add_worker()
        worker = cluster.get_worker(wid)
        assert worker.cores == 3
        assert worker.memory_bytes == 5e9

    def test_add_worker_explicit_shape(self):
        cluster = Cluster(num_workers=1)
        wid = cluster.add_worker(cores=8, memory_bytes=1e9)
        worker = cluster.get_worker(wid)
        assert worker.cores == 8
        assert worker.memory_bytes == 1e9

    def test_ready_at_occupies_slots(self):
        cluster = Cluster(num_workers=1, cores_per_worker=2)
        wid = cluster.add_worker(ready_at=8.0)
        worker = cluster.get_worker(wid)
        assert worker.slot_free_times == [8.0, 8.0]
        assert worker.idle_slots(4.0) == 0
        assert worker.idle_slots(8.0) == 2

    def test_add_after_remove_does_not_reuse_id(self):
        cluster = Cluster(num_workers=3)
        cluster.remove_worker(1)
        # max existing + 1, so old block/event attributions stay unique.
        assert cluster.add_worker() == 3

    def test_remove_worker_drops_membership(self):
        cluster = Cluster(num_workers=3)
        removed = cluster.remove_worker(1)
        assert removed.worker_id == 1
        assert cluster.worker_ids == [0, 2]
        assert 1 not in cluster.alive_worker_ids()
        with pytest.raises(KeyError):
            cluster.get_worker(1)

    def test_remove_unknown_worker_raises(self):
        with pytest.raises(KeyError):
            Cluster(num_workers=1).remove_worker(7)

    def test_removed_worker_differs_from_killed(self):
        cluster = Cluster(num_workers=2)
        cluster.kill_worker(0)
        assert 0 in cluster.worker_ids  # killed: dead but present
        cluster.remove_worker(1)
        assert 1 not in cluster.worker_ids  # removed: gone entirely

    def test_total_cores_tracks_membership(self):
        cluster = Cluster(num_workers=2, cores_per_worker=2)
        assert cluster.total_cores() == 4
        cluster.add_worker()
        assert cluster.total_cores() == 6
        cluster.remove_worker(0)
        assert cluster.total_cores() == 4
