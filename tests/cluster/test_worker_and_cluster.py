"""Tests for worker slot accounting and the cluster container."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.worker import Worker


class TestWorker:
    def test_slots_start_free(self):
        w = Worker(0, cores=2)
        assert w.earliest_free_time() == 0.0
        assert w.idle_slots(0.0) == 2

    def test_run_task_occupies_slot(self):
        w = Worker(0, cores=2)
        start, finish = w.run_task(1.0, 3.0)
        assert (start, finish) == (1.0, 4.0)
        assert w.idle_slots(2.0) == 1

    def test_tasks_fill_both_slots_before_queueing(self):
        w = Worker(0, cores=2)
        w.run_task(0.0, 5.0)
        w.run_task(0.0, 5.0)
        start, _ = w.run_task(0.0, 1.0)
        assert start == 5.0

    def test_earliest_free_slot_picks_minimum(self):
        w = Worker(0, cores=3)
        w.slot_free_times = [4.0, 1.0, 9.0]
        slot, free = w.earliest_free_slot()
        assert (slot, free) == (1, 1.0)

    def test_negative_duration_rejected(self):
        w = Worker(0)
        with pytest.raises(ValueError):
            w.run_task(0.0, -1.0)

    def test_kill_blocks_new_tasks(self):
        w = Worker(0)
        w.kill(5.0)
        assert not w.alive
        with pytest.raises(RuntimeError):
            w.occupy_slot(0, 6.0, 1.0)

    def test_restart_frees_slots_at_now(self):
        w = Worker(0, cores=2)
        w.kill(5.0)
        w.restart(8.0)
        assert w.alive
        assert w.earliest_free_time() == 8.0

    def test_pending_work(self):
        w = Worker(0, cores=2)
        w.run_task(0.0, 4.0)
        assert w.pending_work_until(1.0) == pytest.approx(3.0)

    def test_reset(self):
        w = Worker(0)
        w.run_task(0.0, 10.0)
        w.shuffle_disk[(0, 0, 0)] = 5.0
        w.reset()
        assert w.earliest_free_time() == 0.0
        assert not w.shuffle_disk

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Worker(0, cores=0)
        with pytest.raises(ValueError):
            Worker(0, memory_bytes=0)


class TestCluster:
    def test_creates_workers(self):
        cluster = Cluster(num_workers=5)
        assert len(cluster) == 5
        assert cluster.worker_ids == [0, 1, 2, 3, 4]

    def test_total_cores(self):
        cluster = Cluster(num_workers=3, cores_per_worker=4)
        assert cluster.total_cores() == 12

    def test_kill_removes_from_alive(self):
        cluster = Cluster(num_workers=3)
        cluster.kill_worker(1)
        assert cluster.alive_worker_ids() == [0, 2]
        assert cluster.total_cores() == 2 * cluster.get_worker(0).cores

    def test_earliest_free_worker(self):
        cluster = Cluster(num_workers=3, cores_per_worker=1)
        cluster.get_worker(0).run_task(0.0, 5.0)
        cluster.get_worker(1).run_task(0.0, 2.0)
        assert cluster.earliest_free_worker() == 2

    def test_earliest_free_worker_candidates(self):
        cluster = Cluster(num_workers=3, cores_per_worker=1)
        cluster.get_worker(1).run_task(0.0, 5.0)
        assert cluster.earliest_free_worker([1, 2]) == 2

    def test_earliest_free_all_dead_raises(self):
        cluster = Cluster(num_workers=1)
        cluster.kill_worker(0)
        with pytest.raises(RuntimeError):
            cluster.earliest_free_worker()

    def test_unknown_worker_raises(self):
        with pytest.raises(KeyError):
            Cluster(num_workers=1).get_worker(9)

    def test_reset(self):
        cluster = Cluster(num_workers=2)
        cluster.clock.advance_to(50.0)
        cluster.kill_worker(0)
        cluster.reset()
        assert cluster.clock.now == 0.0
        assert cluster.get_worker(0).alive

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(num_workers=0)


class TestElasticMembership:
    def test_add_worker_assigns_next_id(self):
        cluster = Cluster(num_workers=3)
        assert cluster.add_worker() == 3
        assert cluster.worker_ids == [0, 1, 2, 3]

    def test_add_worker_reuses_template_shape(self):
        cluster = Cluster(num_workers=2, cores_per_worker=3,
                          memory_per_worker=5e9)
        wid = cluster.add_worker()
        worker = cluster.get_worker(wid)
        assert worker.cores == 3
        assert worker.memory_bytes == 5e9

    def test_add_worker_explicit_shape(self):
        cluster = Cluster(num_workers=1)
        wid = cluster.add_worker(cores=8, memory_bytes=1e9)
        worker = cluster.get_worker(wid)
        assert worker.cores == 8
        assert worker.memory_bytes == 1e9

    def test_ready_at_occupies_slots(self):
        cluster = Cluster(num_workers=1, cores_per_worker=2)
        wid = cluster.add_worker(ready_at=8.0)
        worker = cluster.get_worker(wid)
        assert worker.slot_free_times == [8.0, 8.0]
        assert worker.idle_slots(4.0) == 0
        assert worker.idle_slots(8.0) == 2

    def test_add_after_remove_does_not_reuse_id(self):
        cluster = Cluster(num_workers=3)
        cluster.remove_worker(1)
        # max existing + 1, so old block/event attributions stay unique.
        assert cluster.add_worker() == 3

    def test_remove_worker_drops_membership(self):
        cluster = Cluster(num_workers=3)
        removed = cluster.remove_worker(1)
        assert removed.worker_id == 1
        assert cluster.worker_ids == [0, 2]
        assert 1 not in cluster.alive_worker_ids()
        with pytest.raises(KeyError):
            cluster.get_worker(1)

    def test_remove_unknown_worker_raises(self):
        with pytest.raises(KeyError):
            Cluster(num_workers=1).remove_worker(7)

    def test_removed_worker_differs_from_killed(self):
        cluster = Cluster(num_workers=2)
        cluster.kill_worker(0)
        assert 0 in cluster.worker_ids  # killed: dead but present
        cluster.remove_worker(1)
        assert 1 not in cluster.worker_ids  # removed: gone entirely

    def test_total_cores_tracks_membership(self):
        cluster = Cluster(num_workers=2, cores_per_worker=2)
        assert cluster.total_cores() == 4
        cluster.add_worker()
        assert cluster.total_cores() == 6
        cluster.remove_worker(0)
        assert cluster.total_cores() == 4
