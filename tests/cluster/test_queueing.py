"""Tests for the open-loop job driver and throughput search."""

import pytest

from repro import StarkContext
from repro.cluster.queueing import JobDriver, LoadResult, find_max_throughput

from ..conftest import make_pairs


def simple_job(sc, work_records=800):
    data = make_pairs(work_records)

    def job(arrival, index):
        rdd = sc.parallelize(data, 4).map(lambda kv: kv)
        sc.run_job(rdd, len, submit_time=arrival, description=f"j{index}")
        return sc.metrics.last_job().finish_time

    return job


class TestJobDriver:
    def test_arrivals_are_spaced(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        driver = JobDriver(sc, seed=1)
        result = driver.run_constant_rate(simple_job(sc), 10.0, 10,
                                          poisson=False)
        arrivals = [r.arrival for r in result.results]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_delays_non_negative(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        driver = JobDriver(sc, seed=2)
        result = driver.run_constant_rate(simple_job(sc), 5.0, 8)
        assert all(r.delay >= 0 for r in result.results)

    def test_saturation_grows_delay(self):
        """Submitting far beyond capacity must queue jobs up."""
        sc = StarkContext(num_workers=1, cores_per_worker=1)
        driver = JobDriver(sc, seed=3)
        result = driver.run_constant_rate(simple_job(sc, 4000), 1000.0, 12,
                                          poisson=False)
        delays = [r.delay for r in result.results]
        assert delays[-1] > delays[0]

    def test_light_load_delay_stable(self):
        sc = StarkContext(num_workers=4, cores_per_worker=2)
        driver = JobDriver(sc, seed=4)
        result = driver.run_constant_rate(simple_job(sc, 100), 0.5, 10,
                                          poisson=False)
        delays = [r.delay for r in result.results]
        assert max(delays) < 2 * min(delays) + 1e-6

    def test_run_arrivals_sorted(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        driver = JobDriver(sc, seed=5)
        result = driver.run_arrivals(simple_job(sc, 50), [3.0, 1.0, 2.0])
        assert [r.arrival for r in result.results] == [1.0, 2.0, 3.0]

    def test_invalid_rate(self):
        sc = StarkContext(num_workers=1)
        driver = JobDriver(sc)
        with pytest.raises(ValueError):
            driver.run_constant_rate(lambda a, i: a, 0.0, 1)


class TestLoadResult:
    def make(self, delays):
        result = LoadResult(1.0)
        from repro.cluster.queueing import ArrivalResult

        for i, d in enumerate(delays):
            result.results.append(ArrivalResult(arrival=i, finish=i + d))
        return result

    def test_mean(self):
        assert self.make([1.0, 3.0]).mean_delay == 2.0

    def test_p95(self):
        result = self.make([float(i) for i in range(100)])
        assert result.p95_delay == 95.0

    def test_max(self):
        assert self.make([1.0, 7.0, 2.0]).max_delay == 7.0

    def test_empty(self):
        empty = LoadResult(1.0)
        assert empty.mean_delay == 0.0
        assert empty.p95_delay == 0.0
        assert empty.max_delay == 0.0


class TestFindMaxThroughput:
    def test_finds_capacity_of_synthetic_system(self):
        # Model: delay = 0.1 / (1 - rate/100) (M/M/1-ish), capacity where
        # mean delay crosses 0.8 -> rate = 100 * (1 - 0.1/0.8) = 87.5.
        def run(rate):
            result = LoadResult(rate)
            from repro.cluster.queueing import ArrivalResult

            delay = 1e9 if rate >= 100 else 0.1 / (1 - rate / 100.0)
            result.results.append(ArrivalResult(0.0, delay))
            return result

        cap = find_max_throughput(run, delay_cap=0.8, lo=1.0, hi=64.0)
        assert 70 < cap < 95

    def test_zero_when_even_low_rate_saturates(self):
        def run(rate):
            from repro.cluster.queueing import ArrivalResult

            result = LoadResult(rate)
            result.results.append(ArrivalResult(0.0, 99.0))
            return result

        assert find_max_throughput(run, delay_cap=0.8) == 0.0
