"""Tests for the open-loop job driver and throughput search."""

import pytest

from repro import StarkContext
from repro.cluster.queueing import JobDriver, LoadResult, find_max_throughput

from ..conftest import make_pairs


def simple_job(sc, work_records=800):
    data = make_pairs(work_records)

    def job(arrival, index):
        rdd = sc.parallelize(data, 4).map(lambda kv: kv)
        sc.run_job(rdd, len, submit_time=arrival, description=f"j{index}")
        return sc.metrics.last_job().finish_time

    return job


class TestJobDriver:
    def test_arrivals_are_spaced(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        driver = JobDriver(sc, seed=1)
        result = driver.run_constant_rate(simple_job(sc), 10.0, 10,
                                          poisson=False)
        arrivals = [r.arrival for r in result.results]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_delays_non_negative(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        driver = JobDriver(sc, seed=2)
        result = driver.run_constant_rate(simple_job(sc), 5.0, 8)
        assert all(r.delay >= 0 for r in result.results)

    def test_saturation_grows_delay(self):
        """Submitting far beyond capacity must queue jobs up."""
        sc = StarkContext(num_workers=1, cores_per_worker=1)
        driver = JobDriver(sc, seed=3)
        result = driver.run_constant_rate(simple_job(sc, 4000), 1000.0, 12,
                                          poisson=False)
        delays = [r.delay for r in result.results]
        assert delays[-1] > delays[0]

    def test_light_load_delay_stable(self):
        sc = StarkContext(num_workers=4, cores_per_worker=2)
        driver = JobDriver(sc, seed=4)
        result = driver.run_constant_rate(simple_job(sc, 100), 0.5, 10,
                                          poisson=False)
        delays = [r.delay for r in result.results]
        assert max(delays) < 2 * min(delays) + 1e-6

    def test_run_arrivals_sorted(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        driver = JobDriver(sc, seed=5)
        result = driver.run_arrivals(simple_job(sc, 50), [3.0, 1.0, 2.0])
        assert [r.arrival for r in result.results] == [1.0, 2.0, 3.0]

    def test_invalid_rate(self):
        sc = StarkContext(num_workers=1)
        driver = JobDriver(sc)
        with pytest.raises(ValueError):
            driver.run_constant_rate(lambda a, i: a, 0.0, 1)


class TestLoadResult:
    def make(self, delays):
        result = LoadResult(1.0)
        from repro.cluster.queueing import ArrivalResult

        for i, d in enumerate(delays):
            result.results.append(ArrivalResult(arrival=i, finish=i + d))
        return result

    def test_mean(self):
        assert self.make([1.0, 3.0]).mean_delay == 2.0

    def test_p95(self):
        # Nearest-rank: the smallest delay with >= 95% of the sample at
        # or below it — delays 0..99 give 94.0 (95 values <= 94.0).
        result = self.make([float(i) for i in range(100)])
        assert result.p95_delay == 94.0

    def test_p99(self):
        result = self.make([float(i) for i in range(100)])
        assert result.p99_delay == 98.0

    def test_p95_small_sample_not_max(self):
        # The old truncation indexing returned the maximum for p50 of
        # two samples; nearest-rank must return the lower one.
        result = self.make([1.0, 9.0])
        assert result.delay_percentile(50.0) == 1.0

    def test_max(self):
        assert self.make([1.0, 7.0, 2.0]).max_delay == 7.0

    def test_empty(self):
        empty = LoadResult(1.0)
        assert empty.mean_delay == 0.0
        assert empty.p95_delay == 0.0
        assert empty.p99_delay == 0.0
        assert empty.max_delay == 0.0

    def test_merge_and_offered(self):
        a = self.make([1.0, 2.0])
        b = self.make([3.0])
        b.shed_jobs = 2
        a.merge(b)
        assert len(a.results) == 3
        assert a.shed_jobs == 2
        assert a.offered_jobs == 5


class TestFindMaxThroughput:
    def test_finds_capacity_of_synthetic_system(self):
        # Model: delay = 0.1 / (1 - rate/100) (M/M/1-ish), capacity where
        # mean delay crosses 0.8 -> rate = 100 * (1 - 0.1/0.8) = 87.5.
        def run(rate):
            result = LoadResult(rate)
            from repro.cluster.queueing import ArrivalResult

            delay = 1e9 if rate >= 100 else 0.1 / (1 - rate / 100.0)
            result.results.append(ArrivalResult(0.0, delay))
            return result

        cap = find_max_throughput(run, delay_cap=0.8, lo=1.0, hi=64.0)
        assert 70 < cap < 95

    def test_zero_when_even_low_rate_saturates(self):
        def run(rate):
            from repro.cluster.queueing import ArrivalResult

            result = LoadResult(rate)
            result.results.append(ArrivalResult(0.0, 99.0))
            return result

        assert find_max_throughput(run, delay_cap=0.8) == 0.0


class TestAdmissionControl:
    """max_pending_jobs: bounded queue with load shedding."""

    def synthetic_driver(self, sc, bound):
        return JobDriver(sc, max_pending_jobs=bound)

    def test_sheds_beyond_bound(self):
        sc = StarkContext(num_workers=1)
        driver = self.synthetic_driver(sc, 2)
        # Every job takes 10 s; arrivals 1 s apart: the first two are
        # admitted, the rest find the queue full.
        result = driver.run_arrivals(lambda t, i: t + 10.0,
                                     [0.0, 1.0, 2.0, 3.0, 4.0])
        assert len(result.results) == 2
        assert result.shed_jobs == 3
        assert result.offered_jobs == 5

    def test_queue_drains_and_readmits(self):
        sc = StarkContext(num_workers=1)
        driver = self.synthetic_driver(sc, 1)
        result = driver.run_arrivals(lambda t, i: t + 1.0,
                                     [0.0, 0.5, 2.0])
        # t=0 admitted (finishes 1.0), t=0.5 shed, t=2.0 admitted.
        assert len(result.results) == 2
        assert result.shed_jobs == 1

    def test_shed_event_posted(self):
        from repro import obs

        sc = StarkContext(num_workers=1)
        collector = obs.EventCollector()
        sc.event_bus.subscribe(collector)
        driver = self.synthetic_driver(sc, 1)
        driver.run_arrivals(lambda t, i: t + 10.0, [0.0, 1.0, 2.0])
        shed = collector.of_type(obs.JobShed)
        assert len(shed) == 2
        assert [e.job_index for e in shed] == [1, 2]
        assert all(e.pending_jobs == 1 for e in shed)

    def test_bound_must_be_positive(self):
        sc = StarkContext(num_workers=1)
        with pytest.raises(ValueError):
            JobDriver(sc, max_pending_jobs=0)

    def test_unbounded_by_default(self):
        sc = StarkContext(num_workers=1)
        driver = JobDriver(sc)
        result = driver.run_arrivals(lambda t, i: t + 100.0,
                                     [float(i) for i in range(10)])
        assert result.shed_jobs == 0
        assert len(result.results) == 10


class TestResourceManagerHooks:
    class StubManager:
        def __init__(self):
            self.evaluations = []
            self.completions = []
            self.pending_source = None

        def bind_pending_jobs(self, source):
            self.pending_source = source

        def evaluate(self, pending_jobs=0, now=None):
            self.evaluations.append((pending_jobs, now))

        def on_job_completed(self, arrival, finish):
            self.completions.append((arrival, finish))

    def test_scaling_not_tied_to_arrivals(self):
        # Scaling runs on the manager's periodic kernel timer; the
        # driver no longer evaluates the policy at arrival epochs.
        sc = StarkContext(num_workers=1)
        stub = self.StubManager()
        driver = JobDriver(sc, resource_manager=stub)
        driver.run_arrivals(lambda t, i: t + 5.0, [1.0, 2.0])
        assert stub.evaluations == []

    def test_pending_jobs_bound_as_backlog_source(self):
        # The driver hands its queue depth to the manager so timer
        # ticks can measure pending jobs at their own nominal time.
        sc = StarkContext(num_workers=1)
        stub = self.StubManager()
        driver = JobDriver(sc, resource_manager=stub)
        assert stub.pending_source is not None
        assert stub.pending_source.__self__ is driver
        driver.run_arrivals(lambda t, i: t + 5.0, [1.0, 2.0])
        # At t=2 the first job (finish 6.0) is still in flight; the
        # second's finish (7.0) is also queued by then.
        assert stub.pending_source(2.5) == 2
        assert stub.pending_source(10.0) == 0

    def test_real_manager_evaluates_on_timer(self):
        from repro.elastic import BacklogPolicy, ResourceManager

        sc = StarkContext(num_workers=2)
        manager = ResourceManager(sc, BacklogPolicy(), min_workers=1,
                                  max_workers=2, cooldown_seconds=0.0,
                                  evaluate_interval_seconds=1.0)
        evaluated = []
        original = manager.evaluate

        def spy(pending_jobs=0, now=None):
            evaluated.append(now)
            return original(pending_jobs=pending_jobs, now=now)

        manager.evaluate = spy
        sc.cluster.kernel.run_until(3.5)
        assert evaluated == [1.0, 2.0, 3.0]

    def test_completions_fed_back(self):
        sc = StarkContext(num_workers=1)
        stub = self.StubManager()
        driver = JobDriver(sc, resource_manager=stub)
        driver.run_arrivals(lambda t, i: t + 5.0, [1.0])
        assert stub.completions == [(1.0, 6.0)]

    def test_shed_jobs_do_not_report_completion(self):
        sc = StarkContext(num_workers=1)
        stub = self.StubManager()
        driver = JobDriver(sc, resource_manager=stub,
                           max_pending_jobs=1)
        driver.run_arrivals(lambda t, i: t + 10.0, [0.0, 1.0])
        # Two arrivals offered, only the admitted one completed.
        assert len(stub.completions) == 1
