"""Determinism: same seed + same config ⇒ byte-identical event log.

The acceptance bar for the single-kernel refactor: an open-loop run with
heterogeneity, speculation, failures, and elastic scaling all enabled —
every subsystem posting events on the one heap — must replay exactly.
Each scenario runs twice into an in-memory JSONL event log and the two
byte streams are compared verbatim.
"""

import io

from repro import StarkContext
from repro.cluster.cluster import Cluster
from repro.cluster.cost_model import HeterogeneityModel
from repro.cluster.queueing import JobDriver
from repro.elastic import BacklogPolicy, ResourceManager
from repro.engine.context import StarkConfig
from repro.engine.failure import FailureEvent, FailureSchedule
from repro.obs.listeners import JsonlEventLog

from ..conftest import make_pairs


def full_stack_run(seed: int) -> str:
    """One open-loop run with everything enabled; returns the JSONL log."""
    cluster = Cluster(num_workers=4, cores_per_worker=2, seed=seed)
    cluster.apply_heterogeneity(HeterogeneityModel(
        slow_worker_fraction=0.25, slow_worker_speed=2.0,
        transient_rate=0.02, transient_duration=2.0, horizon=200.0))
    sc = StarkContext(cluster=cluster, config=StarkConfig(
        speculation=True, speculation_multiplier=1.2,
        speculation_quantile=0.5))

    sink = io.StringIO()
    log = JsonlEventLog(sink)
    sc.event_bus.subscribe(log)

    manager = ResourceManager(
        sc, BacklogPolicy(high_backlog=1.0),
        min_workers=2, max_workers=6,
        cooldown_seconds=4.0, evaluate_interval_seconds=2.0)
    FailureSchedule(sc, [
        FailureEvent(time=6.0, worker_id=1, restart_after=5.0),
    ])

    data = make_pairs(400)

    def job(arrival, index):
        rdd = sc.parallelize(data, 8).map(lambda kv: (kv[0], kv[1] + 1))
        sc.run_job(rdd, len, submit_time=arrival,
                   description=f"det{index}")
        return sc.metrics.last_job().finish_time

    driver = JobDriver(sc, seed=seed, resource_manager=manager)
    driver.run_constant_rate(job, rate_jobs_per_sec=2.0, num_jobs=12,
                             poisson=True)
    manager.stop()
    log.flush()
    return sink.getvalue()


def simple_run(seed: int) -> str:
    """A minimal kernel-driven run (no elastic/failures) for contrast."""
    sc = StarkContext(num_workers=2, cores_per_worker=2,
                      config=StarkConfig(speculation=True,
                                         speculation_multiplier=1.2,
                                         speculation_quantile=0.5))
    sc.cluster.apply_heterogeneity(HeterogeneityModel(
        slow_worker_fraction=0.5, slow_worker_speed=3.0))
    sink = io.StringIO()
    log = JsonlEventLog(sink)
    sc.event_bus.subscribe(log)
    data = make_pairs(200)
    driver = JobDriver(sc, seed=seed)
    driver.run_arrivals(
        lambda t, i: (sc.run_job(sc.parallelize(data, 4), len,
                                 submit_time=t),
                      sc.metrics.last_job().finish_time)[1],
        [0.0, 0.5, 1.0, 4.0])
    log.flush()
    return sink.getvalue()


def broker_run(seed: int) -> str:
    """A cache-broker-enabled run: two structurally identical cached
    pipelines in separate jobs (prefix sharing) plus enough cached
    filler to trigger the broker's global eviction/migration market."""
    sc = StarkContext(num_workers=3, cores_per_worker=2,
                      memory_per_worker=2.5e5,
                      config=StarkConfig(cache_broker=True))
    sink = io.StringIO()
    log = JsonlEventLog(sink)
    sc.event_bus.subscribe(log)

    def source(pid: int) -> list:
        return [(pid * 100 + i, (i * seed) % 17) for i in range(200)]

    def pipeline():
        return (sc.generated(source, 6, read_cost="network", name="det-scan")
                .map(lambda kv: (kv[0], kv[1] + 1))
                .cache())

    first = pipeline()
    first.count()
    second = pipeline()
    second.count()
    for r in range(4):
        data = make_pairs(800)
        sc.parallelize(data, 3, name=f"det-filler{r}").cache().count()
    second.count()
    log.flush()
    return sink.getvalue()


class TestByteIdenticalReplay:
    def test_full_stack_log_is_byte_identical(self):
        first = full_stack_run(seed=42)
        second = full_stack_run(seed=42)
        assert first, "run produced no events"
        assert first == second

    def test_full_stack_log_is_nonempty_and_timestamped(self):
        import json

        lines = full_stack_run(seed=7).splitlines()
        assert len(lines) > 20
        events = [json.loads(line) for line in lines]
        assert all("time" in e for e in events)

    def test_different_seeds_diverge(self):
        # Sanity: the byte-compare actually has discriminating power.
        assert full_stack_run(seed=1) != full_stack_run(seed=2)

    def test_simple_run_is_byte_identical(self):
        assert simple_run(seed=11) == simple_run(seed=11)

    def test_broker_run_is_byte_identical(self):
        first = broker_run(seed=5)
        second = broker_run(seed=5)
        assert first == second
        # The run must actually exercise the broker paths it is
        # certifying: cross-job prefix serves and broker evictions.
        assert '"BrokerPrefixHit"' in first
        assert '"reason": "broker"' in first or '"BrokerEvicted"' in first
