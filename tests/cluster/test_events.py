"""Tests for the discrete-event core (SimClock, EventQueue)."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.events import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        assert clock.advance_to(3.5) == 3.5
        assert clock.now == 3.5

    def test_advance_to_is_monotonic(self):
        clock = SimClock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_by(self):
        clock = SimClock(1.0)
        assert clock.advance_by(0.5) == 1.5

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-0.1)

    def test_reset(self):
        clock = SimClock()
        clock.advance_to(100.0)
        clock.reset()
        assert clock.now == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
    def test_advance_by_accumulates(self, increments):
        clock = SimClock()
        total = 0.0
        for dt in increments:
            total += dt
            clock.advance_by(dt)
        assert clock.now == pytest.approx(total)


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        q.run_all()
        assert fired == ["a", "b", "c"]

    def test_same_time_runs_in_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in "abc":
            q.schedule(1.0, lambda t=tag: fired.append(t))
        q.run_all()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_with_events(self):
        q = EventQueue()
        times = []
        q.schedule(2.0, lambda: times.append(q.clock.now))
        q.schedule(5.0, lambda: times.append(q.clock.now))
        q.run_all()
        assert times == [2.0, 5.0]

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.clock.advance_to(10.0)
        with pytest.raises(ValueError):
            q.schedule(5.0, lambda: None)

    def test_schedule_in(self):
        q = EventQueue()
        q.clock.advance_to(4.0)
        handle = q.schedule_in(2.0, lambda: None)
        assert handle.time == 6.0

    def test_schedule_in_negative_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        assert handle.cancelled
        q.run_all()
        assert fired == []

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        h1 = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        h1.cancel()
        assert len(q) == 1

    def test_run_until_stops_at_boundary(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(3.0, lambda: fired.append(3))
        count = q.run_until(2.0)
        assert count == 1
        assert fired == [1]
        assert q.clock.now == 2.0

    def test_run_until_inclusive(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append(2))
        q.run_until(2.0)
        assert fired == [2]

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []

        def chain():
            fired.append(q.clock.now)
            if len(fired) < 3:
                q.schedule_in(1.0, chain)

        q.schedule(1.0, chain)
        q.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_run_all_guards_against_runaway(self):
        q = EventQueue()

        def forever():
            q.schedule_in(0.1, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            q.run_all(max_events=100)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(7.0, lambda: None)
        assert q.peek_time() == 7.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4),
                    min_size=1, max_size=50))
    def test_all_events_fire_in_nondecreasing_order(self, times):
        q = EventQueue()
        fired = []
        for t in times:
            q.schedule(t, lambda t=t: fired.append(t))
        q.run_all()
        assert len(fired) == len(times)
        assert fired == sorted(fired)
