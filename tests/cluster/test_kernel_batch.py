"""Property tests for the kernel's batched fast paths (PR 9).

Two optimizations must be *observationally invisible*:

* :meth:`EventQueue.schedule_many` (one heapify for a batch) vs a loop
  of :meth:`EventQueue.schedule` calls — identical delivery order and a
  byte-identical delivery log, with or without a profiler attached;
* :meth:`SimKernel.earliest_free_worker` (the lazy inter-worker
  ``(free_time, worker_id)`` heap) vs the O(workers x cores) scan it
  replaced — identical pick after any interleaving of slot mutations.

Hypothesis drives random interleavings of schedule / schedule_many /
cancel / run_until so the equivalences hold as invariants, not just on
the happy path the benchmarks exercise.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.cluster.events import EventQueue, SimKernel
from repro.cluster.worker import Worker
from repro.obs.profiler import SimProfiler

# Coarse time grid: plenty of exact collisions, so the (time, seq)
# tie-break is exercised constantly rather than by luck.
_delays = st.integers(min_value=0, max_value=20).map(lambda k: k * 0.5)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _delays),
        st.tuples(st.just("many"), st.lists(_delays, min_size=1, max_size=8)),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("run_until"), _delays),
    ),
    max_size=40,
)


def _drive(queue, ops, batched):
    """Apply ``ops`` to ``queue``; return the delivery log as bytes.

    ``batched=True`` routes the "many" ops through ``schedule_many``;
    otherwise they degrade to per-item ``schedule`` calls — the
    reference semantics the batch path must reproduce exactly.
    """
    log = []
    handles = []
    tags = iter(range(10**9))

    def deliver(tag):
        log.append({"t": queue.clock.now, "tag": tag})

    for op in ops:
        if op[0] == "schedule":
            tag = next(tags)
            handles.append(queue.schedule(
                queue.clock.now + op[1], lambda tag=tag: deliver(tag)))
        elif op[0] == "many":
            batch = []
            for dt in op[1]:
                tag = next(tags)
                batch.append((queue.clock.now + dt,
                              lambda tag=tag: deliver(tag)))
            if batched:
                handles.extend(queue.schedule_many(batch))
            else:
                handles.extend(queue.schedule(t, cb) for t, cb in batch)
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif op[0] == "run_until":
            queue.run_until(queue.clock.now + op[1])
    queue.run_all()
    return b"".join(json.dumps(entry, sort_keys=True).encode() + b"\n"
                    for entry in log)


class TestScheduleManyEquivalence:
    @given(ops=_ops)
    @settings(deadline=None, max_examples=200)
    def test_batched_delivery_log_is_byte_identical(self, ops):
        reference = _drive(EventQueue(), ops, batched=False)
        batched = _drive(EventQueue(), ops, batched=True)
        assert batched == reference

    @given(ops=_ops)
    @settings(deadline=None, max_examples=100)
    def test_profiled_run_is_byte_identical(self, ops):
        detached = _drive(EventQueue(), ops, batched=True)
        queue = EventQueue()
        profiler = queue.attach_profiler(SimProfiler())
        profiler.start()
        profiled = _drive(queue, ops, batched=True)
        profiler.stop()
        assert profiled == detached

    @given(delays=st.lists(_delays, min_size=1, max_size=12))
    @settings(deadline=None)
    def test_handles_carry_list_order_times(self, delays):
        queue = EventQueue()
        batch = [(t, lambda: None) for t in delays]
        handles = queue.schedule_many(batch)
        assert [h.time for h in handles] == delays
        assert len(queue) == len(delays)

    def test_past_time_rejected_and_heap_untouched(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_until(5.0)
        try:
            queue.schedule_many([(6.0, lambda: None), (2.0, lambda: None)])
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("past time must be rejected")
        assert len(queue) == 0


def _scan_earliest(kernel):
    """The O(workers x cores) reference the heap query replaced."""
    best = None
    for wid in sorted(kernel._workers):
        worker = kernel._workers[wid]
        if not worker.alive:
            continue
        times = worker.slot_free_times
        slot = min(range(worker.cores), key=times.__getitem__)
        if best is None or times[slot] < best[2]:
            best = (wid, slot, times[slot])
    return best


_slot_ops = st.lists(
    st.one_of(
        st.tuples(st.just("occupy"), st.integers(0), _delays, _delays),
        st.tuples(st.just("set"), st.integers(0), st.integers(0), _delays),
        st.tuples(st.just("kill"), st.integers(0)),
        st.tuples(st.just("restart"), st.integers(0), _delays),
        st.tuples(st.just("reset"), st.integers(0)),
    ),
    max_size=30,
)


class TestFreeSlotHeapEquivalence:
    @given(
        cores=st.lists(st.integers(min_value=1, max_value=4),
                       min_size=1, max_size=5),
        ops=_slot_ops,
    )
    @settings(deadline=None, max_examples=200)
    def test_matches_scan_after_any_mutation(self, cores, ops):
        kernel = SimKernel()
        workers = [Worker(worker_id=i, cores=c) for i, c in enumerate(cores)]
        for worker in workers:
            kernel.register_worker(worker)
        assert kernel.earliest_free_worker() == _scan_earliest(kernel)

        for op in ops:
            worker = workers[op[1] % len(workers)]
            if op[0] == "occupy" and worker.alive:
                kernel.run_on_earliest_slot(worker, not_before=op[2],
                                            duration=op[3])
            elif op[0] == "set":
                kernel.set_slot_free_time(worker, op[2] % worker.cores, op[3])
            elif op[0] == "kill":
                kernel.kill_worker(worker)
            elif op[0] == "restart":
                kernel.restart_worker(worker, at=op[2])
            elif op[0] == "reset":
                kernel.reset_worker(worker)
            assert kernel.earliest_free_worker() == _scan_earliest(kernel)

    def test_all_dead_returns_none(self):
        kernel = SimKernel()
        worker = Worker(worker_id=0, cores=2)
        kernel.register_worker(worker)
        kernel.kill_worker(worker)
        assert kernel.earliest_free_worker() is None
        assert _scan_earliest(kernel) is None

    def test_deregistered_worker_is_skipped(self):
        kernel = SimKernel()
        first = Worker(worker_id=0, cores=1)
        second = Worker(worker_id=1, cores=1)
        kernel.register_worker(first)
        kernel.register_worker(second)
        kernel.run_on_earliest_slot(second, not_before=0.0, duration=3.0)
        kernel.deregister_worker(first)
        assert kernel.earliest_free_worker() == (1, 0, 3.0)
