"""SimKernel: timers, daemon events, pump, and the slot ledger.

The EventQueue primitives are covered by test_events.py; this file tests
what the kernel adds on top — plus the property test that event delivery
order is (time, sequence)-deterministic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.events import SimKernel, TIME_EPS
from repro.cluster.worker import Worker


def make_kernel():
    return SimKernel()


class TestTimeAuthority:
    def test_now_tracks_clock(self):
        kernel = make_kernel()
        assert kernel.now == 0.0
        kernel.advance_to(4.0)
        assert kernel.now == 4.0
        kernel.advance_by(1.5)
        assert kernel.now == 5.5

    def test_advance_backwards_raises(self):
        kernel = make_kernel()
        kernel.advance_to(10.0)
        with pytest.raises(ValueError):
            kernel.advance_to(5.0)

    def test_advance_within_eps_is_noop(self):
        kernel = make_kernel()
        kernel.advance_to(10.0)
        # Sub-epsilon backwards motion is float noise, not an error.
        assert kernel.advance_to(10.0 - TIME_EPS / 2) == 10.0

    def test_pump_fires_due_events(self):
        kernel = make_kernel()
        fired = []
        kernel.schedule(3.0, lambda: fired.append(3.0))
        kernel.schedule(8.0, lambda: fired.append(8.0))
        kernel.advance_to(5.0)
        assert kernel.pump() == 1
        assert fired == [3.0]

    def test_pump_is_not_reentrant(self):
        kernel = make_kernel()
        nested = []
        kernel.schedule(1.0, lambda: nested.append(kernel.pump()))
        assert kernel.run_until(2.0) == 1
        # The inner pump no-ops: the outer loop is already delivering.
        assert nested == [0]

    def test_reset_clears_heap_and_clock(self):
        kernel = make_kernel()
        kernel.schedule(5.0, lambda: None)
        kernel.advance_to(3.0)
        kernel.reset()
        assert kernel.now == 0.0
        assert len(kernel) == 0
        assert kernel.run_all() == 0


class TestDaemonEvents:
    def test_run_all_ignores_pure_daemons(self):
        kernel = make_kernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append("d"), daemon=True)
        assert kernel.run_all() == 0
        assert fired == []

    def test_daemons_fire_before_regular_events(self):
        kernel = make_kernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append("daemon"), daemon=True)
        kernel.schedule(2.0, lambda: fired.append("regular"))
        kernel.run_all()
        assert fired == ["daemon", "regular"]

    def test_run_until_fires_due_daemons(self):
        kernel = make_kernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append("d"), daemon=True)
        kernel.run_until(2.0)
        assert fired == ["d"]

    def test_cancelled_regular_event_does_not_block_drain(self):
        kernel = make_kernel()
        handle = kernel.schedule(5.0, lambda: None)
        handle.cancel()
        kernel.schedule(1.0, lambda: None, daemon=True)
        assert kernel.run_all() == 0

    def test_cancel_after_fire_keeps_counter_sane(self):
        kernel = make_kernel()
        handle = kernel.schedule(1.0, lambda: None)
        kernel.run_all()
        handle.cancel()  # must not corrupt the live-event counter
        kernel.schedule(2.0, lambda: None)
        assert kernel.run_all() == 1


class TestTimers:
    def test_periodic_cadence_and_nominal_times(self):
        kernel = make_kernel()
        ticks = []
        kernel.every(2.0, ticks.append)
        kernel.run_until(7.0)
        assert ticks == [pytest.approx(2.0), pytest.approx(4.0),
                         pytest.approx(6.0)]

    def test_explicit_start(self):
        kernel = make_kernel()
        ticks = []
        kernel.every(5.0, ticks.append, start=1.0)
        kernel.run_until(7.0)
        assert ticks == [pytest.approx(1.0), pytest.approx(6.0)]

    def test_cancel_stops_ticks(self):
        kernel = make_kernel()
        ticks = []
        handle = kernel.every(1.0, ticks.append)
        kernel.run_until(2.5)
        handle.cancel()
        kernel.run_until(10.0)
        assert len(ticks) == 2

    def test_timer_does_not_keep_run_all_alive(self):
        kernel = make_kernel()
        ticks = []
        kernel.every(1.0, ticks.append)
        kernel.schedule(3.5, lambda: None)
        kernel.run_all()  # must terminate despite the repeating timer
        assert ticks == [pytest.approx(1.0), pytest.approx(2.0),
                         pytest.approx(3.0)]

    def test_late_ticks_coalesce_onto_grid(self):
        # The frontier raced 10 intervals ahead (a long synchronous job);
        # the timer fires once with its overdue nominal time, then skips
        # to the next grid point instead of replaying every missed tick.
        kernel = make_kernel()
        ticks = []
        kernel.every(1.0, ticks.append)
        kernel.advance_to(10.5)
        kernel.pump()
        assert ticks == [pytest.approx(1.0)]
        kernel.run_until(12.5)
        assert ticks[1:] == [pytest.approx(11.0), pytest.approx(12.0)]

    def test_catch_up_replays_missed_ticks(self):
        kernel = make_kernel()
        ticks = []
        kernel.every(1.0, ticks.append, catch_up=True)
        kernel.advance_to(3.5)
        kernel.run_until(3.5)
        assert ticks == [pytest.approx(1.0), pytest.approx(2.0),
                         pytest.approx(3.0)]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            make_kernel().every(0.0, lambda t: None)


class TestSlotLedger:
    def attached(self, cores=2):
        kernel = make_kernel()
        worker = Worker(0, cores=cores)
        kernel.register_worker(worker)
        return kernel, worker

    def test_occupy_pushes_free_time(self):
        kernel, w = self.attached()
        finish = kernel.occupy_slot(w, 0, 1.0, 3.0)
        assert finish == 4.0
        assert w.slot_free_times[0] == 4.0

    def test_cached_min_tracks_occupancy(self):
        kernel, w = self.attached(cores=3)
        kernel.occupy_slot(w, 0, 0.0, 5.0)
        kernel.occupy_slot(w, 1, 0.0, 2.0)
        assert kernel.earliest_free_slot(w) == (2, 0.0)
        kernel.occupy_slot(w, 2, 0.0, 7.0)
        assert kernel.earliest_free_slot(w) == (1, 2.0)

    def test_run_on_earliest_slot_queues(self):
        kernel, w = self.attached(cores=1)
        assert kernel.run_on_earliest_slot(w, 0.0, 5.0) == (0.0, 5.0)
        assert kernel.run_on_earliest_slot(w, 1.0, 2.0) == (5.0, 7.0)

    def test_set_slot_free_time_invalidates_cache(self):
        kernel, w = self.attached(cores=2)
        kernel.occupy_slot(w, 0, 0.0, 1.0)
        kernel.occupy_slot(w, 1, 0.0, 2.0)
        assert kernel.earliest_free_slot(w) == (0, 1.0)
        kernel.set_slot_free_time(w, 1, 0.5)  # speculation truncate
        assert kernel.earliest_free_slot(w) == (1, 0.5)

    def test_kill_and_restart_update_cache(self):
        kernel, w = self.attached()
        kernel.occupy_slot(w, 0, 0.0, 3.0)
        kernel.kill_worker(w)
        assert kernel.earliest_free_time(w) == float("inf")
        with pytest.raises(RuntimeError):
            kernel.occupy_slot(w, 0, 4.0, 1.0)
        kernel.advance_to(6.0)
        kernel.restart_worker(w)
        assert kernel.earliest_free_time(w) == 6.0

    def test_register_with_ready_at_occupies_slots(self):
        kernel = make_kernel()
        w = Worker(7, cores=2)
        kernel.register_worker(w, ready_at=9.0)
        assert w.slot_free_times == [9.0, 9.0]
        assert kernel.earliest_free_slot(w) == (0, 9.0)

    def test_deregister_detaches(self):
        kernel, w = self.attached()
        kernel.deregister_worker(w)
        assert w._kernel is None
        # Reads fall back to the worker's own scan.
        assert w.earliest_free_time() == 0.0

    def test_worker_reads_delegate_to_kernel(self):
        kernel, w = self.attached(cores=2)
        kernel.occupy_slot(w, 0, 0.0, 4.0)
        assert w.earliest_free_slot() == (1, 0.0)
        assert w.earliest_free_time() == 0.0


class TestDeliveryOrderProperty:
    """Kernel delivery is sorted by (time, sequence number): timestamps
    are non-decreasing and same-time events fire in insertion order."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=50,
    ))
    def test_timestamps_non_decreasing_ties_by_seq(self, times):
        kernel = make_kernel()
        fired = []
        for seq, t in enumerate(times):
            kernel.schedule(
                t, lambda t=t, seq=seq: fired.append((t, seq)))
        kernel.run_all()
        assert len(fired) == len(times)
        assert fired == sorted(fired, key=lambda item: (item[0], item[1]))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(
        st.floats(min_value=0.1, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=10,
    ))
    def test_order_holds_with_daemon_timers_interleaved(self, times):
        kernel = make_kernel()
        fired = []
        kernel.every(0.7, lambda tick: fired.append(tick))
        for t in sorted(times):
            kernel.schedule(t, lambda t=t: fired.append(t))
        kernel.run_all()
        # Delivered timestamps (nominal, for timer ticks) never decrease.
        assert fired == sorted(fired)
