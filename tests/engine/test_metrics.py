"""Tests for metrics accounting and summaries."""

import pytest

from repro.engine.metrics import JobMetrics, MetricsCollector, TaskMetrics


def task(duration=1.0, gc=0.1, start=0.0, locality="ANY"):
    tm = TaskMetrics()
    tm.start_time = start
    tm.finish_time = start + duration
    tm.gc_time = gc
    tm.locality = locality
    return tm


class TestTaskMetrics:
    def test_duration(self):
        assert task(duration=2.5).duration == 2.5

    def test_work_time_sums_components(self):
        tm = TaskMetrics()
        tm.launch_overhead = 0.1
        tm.compute_time = 0.2
        tm.shuffle_fetch_local_time = 0.3
        tm.shuffle_fetch_remote_time = 0.4
        tm.shuffle_write_time = 0.5
        tm.cache_read_time = 0.6
        tm.checkpoint_read_time = 0.7
        tm.source_read_time = 0.8
        tm.gc_time = 0.9
        assert tm.work_time() == pytest.approx(4.5)

    def test_shuffle_fetch_time_combines_local_remote(self):
        tm = TaskMetrics()
        tm.shuffle_fetch_local_time = 1.0
        tm.shuffle_fetch_remote_time = 2.0
        assert tm.shuffle_fetch_time == 3.0


class TestJobMetrics:
    def test_makespan(self):
        job = JobMetrics(job_id=0, submit_time=1.0, finish_time=4.0)
        assert job.makespan == 3.0

    def test_totals(self):
        job = JobMetrics(job_id=0)
        job.tasks = [task(gc=0.1), task(gc=0.3)]
        assert job.total_gc_time() == pytest.approx(0.4)

    def test_tasks_sorted_by_delay(self):
        job = JobMetrics(job_id=0)
        job.tasks = [task(duration=1.0), task(duration=3.0),
                     task(duration=2.0)]
        durations = [t.duration for t in job.tasks_sorted_by_delay()]
        assert durations == [3.0, 2.0, 1.0]

    def test_task_delay_stats(self):
        job = JobMetrics(job_id=0)
        job.tasks = [task(duration=d) for d in (1.0, 5.0, 3.0)]
        stats = job.task_delay_stats()
        assert stats == {"min": 1.0, "mid": 3.0, "max": 5.0}

    def test_task_delay_stats_empty(self):
        assert JobMetrics(job_id=0).task_delay_stats() == \
            {"min": 0.0, "mid": 0.0, "max": 0.0}


class TestMetricsCollector:
    def test_job_ids_increment(self):
        collector = MetricsCollector()
        a = collector.new_job("a", 0.0)
        b = collector.new_job("b", 1.0)
        assert b.job_id == a.job_id + 1

    def test_task_attached_to_job(self):
        collector = MetricsCollector()
        job = collector.new_job("a", 0.0)
        tm = collector.new_task_metrics(job, stage_id=3, partition=2)
        assert tm in job.tasks
        assert tm.stage_id == 3
        assert tm.partition == 2
        assert tm.job_id == job.job_id

    def test_last_job(self):
        collector = MetricsCollector()
        with pytest.raises(RuntimeError):
            collector.last_job()
        collector.new_job("a", 0.0)
        b = collector.new_job("b", 0.0)
        assert collector.last_job() is b

    def test_makespan_summaries(self):
        collector = MetricsCollector()
        for submit, finish in ((0.0, 1.0), (0.0, 3.0)):
            job = collector.new_job("x", submit)
            job.finish_time = finish
        assert collector.mean_makespan() == 2.0
        # Nearest-rank: ceil(2 * 50/100) = rank 1 -> the lower span.
        assert collector.percentile_makespan(50) == 1.0
        assert collector.percentile_makespan(0) == 1.0

    def test_percentile_nearest_rank(self):
        collector = MetricsCollector()
        for finish in (1.0, 2.0, 3.0, 4.0, 5.0):
            job = collector.new_job("x", 0.0)
            job.finish_time = finish
        # rank = ceil(5 * pct / 100), 1-indexed into the sorted spans.
        assert collector.percentile_makespan(20) == 1.0
        assert collector.percentile_makespan(50) == 3.0
        assert collector.percentile_makespan(90) == 5.0
        assert collector.percentile_makespan(95) == 5.0
        assert collector.percentile_makespan(100) == 5.0

    def test_percentile_single_span(self):
        collector = MetricsCollector()
        job = collector.new_job("x", 0.0)
        job.finish_time = 7.0
        for pct in (0, 1, 50, 99, 100):
            assert collector.percentile_makespan(pct) == 7.0

    def test_empty_summaries(self):
        collector = MetricsCollector()
        assert collector.mean_makespan() == 0.0
        assert collector.percentile_makespan(95) == 0.0
        assert collector.locality_fractions() == {}

    def test_locality_fractions(self):
        collector = MetricsCollector()
        job = collector.new_job("x", 0.0)
        job.tasks = [task(locality="ANY"), task(locality="PROCESS_LOCAL"),
                     task(locality="PROCESS_LOCAL"), task(locality="ANY")]
        fractions = collector.locality_fractions()
        assert fractions["ANY"] == 0.5
        assert fractions["PROCESS_LOCAL"] == 0.5

    def test_total_tasks(self):
        collector = MetricsCollector()
        job = collector.new_job("x", 0.0)
        collector.new_task_metrics(job, 0, 0)
        collector.new_task_metrics(job, 0, 1)
        assert collector.total_tasks() == 2
