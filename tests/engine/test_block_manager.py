"""Tests for the block stores and the cluster-wide block master."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.block_manager import Block, BlockManagerMaster, BlockStore


def block(rdd_id, pid, size, records=None):
    return Block((rdd_id, pid), records or ["r"], float(size))


class TestBlockStore:
    def test_put_and_get(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        assert (1, 0) in store
        assert store.get((1, 0)).size_bytes == 40

    def test_used_bytes_tracks_puts(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        store.put(block(1, 1, 30))
        assert store.used_bytes == 70

    def test_lru_eviction_order(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        store.put(block(1, 1, 40))
        store.get((1, 0))  # touch block 0: block 1 becomes LRU
        evicted = store.put(block(1, 2, 40))
        assert [b.block_id for b in evicted] == [(1, 1)]
        assert (1, 0) in store and (1, 2) in store

    def test_replacing_same_block_does_not_double_count(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        store.put(block(1, 0, 50))
        assert store.used_bytes == 50
        assert len(store) == 1

    def test_block_larger_than_capacity_rejected(self):
        store = BlockStore(0, 100.0)
        rejected = store.put(block(1, 0, 200))
        assert rejected[0].block_id == (1, 0)
        assert (1, 0) not in store
        assert store.used_bytes == 0

    def test_eviction_count(self):
        store = BlockStore(0, 100.0)
        for pid in range(4):
            store.put(block(1, pid, 40))
        assert store.eviction_count == 2

    def test_remove(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        removed = store.remove((1, 0))
        assert removed is not None
        assert store.used_bytes == 0
        assert store.remove((1, 0)) is None

    def test_clear_returns_lost_blocks(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        store.put(block(2, 0, 40))
        lost = store.clear()
        assert len(lost) == 2
        assert store.used_bytes == 0

    def test_utilisation(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 25))
        assert store.utilisation() == pytest.approx(0.25)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BlockStore(0, 0.0)

    def test_peek_does_not_touch_lru(self):
        store = BlockStore(0, 100.0)
        store.put(block(1, 0, 40))
        store.put(block(1, 1, 40))
        store.peek((1, 0))  # must NOT refresh block 0
        evicted = store.put(block(1, 2, 40))
        assert [b.block_id for b in evicted] == [(1, 0)]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                              st.floats(min_value=1, max_value=60)),
                    max_size=40))
    def test_capacity_invariant_under_any_sequence(self, puts):
        store = BlockStore(0, 100.0)
        for rdd_id, pid, size in puts:
            store.put(block(rdd_id, pid, size))
            assert store.used_bytes <= 100.0 + 1e-9
            assert store.used_bytes == pytest.approx(
                sum(store.peek(b).size_bytes for b in store.block_ids())
            )


class TestBlockManagerMaster:
    def make_master(self, workers=3, capacity=100.0):
        return BlockManagerMaster(range(workers), lambda wid: capacity)

    def test_put_registers_location(self):
        master = self.make_master()
        master.put(0, block(1, 0, 40))
        assert master.locations((1, 0)) == {0}

    def test_multiple_locations(self):
        master = self.make_master()
        master.put(0, block(1, 0, 40))
        master.put(2, block(1, 0, 40))
        assert master.locations((1, 0)) == {0, 2}

    def test_eviction_updates_locations(self):
        master = self.make_master(capacity=100.0)
        master.put(0, block(1, 0, 60))
        master.put(0, block(1, 1, 60))  # evicts (1, 0)
        assert master.locations((1, 0)) == set()
        assert master.locations((1, 1)) == {0}

    def test_eviction_listener_fires(self):
        master = self.make_master(capacity=100.0)
        events = []
        master.add_eviction_listener(lambda wid, bid: events.append((wid, bid)))
        master.put(0, block(1, 0, 60))
        master.put(0, block(1, 1, 60))
        assert events == [(0, (1, 0))]

    def test_rejected_oversize_block_not_registered(self):
        master = self.make_master(capacity=100.0)
        master.put(0, block(1, 0, 500))
        assert master.locations((1, 0)) == set()

    def test_remove_rdd(self):
        master = self.make_master()
        master.put(0, block(1, 0, 10))
        master.put(1, block(1, 1, 10))
        master.put(1, block(2, 0, 10))
        master.remove_rdd(1)
        assert not master.is_cached_anywhere((1, 0))
        assert not master.is_cached_anywhere((1, 1))
        assert master.is_cached_anywhere((2, 0))

    def test_lose_worker(self):
        master = self.make_master()
        master.put(0, block(1, 0, 10))
        master.put(0, block(2, 0, 10))
        master.put(1, block(1, 0, 10))
        lost = master.lose_worker(0)
        assert sorted(lost) == [(1, 0), (2, 0)]
        assert master.locations((1, 0)) == {1}

    def test_cached_partitions_of(self):
        master = self.make_master()
        master.put(0, block(7, 0, 10))
        master.put(1, block(7, 3, 10))
        assert master.cached_partitions_of(7) == {0, 3}

    def test_is_cached_on(self):
        master = self.make_master()
        master.put(2, block(1, 0, 10))
        assert master.is_cached_on(2, (1, 0))
        assert not master.is_cached_on(0, (1, 0))

    def test_total_cached_bytes(self):
        master = self.make_master()
        master.put(0, block(1, 0, 10))
        master.put(1, block(1, 1, 30))
        assert master.total_cached_bytes() == 40
