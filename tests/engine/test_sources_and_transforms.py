"""Tests for source RDD cost charging and transform partitioner rules."""


from repro import StarkContext
from repro.cluster.cost_model import SimStr
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


def source_read_time(sc):
    return sum(t.source_read_time for j in sc.metrics.jobs for t in j.tasks)


class TestSourceCosts:
    def make_generator(self, nbytes=1e6):
        def generate(pid):
            return [(pid, SimStr("x", sim_size=int(nbytes)))]

        return generate

    def test_disk_source_charges_disk_rate(self):
        sc = StarkContext(num_workers=1, cores_per_worker=1)
        rdd = sc.generated(self.make_generator(120e6), 1, read_cost="disk")
        rdd.count()
        # 120 MB at ~120 MB/s disk + serde: around a second.
        assert 0.5 < source_read_time(sc) < 3.0

    def test_network_source_slower_than_disk(self):
        times = {}
        for mode in ("disk", "network"):
            sc = StarkContext(num_workers=1, cores_per_worker=1)
            sc.generated(self.make_generator(100e6), 1,
                         read_cost=mode).count()
            times[mode] = source_read_time(sc)
        assert times["network"] > times["disk"]

    def test_none_source_nearly_free(self):
        sc = StarkContext(num_workers=1, cores_per_worker=1)
        sc.generated(self.make_generator(100e6), 1, read_cost="none").count()
        assert source_read_time(sc) < 0.1

    def test_parallelize_charges_driver_ship(self):
        sc = StarkContext(num_workers=1, cores_per_worker=1)
        data = [(0, SimStr("x", sim_size=1_000_000))]
        sc.parallelize(data, 1).count()
        assert source_read_time(sc) > 0

    def test_generator_called_per_partition(self):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        calls = []

        def generate(pid):
            calls.append(pid)
            return [(pid, pid)]

        rdd = sc.generated(generate, 4, read_cost="none")
        rdd.count()
        assert sorted(calls) == [0, 1, 2, 3]


class TestPartitionerPreservation:
    def setup_method(self):
        self.sc = StarkContext(num_workers=2, cores_per_worker=2)
        self.part = HashPartitioner(4)
        self.base = self.sc.parallelize(make_pairs(40), 4).partition_by(
            self.part
        )

    def test_plain_map_drops_partitioner(self):
        assert self.base.map(lambda kv: kv).partitioner is None

    def test_map_with_flag_keeps_partitioner(self):
        mapped = self.base.map(lambda kv: kv, preserves_partitioning=True)
        assert mapped.partitioner == self.part

    def test_map_values_keeps_partitioner(self):
        assert self.base.map_values(lambda v: v * 2).partitioner == self.part

    def test_filter_keeps_partitioner(self):
        assert self.base.filter(lambda kv: True).partitioner == self.part

    def test_flat_map_drops_partitioner(self):
        assert self.base.flat_map(lambda kv: [kv]).partitioner is None

    def test_map_partitions_keeps_by_default(self):
        assert self.base.map_partitions(lambda p: p).partitioner == self.part

    def test_keys_values_drop_partitioner(self):
        assert self.base.keys().partitioner is None
        assert self.base.values().partitioner is None

    def test_cogroup_after_map_values_stays_narrow(self):
        other = self.sc.parallelize(make_pairs(40), 4).partition_by(self.part)
        derived = self.base.map_values(lambda v: v + 1)
        assert not derived.cogroup(other).shuffle_dependencies()

    def test_cogroup_after_plain_map_shuffles(self):
        other = self.sc.parallelize(make_pairs(40), 4).partition_by(self.part)
        derived = self.base.map(lambda kv: kv)  # partitioner dropped
        cg = derived.cogroup(other, partitioner=self.part)
        assert len(cg.shuffle_dependencies()) == 1
