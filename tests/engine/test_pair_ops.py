"""Tests for the extended pair-RDD operations (pair_ops)."""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro import StarkContext
from repro.engine.partitioner import HashPartitioner

pairs = st.lists(
    st.tuples(st.integers(0, 10), st.integers(-20, 20)), max_size=40
)


class TestOuterJoins:
    def setup_method(self):
        self.sc = StarkContext(num_workers=2, cores_per_worker=2)
        self.left = self.sc.parallelize(
            [("a", 1), ("b", 2), ("a", 3)], 2
        )
        self.right = self.sc.parallelize(
            [("a", "x"), ("c", "y")], 2
        )

    def test_left_outer(self):
        result = sorted(self.left.left_outer_join(self.right).collect())
        assert result == [("a", (1, "x")), ("a", (3, "x")),
                          ("b", (2, None))]

    def test_right_outer(self):
        result = sorted(
            self.left.right_outer_join(self.right).collect(),
            key=lambda kv: (kv[0], str(kv[1])),
        )
        assert ("c", (None, "y")) in result
        assert ("a", (1, "x")) in result
        assert not any(k == "b" for k, _ in result)

    def test_full_outer(self):
        result = self.left.full_outer_join(self.right).collect()
        keys = {k for k, _ in result}
        assert keys == {"a", "b", "c"}
        assert ("b", (2, None)) in result
        assert ("c", (None, "y")) in result

    @given(pairs, pairs)
    @settings(max_examples=15, deadline=None)
    def test_full_outer_covers_all_keys(self, left, right):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        a = sc.parallelize(left, 2)
        b = sc.parallelize(right, 2)
        result_keys = {k for k, _ in a.full_outer_join(b).collect()}
        assert result_keys == {k for k, _ in left} | {k for k, _ in right}


class TestSubtractByKey:
    def test_removes_matching_keys(self, sc):
        a = sc.parallelize([("a", 1), ("b", 2), ("c", 3)], 2)
        b = sc.parallelize([("b", 99)], 2)
        assert sorted(a.subtract_by_key(b).collect()) == \
            [("a", 1), ("c", 3)]

    def test_empty_other_keeps_everything(self, sc):
        a = sc.parallelize([("a", 1)], 2)
        b = sc.parallelize([("zz", 0)], 2).filter(lambda kv: False)
        assert a.subtract_by_key(b).collect() == [("a", 1)]


class TestSortByKey:
    def test_global_ascending_order(self, sc):
        import random

        data = [(k, k) for k in range(100)]
        random.Random(3).shuffle(data)
        rdd = sc.parallelize(data, 4).sort_by_key()
        parts = rdd.collect_partitions()
        flattened = [k for part in parts for k, _ in part]
        assert flattened == sorted(flattened)

    def test_within_partition_sorted(self, sc):
        rdd = sc.parallelize([(3, "c"), (1, "a"), (2, "b")], 2).sort_by_key()
        for part in rdd.collect_partitions():
            keys = [k for k, _ in part]
            assert keys == sorted(keys)

    def test_empty_rdd(self, sc):
        rdd = sc.parallelize([], 2).sort_by_key()
        assert rdd.collect() == []


class TestAggregateByKey:
    def test_sum_and_count(self, sc):
        data = [("a", 1), ("a", 2), ("b", 5)]
        rdd = sc.parallelize(data, 3).aggregate_by_key(
            (0, 0),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        result = dict(rdd.collect())
        assert result == {"a": (3, 2), "b": (5, 1)}

    @given(pairs)
    @settings(max_examples=15, deadline=None)
    def test_matches_reference_sum(self, data):
        sc = StarkContext(num_workers=2, cores_per_worker=2)
        rdd = sc.parallelize(data, 3).aggregate_by_key(
            0, lambda acc, v: acc + v, lambda a, b: a + b,
        )
        expected = defaultdict(int)
        for k, v in data:
            expected[k] += v
        assert dict(rdd.collect()) == dict(expected)


class TestCombineByKey:
    def test_builds_lists(self, sc):
        data = [("a", 1), ("a", 2), ("b", 3)]
        rdd = sc.parallelize(data, 3).combine_by_key(
            create=lambda v: [v],
            merge_value=lambda acc, v: acc + [v],
            merge_combiners=lambda a, b: a + b,
        )
        result = {k: sorted(v) for k, v in rdd.collect()}
        assert result == {"a": [1, 2], "b": [3]}

    def test_respects_partitioner(self, sc):
        part = HashPartitioner(2)
        data = [("a", 1), ("b", 2)]
        rdd = sc.parallelize(data, 2).combine_by_key(
            lambda v: v, lambda a, v: a + v, lambda a, b: a + b,
            partitioner=part,
        )
        assert rdd.partitioner == part


class TestActions:
    def test_count_by_key(self, sc):
        data = [("a", 1), ("a", 2), ("b", 3)]
        assert sc.parallelize(data, 2).count_by_key() == {"a": 2, "b": 1}

    def test_lookup_unpartitioned(self, sc):
        data = [("a", 1), ("b", 2), ("a", 3)]
        assert sorted(sc.parallelize(data, 2).lookup("a")) == [1, 3]

    def test_lookup_partitioned_scans_one_partition(self, sc):
        part = HashPartitioner(4)
        rdd = sc.parallelize([("a", 1), ("b", 2)], 4).partition_by(part)
        assert rdd.lookup("a") == [1]
        assert rdd.lookup("missing") == []

    def test_sample_fraction_bounds(self, sc):
        rdd = sc.parallelize([("a", 1)], 1)
        with pytest.raises(ValueError):
            rdd.sample(1.5)

    def test_sample_deterministic_and_subset(self, sc):
        data = [(i, i) for i in range(200)]
        rdd = sc.parallelize(data, 4)
        s1 = rdd.sample(0.3, seed=5).collect()
        s2 = rdd.sample(0.3, seed=5).collect()
        assert Counter(s1) == Counter(s2)
        assert set(s1) <= set(data)
        assert 20 < len(s1) < 120  # roughly 30%

    def test_take_sample(self, sc):
        data = [(i, i) for i in range(50)]
        sample = sc.parallelize(data, 4).take_sample(10, seed=1)
        assert len(sample) == 10
        assert set(sample) <= set(data)
