"""Idempotence regression tests: repeated jobs must be bit-identical.

Shuffle map outputs persist across jobs, so any code path that mutates
records stored in them corrupts every later job reading the same
shuffle.  These tests pin the specific shapes that once failed (found by
the model-based hypothesis suite) plus broader repeats.
"""

from collections import Counter


from repro import StarkContext
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


class TestRepeatedJobs:
    def test_group_by_key_twice(self, sc):
        """Regression: group_by_key's accumulator used to extend lists
        in place, mutating persisted map outputs between runs."""
        data = [(0, 0), (0, 0)]
        rdd = sc.parallelize(data, 2).map_values(lambda v: v + 1) \
            .group_by_key(HashPartitioner(2)).map_values(sum)
        first = rdd.collect()
        second = rdd.collect()
        third = rdd.collect()
        assert first == second == third == [(0, 2)]

    def test_group_by_key_many_repeats(self, sc):
        data = make_pairs(60, num_keys=5)
        rdd = sc.parallelize(data, 3).group_by_key(HashPartitioner(3))
        expected = {k: sorted(v) for k, v in rdd.collect()}
        for _ in range(4):
            assert {k: sorted(v) for k, v in rdd.collect()} == expected

    def test_reduce_by_key_twice(self, sc):
        rdd = sc.parallelize(make_pairs(80), 4).reduce_by_key(
            lambda a, b: a + b, HashPartitioner(4)
        )
        assert Counter(rdd.collect()) == Counter(rdd.collect())

    def test_cogroup_twice(self, sc):
        part = HashPartitioner(3)
        a = sc.parallelize(make_pairs(30), 3).partition_by(part).cache()
        b = sc.parallelize(make_pairs(30), 3).partition_by(part).cache()
        merged = a.cogroup(b)
        first = {k: tuple(map(sorted, v)) for k, v in merged.collect()}
        second = {k: tuple(map(sorted, v)) for k, v in merged.collect()}
        assert first == second

    def test_shuffle_outputs_unchanged_after_reduce(self, sc):
        """Reading a shuffle must not alter the stored records."""
        rdd = sc.parallelize(make_pairs(40, num_keys=4), 4).group_by_key(
            HashPartitioner(2)
        )
        rdd.collect()
        tracker = sc.map_output_tracker
        shuffle_id = rdd.parents()[0].shuffle_dependencies()[0].shuffle_id \
            if rdd.parents()[0].shuffle_dependencies() else \
            rdd.shuffle_dependencies()[0].shuffle_id
        snapshot = {
            (m, r): [tuple(map(repr, rec)) for rec in out.records]
            for m in range(tracker.num_maps(shuffle_id))
            for r, out in tracker._outputs[(shuffle_id, m)].items()
        }
        rdd.collect()
        after = {
            (m, r): [tuple(map(repr, rec)) for rec in out.records]
            for m in range(tracker.num_maps(shuffle_id))
            for r, out in tracker._outputs[(shuffle_id, m)].items()
        }
        assert snapshot == after

    def test_repeats_with_eviction_pressure(self):
        """Tiny cache: every run recomputes through the shuffle; results
        must still be stable."""
        sc = StarkContext(num_workers=2, cores_per_worker=2,
                          memory_per_worker=1e6)
        rdd = sc.parallelize(make_pairs(100, num_keys=7), 4).group_by_key(
            HashPartitioner(4)
        ).map_values(len).cache()
        expected = dict(rdd.collect())
        for _ in range(3):
            assert dict(rdd.collect()) == expected
