"""Tests for checkpointing and failure recovery."""

import pytest

from repro import StarkContext
from repro.engine.failure import FailureInjector
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


class TestCheckpointStore:
    def test_force_checkpoint_persists_partitions(self, sc):
        rdd = sc.parallelize(make_pairs(50), 4).partition_by(HashPartitioner(4))
        rdd.count()
        rdd.force_checkpoint()
        assert rdd.checkpointed
        assert sc.checkpoint_store.has_checkpoint(rdd.rdd_id)
        assert sc.checkpoint_store.checkpoint_bytes(rdd.rdd_id) > 0

    def test_checkpoint_data_matches_recompute(self, sc):
        rdd = sc.parallelize(make_pairs(50), 4).reduce_by_key(lambda a, b: a + b)
        before = dict(rdd.collect())
        rdd.force_checkpoint()
        after = dict(rdd.collect())
        assert before == after

    def test_checkpoint_truncates_recovery_lineage(self, sc):
        rdd = sc.parallelize(make_pairs(300), 4).partition_by(
            HashPartitioner(4)
        ).map_values(lambda v: v * 2)
        rdd.count()
        rdd.force_checkpoint()
        # Even if shuffle outputs vanish, the checkpoint serves reads.
        for wid in sc.cluster.worker_ids:
            sc.map_output_tracker.remove_outputs_on_worker(wid)
        assert rdd.count() == 300

    def test_history_records_commits(self, sc):
        rdd = sc.parallelize(make_pairs(10), 2)
        rdd.count()
        rdd.force_checkpoint()
        assert len(sc.checkpoint_store.history) == 1
        record = sc.checkpoint_store.history[0]
        assert record.rdd_id == rdd.rdd_id
        assert record.total_bytes > 0

    def test_total_bytes_accumulates(self, sc):
        a = sc.parallelize(make_pairs(10), 2)
        b = sc.parallelize(make_pairs(10), 2)
        a.count(), b.count()
        a.force_checkpoint()
        first = sc.checkpoint_store.total_bytes_written
        b.force_checkpoint()
        assert sc.checkpoint_store.total_bytes_written > first


class TestFailureRecovery:
    def test_kill_worker_loses_cached_blocks(self, sc):
        rdd = sc.parallelize(make_pairs(100), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        rdd.count()
        injector = FailureInjector(sc)
        victim = next(iter(sc.block_manager_master.locations((rdd.rdd_id, 0))))
        report = injector.kill_worker(victim)
        assert report.lost_blocks > 0
        assert not sc.cluster.get_worker(victim).alive

    def test_job_correct_after_failure(self, sc):
        rdd = sc.parallelize(make_pairs(100), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        expected = rdd.count()
        FailureInjector(sc).kill_worker(0)
        assert rdd.count() == expected

    def test_recovery_slower_than_warm_baseline(self, sc):
        rdd = sc.parallelize(make_pairs(2000), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        injector = FailureInjector(sc)
        rdd.count()
        victim = next(iter(sc.block_manager_master.locations((rdd.rdd_id, 0))))
        report = injector.measure_recovery(rdd, victim)
        assert report.recovery_delay > report.baseline_delay
        assert report.slowdown > 1.0

    def test_checkpoint_bounds_recovery(self, sc):
        """With a checkpoint, recovery reads it instead of re-running the
        lineage — recovery must be cheaper than without."""

        def build(ctx):
            return ctx.parallelize(make_pairs(2000), 4).partition_by(
                HashPartitioner(4)
            ).map_values(lambda v: v + 1).cache()

        from repro import StarkContext

        def victim_for(ctx, rdd):
            rdd.count()
            return next(iter(
                ctx.block_manager_master.locations((rdd.rdd_id, 0))
            ))

        plain_ctx = StarkContext(num_workers=4, cores_per_worker=2)
        plain = build(plain_ctx)
        rep_plain = FailureInjector(plain_ctx).measure_recovery(
            plain, victim_for(plain_ctx, plain), lose_disk=True
        )

        ck_ctx = StarkContext(num_workers=4, cores_per_worker=2)
        ck = build(ck_ctx)
        ck.count()
        ck.force_checkpoint()
        rep_ck = FailureInjector(ck_ctx).measure_recovery(
            ck, victim_for(ck_ctx, ck), lose_disk=True
        )
        assert rep_ck.recovery_delay < rep_plain.recovery_delay

    def test_restart_worker_rejoins(self, sc):
        injector = FailureInjector(sc)
        injector.kill_worker(1)
        injector.restart_worker(1)
        assert sc.cluster.get_worker(1).alive
        rdd = sc.parallelize(make_pairs(10), 2)
        assert rdd.count() == 10

    def test_lose_disk_forces_map_rerun(self, sc):
        rdd = sc.parallelize(make_pairs(100), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        rdd.count()
        injector = FailureInjector(sc)
        report = injector.kill_worker(0, lose_disk=True)
        # At least the worker's own map outputs are gone.
        assert rdd.count() == 100
        job = sc.metrics.last_job()
        if report.lost_shuffle_outputs:
            assert job.skipped_stages == 0


class TestFailureSchedule:
    def test_scheduled_kill_fires_when_pumped(self, sc):
        from repro.engine.failure import FailureEvent, FailureSchedule

        schedule = FailureSchedule(sc, [FailureEvent(time=1.0, worker_id=0)])
        assert sc.cluster.get_worker(0).alive
        sc.cluster.clock.advance_to(2.0)
        schedule.pump()
        assert not sc.cluster.get_worker(0).alive
        assert len(schedule.fired) == 1

    def test_restart_after(self, sc):
        from repro.engine.failure import FailureEvent, FailureSchedule

        schedule = FailureSchedule(sc, [
            FailureEvent(time=1.0, worker_id=1, restart_after=2.0),
        ])
        sc.cluster.clock.advance_to(1.5)
        schedule.pump()
        assert not sc.cluster.get_worker(1).alive
        sc.cluster.clock.advance_to(4.0)
        schedule.pump()
        assert sc.cluster.get_worker(1).alive

    def test_jobs_survive_scheduled_failures(self, sc):
        from repro.engine.failure import FailureEvent, FailureSchedule
        from repro.engine.partitioner import HashPartitioner
        from ..conftest import make_pairs

        rdd = sc.parallelize(make_pairs(500), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        expected = rdd.count()
        schedule = FailureSchedule(sc, [
            FailureEvent(time=sc.now + 0.001, worker_id=2),
        ])
        sc.cluster.clock.advance_by(0.01)
        schedule.pump()
        assert rdd.count() == expected

    def test_events_sorted(self, sc):
        from repro.engine.failure import FailureEvent, FailureSchedule

        schedule = FailureSchedule(sc, [
            FailureEvent(time=5.0, worker_id=0),
            FailureEvent(time=1.0, worker_id=1),
        ])
        assert [e.time for e in schedule.events] == [1.0, 5.0]


class TestRestartPath:
    """kill -> restart -> rerun: the restarted executor re-registers with
    an empty cache, becomes schedulable, and driver-side cache
    bookkeeping stays consistent."""

    def cached_victim(self, sc):
        rdd = sc.parallelize(make_pairs(200), 8).cache()
        rdd.count()
        victim = next(
            w for w in sc.cluster.alive_worker_ids()
            if sc.block_manager_master.stores[w].used_bytes > 0)
        return rdd, victim

    def test_restart_reregisters_empty_store(self, sc):
        rdd, victim = self.cached_victim(sc)
        injector = FailureInjector(sc)
        injector.kill_worker(victim)
        injector.restart_worker(victim)
        bmm = sc.block_manager_master
        store = bmm.stores[victim]
        assert store.used_bytes == 0
        worker = sc.cluster.get_worker(victim)
        assert store.capacity_bytes == pytest.approx(
            worker.memory_bytes * sc.config.storage_memory_fraction)
        # No stale location entries survive the kill.
        for pid in range(rdd.num_partitions):
            assert victim not in bmm.locations((rdd.rdd_id, pid))

    def test_restarted_worker_is_schedulable(self, sc):
        _, victim = self.cached_victim(sc)
        injector = FailureInjector(sc)
        injector.kill_worker(victim)
        injector.restart_worker(victim)
        restart_time = sc.cluster.clock.now
        assert victim in sc.cluster.alive_worker_ids()
        # A wide job (more partitions than the other workers' slots)
        # must land tasks on the restarted executor.
        wide = sc.parallelize(make_pairs(1600), 16)
        assert wide.count() == 1600
        worker = sc.cluster.get_worker(victim)
        assert max(worker.slot_free_times) > restart_time

    def test_rerun_recaches_on_survivors_and_restartee(self, sc):
        rdd, victim = self.cached_victim(sc)
        injector = FailureInjector(sc)
        injector.kill_worker(victim)
        injector.restart_worker(victim)
        assert rdd.count() == 200
        bmm = sc.block_manager_master
        for pid in range(rdd.num_partitions):
            assert bmm.locations((rdd.rdd_id, pid))

    def test_tracker_consistent_across_kill_restart_rerun(self, sc):
        rdd, victim = self.cached_victim(sc)
        tracker = sc.cache_manager.tracker
        tracker.expect(rdd.rdd_id, uses=2)
        assert tracker.declared(rdd.rdd_id) == 2
        injector = FailureInjector(sc)
        injector.kill_worker(victim)
        injector.restart_worker(victim)
        # A kill/restart cycle must not leak or drop references.
        assert tracker.declared(rdd.rdd_id) == 2
        rdd.count()  # consumes one declared use
        assert tracker.declared(rdd.rdd_id) == 1
        # No pending references linger once the job completed.
        assert tracker.ref_count(rdd.rdd_id) == 1

    def test_policy_binding_survives_restart(self, sc):
        _, victim = self.cached_victim(sc)
        store = sc.block_manager_master.stores[victim]
        policy_before = store.policy
        injector = FailureInjector(sc)
        injector.kill_worker(victim)
        injector.restart_worker(victim)
        # The store object (and its policy) survives the cycle, but the
        # policy's bookkeeping is wiped along with the blocks.
        assert sc.block_manager_master.stores[victim] is store
        assert store.policy is policy_before
        assert type(store.policy) is type(
            sc.cache_manager.policy_for_worker(victim))
        assert len(store.policy) == 0
