"""Model-based testing: random pipelines vs a plain-Python interpreter.

Hypothesis generates random chains of transformations; we execute them
both on the engine (with caching, co-locality, and scheduling in play)
and on a trivial reference interpreter over plain lists, and require the
resulting multisets to match.  This is the strongest correctness guard in
the suite: whatever the schedulers do, results may never change.
"""

from collections import Counter, defaultdict

from hypothesis import given, settings, strategies as st

from repro import StarkContext
from repro.engine.partitioner import HashPartitioner


# ---- pipeline specification ----------------------------------------------

OPS = ("map_add", "map_swap_value", "filter_even_value", "reduce_sum",
       "partition_by", "group_values", "cache")


@st.composite
def pipelines(draw):
    data = draw(st.lists(
        st.tuples(st.integers(0, 8), st.integers(-50, 50)),
        min_size=0, max_size=40,
    ))
    ops = draw(st.lists(st.sampled_from(OPS), max_size=6))
    partitions = draw(st.integers(1, 6))
    locality = draw(st.booleans())
    return data, ops, partitions, locality


# ---- reference interpreter --------------------------------------------------

def reference_apply(data, ops):
    rows = list(data)
    for op in ops:
        if op == "map_add":
            rows = [(k, v + 1) for k, v in rows]
        elif op == "map_swap_value":
            rows = [(k, -v) for k, v in rows]
        elif op == "filter_even_value":
            rows = [(k, v) for k, v in rows if v % 2 == 0]
        elif op == "reduce_sum":
            acc = defaultdict(int)
            for k, v in rows:
                acc[k] += v
            rows = list(acc.items())
        elif op == "group_values":
            acc = defaultdict(list)
            for k, v in rows:
                acc[k].append(v)
            rows = [(k, sum(vs)) for k, vs in acc.items()]
        # partition_by / cache do not change contents.
    return rows


def engine_apply(sc, data, ops, partitions, locality):
    part = HashPartitioner(partitions)
    rdd = sc.parallelize(data, partitions)
    if locality:
        rdd = rdd.locality_partition_by(part, "model")
    for op in ops:
        if op == "map_add":
            rdd = rdd.map_values(lambda v: v + 1)
        elif op == "map_swap_value":
            rdd = rdd.map_values(lambda v: -v)
        elif op == "filter_even_value":
            rdd = rdd.filter(lambda kv: kv[1] % 2 == 0)
        elif op == "reduce_sum":
            rdd = rdd.reduce_by_key(lambda a, b: a + b, part)
        elif op == "group_values":
            rdd = rdd.group_by_key(part).map_values(sum)
        elif op == "partition_by":
            rdd = rdd.partition_by(part)
        elif op == "cache":
            rdd = rdd.cache()
    return rdd


class TestModelBased:
    @given(pipelines())
    @settings(max_examples=40, deadline=None)
    def test_pipeline_matches_reference(self, spec):
        data, ops, partitions, locality = spec
        sc = StarkContext(num_workers=3, cores_per_worker=2,
                          memory_per_worker=1e9)
        rdd = engine_apply(sc, data, ops, partitions, locality)
        expected = Counter(reference_apply(data, ops))
        assert Counter(rdd.collect()) == expected
        # Run it twice: caching/shuffle reuse must not change results.
        assert Counter(rdd.collect()) == expected

    @given(pipelines())
    @settings(max_examples=20, deadline=None)
    def test_pipeline_survives_worker_failure(self, spec):
        data, ops, partitions, locality = spec
        sc = StarkContext(num_workers=3, cores_per_worker=2,
                          memory_per_worker=1e9)
        rdd = engine_apply(sc, data, ops, partitions, locality)
        expected = Counter(reference_apply(data, ops))
        assert Counter(rdd.collect()) == expected
        # Kill a worker (losing its caches) and re-run: lineage recovery
        # must regenerate identical results.
        sc.cluster.kill_worker(0)
        sc.block_manager_master.lose_worker(0)
        assert Counter(rdd.collect()) == expected
