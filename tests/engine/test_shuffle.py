"""Tests for the map-output tracker."""

import pytest

from repro.engine.shuffle import MapOutputTracker


def buckets(*sizes_and_records):
    return {
        rpid: (float(size), records)
        for rpid, size, records in sizes_and_records
    }


class TestMapOutputTracker:
    def test_register_and_fetch(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        tracker.register_map_output(0, 0, worker_id=1,
                                    buckets=buckets((0, 10, ["a"])))
        tracker.register_map_output(0, 1, worker_id=2,
                                    buckets=buckets((0, 20, ["b"])))
        outputs = tracker.outputs_for_reduce(0, 0)
        assert [o.worker_id for o in outputs] == [1, 2]
        assert [o.records for o in outputs] == [["a"], ["b"]]

    def test_reduce_with_no_bucket_is_empty(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=1)
        tracker.register_map_output(0, 0, 1, buckets((0, 10, ["a"])))
        assert tracker.outputs_for_reduce(0, 1) == []

    def test_incomplete_shuffle_raises_on_fetch(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        tracker.register_map_output(0, 0, 1, buckets((0, 10, ["a"])))
        with pytest.raises(RuntimeError, match="map output missing"):
            tracker.outputs_for_reduce(0, 0)

    def test_is_shuffle_complete(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        assert not tracker.is_shuffle_complete(0)
        tracker.register_map_output(0, 0, 1, buckets((0, 1, [])))
        assert not tracker.is_shuffle_complete(0)
        tracker.register_map_output(0, 1, 1, buckets((0, 1, [])))
        assert tracker.is_shuffle_complete(0)

    def test_unknown_shuffle_not_complete(self):
        assert not MapOutputTracker().is_shuffle_complete(42)

    def test_missing_map_partitions(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=3)
        tracker.register_map_output(0, 1, 1, buckets((0, 1, [])))
        assert tracker.missing_map_partitions(0) == [0, 2]

    def test_reregister_same_count_ok(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        tracker.register_shuffle(0, num_maps=2)

    def test_reregister_different_count_rejected(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        with pytest.raises(ValueError):
            tracker.register_shuffle(0, num_maps=3)

    def test_register_output_for_unknown_shuffle_rejected(self):
        tracker = MapOutputTracker()
        with pytest.raises(KeyError):
            tracker.register_map_output(9, 0, 1, buckets((0, 1, [])))

    def test_reduce_input_bytes(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        tracker.register_map_output(0, 0, 1, buckets((0, 10, []), (1, 5, [])))
        tracker.register_map_output(0, 1, 1, buckets((0, 20, [])))
        assert tracker.reduce_input_bytes(0, 0) == 30
        assert tracker.reduce_input_bytes(0, 1) == 5

    def test_remove_outputs_on_worker(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=2)
        tracker.register_map_output(0, 0, 1, buckets((0, 1, [])))
        tracker.register_map_output(0, 1, 2, buckets((0, 1, [])))
        doomed = tracker.remove_outputs_on_worker(1)
        assert doomed == [(0, 0)]
        assert not tracker.is_shuffle_complete(0)
        assert tracker.missing_map_partitions(0) == [0]

    def test_unregister_shuffle(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=1)
        tracker.register_map_output(0, 0, 1, buckets((0, 7, [])))
        tracker.unregister_shuffle(0)
        assert not tracker.is_shuffle_complete(0)
        assert tracker.total_shuffle_bytes() == 0

    def test_total_shuffle_bytes(self):
        tracker = MapOutputTracker()
        tracker.register_shuffle(0, num_maps=1)
        tracker.register_shuffle(1, num_maps=1)
        tracker.register_map_output(0, 0, 1, buckets((0, 7, [])))
        tracker.register_map_output(1, 0, 1, buckets((0, 3, [])))
        assert tracker.total_shuffle_bytes() == 10
