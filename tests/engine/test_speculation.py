"""Speculative execution invariants.

The load-bearing guarantees: a speculative copy never lands on the
original attempt's executor, job results are identical with speculation
on or off (first successful copy wins, the loser is cancelled), and the
default configuration launches no extra attempts at all.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import StarkConfig, StarkContext
from repro.cluster.cluster import Cluster
from repro.cluster.cost_model import HeterogeneityModel


def spec_context(seed: int = 7, *, num_workers: int = 4,
                 slow_fraction: float = 0.25, slow_speed: float = 6.0,
                 **config_kwargs) -> StarkContext:
    config = StarkConfig(
        speculation=True, speculation_multiplier=1.2,
        speculation_quantile=0.5, **config_kwargs)
    cluster = Cluster(num_workers=num_workers, cores_per_worker=2,
                      memory_per_worker=1e9, seed=seed)
    sc = StarkContext(cluster=cluster, config=config)
    sc.cluster.apply_heterogeneity(HeterogeneityModel(
        slow_worker_fraction=slow_fraction, slow_worker_speed=slow_speed))
    return sc


def run_map_job(sc: StarkContext, n: int = 400, partitions: int = 16):
    rdd = sc.parallelize(list(range(n)), partitions).map(lambda x: x * 3)
    return rdd.collect()


class TestSpeculationInvariants:
    def test_spec_copies_launch_on_slow_cluster(self):
        sc = spec_context()
        run_map_job(sc)
        job = sc.metrics.last_job()
        spec = [t for t in job.tasks if t.speculative]
        assert spec, "a 6x-slow worker must trigger speculation"

    def test_spec_copy_never_on_original_executor(self):
        sc = spec_context()
        for _ in range(3):
            run_map_job(sc)
        for job in sc.metrics.jobs:
            by_partition = {}
            for t in job.tasks:
                by_partition.setdefault((t.stage_id, t.partition),
                                        []).append(t)
            for attempts in by_partition.values():
                originals = [t for t in attempts if not t.speculative]
                for t in attempts:
                    if t.speculative:
                        assert t.worker_id not in {
                            o.worker_id for o in originals}

    def test_exactly_one_success_per_partition(self):
        sc = spec_context()
        run_map_job(sc)
        job = sc.metrics.last_job()
        by_partition = {}
        for t in job.tasks:
            by_partition.setdefault((t.stage_id, t.partition), []).append(t)
        for attempts in by_partition.values():
            assert sum(1 for t in attempts if t.status == "success") == 1

    def test_loser_is_killed_and_charged_partially(self):
        sc = spec_context()
        run_map_job(sc)
        job = sc.metrics.last_job()
        killed = [t for t in job.tasks if t.status == "killed"]
        spec = [t for t in job.tasks if t.speculative]
        assert len(killed) == len(spec)  # every race has exactly one loser
        for t in killed:
            assert t.finish_time <= max(
                x.finish_time for x in job.tasks if x.status == "success"
            ) + 1e-9
            assert t.duration >= 0

    def test_no_extra_attempts_by_default(self, sc):
        run_map_job(sc)
        job = sc.metrics.last_job()
        assert all(t.attempt == 0 and not t.speculative for t in job.tasks)
        assert sorted(t.partition for t in job.tasks) == list(range(16))

    def test_slot_capacity_respected_with_speculation(self):
        sc = spec_context()
        run_map_job(sc)
        job = sc.metrics.last_job()
        by_worker = {}
        for t in job.tasks:
            by_worker.setdefault(t.worker_id, []).append(t)
        for wid, tasks in by_worker.items():
            cores = sc.cluster.get_worker(wid).cores
            events = []
            for t in tasks:
                if t.finish_time > t.start_time:
                    events.append((t.start_time, 1))
                    events.append((t.finish_time, -1))
            events.sort()
            running = 0
            for _, delta in events:
                running += delta
                assert running <= cores


class TestSpeculationRacingFailures:
    """Regression: when the original attempt is pre-sampled to fail and
    the successful clone finishes at/after it, the race resolution must
    not cancel the clone — the task would end with no successful
    attempt and consumers taking min(finish of successes) would crash.
    The seeds below all hit that interleaving before the fix."""

    @pytest.mark.parametrize("seed", [12, 32, 49, 70])
    def test_every_partition_succeeds_under_task_failures(self, seed):
        sc = spec_context(seed, num_workers=6, task_failure_prob=0.15)
        rdd = sc.parallelize(list(range(400)), 24).map(lambda x: x * 3)
        assert sorted(rdd.collect()) == [x * 3 for x in range(400)]
        job = sc.metrics.last_job()
        by_partition = {}
        for t in job.tasks:
            by_partition.setdefault((t.stage_id, t.partition),
                                    []).append(t)
        assert len(by_partition) == 24
        for attempts in by_partition.values():
            assert sum(1 for t in attempts
                       if t.status == "success") == 1
            # A failed attempt is never truncated: its retry/blacklist
            # path must run.
            assert all(t.status in ("success", "failed", "killed")
                       for t in attempts)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000),
       num_keys=st.integers(2, 20),
       partitions=st.integers(2, 12))
def test_results_identical_spec_on_off(seed, num_keys, partitions):
    """Property: over random shuffle DAGs on a heterogeneous cluster,
    speculation never changes job results."""
    outputs = []
    for speculation in (False, True):
        config = StarkConfig(speculation=speculation,
                             speculation_multiplier=1.2,
                             speculation_quantile=0.5)
        cluster = Cluster(num_workers=4, cores_per_worker=2,
                          memory_per_worker=1e9, seed=seed)
        sc = StarkContext(cluster=cluster, config=config)
        sc.cluster.apply_heterogeneity(HeterogeneityModel(
            slow_worker_fraction=0.3, slow_worker_speed=5.0))
        data = [((seed + i) % num_keys, i) for i in range(300)]
        rdd = sc.parallelize(data, partitions)
        reduced = rdd.map(lambda kv: (kv[0], kv[1] + 1)) \
                     .reduce_by_key(lambda a, b: a + b)
        outputs.append(sorted(reduced.collect()))
    assert outputs[0] == outputs[1]


class TestHeterogeneityModel:
    def test_speed_multiplier_slows_wall_time(self):
        fast = StarkContext(num_workers=1, cores_per_worker=1,
                            memory_per_worker=1e9)
        slow = StarkContext(num_workers=1, cores_per_worker=1,
                            memory_per_worker=1e9)
        slow.cluster.get_worker(0).speed = 4.0
        for sc in (fast, slow):
            sc.parallelize(list(range(200)), 4).count()
        assert slow.metrics.last_job().makespan > \
            fast.metrics.last_job().makespan * 3.0

    def test_transient_window_charges_straggler_time(self):
        sc = StarkContext(num_workers=1, cores_per_worker=1,
                          memory_per_worker=1e9)
        sc.cluster.get_worker(0).slowdowns = [(0.0, 1000.0, 10.0)]
        sc.parallelize(list(range(200)), 4).count()
        job = sc.metrics.last_job()
        assert all(t.straggler_time > 0 for t in job.tasks)
        for t in job.tasks:
            assert t.duration == pytest.approx(t.work_time())

    def test_validation_rejects_bad_model(self):
        with pytest.raises(ValueError):
            HeterogeneityModel(slow_worker_speed=0.5)
        with pytest.raises(ValueError):
            HeterogeneityModel(slow_worker_fraction=1.5)
        with pytest.raises(ValueError):
            HeterogeneityModel(transient_factor=0.0)
