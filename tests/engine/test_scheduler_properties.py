"""Property-based scheduler invariants under random multi-job loads.

Whatever mix of jobs, arrival times, partition counts, and feature flags
hypothesis produces, the scheduler must never violate:

* slot capacity — at most ``cores`` concurrent tasks per worker;
* causality — no task starts before its job's submit time, and no stage
  task starts before its parent stages' tasks finish;
* liveness — every submitted job finishes with all partitions computed;
* correctness — results are independent of scheduling.
"""


from hypothesis import given, settings, strategies as st

from repro import StarkConfig, StarkContext
from repro.engine.partitioner import HashPartitioner


@st.composite
def job_mixes(draw):
    jobs = draw(st.lists(
        st.tuples(
            st.integers(1, 6),            # partitions
            st.integers(0, 80),           # records
            st.booleans(),                # shuffle?
            st.floats(min_value=0.0, max_value=2.0),  # arrival gap
        ),
        min_size=1, max_size=6,
    ))
    workers = draw(st.integers(1, 4))
    cores = draw(st.integers(1, 3))
    locality = draw(st.booleans())
    wait = draw(st.sampled_from([0.0, 0.05, 0.5]))
    return jobs, workers, cores, locality, wait


class TestSchedulerProperties:
    @given(job_mixes())
    @settings(max_examples=30, deadline=None)
    def test_invariants_under_random_load(self, params):
        jobs, workers, cores, locality, wait = params
        sc = StarkContext(
            num_workers=workers, cores_per_worker=cores,
            memory_per_worker=1e9,
            config=StarkConfig(locality_wait=wait,
                               locality_enabled=locality,
                               mcf_enabled=locality,
                               replication_enabled=locality),
        )
        arrival = 0.0
        expected_counts = []
        for i, (partitions, records, shuffle, gap) in enumerate(jobs):
            arrival += gap
            data = [(f"k{j % 9}", j) for j in range(records)]
            rdd = sc.parallelize(data, partitions)
            if shuffle:
                rdd = rdd.partition_by(HashPartitioner(partitions))
            rdd = rdd.map_values(lambda v: v + 1)
            results = sc.run_job(rdd, len, submit_time=arrival,
                                 description=f"job{i}")
            expected_counts.append((sum(results), records))

        # Correctness: every job saw all its records.
        for got, want in expected_counts:
            assert got == want

        # Causality + capacity, across ALL jobs simultaneously.
        all_tasks = [t for j in sc.metrics.jobs for t in j.tasks]
        for job in sc.metrics.jobs:
            for t in job.tasks:
                assert t.start_time >= job.submit_time - 1e-9
                assert t.finish_time >= t.start_time
            assert job.finish_time >= max(
                (t.finish_time for t in job.tasks), default=job.submit_time
            ) - 1e-9
        by_worker = {}
        for t in all_tasks:
            by_worker.setdefault(t.worker_id, []).append(t)
        for wid, tasks in by_worker.items():
            capacity = sc.cluster.get_worker(wid).cores
            events = []
            for t in tasks:
                if t.finish_time > t.start_time:
                    events.append((t.start_time, 1))
                    events.append((t.finish_time, -1))
            events.sort(key=lambda e: (e[0], e[1]))
            running = 0
            for _, delta in events:
                running += delta
                assert running <= capacity

    @given(job_mixes())
    @settings(max_examples=10, deadline=None)
    def test_stage_ordering(self, params):
        """Reduce tasks never start before their map stage finishes."""
        jobs, workers, cores, locality, wait = params
        sc = StarkContext(
            num_workers=workers, cores_per_worker=cores,
            memory_per_worker=1e9,
            config=StarkConfig(locality_wait=wait),
        )
        data = [(f"k{j % 5}", j) for j in range(50)]
        rdd = sc.parallelize(data, 3).partition_by(HashPartitioner(3))
        rdd.count()
        job = sc.metrics.jobs[-1]
        stages = sorted({t.stage_id for t in job.tasks})
        if len(stages) == 2:
            map_finish = max(
                t.finish_time for t in job.tasks if t.stage_id == stages[0]
            )
            reduce_start = min(
                t.start_time for t in job.tasks if t.stage_id == stages[1]
            )
            assert reduce_start >= map_finish - 1e-9
