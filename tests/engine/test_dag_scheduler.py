"""Tests for stage construction, skipping, and result assembly."""


from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


class TestStageConstruction:
    def test_narrow_chain_is_single_stage(self, sc):
        rdd = (
            sc.parallelize(list(range(10)), 2)
            .map(lambda x: x)
            .filter(lambda x: True)
        )
        rdd.count()
        job = sc.metrics.last_job()
        assert job.num_stages == 1

    def test_shuffle_splits_into_two_stages(self, sc):
        rdd = sc.parallelize(make_pairs(20), 2).partition_by(HashPartitioner(2))
        rdd.count()
        assert sc.metrics.last_job().num_stages == 2

    def test_chained_shuffles_make_three_stages(self, sc):
        rdd = (
            sc.parallelize(make_pairs(20), 2)
            .partition_by(HashPartitioner(2))
            .map(lambda kv: (kv[1], kv[0]))
            .partition_by(HashPartitioner(4))
        )
        rdd.count()
        assert sc.metrics.last_job().num_stages == 3

    def test_cogroup_of_unpartitioned_parents_adds_map_stages(self, sc):
        a = sc.parallelize(make_pairs(10), 2)
        b = sc.parallelize(make_pairs(10), 2)
        a.cogroup(b, partitioner=HashPartitioner(2)).count()
        # two map stages + the result stage
        assert sc.metrics.last_job().num_stages == 3

    def test_shared_shuffle_stage_not_duplicated(self, sc):
        base = sc.parallelize(make_pairs(20), 2).partition_by(HashPartitioner(2))
        left = base.filter(lambda kv: True)
        right = base.map_values(lambda v: v)
        cg = left.cogroup(right)
        cg.count()
        # One shared map stage (the partition_by), one result stage.
        assert sc.metrics.last_job().num_stages == 2


class TestStageSkipping:
    def test_completed_map_stage_skipped(self, sc):
        base = sc.parallelize(make_pairs(20), 2).partition_by(HashPartitioner(2))
        base.count()
        derived = base.filter(lambda kv: True)
        derived.count()
        job = sc.metrics.last_job()
        assert job.skipped_stages == 1
        # Only the result stage actually ran tasks.
        stage_ids = {t.stage_id for t in job.tasks}
        assert len(stage_ids) == 1

    def test_lost_map_outputs_rerun_stage(self, sc):
        base = sc.parallelize(make_pairs(20), 2).partition_by(HashPartitioner(2))
        base.count()
        # Simulate machine loss including local disk.
        victim = next(iter(sc.cluster.worker_ids))
        doomed = sc.map_output_tracker.remove_outputs_on_worker(victim)
        base.count()
        job = sc.metrics.last_job()
        if doomed:
            assert job.skipped_stages == 0
        else:
            assert job.skipped_stages == 1


class TestResults:
    def test_results_ordered_by_partition(self, sc):
        part = HashPartitioner(4)
        rdd = sc.parallelize(make_pairs(40), 4).partition_by(part)
        per_partition = sc.run_job(rdd, lambda recs: [k for k, _ in recs])
        assert len(per_partition) == 4
        for pid, keys in enumerate(per_partition):
            assert all(part.get_partition(k) == pid for k in keys)

    def test_custom_action(self, sc):
        rdd = sc.parallelize(list(range(10)), 2)
        sums = sc.run_job(rdd, sum)
        assert sum(sums) == sum(range(10))

    def test_job_metrics_recorded(self, sc):
        rdd = sc.parallelize(list(range(10)), 2)
        rdd.count()
        job = sc.metrics.last_job()
        assert job.finish_time >= job.submit_time
        assert len(job.tasks) == 2
        assert all(t.finish_time >= t.start_time for t in job.tasks)
