"""Tests for grouped task execution (GroupResultTask / GroupShuffleMapTask)."""


from repro import StarkConfig, StarkContext
from repro.cluster.cost_model import SimStr
from repro.core.extendable_partitioner import ExtendablePartitioner
from repro.engine.partitioner import HashPartitioner
from repro.engine.task import GroupResultTask, GroupShuffleMapTask

KEY_SPACE = 1 << 10


def grouped_context():
    return StarkContext(
        num_workers=4, cores_per_worker=2, memory_per_worker=1e9,
        config=StarkConfig(max_group_mem_size=1e12, min_group_mem_size=0.0),
    )


def load_grouped(sc, records=256, groups=4, per_group=4, namespace="grp"):
    part = ExtendablePartitioner.over_key_range(0, KEY_SPACE, groups,
                                                per_group)
    data = [
        (k % KEY_SPACE, SimStr("v", sim_size=64)) for k in range(records)
    ]
    rdd = sc.parallelize(data, part.num_partitions, partitioner=part) \
        .locality_partition_by(part, namespace).cache()
    rdd.count()
    return rdd, part


class TestGroupResultTasks:
    def test_one_task_per_group(self):
        sc = grouped_context()
        rdd, part = load_grouped(sc)
        rdd.count()
        job = sc.metrics.last_job()
        assert len(job.tasks) == 4  # 16 partitions -> 4 groups
        covered = sorted(
            pid for t in job.tasks
            for pid in range(part.num_partitions)
            if t.group_id is not None
        )
        assert {t.group_id for t in job.tasks} == {
            g.group_id for g in sc.group_manager.groups_for("grp")
        }

    def test_group_task_results_complete(self):
        sc = grouped_context()
        rdd, part = load_grouped(sc, records=300)
        assert rdd.count() == 300
        assert len(rdd.collect()) == 300

    def test_derived_narrow_rdd_also_grouped(self):
        sc = grouped_context()
        rdd, part = load_grouped(sc)
        derived = rdd.map_values(lambda v: v).filter(lambda kv: True)
        derived.count()
        job = sc.metrics.last_job()
        assert len(job.tasks) == 4
        assert all(isinstance(t.group_id, int) for t in job.tasks)


class TestGroupShuffleMapTasks:
    def test_shuffle_out_of_grouped_namespace(self):
        """A further shuffle out of a grouped RDD runs its map side as
        group tasks, and the result is still correct."""
        sc = grouped_context()
        rdd, part = load_grouped(sc, records=200)
        regrouped = rdd.map(
            lambda kv: (str(kv[0] % 10), 1)
        ).reduce_by_key(lambda a, b: a + b, HashPartitioner(4))
        result = dict(regrouped.collect())
        assert sum(result.values()) == 200
        # The map stage of that shuffle used group tasks.
        job = sc.metrics.last_job()
        stage_ids = sorted({t.stage_id for t in job.tasks})
        map_stage_tasks = [t for t in job.tasks if t.stage_id == stage_ids[0]]
        assert len(map_stage_tasks) == 4
        assert all(t.group_id is not None for t in map_stage_tasks)

    def test_group_cogroup_correct(self):
        sc = grouped_context()
        a, part = load_grouped(sc, records=128, namespace="cg")
        data_b = [(k % KEY_SPACE, k) for k in range(128)]
        b = sc.parallelize(data_b, part.num_partitions, partitioner=part) \
            .locality_partition_by(part, "cg").cache()
        b.count()
        merged = a.cogroup(b)
        total_pairs = sum(
            len(left) + len(right) for _, (left, right) in merged.collect()
        )
        assert total_pairs == 256


class TestGroupTaskMetrics:
    def test_group_tasks_record_group_id(self):
        sc = grouped_context()
        rdd, part = load_grouped(sc)
        rdd.count()
        for t in sc.metrics.last_job().tasks:
            assert t.group_id is not None
            assert t.partition == min(
                p for g in sc.group_manager.groups_for("grp")
                if g.group_id == t.group_id
                for p in g.partitions
            )
