"""Tests for partitioners: determinism, equality, range semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.partitioner import (
    HashPartitioner,
    RangePartitioner,
    StaticRangePartitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_different_strings_usually_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_int_and_string_forms_differ(self):
        assert stable_hash(1) != stable_hash("1")

    def test_handles_many_types(self):
        for key in [b"bytes", "str", 42, -7, 3.14, True, False, None,
                    ("a", 1), (1, (2, 3))]:
            assert isinstance(stable_hash(key), int)

    def test_tuple_order_matters(self):
        assert stable_hash(("a", "b")) != stable_hash(("b", "a"))

    @given(st.one_of(st.text(), st.integers(), st.floats(allow_nan=False),
                     st.binary()))
    def test_hash_in_32bit_range(self, key):
        h = stable_hash(key)
        assert 0 <= h <= 0xFFFFFFFF

    @given(st.text())
    def test_stable_across_calls(self, key):
        assert stable_hash(key) == stable_hash(key)


class TestHashPartitioner:
    def test_partition_in_range(self):
        p = HashPartitioner(8)
        for key in ["a", "b", 1, 2.5, ("x", 1)]:
            assert 0 <= p.get_partition(key) < 8

    def test_equal_when_same_count(self):
        assert HashPartitioner(4) == HashPartitioner(4)

    def test_unequal_when_different_count(self):
        assert HashPartitioner(4) != HashPartitioner(8)

    def test_unequal_to_range_partitioner(self):
        assert HashPartitioner(4) != StaticRangePartitioner([10, 20, 30])

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_hashable(self):
        assert len({HashPartitioner(4), HashPartitioner(4)}) == 1

    @given(st.lists(st.integers(), min_size=50, max_size=200))
    def test_distribution_covers_partitions(self, keys):
        p = HashPartitioner(2)
        pids = {p.get_partition(k) for k in keys}
        assert pids <= {0, 1}


class TestStaticRangePartitioner:
    def test_boundaries_inclusive_on_left_partition(self):
        p = StaticRangePartitioner([10, 20])
        assert p.get_partition(5) == 0
        assert p.get_partition(10) == 0
        assert p.get_partition(11) == 1
        assert p.get_partition(20) == 1
        assert p.get_partition(21) == 2

    def test_num_partitions_is_bounds_plus_one(self):
        assert StaticRangePartitioner([1, 2, 3]).num_partitions == 4

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            StaticRangePartitioner([5, 3])

    def test_rejects_duplicate_bounds(self):
        with pytest.raises(ValueError):
            StaticRangePartitioner([5, 5])

    def test_uniform_splits_domain(self):
        p = StaticRangePartitioner.uniform(0, 100, 4)
        assert p.num_partitions == 4
        counts = [0] * 4
        for key in range(100):
            counts[p.get_partition(key)] += 1
        assert max(counts) - min(counts) <= 1

    def test_uniform_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            StaticRangePartitioner.uniform(10, 10, 2)

    def test_equality_is_by_bounds(self):
        assert StaticRangePartitioner([1, 2]) == StaticRangePartitioner([1, 2])
        assert StaticRangePartitioner([1, 2]) != StaticRangePartitioner([1, 3])

    @given(st.integers(min_value=-1000, max_value=2000))
    def test_monotone_partition_assignment(self, key):
        p = StaticRangePartitioner.uniform(0, 1000, 8)
        pid = p.get_partition(key)
        assert 0 <= pid < 8
        assert p.get_partition(key + 1) >= pid


class TestRangePartitioner:
    def test_samples_define_balanced_bounds(self):
        keys = list(range(1000))
        p = RangePartitioner(4, keys)
        counts = [0] * p.num_partitions
        for key in keys:
            counts[p.get_partition(key)] += 1
        assert max(counts) < 2 * (1000 / 4)

    def test_two_instances_never_equal(self):
        # Spark-R's defining property: a fresh RangePartitioner per RDD
        # breaks co-partitioning even on identical samples.
        keys = list(range(100))
        assert RangePartitioner(4, keys) != RangePartitioner(4, keys)

    def test_instance_equal_to_itself(self):
        p = RangePartitioner(4, range(100))
        assert p == p

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            RangePartitioner(4, [])

    def test_tiny_sample_collapses_partitions(self):
        p = RangePartitioner(8, [1])
        assert p.num_partitions <= 2
