"""Tests for StarkContext wiring and configuration."""

import pytest

from repro import StarkConfig, StarkContext
from repro.cluster.cluster import Cluster
from repro.cluster.cost_model import CostModel, SimStr

from ..conftest import make_pairs


class TestConstruction:
    def test_default_components_wired(self):
        sc = StarkContext(num_workers=3)
        assert len(sc.cluster) == 3
        assert sc.locality_manager is not None
        assert sc.group_manager is not None
        assert sc.dag_scheduler is not None
        assert sc.task_scheduler is not None

    def test_custom_cluster(self):
        cluster = Cluster(num_workers=2, cores_per_worker=8)
        sc = StarkContext(cluster=cluster)
        assert sc.cluster is cluster
        assert sc.cluster.total_cores() == 16

    def test_cost_model_with_cluster_rejected(self):
        cluster = Cluster(num_workers=2)
        with pytest.raises(ValueError, match="via the Cluster"):
            StarkContext(cluster=cluster, cost_model=CostModel())

    def test_storage_fraction_bounds_cache(self):
        sc = StarkContext(
            num_workers=1, memory_per_worker=1e9,
            config=StarkConfig(storage_memory_fraction=0.5),
        )
        assert sc.block_manager_master.stores[0].capacity_bytes == 5e8

    def test_rdd_ids_unique(self):
        sc = StarkContext(num_workers=1)
        a = sc.parallelize([1], 1)
        b = sc.parallelize([1], 1)
        assert a.rdd_id != b.rdd_id
        assert sc.get_rdd(a.rdd_id) is a

    def test_now_tracks_clock(self):
        sc = StarkContext(num_workers=1)
        sc.cluster.clock.advance_to(7.0)
        assert sc.now == 7.0


class TestRDDCreation:
    def test_parallelize_with_partitioner_routes(self):
        from repro.engine.partitioner import HashPartitioner

        part = HashPartitioner(4)
        sc = StarkContext(num_workers=2)
        rdd = sc.parallelize(make_pairs(40), 4, partitioner=part)
        assert rdd.partitioner == part
        for pid, records in enumerate(rdd.collect_partitions()):
            assert all(part.get_partition(k) == pid for k, _ in records)

    def test_parallelize_partitioner_count_mismatch(self):
        from repro.engine.partitioner import HashPartitioner

        sc = StarkContext(num_workers=2)
        with pytest.raises(ValueError):
            sc.parallelize(make_pairs(10), 4, partitioner=HashPartitioner(2))

    def test_generated_read_cost_validation(self):
        sc = StarkContext(num_workers=2)
        with pytest.raises(ValueError):
            sc.generated(lambda pid: [], 2, read_cost="tape")

    def test_text_file_deterministic_lineage(self):
        sc = StarkContext(num_workers=2)
        rdd = sc.text_file(lambda pid: [f"line-{pid}-{i}" for i in range(5)], 3)
        assert rdd.count() == 15
        assert sorted(rdd.collect()) == sorted(rdd.collect())


class TestDiagnostics:
    def test_cached_bytes(self):
        sc = StarkContext(num_workers=2)
        rdd = sc.parallelize(make_pairs(100), 2).cache()
        assert sc.cached_bytes() == 0.0
        rdd.count()
        assert sc.cached_bytes() > 0

    def test_describe_cluster(self):
        sc = StarkContext(num_workers=2)
        text = sc.describe_cluster()
        assert "worker 0" in text and "worker 1" in text


class TestSimStr:
    def test_behaves_like_str(self):
        s = SimStr("hello world", sim_size=5000)
        assert "world" in s
        assert s.split() == ["hello", "world"]
        assert len(s) == 11

    def test_sim_size_accounted(self):
        from repro.cluster.cost_model import RecordSizer

        sizer = RecordSizer()
        plain = sizer.size_of("hello world")
        simmed = sizer.size_of(SimStr("hello world", sim_size=5000))
        assert simmed == sizer.base + 5000
        assert plain < simmed

    def test_defaults_to_real_length(self):
        s = SimStr("abc")
        assert s.sim_size == 3

    def test_in_memory_overhead(self):
        from repro.cluster.cost_model import RecordSizer

        sizer = RecordSizer(memory_overhead=2.5)
        records = [SimStr("x", sim_size=100)]
        assert sizer.in_memory_size(records) == pytest.approx(
            2.5 * sizer.size_of_partition(records)
        )


class TestElasticConfigValidation:
    def make(self, **kwargs):
        from repro.engine.context import StarkConfig

        return StarkConfig(**kwargs)

    def test_unset_bounds_accept_anything(self):
        self.make().validate_elastic(4)

    def test_valid_window_accepts(self):
        self.make(min_workers=2, max_workers=8).validate_elastic(4)

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            self.make(min_workers=0).validate_elastic(4)
        with pytest.raises(ValueError):
            self.make(max_workers=0).validate_elastic(4)

    def test_min_above_max_rejected(self):
        with pytest.raises(ValueError):
            self.make(min_workers=5, max_workers=2).validate_elastic(3)

    def test_initial_outside_window_rejected(self):
        with pytest.raises(ValueError):
            self.make(min_workers=4).validate_elastic(2)
        with pytest.raises(ValueError):
            self.make(max_workers=4).validate_elastic(6)

    def test_one_sided_bounds(self):
        self.make(min_workers=2).validate_elastic(100)
        self.make(max_workers=8).validate_elastic(1)
