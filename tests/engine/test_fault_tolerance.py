"""Retries, blacklisting, and fetch-failure stage resubmission."""

from __future__ import annotations

import pytest

from repro import StarkConfig, StarkContext
from repro.cluster.cluster import Cluster
from repro.engine.failure import FailureInjector
from repro.engine.fault_tolerance import (
    BlacklistTracker,
    FetchFailedError,
    retry_backoff,
)
from repro.obs.events import (
    ExecutorBlacklisted,
    FetchFailed,
    StageResubmitted,
    TaskRetried,
)


def make_context(seed: int = 3, **config_kwargs) -> StarkContext:
    config = StarkConfig(**config_kwargs)
    cluster = Cluster(num_workers=4, cores_per_worker=2,
                      memory_per_worker=1e9, seed=seed)
    return StarkContext(cluster=cluster, config=config)


def collect_events(sc: StarkContext, types):
    events = []
    sc.event_bus.subscribe(
        lambda e: events.append(e) if isinstance(e, types) else None)
    return events


class TestRetryBackoff:
    def test_exponential_growth(self):
        assert retry_backoff(0.5, 1, 0.0, 0.0) == 0.5
        assert retry_backoff(0.5, 2, 0.0, 0.0) == 1.0
        assert retry_backoff(0.5, 3, 0.0, 0.0) == 2.0

    def test_jitter_is_multiplicative(self):
        assert retry_backoff(0.5, 3, 0.2, 0.5) == pytest.approx(0.5 * 4 * 1.1)

    def test_zero_base_disables_backoff(self):
        assert retry_backoff(0.0, 5, 0.2, 0.9) == 0.0


class TestTaskRetries:
    def test_failed_attempts_are_retried_and_results_correct(self):
        sc = make_context(task_failure_prob=0.15)
        retried = collect_events(sc, TaskRetried)
        data = list(range(500))
        result = sorted(sc.parallelize(data, 16)
                        .map(lambda x: x + 1).collect())
        assert result == [x + 1 for x in data]
        job = sc.metrics.last_job()
        failed = [t for t in job.tasks if t.status == "failed"]
        assert failed, "15% failure prob over 16 tasks should fail some"
        assert len(retried) == len(failed)
        for t in failed:
            assert t.duration > 0  # partial work is still charged

    def test_retry_lands_on_different_worker_when_possible(self):
        sc = make_context(task_failure_prob=0.3)
        for _ in range(4):
            sc.parallelize(list(range(200)), 8).count()
        for job in sc.metrics.jobs:
            by_partition = {}
            for t in job.tasks:
                by_partition.setdefault((t.stage_id, t.partition),
                                        []).append(t)
            for attempts in by_partition.values():
                attempts.sort(key=lambda t: t.attempt)
                for prev, cur in zip(attempts, attempts[1:]):
                    if prev.status == "failed" and not cur.speculative:
                        assert cur.worker_id != prev.worker_id

    def test_job_aborts_at_max_task_failures(self):
        sc = make_context(task_failure_prob=1.0, max_task_failures=3,
                          task_retry_backoff=0.01)
        with pytest.raises(RuntimeError, match="failed"):
            sc.parallelize(list(range(100)), 4).count()

    def test_results_identical_with_and_without_failures(self):
        outputs = []
        for prob in (0.0, 0.25):
            sc = make_context(seed=9, task_failure_prob=prob,
                              max_task_failures=10)
            data = [(i % 7, i) for i in range(400)]
            rdd = sc.parallelize(data, 8).reduce_by_key(lambda a, b: a + b)
            outputs.append(sorted(rdd.collect()))
        assert outputs[0] == outputs[1]


class TestBlacklist:
    def test_trips_at_exact_threshold(self):
        tracker = BlacklistTracker(max_failures_per_executor_stage=2,
                                   max_failures_per_executor=4,
                                   blacklist_timeout=60.0)
        assert tracker.record_failure(1, 10, now=0.0) == []
        tripped = tracker.record_failure(1, 10, now=1.0)
        assert tripped == [(1, 10, 2, 61.0)]
        assert tracker.is_blacklisted(1, 10, now=1.0)
        assert not tracker.is_blacklisted(1, 11, now=1.0)
        assert not tracker.is_blacklisted(2, 10, now=1.0)

    def test_app_level_trip_excludes_all_stages(self):
        tracker = BlacklistTracker(max_failures_per_executor_stage=2,
                                   max_failures_per_executor=4,
                                   blacklist_timeout=60.0)
        for stage, now in ((10, 0.0), (11, 1.0), (12, 2.0)):
            tracker.record_failure(1, stage, now)
        tripped = tracker.record_failure(1, 13, now=3.0)
        assert (1, -1, 4, 63.0) in tripped
        assert tracker.is_blacklisted(1, 99, now=3.0)

    def test_expiry_restores_eligibility_and_resets_counters(self):
        tracker = BlacklistTracker(max_failures_per_executor_stage=2,
                                   max_failures_per_executor=4,
                                   blacklist_timeout=60.0)
        tracker.record_failure(1, 10, now=0.0)
        tracker.record_failure(1, 10, now=0.0)
        assert tracker.is_blacklisted(1, 10, now=59.9)
        assert not tracker.is_blacklisted(1, 10, now=60.1)
        # counters reset on expiry: one more failure must NOT re-trip
        assert tracker.record_failure(1, 10, now=61.0) == []
        assert not tracker.is_blacklisted(1, 10, now=61.0)

    def test_blacklisted_until_reports_latest_scope(self):
        tracker = BlacklistTracker(max_failures_per_executor_stage=2,
                                   max_failures_per_executor=4,
                                   blacklist_timeout=60.0)
        tracker.record_failure(1, 10, now=0.0)
        tracker.record_failure(1, 10, now=5.0)
        assert tracker.blacklisted_until(1, 10, now=5.0) == 65.0
        assert tracker.blacklisted_until(1, 11, now=5.0) == 0.0
        assert tracker.blacklisted_until(1, 10, now=70.0) == 0.0

    def test_scheduler_posts_blacklist_events(self):
        sc = make_context(task_failure_prob=0.5,
                          max_failures_per_executor_stage=1,
                          max_task_failures=8,
                          task_retry_backoff=0.001)
        events = collect_events(sc, ExecutorBlacklisted)
        sc.parallelize(list(range(300)), 12).count()
        assert events, "50% failures with threshold 1 must blacklist"
        for e in events:
            assert e.until > e.time


class TestFetchFailureResubmission:
    def _shuffle_rdd(self, sc):
        data = [(i % 5, i) for i in range(300)]
        return sc.parallelize(data, 8).reduce_by_key(lambda a, b: a + b)

    def test_dead_server_triggers_stage_resubmission(self):
        sc = make_context(external_shuffle_service=False)
        fetch_events = collect_events(sc, FetchFailed)
        resubmits = collect_events(sc, StageResubmitted)
        rdd = self._shuffle_rdd(sc)
        expected = sorted(rdd.collect())
        FailureInjector(sc).kill_worker(1)
        again = sorted(rdd.collect())
        assert again == expected
        assert fetch_events and resubmits
        assert all(e.worker_id == 1 for e in fetch_events)
        assert all(e.attempt >= 1 for e in resubmits)

    def test_external_shuffle_service_serves_dead_workers_outputs(self):
        sc = make_context()  # external_shuffle_service=True by default
        resubmits = collect_events(sc, StageResubmitted)
        rdd = self._shuffle_rdd(sc)
        expected = sorted(rdd.collect())
        FailureInjector(sc).kill_worker(1)
        again = sorted(rdd.collect())
        assert again == expected
        assert resubmits == []  # outputs stayed servable: no resubmission

    def test_lose_disk_recomputes_proactively_without_fetch_failures(self):
        sc = make_context(external_shuffle_service=False)
        fetch_events = collect_events(sc, FetchFailed)
        rdd = self._shuffle_rdd(sc)
        expected = sorted(rdd.collect())
        FailureInjector(sc).kill_worker(1, lose_disk=True)
        again = sorted(rdd.collect())
        assert again == expected
        # unregistered outputs are recomputed up front by the DAG
        # scheduler, never discovered mid-reduce as fetch failures
        assert fetch_events == []

    def test_resubmission_bounded_by_max_stage_attempts(self):
        sc = make_context(external_shuffle_service=False,
                          max_stage_attempts=1)
        rdd = self._shuffle_rdd(sc)
        rdd.collect()
        FailureInjector(sc).kill_worker(1)
        # worker 1's outputs are gone and the single allowed attempt
        # cannot regenerate-and-retry, so the job must surface the error
        with pytest.raises(FetchFailedError):
            rdd.collect()

    def test_transient_fetch_failures_recover(self):
        # keep the per-fetch probability low: every resubmission re-rolls
        # every fetch, so a high rate would exhaust max_stage_attempts
        sc = make_context(seed=5, external_shuffle_service=False,
                          fetch_failure_prob=0.005, max_stage_attempts=10)
        fetch_events = collect_events(sc, FetchFailed)
        results = []
        for _ in range(6):
            rdd = self._shuffle_rdd(sc)
            results.append(sorted(rdd.collect()))
        assert all(r == results[0] for r in results)
        assert fetch_events, "5% fetch failures over 6 jobs should fire"
