"""Tests for delay scheduling and slot accounting."""

import pytest

from repro import StarkConfig, StarkContext
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


def small_context(**kwargs):
    defaults = dict(num_workers=3, cores_per_worker=2, memory_per_worker=1e9)
    defaults.update(kwargs)
    return StarkContext(**defaults)


class TestSlotAccounting:
    def test_no_slot_runs_two_tasks_at_once(self):
        sc = small_context()
        rdd = sc.parallelize(list(range(200)), 12).map(lambda x: x)
        rdd.count()
        job = sc.metrics.last_job()
        # Group task intervals by worker; within a worker at most
        # `cores` tasks may overlap at any instant.
        by_worker = {}
        for t in job.tasks:
            by_worker.setdefault(t.worker_id, []).append(t)
        for wid, tasks in by_worker.items():
            cores = sc.cluster.get_worker(wid).cores
            events = []
            for t in tasks:
                events.append((t.start_time, 1))
                events.append((t.finish_time, -1))
            events.sort()
            running = 0
            for _, delta in events:
                running += delta
                assert running <= cores

    def test_all_partitions_get_tasks(self):
        sc = small_context()
        rdd = sc.parallelize(list(range(100)), 7).map(lambda x: x)
        rdd.count()
        job = sc.metrics.last_job()
        assert sorted(t.partition for t in job.tasks) == list(range(7))

    def test_makespan_reflects_parallelism(self):
        serial = small_context(num_workers=1, cores_per_worker=1)
        parallel = small_context(num_workers=4, cores_per_worker=2)
        for ctx in (serial, parallel):
            rdd = ctx.parallelize(make_pairs(4000), 8).map(lambda kv: kv)
            rdd.count()
        assert parallel.metrics.last_job().makespan < \
            serial.metrics.last_job().makespan

    def test_tasks_start_after_submit_time(self):
        sc = small_context()
        sc.cluster.clock.advance_to(100.0)
        rdd = sc.parallelize(list(range(10)), 2)
        rdd.count()
        job = sc.metrics.last_job()
        assert all(t.start_time >= 100.0 for t in job.tasks)
        assert job.submit_time == 100.0

    def test_second_job_queues_behind_first(self):
        sc = small_context(num_workers=1, cores_per_worker=1)
        rdd1 = sc.parallelize(make_pairs(3000), 2).map(lambda kv: kv)
        rdd1.count()
        first_finish = sc.metrics.last_job().finish_time
        rdd2 = sc.parallelize(make_pairs(10), 2)
        # Submitted at time 0 but the only slot is busy until first_finish.
        sc.run_job(rdd2, len, submit_time=0.0)
        job2 = sc.metrics.last_job()
        assert min(t.start_time for t in job2.tasks) >= 0.0
        assert job2.finish_time >= first_finish


class TestDelayScheduling:
    def test_waits_for_preferred_worker(self):
        """With locality_wait large, tasks wait for their cached worker
        instead of running remotely."""
        config = StarkConfig(locality_wait=10.0)
        sc = small_context(config=config)
        rdd = sc.parallelize(make_pairs(1000), 3).partition_by(
            HashPartitioner(3)
        ).cache()
        rdd.count()
        rdd.count()
        job = sc.metrics.last_job()
        assert all(t.locality == "PROCESS_LOCAL" for t in job.tasks)

    def test_zero_wait_allows_immediate_remote(self):
        config = StarkConfig(locality_wait=0.0, locality_enabled=False,
                             mcf_enabled=False, replication_enabled=False)
        sc = small_context(config=config)
        rdd = sc.parallelize(make_pairs(100), 6).partition_by(
            HashPartitioner(6)
        ).cache()
        rdd.count()
        rdd.count()
        # With no wait, over-subscribed cached workers spill to ANY.
        # (Not asserted strictly: depends on placement; just must finish.)
        assert sc.metrics.last_job().makespan >= 0

    def test_dead_preferred_worker_does_not_block(self):
        sc = small_context()
        rdd = sc.parallelize(make_pairs(100), 3).partition_by(
            HashPartitioner(3)
        ).cache()
        rdd.count()
        victim = sc.metrics.last_job().tasks[0].worker_id
        sc.cluster.kill_worker(victim)
        sc.block_manager_master.lose_worker(victim)
        rdd.count()  # must not hang waiting for the dead worker
        job = sc.metrics.last_job()
        assert all(t.worker_id != victim for t in job.tasks)

    def test_no_alive_workers_raises(self):
        sc = small_context(num_workers=1)
        sc.cluster.kill_worker(0)
        rdd = sc.parallelize([1, 2], 2)
        with pytest.raises(RuntimeError, match="no alive workers"):
            rdd.count()


class TestDriverOverhead:
    def test_many_tiny_tasks_hit_driver_dispatch(self):
        """Fig 7's right side: driver dispatch serializes task launches,
        so thousands of tiny tasks are slower than dozens."""
        few = small_context(num_workers=8, cores_per_worker=4)
        many = small_context(num_workers=8, cores_per_worker=4)
        few.parallelize(list(range(256)), 16).map(lambda x: x).count()
        many.parallelize(list(range(256)), 256).map(lambda x: x).count()
        assert many.metrics.last_job().makespan > \
            few.metrics.last_job().makespan
