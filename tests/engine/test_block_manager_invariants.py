"""Randomized invariants of the block stores and the location index.

Satellite of the cache subsystem PR: under any interleaving of puts,
gets, removes, RDD unpersists and worker losses — and under any eviction
policy — the byte accounting and the master's per-RDD location index
must exactly mirror the stores' contents.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.policy import POLICY_NAMES, make_policy
from repro.engine.block_manager import Block, BlockManagerMaster

WORKERS = [0, 1, 2]
CAPACITY = 100.0


def op_strategy():
    rdd_ids = st.integers(0, 3)
    pids = st.integers(0, 3)
    return st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(0, 2), rdd_ids, pids,
                      st.floats(min_value=1, max_value=70)),
            st.tuples(st.just("get"), st.integers(0, 2), rdd_ids, pids),
            st.tuples(st.just("remove_block"), rdd_ids, pids),
            st.tuples(st.just("remove_rdd"), rdd_ids),
            st.tuples(st.just("lose_worker"), st.integers(0, 2)),
        ),
        max_size=80,
    )


def apply_ops(master, ops):
    lost_workers = set()
    for op in ops:
        if op[0] == "put":
            _, wid, rdd_id, pid, size = op
            if wid in lost_workers:
                continue
            master.put(wid, Block((rdd_id, pid), ["r"], size))
        elif op[0] == "get":
            _, wid, rdd_id, pid = op
            if wid not in lost_workers:
                master.get_local(wid, (rdd_id, pid))
        elif op[0] == "remove_block":
            master.remove_block((op[1], op[2]))
        elif op[0] == "remove_rdd":
            master.remove_rdd(op[1])
        else:
            master.lose_worker(op[1])
            lost_workers.add(op[1])


def check_invariants(master):
    resident = {}  # block_id -> workers actually holding it
    for wid, store in master.stores.items():
        block_ids = store.block_ids()
        # Byte accounting: exact sum of resident sizes, within capacity.
        assert store.used_bytes == pytest.approx(
            sum(store.peek(b).size_bytes for b in block_ids))
        assert store.used_bytes <= store.capacity_bytes + 1e-9
        # The policy's membership mirror matches the store.
        assert len(store.policy) == len(store)
        for bid in block_ids:
            resident.setdefault(bid, set()).add(wid)
    # Location map: exactly the resident blocks, no stale or missing entries.
    for bid, workers in resident.items():
        assert master.locations(bid) == workers
    all_rdds = {bid[0] for bid in resident}
    for rdd_id in all_rdds | set(range(4)):
        expected = {bid[1] for bid in resident if bid[0] == rdd_id}
        assert master.cached_partitions_of(rdd_id) == expected
        assert (rdd_id in all_rdds) == bool(expected)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@settings(max_examples=60, deadline=None)
@given(ops=op_strategy())
def test_store_and_index_invariants(policy_name, ops):
    refs = {0: 2, 1: 0, 2: 5, 3: 1}
    costs = {0: 0.5, 1: 0.0, 2: 4.0, 3: 0.1}
    master = BlockManagerMaster(
        WORKERS, lambda wid: CAPACITY,
        policy_factory=lambda wid: make_policy(
            policy_name,
            ref_fn=lambda bid: refs.get(bid[0], 0),
            cost_fn=lambda rdd_id: costs.get(rdd_id, 0.0),
        ),
    )
    apply_ops(master, ops)
    check_invariants(master)
