"""Tests for the engine's locality semantics — the behaviours §II-B of
the paper builds its argument on.

1. A partition cached locally is read from RAM (cheap).
2. A partition cached only remotely is NOT fetched: the stage recomputes
   from the shuffle outputs (expensive) — Spark-1.3's rule.
3. Co-located collections cogroup without any shuffle fetch.
"""


from repro import StarkConfig, StarkContext
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


def build_collection(sc, n_rdds, locality, num_partitions=4, records=400):
    part = HashPartitioner(num_partitions)
    rdds = []
    for i in range(n_rdds):
        base = sc.parallelize(make_pairs(records, num_keys=50), num_partitions)
        if locality:
            rdd = base.locality_partition_by(part, namespace="col")
        else:
            rdd = base.partition_by(part)
        rdd.cache()
        rdd.count()
        rdds.append(rdd)
    return rdds


class TestCacheLocality:
    def test_local_cache_hit_avoids_recompute(self, sc):
        rdd = sc.parallelize(make_pairs(200), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        rdd.count()
        rdd.count()
        job = sc.metrics.last_job()
        assert all(t.cache_hits > 0 for t in job.tasks)
        assert all(t.recomputed_partitions == 0 for t in job.tasks)

    def test_no_remote_cache_fetch(self):
        """A task without local cache recomputes from the shuffle — it
        must never read another executor's cache."""
        sc = StarkContext(
            num_workers=4, cores_per_worker=2, memory_per_worker=1e9,
            config=StarkConfig(locality_enabled=False, mcf_enabled=False,
                               replication_enabled=False),
        )
        rdds = build_collection(sc, 3, locality=False)
        cg = rdds[0].cogroup(*rdds[1:])
        cg.count()
        job = sc.metrics.last_job()
        # Some input partition of some task was cached only remotely;
        # that shows up as shuffle fetch + recompute, not as a free read.
        missed = [t for t in job.tasks if t.cache_misses > 0]
        assert missed, "expected at least one task to miss its local cache"
        assert all(t.shuffle_fetch_time > 0 for t in missed)

    def test_colocality_eliminates_fetch(self, sc):
        rdds = build_collection(sc, 3, locality=True)
        cg = rdds[0].cogroup(*rdds[1:])
        cg.count()
        job = sc.metrics.last_job()
        assert all(t.shuffle_fetch_time == 0 for t in job.tasks)
        assert all(t.locality == "PROCESS_LOCAL" for t in job.tasks)

    def test_colocality_speeds_up_cogroup(self):
        def run(locality):
            config = StarkConfig(
                locality_enabled=locality, mcf_enabled=locality,
                replication_enabled=locality,
            )
            sc = StarkContext(num_workers=4, cores_per_worker=2,
                              memory_per_worker=1e9, config=config)
            rdds = build_collection(sc, 4, locality=locality, records=2000)
            cg = rdds[0].cogroup(*rdds[1:])
            cg.count()
            return sc.metrics.last_job().makespan

        spark_delay = run(False)
        stark_delay = run(True)
        assert stark_delay < spark_delay

    def test_namespace_carries_through_narrow_transforms(self, sc):
        part = HashPartitioner(4)
        base = sc.parallelize(make_pairs(50), 4).locality_partition_by(
            part, "ns1"
        )
        derived = base.filter(lambda kv: True).map_values(lambda v: v)
        assert derived.namespace == "ns1"

    def test_namespace_not_carried_through_shuffle(self, sc):
        part = HashPartitioner(4)
        base = sc.parallelize(make_pairs(50), 4).locality_partition_by(
            part, "ns1"
        )
        shuffled = base.map(lambda kv: (kv[1], kv[0])).partition_by(
            HashPartitioner(2)
        )
        assert shuffled.namespace is None

    def test_collection_partitions_land_on_pinned_workers(self, sc):
        rdds = build_collection(sc, 3, locality=True)
        manager = sc.locality_manager
        bmm = sc.block_manager_master
        for pid in range(4):
            pinned = set(manager.preferred_executors("col", pid))
            for rdd in rdds:
                locs = bmm.locations((rdd.rdd_id, pid))
                assert locs, f"partition {pid} of {rdd} not cached"
                assert locs <= pinned | locs  # cached at least somewhere
                assert pinned & locs, (
                    f"partition {pid} cached on {locs}, pinned {pinned}"
                )

    def test_collection_partition_alignment(self, sc):
        """All RDDs of the namespace cache partition p on one worker."""
        rdds = build_collection(sc, 4, locality=True)
        bmm = sc.block_manager_master
        for pid in range(4):
            location_sets = [bmm.locations((r.rdd_id, pid)) for r in rdds]
            common = set.intersection(*location_sets)
            assert common, f"collection partition {pid} has no common worker"


class TestLocalityLevels:
    def test_tasks_prefer_cached_workers(self, sc):
        rdd = sc.parallelize(make_pairs(100), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        rdd.count()
        rdd.count()
        job = sc.metrics.last_job()
        assert all(t.locality == "PROCESS_LOCAL" for t in job.tasks)

    def test_uncached_first_job_runs_any(self, sc):
        rdd = sc.parallelize(list(range(40)), 4).map(lambda x: x)
        rdd.count()
        job = sc.metrics.last_job()
        assert all(t.locality == "ANY" for t in job.tasks)
