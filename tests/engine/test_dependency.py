"""Tests for dependency types and grouped dependencies."""


from repro.engine.dependency import (
    GroupedDependency,
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


class TestOneToOne:
    def test_maps_identity(self, sc):
        rdd = sc.parallelize([1], 4)
        dep = OneToOneDependency(rdd)
        assert dep.get_parents(2) == [2]


class TestRangeDependency:
    def test_inside_range(self, sc):
        rdd = sc.parallelize([1], 3)
        dep = RangeDependency(rdd, in_start=0, out_start=5, length=3)
        assert dep.get_parents(5) == [0]
        assert dep.get_parents(7) == [2]

    def test_outside_range_empty(self, sc):
        rdd = sc.parallelize([1], 3)
        dep = RangeDependency(rdd, in_start=0, out_start=5, length=3)
        assert dep.get_parents(4) == []
        assert dep.get_parents(8) == []


class TestGroupedDependency:
    def test_explicit_mapping(self, sc):
        rdd = sc.parallelize([1], 8)
        dep = GroupedDependency(rdd, {0: [0, 1, 2], 1: [3]})
        assert dep.get_parents(0) == [0, 1, 2]
        assert dep.get_parents(1) == [3]
        assert dep.get_parents(2) == []


class TestShuffleDependency:
    def test_unique_shuffle_ids(self, sc):
        rdd = sc.parallelize(make_pairs(10), 2)
        part = HashPartitioner(2)
        a = ShuffleDependency(rdd, part)
        b = ShuffleDependency(rdd, part)
        assert a.shuffle_id != b.shuffle_id

    def test_map_side_combine_requires_aggregator(self, sc):
        rdd = sc.parallelize(make_pairs(10), 2)
        dep = ShuffleDependency(rdd, HashPartitioner(2), aggregator=None,
                                map_side_combine=True)
        assert not dep.map_side_combine

    def test_map_side_combine_with_aggregator(self, sc):
        rdd = sc.parallelize(make_pairs(10), 2)
        dep = ShuffleDependency(rdd, HashPartitioner(2),
                                aggregator=lambda a, b: a + b,
                                map_side_combine=True)
        assert dep.map_side_combine

    def test_map_side_combine_shrinks_shuffle(self, sc):
        """With many duplicate keys, map-side combining must reduce the
        bytes written to the shuffle."""
        data = [("k", 1)] * 400

        def run(combine):
            from repro import StarkContext

            ctx = StarkContext(num_workers=2, cores_per_worker=2)
            rdd = ctx.parallelize(data, 4)
            if combine:
                out = rdd.reduce_by_key(lambda a, b: a + b,
                                        HashPartitioner(2))
            else:
                out = rdd.partition_by(HashPartitioner(2))
            out.count()
            return sum(
                t.shuffle_bytes_written
                for j in ctx.metrics.jobs for t in j.tasks
            )

        assert run(combine=True) < run(combine=False) / 10
