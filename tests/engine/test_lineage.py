"""Tests for the lineage-graph utilities."""

import pytest

from repro.engine.lineage import (
    ancestors,
    lineage_depth,
    recovery_cut,
    shuffle_boundaries,
    summarize,
    to_dot,
)
from repro.engine.partitioner import HashPartitioner

from ..conftest import make_pairs


@pytest.fixture
def chain(sc):
    base = sc.parallelize(make_pairs(40), 4, name="src")
    shuffled = base.partition_by(HashPartitioner(4), name="shuffled")
    mapped = shuffled.map_values(lambda v: v + 1, name="mapped").cache()
    filtered = mapped.filter(lambda kv: True, name="filtered")
    return base, shuffled, mapped, filtered


class TestTraversal:
    def test_ancestors_topological(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        order = [r.rdd_id for r in ancestors(filtered)]
        assert order.index(base.rdd_id) < order.index(shuffled.rdd_id)
        assert order.index(shuffled.rdd_id) < order.index(mapped.rdd_id)
        assert filtered.rdd_id not in order

    def test_ancestors_include_self(self, sc, chain):
        *_, filtered = chain
        order = ancestors(filtered, include_self=True)
        assert order[-1] is filtered

    def test_ancestors_dedup_diamond(self, sc):
        base = sc.parallelize(make_pairs(10), 2, name="base")
        left = base.map_values(lambda v: v)
        right = base.filter(lambda kv: True)
        joined = left.cogroup(right, partitioner=HashPartitioner(2))
        ids = [r.rdd_id for r in ancestors(joined)]
        assert ids.count(base.rdd_id) == 1

    def test_depth(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        assert lineage_depth(base) == 0
        assert lineage_depth(filtered) == 3

    def test_shuffle_boundaries(self, sc, chain):
        *_, filtered = chain
        assert len(shuffle_boundaries(filtered)) == 1


class TestSummary:
    def test_summarize_counts(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        summary = summarize(filtered)
        assert summary.num_rdds == 4
        assert summary.depth == 3
        assert summary.num_shuffles == 1
        assert summary.num_cached == 1
        assert summary.num_checkpointed == 0

    def test_summarize_checkpoint_and_namespace(self, sc):
        part = HashPartitioner(4)
        rdd = sc.parallelize(make_pairs(20), 4).locality_partition_by(
            part, "ns"
        )
        rdd.count()
        rdd.force_checkpoint()
        summary = summarize(rdd.filter(lambda kv: True))
        assert summary.num_checkpointed == 1
        assert summary.namespaces == ["ns"]


class TestDot:
    def test_dot_contains_nodes_and_edges(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        dot = to_dot([filtered])
        assert dot.startswith("digraph lineage {")
        for rdd in chain:
            assert f"r{rdd.rdd_id}" in dot
        assert "style=dashed" in dot  # the shuffle edge

    def test_dot_marks_cached_and_checkpointed(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        mapped.count()
        mapped.force_checkpoint()
        dot = to_dot([filtered])
        assert "fillcolor" in dot      # cached
        assert "peripheries=2" in dot  # checkpointed

    def test_dot_empty(self):
        assert to_dot([]) == "digraph lineage {\n}"

    def test_dot_custom_label(self, sc, chain):
        *_, filtered = chain
        dot = to_dot([filtered], label=lambda r: f"X{r.rdd_id}X")
        assert f"X{filtered.rdd_id}X" in dot


class TestRecoveryCut:
    def test_cut_stops_at_shuffle(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        cut = recovery_cut(filtered)
        # Recovery reads the shuffle outputs produced from `base`.
        assert [r.rdd_id for r in cut] == [base.rdd_id]

    def test_cut_stops_at_checkpoint(self, sc, chain):
        base, shuffled, mapped, filtered = chain
        mapped.count()
        mapped.force_checkpoint()
        cut = recovery_cut(filtered)
        assert [r.rdd_id for r in cut] == [mapped.rdd_id]

    def test_cut_at_source(self, sc):
        rdd = sc.parallelize(make_pairs(10), 2, name="src")
        derived = rdd.map_values(lambda v: v)
        cut = recovery_cut(derived)
        assert [r.rdd_id for r in cut] == [rdd.rdd_id]
