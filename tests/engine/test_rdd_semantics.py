"""RDD transformation semantics tested against plain-Python references.

These are the engine's correctness tests: every transformation's result
must equal what the equivalent Python code produces, regardless of how
partitioning, caching, and scheduling distribute the work.
"""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.partitioner import HashPartitioner, StaticRangePartitioner

from ..conftest import make_pairs

pairs_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20), st.integers()),
    max_size=60,
)


class TestBasicActions:
    def test_count(self, sc):
        rdd = sc.parallelize(list(range(100)), 4)
        assert rdd.count() == 100

    def test_collect_preserves_multiset(self, sc):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        rdd = sc.parallelize(data, 3)
        assert Counter(rdd.collect()) == Counter(data)

    def test_collect_partitions_cover_data(self, sc):
        data = list(range(10))
        parts = sc.parallelize(data, 3).collect_partitions()
        assert len(parts) == 3
        assert sorted(x for part in parts for x in part) == data

    def test_take(self, sc):
        rdd = sc.parallelize(list(range(100)), 4)
        assert len(rdd.take(5)) == 5

    def test_empty_partitions_allowed(self, sc):
        rdd = sc.parallelize([1], 4)
        assert rdd.count() == 1


class TestNarrowTransforms:
    def test_map(self, sc):
        rdd = sc.parallelize([1, 2, 3], 2).map(lambda x: x * 10)
        assert sorted(rdd.collect()) == [10, 20, 30]

    def test_filter(self, sc):
        rdd = sc.parallelize(list(range(20)), 4).filter(lambda x: x % 2 == 0)
        assert sorted(rdd.collect()) == list(range(0, 20, 2))

    def test_flat_map(self, sc):
        rdd = sc.parallelize([1, 2], 2).flat_map(lambda x: [x] * x)
        assert sorted(rdd.collect()) == [1, 2, 2]

    def test_map_partitions(self, sc):
        rdd = sc.parallelize(list(range(10)), 2).map_partitions(
            lambda part: [sum(part)]
        )
        assert sum(rdd.collect()) == sum(range(10))

    def test_chained_transforms(self, sc):
        rdd = (
            sc.parallelize(list(range(50)), 4)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(lambda x: x * 2)
        )
        expected = [(x + 1) * 2 for x in range(50) if (x + 1) % 3 == 0]
        assert sorted(rdd.collect()) == sorted(expected)

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3, 4, 5], 3)
        u = a.union(b)
        assert u.num_partitions == 5
        assert sorted(u.collect()) == [1, 2, 3, 4, 5]

    def test_distinct(self, sc):
        rdd = sc.parallelize([1, 1, 2, 2, 3], 3).distinct()
        assert sorted(rdd.collect()) == [1, 2, 3]

    def test_keys_values(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2)], 2)
        assert sorted(rdd.keys().collect()) == ["a", "b"]
        assert sorted(rdd.values().collect()) == [1, 2]

    @given(data=st.lists(st.integers(), max_size=50))
    @settings(max_examples=20, deadline=None)
    def test_map_filter_equivalence(self, data):
        from repro import StarkContext

        sc = StarkContext(num_workers=2, cores_per_worker=2)
        rdd = sc.parallelize(data, 3).map(lambda x: x * 2).filter(lambda x: x > 0)
        expected = [x * 2 for x in data if x * 2 > 0]
        assert Counter(rdd.collect()) == Counter(expected)


class TestShuffleTransforms:
    def test_partition_by_routes_all_keys(self, sc):
        data = make_pairs(100)
        part = HashPartitioner(4)
        rdd = sc.parallelize(data, 4).partition_by(part)
        parts = rdd.collect_partitions()
        for pid, records in enumerate(parts):
            for key, _ in records:
                assert part.get_partition(key) == pid
        assert Counter(r for part_ in parts for r in part_) == Counter(data)

    def test_partition_by_same_partitioner_is_noop(self, sc):
        part = HashPartitioner(4)
        rdd = sc.parallelize(make_pairs(20), 4, partitioner=part)
        assert rdd.partition_by(part) is rdd

    def test_reduce_by_key(self, sc):
        data = make_pairs(100, num_keys=7)
        rdd = sc.parallelize(data, 4).reduce_by_key(lambda a, b: a + b)
        expected = defaultdict(int)
        for k, v in data:
            expected[k] += v
        assert dict(rdd.collect()) == dict(expected)

    def test_reduce_by_key_on_prepartitioned_is_narrow(self, sc):
        part = HashPartitioner(4)
        rdd = sc.parallelize(make_pairs(40), 4).partition_by(part)
        reduced = rdd.reduce_by_key(lambda a, b: a + b, part)
        assert not reduced.shuffle_dependencies()
        expected = defaultdict(int)
        for k, v in make_pairs(40):
            expected[k] += v
        assert dict(reduced.collect()) == dict(expected)

    def test_group_by_key(self, sc):
        data = [("a", 1), ("b", 2), ("a", 3)]
        rdd = sc.parallelize(data, 2).group_by_key(HashPartitioner(2))
        result = {k: sorted(v) for k, v in rdd.collect()}
        assert result == {"a": [1, 3], "b": [2]}

    def test_range_partition_orders_partitions(self, sc):
        part = StaticRangePartitioner.uniform(0, 100, 4)
        data = [(k, k) for k in range(100)]
        rdd = sc.parallelize(data, 4).partition_by(part)
        parts = rdd.collect_partitions()
        maxes = [max(k for k, _ in p) for p in parts if p]
        assert maxes == sorted(maxes)


class TestCoGroupAndJoin:
    def test_cogroup_two_rdds(self, sc):
        a = sc.parallelize([("k1", 1), ("k2", 2)], 2)
        b = sc.parallelize([("k1", 10), ("k3", 30)], 2)
        result = dict(a.cogroup(b).collect())
        assert sorted(result["k1"][0]) == [1]
        assert sorted(result["k1"][1]) == [10]
        assert result["k2"] == ([2], [])
        assert result["k3"] == ([], [30])

    def test_cogroup_many_rdds(self, sc):
        part = HashPartitioner(3)
        rdds = [
            sc.parallelize([(f"k{j}", i) for j in range(5)], 3).partition_by(part)
            for i in range(4)
        ]
        result = dict(rdds[0].cogroup(*rdds[1:]).collect())
        assert len(result) == 5
        for key, groups in result.items():
            assert len(groups) == 4
            assert [g[0] for g in groups] == [0, 1, 2, 3]

    def test_cogroup_copartitioned_is_narrow(self, sc):
        part = HashPartitioner(4)
        a = sc.parallelize(make_pairs(20), 4).partition_by(part)
        b = sc.parallelize(make_pairs(20), 4).partition_by(part)
        cg = a.cogroup(b)
        assert not cg.shuffle_dependencies()

    def test_cogroup_mismatched_partitioner_shuffles(self, sc):
        part = HashPartitioner(4)
        a = sc.parallelize(make_pairs(20), 4).partition_by(part)
        b = sc.parallelize(make_pairs(20), 4)  # unpartitioned
        cg = a.cogroup(b, partitioner=part)
        assert len(cg.shuffle_dependencies()) == 1

    def test_join(self, sc):
        a = sc.parallelize([("k1", 1), ("k2", 2), ("k1", 5)], 2)
        b = sc.parallelize([("k1", "x"), ("k2", "y"), ("k4", "z")], 2)
        result = sorted(a.join(b).collect())
        assert result == [("k1", (1, "x")), ("k1", (5, "x")), ("k2", (2, "y"))]

    @given(pairs_strategy, pairs_strategy)
    @settings(max_examples=15, deadline=None)
    def test_join_matches_reference(self, left, right):
        from repro import StarkContext

        sc = StarkContext(num_workers=2, cores_per_worker=2)
        a = sc.parallelize(left, 3)
        b = sc.parallelize(right, 2)
        result = Counter(a.join(b).collect())
        expected = Counter(
            (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
        )
        assert result == expected


class TestCaching:
    def test_cached_rdd_returns_same_results(self, sc):
        rdd = sc.parallelize(list(range(50)), 4).map(lambda x: x * 2).cache()
        first = sorted(rdd.collect())
        second = sorted(rdd.collect())
        assert first == second == [x * 2 for x in range(50)]

    def test_cache_makes_second_job_faster(self, sc):
        rdd = sc.parallelize(make_pairs(500), 4).partition_by(
            HashPartitioner(4)
        ).cache()
        rdd.count()
        first = sc.metrics.last_job().makespan
        rdd.count()
        second = sc.metrics.last_job().makespan
        assert second < first

    def test_unpersist_removes_blocks(self, sc):
        rdd = sc.parallelize(list(range(10)), 2).cache()
        rdd.count()
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id)
        rdd.unpersist()
        assert not sc.block_manager_master.cached_partitions_of(rdd.rdd_id)

    def test_shuffle_stage_skipped_on_second_job(self, sc):
        rdd = sc.parallelize(make_pairs(50), 4).partition_by(HashPartitioner(4))
        rdd.count()
        rdd.count()
        assert sc.metrics.last_job().skipped_stages == 1


class TestCoalesceAndRepartition:
    def test_coalesce_preserves_data(self, sc):
        data = list(range(50))
        rdd = sc.parallelize(data, 8).coalesce(3)
        assert rdd.num_partitions == 3
        assert sorted(rdd.collect()) == data

    def test_coalesce_is_narrow(self, sc):
        rdd = sc.parallelize(list(range(10)), 4).coalesce(2)
        assert not rdd.shuffle_dependencies()
        rdd.count()
        assert sc.metrics.last_job().num_stages == 1

    def test_coalesce_cannot_grow(self, sc):
        with pytest.raises(ValueError, match="cannot grow"):
            sc.parallelize([1, 2], 2).coalesce(4)

    def test_coalesce_drops_partitioner(self, sc):
        part = HashPartitioner(4)
        routed = sc.parallelize(make_pairs(20), 4).partition_by(part)
        assert routed.coalesce(2).partitioner is None

    def test_coalesce_uneven_split_covers_all(self, sc):
        rdd = sc.parallelize(list(range(35)), 7).coalesce(3)
        parts = rdd.collect_partitions()
        assert sum(len(p) for p in parts) == 35
        assert all(p for p in parts)

    def test_repartition_shuffles(self, sc):
        rdd = sc.parallelize(make_pairs(40), 2).repartition(6)
        assert rdd.num_partitions == 6
        assert len(rdd.shuffle_dependencies()) == 1
        assert Counter(rdd.collect()) == Counter(make_pairs(40))
