"""Tests for machine-readable benchmark result files."""

import json

import pytest

from repro.bench.results import (
    BENCH_DIR_ENV,
    bench_json_path,
    write_bench_json,
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv(BENCH_DIR_ENV, raising=False)


class TestBenchJsonPath:
    def test_none_without_env_or_directory(self):
        assert bench_json_path("x") is None

    def test_env_variable_names_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        assert bench_json_path("fig19") == tmp_path / "BENCH_fig19.json"

    def test_explicit_directory_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BENCH_DIR_ENV, "/elsewhere")
        assert bench_json_path("x", tmp_path) == tmp_path / "BENCH_x.json"

    def test_empty_env_treated_as_unset(self, monkeypatch):
        monkeypatch.setenv(BENCH_DIR_ENV, "")
        assert bench_json_path("x") is None


class TestWriteBenchJson:
    def test_skips_when_no_target(self):
        assert write_bench_json("x", {"a": 1}) is None

    def test_round_trips_payload(self, tmp_path):
        payload = {"config": {"hours": 12}, "p95": 0.435}
        path = write_bench_json("elastic_diurnal", payload, tmp_path)
        assert path == tmp_path / "BENCH_elastic_diurnal.json"
        assert json.loads(path.read_text()) == payload

    def test_creates_missing_directory(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        path = write_bench_json("x", {}, target)
        assert path.exists()

    def test_env_driven_write(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
        path = write_bench_json("y", {"k": [1, 2]})
        assert path == tmp_path / "BENCH_y.json"
        assert json.loads(path.read_text()) == {"k": [1, 2]}

    def test_output_is_stable_between_runs(self, tmp_path):
        first = write_bench_json("z", {"b": 1, "a": 2}, tmp_path).read_text()
        second = write_bench_json("z", {"a": 2, "b": 1}, tmp_path).read_text()
        assert first == second
