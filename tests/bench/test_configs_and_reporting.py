"""Tests for the benchmark configuration factory and table rendering."""

import pytest

from repro.bench.configs import (
    ALL_CONFIGS,
    SPARK_H,
    SPARK_R,
    STARK_E,
    STARK_H,
    STARK_S,
    ClusterSpec,
    make_context,
    make_setup,
)
from repro.bench.reporting import format_table, print_comparison
from repro.core.extendable_partitioner import ExtendablePartitioner
from repro.engine.partitioner import HashPartitioner, StaticRangePartitioner


SPEC = ClusterSpec(num_workers=4, cores_per_worker=2, memory_per_worker=1e9)


class TestMakeContext:
    def test_spark_configs_disable_stark_features(self):
        for name in (SPARK_R, SPARK_H):
            ctx = make_context(name, SPEC)
            assert not ctx.config.locality_enabled
            assert not ctx.config.mcf_enabled
            assert not ctx.config.replication_enabled

    def test_stark_configs_enable_features(self):
        for name in (STARK_H, STARK_S, STARK_E):
            ctx = make_context(name, SPEC)
            assert ctx.config.locality_enabled
            assert ctx.config.mcf_enabled

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration"):
            make_context("Spark-X", SPEC)

    def test_cluster_shape_matches_spec(self):
        ctx = make_context(STARK_H, SPEC)
        assert len(ctx.cluster) == 4
        assert ctx.cluster.total_cores() == 8


class TestMakeSetup:
    def test_spark_r_has_no_shared_partitioner(self):
        setup = make_setup(SPARK_R, SPEC)
        assert setup.partitioner is None
        assert setup.partition_mode == "range-per-rdd"
        assert not setup.locality

    def test_hash_configs_share_hash_partitioner(self):
        for name in (SPARK_H, STARK_H):
            setup = make_setup(name, SPEC, num_partitions=8)
            assert isinstance(setup.partitioner, HashPartitioner)
            assert setup.partitioner.num_partitions == 8

    def test_stark_s_uses_static_range(self):
        setup = make_setup(STARK_S, SPEC, num_partitions=8,
                           key_lo=0, key_hi=1024)
        assert isinstance(setup.partitioner, StaticRangePartitioner)

    def test_stark_e_uses_extendable(self):
        setup = make_setup(STARK_E, SPEC, groups=4, partitions_per_group=4,
                           key_lo=0, key_hi=1 << 16)
        assert isinstance(setup.partitioner, ExtendablePartitioner)
        assert setup.partitioner.num_partitions == 16

    def test_all_configs_constructible(self):
        for name in ALL_CONFIGS:
            setup = make_setup(name, SPEC, key_lo=0, key_hi=1 << 16)
            assert setup.name == name
            assert setup.context is not None


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table("Fig X", ["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert lines[0] == "== Fig X =="
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_format_table_floats(self):
        text = format_table("t", ["x"], [[1.23456]])
        assert "1.235" in text

    def test_print_comparison_lower_better(self, capsys):
        ratio = print_comparison("delay", "Spark", 4.0, "Stark", 1.0)
        assert ratio == pytest.approx(4.0)
        assert "4.00x" in capsys.readouterr().out

    def test_print_comparison_higher_better(self, capsys):
        ratio = print_comparison("throughput", "Spark", 10.0, "Stark", 60.0,
                                 higher_is_better=True)
        assert ratio == pytest.approx(6.0)
        capsys.readouterr()


class TestAsciiCharts:
    def test_sparkline_shape(self):
        from repro.bench.ascii_charts import sparkline

        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] != line[-1]

    def test_sparkline_flat_and_empty(self):
        from repro.bench.ascii_charts import sparkline

        assert sparkline([]) == ""
        flat = sparkline([5, 5, 5])
        assert len(set(flat)) == 1

    def test_bar_chart_scales(self):
        from repro.bench.ascii_charts import bar_chart

        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        from repro.bench.ascii_charts import bar_chart

        assert bar_chart([]) == "(no data)"

    def test_series_chart_contains_legend(self):
        from repro.bench.ascii_charts import series_chart

        chart = series_chart({"x": [1, 2, 3], "y": [3, 2, 1]})
        assert "*=x" in chart
        assert "o=y" in chart

    def test_series_chart_empty(self):
        from repro.bench.ascii_charts import series_chart

        assert series_chart({}) == "(no data)"
