"""Smoke tests for the experiment drivers at tiny scale.

The full calibrated runs (with shape assertions against the paper) live
in ``benchmarks/``; here we verify the drivers execute and their outputs
are structurally sound, quickly.
"""


from repro.bench.harness import (
    run_colocality,
    run_fig01,
    run_fig07,
    run_fig17,
    run_fig18,
    run_fig20,
    run_skew,
)


class TestFig01:
    def test_shape(self):
        result = run_fig01(file_bytes=40e6, line_bytes=10_000)
        # Cached D is near-instant; D- pays the reduce phase; C pays the
        # full load + shuffle.
        assert result.d_cached_delay < result.d_nolocality_delay
        assert result.d_nolocality_delay < result.c_count_delay


class TestFig07:
    def test_u_curve(self):
        points = run_fig07(partition_counts=(1, 8, 64, 1024),
                           file_bytes=50e6, line_bytes=100_000)
        delays = dict(points)
        assert delays[8] < delays[1]        # parallelism helps
        assert delays[1024] > delays[64]    # overhead eventually hurts


class TestColocality:
    def test_stark_h_beats_spark_h(self):
        results = run_colocality(
            rdd_counts=(3,), hour_bytes=100e6, queries_per_point=2,
        )
        by = {r.config: r for r in results}
        assert by["Stark-H"].job_delay < by["Spark-H"].job_delay

    def test_task_details_recorded(self):
        results = run_colocality(rdd_counts=(2,), hour_bytes=50e6,
                                 queries_per_point=1)
        for r in results:
            assert r.task_delays
            assert len(r.task_gc) == len(r.task_delays)


class TestSkew:
    def test_structure(self):
        results = run_skew(records_per_hour=800)
        configs = {r.config for r in results}
        assert configs == {"Stark-E", "Stark-S", "Spark-R"}
        for r in results:
            assert len(r.task_input_sizes) == len(r.task_delays)
            assert r.first_job_delay > 0

    def test_spark_r_pays_shuffle_every_job(self):
        results = run_skew(configs=("Spark-R",), records_per_hour=800)
        for r in results:
            # First and subsequent jobs both shuffle: similar delays.
            assert r.second_job_delay > 0.5 * r.first_job_delay
            assert sum(r.task_shuffle_times) > 0

    def test_stark_e_second_job_fast(self):
        results = run_skew(configs=("Stark-E",), records_per_hour=800)
        skewed = [r for r in results if r.collection != (0, 1, 2)]
        assert any(r.second_job_delay < r.first_job_delay for r in skewed)


class TestCheckpointDrivers:
    def test_fig17_constant_ratio(self):
        rows = run_fig17(num_steps=2, records_per_step=400)
        ratios = {cached / written for _, cached, written in rows if written}
        assert len(ratios) == 1

    def test_fig18_stark_below_edge(self):
        series = run_fig18(num_steps=6, records_per_step=600)
        totals = {s.policy: s.cumulative_bytes[-1] for s in series}
        assert totals["Stark-1"] < totals["Tachyon"]
        assert totals["Stark-3"] < totals["Tachyon"]

    def test_fig18_cumulative_nondecreasing(self):
        series = run_fig18(num_steps=5, records_per_step=400)
        for s in series:
            assert s.cumulative_bytes == sorted(s.cumulative_bytes)


class TestFig20:
    def test_diurnal_replay(self):
        points = run_fig20(configs=("Spark-H", "Stark-H"), hours=6,
                           steps_per_hour=1, jobs_per_step=2,
                           base_events_per_step=300)
        by = {}
        for p in points:
            by.setdefault(p.config, []).append(p.mean_delay)
        assert len(by["Spark-H"]) == 6
        # Stark-H mean over the day is below Spark-H's.
        import statistics

        assert statistics.fmean(by["Stark-H"]) < \
            statistics.fmean(by["Spark-H"])
