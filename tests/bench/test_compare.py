"""The CI perf-regression gate: ``python -m repro.bench.compare``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.compare import (
    Delta,
    compare_dirs,
    flatten_metrics,
    main,
    markdown_table,
    metric_direction,
)

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(autouse=True)
def _no_step_summary(monkeypatch):
    """Keep test runs from appending to a real CI job summary."""
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


def write_bench(directory: Path, name: str, payload: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


class TestFlatten:
    def test_nested_paths_and_config_skipped(self):
        payload = {"config": {"num_workers": 8},
                   "arms": {"on": {"p99_task_delay": 0.04, "ok": True}},
                   "hit_rate": 0.9}
        flat = dict(flatten_metrics(payload))
        assert flat == {"arms.on.p99_task_delay": 0.04, "hit_rate": 0.9}

    def test_direction_by_leaf_name(self):
        assert metric_direction("arms.on.p99_task_delay") == -1
        assert metric_direction("speculation_on.mean_makespan") == -1
        assert metric_direction("hit_rate") == +1
        assert metric_direction("p99_improvement") == +1
        assert metric_direction("evictions") == 0


class TestDelta:
    def test_lower_is_better_regression(self):
        d = Delta("b", "p99_task_delay", 0.040, 0.048, threshold=0.15)
        assert d.regressed
        d = Delta("b", "p99_task_delay", 0.040, 0.045, threshold=0.15)
        assert not d.regressed  # +12.5% is inside a 15% threshold

    def test_higher_is_better_regression(self):
        assert Delta("b", "hit_rate", 0.90, 0.70, threshold=0.15).regressed
        assert not Delta("b", "hit_rate", 0.90, 0.85,
                         threshold=0.15).regressed

    def test_improvement_never_regresses(self):
        assert not Delta("b", "p99_task_delay", 0.040, 0.001,
                         threshold=0.15).regressed
        assert not Delta("b", "hit_rate", 0.5, 0.99,
                         threshold=0.15).regressed

    def test_untracked_metric_never_fails(self):
        assert not Delta("b", "evictions", 10, 1000,
                         threshold=0.15).regressed

    def test_missing_tracked_value_fails_loud(self):
        assert Delta("b", "p99_task_delay", 0.04, None,
                     threshold=0.15).regressed
        assert Delta("b", "p99_task_delay", None, 0.04,
                     threshold=0.15).regressed


class TestCompareDirs:
    def test_committed_fixture_pair_regresses(self):
        deltas, problems = compare_dirs(
            FIXTURES / "baseline", FIXTURES / "regressed", threshold=0.15)
        assert problems == []
        regressed = [d for d in deltas if d.regressed]
        assert [d.path for d in regressed] == ["arms.fast.p99_task_delay"]

    def test_identity_is_clean(self):
        deltas, problems = compare_dirs(
            FIXTURES / "baseline", FIXTURES / "baseline", threshold=0.15)
        assert problems == []
        assert not any(d.regressed for d in deltas)

    def test_missing_current_file_is_a_problem(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        _, problems = compare_dirs(FIXTURES / "baseline", empty,
                                   threshold=0.15)
        assert any("produced no" in p for p in problems)

    def test_unbaselined_benchmark_is_a_problem(self, tmp_path):
        write_bench(tmp_path / "cur", "novel", {"makespan": 1.0})
        _, problems = compare_dirs(FIXTURES / "baseline", tmp_path / "cur",
                                   threshold=0.15)
        assert any("no committed baseline" in p for p in problems)


class TestOnlyFilter:
    """``--only``: gate a named subset (the sim-kernel smoke job)."""

    def seed(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_bench(base, "a", {"makespan": 1.0})
        write_bench(base, "b", {"makespan": 2.0})
        write_bench(cur, "a", {"makespan": 1.0})
        return base, cur

    def test_absent_unnamed_baseline_is_not_a_problem(self, tmp_path):
        base, cur = self.seed(tmp_path)
        deltas, problems = compare_dirs(base, cur, threshold=0.15,
                                        only=["a"])
        assert problems == []
        assert {d.bench for d in deltas} == {"a"}

    def test_without_only_the_missing_result_fails(self, tmp_path):
        base, cur = self.seed(tmp_path)
        _, problems = compare_dirs(base, cur, threshold=0.15)
        assert any("'b'" in p for p in problems)

    def test_only_still_gates_the_named_benchmark(self, tmp_path):
        base, cur = self.seed(tmp_path)
        write_bench(cur, "a", {"makespan": 2.0})  # +100%
        deltas, problems = compare_dirs(base, cur, threshold=0.15,
                                        only=["a"])
        assert problems == []
        assert any(d.regressed for d in deltas)

    def test_only_with_unknown_name_is_a_problem(self, tmp_path):
        base, cur = self.seed(tmp_path)
        _, problems = compare_dirs(base, cur, threshold=0.15,
                                   only=["a", "nope"])
        assert any("nope" in p for p in problems)

    def test_cli_flag_parses_comma_list(self, tmp_path):
        base, cur = self.seed(tmp_path)
        assert main([str(base), str(cur), "--only", "a"]) == 0
        assert main([str(base), str(cur)]) == 1

    def test_update_baselines_respects_only(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_bench(cur, "a", {"makespan": 1.0})
        write_bench(cur, "b", {"makespan": 2.0})
        assert main([str(base), str(cur), "--update-baselines",
                     "--only", "b"]) == 0
        assert not (base / "BENCH_a.json").exists()
        assert (base / "BENCH_b.json").exists()


class TestMain:
    def test_exit_codes_on_fixture_pair(self, capsys):
        assert main([str(FIXTURES / "baseline"),
                     str(FIXTURES / "regressed")]) == 1
        assert main([str(FIXTURES / "baseline"),
                     str(FIXTURES / "baseline")]) == 0
        out = capsys.readouterr().out
        assert "Benchmark regression gate" in out

    def test_threshold_flag_widens_gate(self):
        # the fixture regression is +20%; a 25% threshold passes it
        assert main([str(FIXTURES / "baseline"), str(FIXTURES / "regressed"),
                     "--threshold", "0.25"]) == 0

    def test_table_out_written(self, tmp_path):
        table = tmp_path / "table.md"
        main([str(FIXTURES / "baseline"), str(FIXTURES / "regressed"),
              "--table-out", str(table)])
        text = table.read_text()
        assert "| benchmark | metric |" in text
        assert "❌ regressed" in text
        # untracked metrics stay out of the table
        assert "evictions" not in text

    def test_update_baselines_copies_current(self, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        write_bench(cur, "x", {"makespan": 1.0})
        assert main([str(base), str(cur), "--update-baselines"]) == 0
        assert json.loads(
            (base / "BENCH_x.json").read_text()) == {"makespan": 1.0}
        # and the refreshed baseline now gates cleanly
        assert main([str(base), str(cur)]) == 0

    def test_update_baselines_with_no_results_fails(self, tmp_path):
        cur = tmp_path / "cur"
        cur.mkdir()
        assert main([str(tmp_path / "base"), str(cur),
                     "--update-baselines"]) == 1

    def test_markdown_table_is_github_flavored(self):
        deltas, _ = compare_dirs(FIXTURES / "baseline",
                                 FIXTURES / "regressed", threshold=0.15)
        lines = markdown_table(deltas).splitlines()
        assert lines[0].startswith("| benchmark |")
        assert set(lines[1]) <= {"|", "-"}
        assert all(line.startswith("|") for line in lines)
