"""Unit tests for the harness's generators and helpers."""

import pytest

from repro.bench.harness import (
    KEY_SPACE,
    _lines_generator,
    _trending_raw,
    skewed_hour_generator,
)
from repro.engine.partitioner import StaticRangePartitioner


class TestLinesGenerator:
    def test_total_bytes_accounted(self):
        gen = _lines_generator(1e6, line_bytes=10_000, num_partitions=2)
        total = sum(line.sim_size for pid in range(2) for line in gen(pid))
        assert total == pytest.approx(1e6, rel=0.05)

    def test_deterministic(self):
        gen = _lines_generator(1e5, 10_000, 2)
        assert gen(0) == gen(0)

    def test_partitions_disjoint_and_complete(self):
        gen = _lines_generator(1e5, 10_000, 4)
        ids = [line.split(" ", 1)[0] for pid in range(4) for line in gen(pid)]
        assert len(ids) == len(set(ids))

    def test_contains_error_lines(self):
        gen = _lines_generator(1e6, 10_000, 2)
        lines = gen(0) + gen(1)
        errors = [line for line in lines if "ERROR" in line]
        assert 0 < len(errors) < len(lines)


class TestSkewedHourGenerator:
    def test_uniform_hours_spread(self):
        gen = skewed_hour_generator(0, 4, None, records_per_hour=2_000)
        keys = [k for pid in range(4) for k, _ in gen(pid)]
        # Uniform hour: no sixteenth of the key space dominates.
        top = max(
            sum(1 for k in keys if b * KEY_SPACE // 16 <= k <
                (b + 1) * KEY_SPACE // 16)
            for b in range(16)
        )
        assert top < len(keys) / 4

    def test_skewed_hours_concentrate(self):
        gen = skewed_hour_generator(5, 4, None, records_per_hour=2_000)
        keys = [k for pid in range(4) for k, _ in gen(pid)]
        top = max(
            sum(1 for k in keys if b * KEY_SPACE // 16 <= k <
                (b + 1) * KEY_SPACE // 16)
            for b in range(16)
        )
        assert top > len(keys) / 4

    def test_partitioner_routing(self):
        part = StaticRangePartitioner.uniform(0, KEY_SPACE, 8)
        gen = skewed_hour_generator(4, 8, part, records_per_hour=500)
        for pid in (0, 3, 7):
            for key, _payload in gen(pid):
                assert part.get_partition(key) == pid

    def test_payload_sim_size(self):
        gen = skewed_hour_generator(0, 2, None, records_per_hour=10,
                                    payload_bytes=9_999)
        _, payload = gen(0)[0]
        assert payload.sim_size == 9_999


class TestTrendingRaw:
    def test_zipf_head_dominates(self):
        raw = _trending_raw(records_per_step=3_000, num_keys=100)
        gen = raw(0, 4)
        counts = {}
        for pid in range(4):
            for key, _ in gen(pid):
                counts[key] = counts.get(key, 0) + 1
        top = max(counts.values())
        median = sorted(counts.values())[len(counts) // 2]
        assert top > 5 * median

    def test_deterministic_per_step(self):
        raw = _trending_raw(100)
        assert raw(2, 4)(1) == raw(2, 4)(1)
        assert raw(2, 4)(1) != raw(3, 4)(1)
