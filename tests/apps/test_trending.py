"""Tests for the Fig 16 trending application."""

import pytest

from repro.apps.trending import TrendingApp
from repro.workloads.distributions import seeded_rng


def raw_batches(records_per_step=120, num_keys=10):
    def raw_for_step(step, num_partitions):
        def generate(pid):
            rng = seeded_rng("trend", step, pid)
            return [
                (f"key{rng.randint(0, num_keys - 1)}", f"content-{step}-{i}")
                for i in range(pid, records_per_step, num_partitions)
            ]

        return generate

    return raw_for_step


class TestTrendingApp:
    def test_step_produces_all_named_rdds(self, sc):
        app = TrendingApp(sc, raw_batches(), num_partitions=4)
        rdds = app.run_step(0)
        names = set(rdds.named())
        assert names == {"kv", "cnt", "ctt", "ccnt", "acnt", "cctt",
                         "jall", "res", "dec"}

    def test_counts_sum_to_records(self, sc):
        app = TrendingApp(sc, raw_batches(100), num_partitions=4,
                          popular_threshold=0)
        rdds = app.run_step(0)
        counts = dict(rdds.cnt.collect())
        assert sum(counts.values()) == 100

    def test_decay_halves_counts(self, sc):
        app = TrendingApp(sc, raw_batches(100), num_partitions=4, decay=0.5)
        rdds = app.run_step(0)
        ccnt = dict(rdds.ccnt.collect())
        dec = dict(rdds.dec.collect())
        for key, value in ccnt.items():
            assert dec[key] == pytest.approx(value * 0.5)

    def test_steps_chain_through_dec(self, sc):
        """ccnt at step 1 = cnt(1) + decayed ccnt(0)."""
        app = TrendingApp(sc, raw_batches(100), num_partitions=4, decay=0.5)
        first = app.run_step(0)
        second = app.run_step(1)
        ccnt0 = dict(first.ccnt.collect())
        cnt1 = dict(second.cnt.collect())
        ccnt1 = dict(second.ccnt.collect())
        for key, value in ccnt1.items():
            expected = cnt1.get(key, 0) + 0.5 * ccnt0.get(key, 0.0)
            assert value == pytest.approx(expected)

    def test_acnt_filters_by_threshold(self, sc):
        app = TrendingApp(sc, raw_batches(100, num_keys=5), num_partitions=4,
                          popular_threshold=15)
        rdds = app.run_step(0)
        for key, count in rdds.acnt.collect():
            assert count >= 15

    def test_res_keys_subset_of_popular(self, sc):
        app = TrendingApp(sc, raw_batches(100, num_keys=5), num_partitions=4,
                          popular_threshold=10)
        rdds = app.run_step(0)
        popular = {k for k, _ in rdds.acnt.collect()}
        res_keys = {k for k, _ in rdds.res.collect()}
        assert res_keys <= popular

    def test_trending_sorted_descending(self, sc):
        app = TrendingApp(sc, raw_batches(200, num_keys=8), num_partitions=4,
                          popular_threshold=1)
        app.run(2)
        scores = [score for _, score in app.trending()]
        assert scores == sorted(scores, reverse=True)

    def test_frontier_is_res_and_dec(self, sc):
        app = TrendingApp(sc, raw_batches(), num_partitions=4)
        assert app.frontier_rdds() == []
        rdds = app.run_step(0)
        assert app.frontier_rdds() == [rdds.res, rdds.dec]

    def test_on_step_callback(self, sc):
        seen = []
        app = TrendingApp(sc, raw_batches(), num_partitions=4)
        app.run(3, on_step=lambda step, rdds: seen.append(step))
        assert seen == [0, 1, 2]

    def test_lineage_grows_across_steps(self, sc):
        from repro.core.checkpoint_optimizer import CheckpointOptimizer

        app = TrendingApp(sc, raw_batches(), num_partitions=4)
        opt = CheckpointOptimizer(sc, recovery_bound=1e9)
        app.run_step(0)
        nodes0 = opt.build_lineage(app.frontier_rdds())
        app.run_step(1)
        nodes1 = opt.build_lineage(app.frontier_rdds())
        assert len(nodes1) > len(nodes0)
