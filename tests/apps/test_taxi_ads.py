"""Tests for the taxi-advertising application."""

import random

import pytest

from repro.apps.taxi_ads import Campaign, TaxiAdsApp
from repro.core.extendable_partitioner import ExtendablePartitioner
from repro.engine.partitioner import StaticRangePartitioner
from repro.workloads.taxi import TaxiTrace, TaxiTraceConfig


@pytest.fixture
def trace():
    return TaxiTrace(TaxiTraceConfig(base_events_per_step=300))


def make_app(sc, trace, namespace="taxi", window=4):
    part = StaticRangePartitioner.uniform(0, trace.encoder.key_space(), 8)
    return TaxiAdsApp(sc, part, trace, namespace=namespace,
                      window_steps=window)


def reference_matches(trace, campaign, steps):
    count = 0
    for step in steps:
        for zkey, _event in trace.events_for_step_partition(step, 0, 1):
            if campaign.covers(zkey):
                count += 1
    return count


class TestCampaign:
    def test_covers_interval(self):
        c = Campaign(1, 10, 20, "ad")
        assert c.covers(10) and c.covers(20) and c.covers(15)
        assert not c.covers(9) and not c.covers(21)


class TestTaxiAdsApp:
    def test_ingest_creates_cached_step(self, sc, trace):
        app = make_app(sc, trace)
        rdd = app.ingest_step(0)
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id)

    def test_window_slides(self, sc, trace):
        app = make_app(sc, trace, window=3)
        for step in range(5):
            app.ingest_step(step)
        assert sorted(app.steps) == [2, 3, 4]

    def test_eviction_unpersists(self, sc, trace):
        app = make_app(sc, trace, window=2)
        first = app.ingest_step(0)
        app.ingest_step(1)
        app.ingest_step(2)
        assert not sc.block_manager_master.cached_partitions_of(first.rdd_id)

    def test_match_campaign_single_step(self, sc, trace):
        app = make_app(sc, trace)
        app.ingest_step(0)
        campaign = Campaign(1, 0, trace.encoder.key_space() - 1, "all")
        result = app.match_campaign(campaign)
        assert result.matched_events == trace.events_in_step(0)

    def test_match_campaign_multi_step_matches_reference(self, sc, trace):
        app = make_app(sc, trace)
        for step in range(3):
            app.ingest_step(step)
        rng = random.Random(5)
        lo, hi = trace.random_region_query(rng)
        campaign = Campaign(2, lo, hi, "region")
        result = app.match_campaign(campaign)
        assert result.matched_events == reference_matches(
            trace, campaign, [0, 1, 2]
        )

    def test_match_without_ingest_raises(self, sc, trace):
        app = make_app(sc, trace)
        with pytest.raises(RuntimeError):
            app.match_campaign(Campaign(0, 0, 10, "x"))

    def test_random_campaign_hotspot_biased(self, sc, trace):
        app = make_app(sc, trace)
        app.ingest_step(0)
        campaign = app.random_campaign(random.Random(7))
        assert 0 <= campaign.zkey_lo <= campaign.zkey_hi \
            < trace.encoder.key_space()

    def test_works_without_namespace(self, sc, trace):
        app = make_app(sc, trace, namespace=None)
        app.ingest_step(0)
        campaign = Campaign(1, 0, trace.encoder.key_space() - 1, "all")
        assert app.match_campaign(campaign).matched_events == \
            trace.events_in_step(0)

    def test_extendable_partitioner_enables_groups(self, sc, trace):
        part = ExtendablePartitioner.over_key_range(
            0, trace.encoder.key_space(), 4, 4
        )
        app = TaxiAdsApp(sc, part, trace, namespace="taxi-e")
        app.ingest_step(0)
        assert sc.group_manager.is_enabled("taxi-e")
