"""Tests for the log-mining application."""

import random

import pytest

from repro import StarkContext
from repro.apps.log_mining import LogMiningApp
from repro.workloads.wikipedia import WikipediaTrace, WikipediaTraceConfig


@pytest.fixture
def trace():
    return WikipediaTrace(WikipediaTraceConfig(
        base_requests_per_hour=600, num_articles=50,
    ))


def reference_matches(trace, keyword, hours, num_partitions=4):
    count = 0
    for hour in hours:
        for pid in range(num_partitions):
            for line in trace.lines_for_hour_partition(hour, pid, num_partitions):
                if keyword in line:
                    count += 1
    return count


class TestLogMiningApp:
    def test_invalid_mode_rejected(self, sc, trace):
        with pytest.raises(ValueError):
            LogMiningApp(sc, trace, 4, mode="bogus")

    def test_single_hour_query_matches_reference(self, sc, trace):
        app = LogMiningApp(sc, trace, 4, mode="stark")
        app.load_hour(0)
        keyword = "Article_00001"
        result = app.query(keyword, [0])
        assert result.matches == reference_matches(trace, keyword, [0])

    def test_multi_hour_query_matches_reference(self, sc, trace):
        app = LogMiningApp(sc, trace, 4, mode="stark")
        app.load_hours(range(3))
        keyword = "Article_00002"
        result = app.query(keyword, [0, 1, 2])
        assert result.matches == reference_matches(trace, keyword, [0, 1, 2])

    def test_all_modes_agree(self, trace):
        keyword = "Article_00000"
        counts = {}
        for mode in ("spark-r", "spark-h", "stark"):
            sc = StarkContext(num_workers=4, cores_per_worker=2)
            app = LogMiningApp(sc, trace, 4, mode=mode)
            app.load_hours(range(2))
            counts[mode] = app.query(keyword, [0, 1]).matches
        assert len(set(counts.values())) == 1

    def test_unloaded_hour_rejected(self, sc, trace):
        app = LogMiningApp(sc, trace, 4)
        app.load_hour(0)
        with pytest.raises(KeyError, match="not loaded"):
            app.query("x", [0, 1])

    def test_evict_hour(self, sc, trace):
        app = LogMiningApp(sc, trace, 4)
        rdd = app.load_hour(0)
        app.evict_hour(0)
        assert 0 not in app.hours
        assert not sc.block_manager_master.cached_partitions_of(rdd.rdd_id)

    def test_random_query(self, sc, trace):
        app = LogMiningApp(sc, trace, 4)
        app.load_hours(range(3))
        result = app.random_query(random.Random(1), window=2)
        assert len(result.hours) <= 2
        assert result.delay > 0

    def test_stark_mode_uses_namespace(self, sc, trace):
        app = LogMiningApp(sc, trace, 4, mode="stark", namespace="mine")
        app.load_hour(0)
        assert sc.locality_manager.has_namespace("mine")

    def test_spark_r_mode_uses_fresh_range_partitioners(self, sc, trace):
        app = LogMiningApp(sc, trace, 4, mode="spark-r")
        a = app.load_hour(0)
        b = app.load_hour(1)
        assert a.partitioner != b.partitioner

    def test_query_delay_recorded(self, sc, trace):
        app = LogMiningApp(sc, trace, 4)
        app.load_hours(range(2))
        result = app.query("Article", [0, 1])
        assert result.delay == sc.metrics.last_job().makespan
