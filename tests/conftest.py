"""Shared fixtures: small, fast contexts for unit/integration tests."""

from __future__ import annotations

import pytest

from repro import StarkConfig, StarkContext


@pytest.fixture
def sc() -> StarkContext:
    """Default small cluster with all Stark features enabled."""
    return StarkContext(num_workers=4, cores_per_worker=2,
                        memory_per_worker=1e9)


@pytest.fixture
def spark_sc() -> StarkContext:
    """Baseline context with Stark features disabled (plain Spark)."""
    return StarkContext(
        num_workers=4, cores_per_worker=2, memory_per_worker=1e9,
        config=StarkConfig(
            locality_enabled=False, mcf_enabled=False,
            replication_enabled=False,
        ),
    )


def make_pairs(n: int, num_keys: int = 10) -> list:
    """Simple deterministic (key, value) data used across tests."""
    return [(f"k{i % num_keys}", i) for i in range(n)]
