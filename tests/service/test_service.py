"""DatasetService end to end: async dispatch, admission, events,
determinism.

The capstone invariant is the determinism test: a full multi-tenant run
— fair-share dispatch, quotas biting, registry dedup, jobs shedding —
produces a byte-identical JSONL event log across two executions.
"""

import io
import json

import pytest

from repro import StarkConfig, StarkContext
from repro.obs import EventCollector, validate_event_dict
from repro.obs.events import (
    DatasetDropped,
    DatasetRegistered,
    PoolWeightsUpdated,
    TenantJobAdmitted,
    TenantJobShed,
    TenantJobSubmitted,
)
from repro.obs.listeners import JsonlEventLog, TenantStatsCollector
from repro.service import DatasetService


def make_sc(**config_kwargs):
    return StarkContext(
        num_workers=2, cores_per_worker=2, memory_per_worker=1e9,
        config=StarkConfig(**config_kwargs))


def pipeline(sc, source=0):
    def gen(pid, source=source):
        return [(pid * 100 + i, (i * 31 + source) % 97)
                for i in range(50)]

    return (sc.generated(gen, 4, read_cost="disk", name=f"src{source}")
            .map(lambda kv: (kv[0], kv[1] + 1)))


def count_job(sc, handle, name):
    def job(t, i):
        sc.run_job(handle.rdd, len, submit_time=t,
                   description=f"{name}-{i}")
        return sc.metrics.last_job().finish_time

    return job


class TestConfig:
    def test_service_validates_config(self):
        sc = make_sc(scheduling_policy="wfq")
        with pytest.raises(ValueError):
            DatasetService(sc)

    def test_config_knobs_flow_through(self):
        sc = make_sc(scheduling_policy="fifo", tenant_quota_mb=2.0)
        svc = DatasetService(sc)
        assert svc.pools.policy.name == "fifo"
        assert svc.quotas.default_quota_bytes == 2e6
        assert sc.cache_manager.quotas is svc.quotas

    def test_explicit_args_override_config(self):
        svc = DatasetService(make_sc(), scheduling_policy="fair",
                             default_quota_mb=1.0)
        assert svc.pools.policy.name == "fair"
        assert svc.quotas.quota_of("anyone") == 1e6

    def test_tenant_validation(self):
        svc = DatasetService(make_sc())
        svc.create_tenant("a")
        with pytest.raises(ValueError):
            svc.create_tenant("a")
        with pytest.raises(ValueError):
            svc.create_tenant("b", max_pending_jobs=0)
        with pytest.raises(KeyError):
            svc.submit("ghost", lambda t, i: t, 0.0)


class TestDispatch:
    def test_async_submission_runs_jobs_in_sim_time(self):
        sc = make_sc()
        svc = DatasetService(sc)
        svc.create_tenant("a")
        handle = svc.register_dataset("a", "events", pipeline(sc))
        svc.submit_arrivals("a", count_job(sc, handle, "a"),
                            [0.0, 0.1, 0.2])
        svc.run()
        result = svc.result_of("a")
        assert len(result.results) == 3
        assert all(r.finish >= r.arrival for r in result.results)
        # Arrival order preserved for a single tenant.
        arrivals = [r.arrival for r in result.results]
        assert arrivals == sorted(arrivals)

    def test_fair_share_interleaves_a_burst(self):
        """Tenant b's single job does not wait out tenant a's burst."""
        delays = {}
        for policy in ("fifo", "fair"):
            sc = make_sc(scheduling_policy=policy)
            svc = DatasetService(sc)
            svc.create_tenant("a")
            svc.create_tenant("b")
            ha = svc.register_dataset("a", "ds-a", pipeline(sc, 0))
            hb = svc.register_dataset("b", "ds-b", pipeline(sc, 1))
            svc.submit_arrivals("a", count_job(sc, ha, "a"),
                                [0.0] * 30)
            svc.submit("b", count_job(sc, hb, "b"), 0.001)
            svc.run()
            delays[policy] = svc.result_of("b").results[0].delay
        assert delays["fair"] < delays["fifo"] / 4

    def test_admission_control_sheds_beyond_bound(self):
        sc = make_sc()
        svc = DatasetService(sc)
        svc.create_tenant("a", max_pending_jobs=2)
        handle = svc.register_dataset("a", "events", pipeline(sc))
        svc.submit_arrivals("a", count_job(sc, handle, "a"),
                            [0.0] * 6)
        svc.run()
        result = svc.result_of("a")
        assert result.shed_jobs > 0
        assert len(result.results) + result.shed_jobs == 6


class TestEvents:
    def run_collected(self):
        sc = make_sc(tenant_quota_mb=4.0)
        collector = EventCollector()
        stats = TenantStatsCollector()
        sc.event_bus.subscribe(collector)
        sc.event_bus.subscribe(stats)
        svc = DatasetService(sc)
        svc.create_tenant("a", weight=2.0)
        svc.create_tenant("b", max_pending_jobs=1)
        ha = svc.register_dataset("a", "events", pipeline(sc, 0))
        hb = svc.register_dataset("b", "mirror", pipeline(sc, 0))
        svc.submit_arrivals("a", count_job(sc, ha, "a"), [0.0, 0.1])
        svc.submit_arrivals("b", count_job(sc, hb, "b"), [0.0] * 4)
        svc.run()
        ha.release(), hb.release()
        svc.drop_dataset("a", "events")
        svc.drop_dataset("b", "mirror")
        return collector, stats

    def test_service_events_posted(self):
        collector, stats = self.run_collected()
        assert len(collector.of_type(PoolWeightsUpdated)) == 2
        registered = collector.of_type(DatasetRegistered)
        assert [e.deduped for e in registered] == [False, True]
        assert len(collector.of_type(TenantJobSubmitted)) == 6
        shed = collector.of_type(TenantJobShed)
        assert shed and all(e.tenant == "b" for e in shed)
        assert (len(collector.of_type(TenantJobAdmitted)) + len(shed)
                == 6)
        dropped = collector.of_type(DatasetDropped)
        # The first drop defers (the shared RDD is still pinned by the
        # other name); the second one finally unpersists.
        assert [e.unpersisted for e in dropped] == [False, True]
        assert stats.summary()["b"]["shed"] == len(shed)

    def test_service_events_schema_valid(self):
        collector, _ = self.run_collected()
        for event in collector:
            record = json.loads(json.dumps(event.to_dict()))
            assert validate_event_dict(record) == [], event


def service_run(seed=7):
    """One full multi-tenant run; returns the JSONL event log bytes."""
    sc = make_sc(scheduling_policy="fair", tenant_quota_mb=1.0)
    sink = io.StringIO()
    log = JsonlEventLog(sink)
    sc.event_bus.subscribe(log)
    svc = DatasetService(sc)
    svc.create_tenant("a", weight=2.0, min_share=1)
    svc.create_tenant("b")
    svc.create_tenant("c", max_pending_jobs=2)
    ha = svc.register_dataset("a", "ds-a", pipeline(sc, 0))
    hb = svc.register_dataset("b", "ds-b", pipeline(sc, 0))  # dedup
    hc = svc.register_dataset("c", "ds-c", pipeline(sc, 1))
    svc.submit_arrivals("a", count_job(sc, ha, "a"),
                        [0.0, 0.01, 0.02, 0.5])
    svc.submit_arrivals("b", count_job(sc, hb, "b"), [0.0, 0.3])
    svc.submit_arrivals("c", count_job(sc, hc, "c"), [0.0] * 5)
    svc.run()
    ha.release(), hb.release(), hc.release()
    for tenant, name in (("a", "ds-a"), ("b", "ds-b"), ("c", "ds-c")):
        svc.drop_dataset(tenant, name)
    log.flush()
    return sink.getvalue()


class TestDeterminism:
    def test_event_log_byte_identical(self):
        first, second = service_run(), service_run()
        assert first  # the run actually logged something
        assert first == second
