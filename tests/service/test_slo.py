"""TenantSloMonitor: rolling percentiles, burn rates, and the alert
state machine, driven by synthetic TenantJobCompleted events."""

import pytest

from repro.obs import EventCollector
from repro.obs.bus import EventBus
from repro.obs.events import TenantJobCompleted, TenantSloAlert
from repro.service import (
    BUDGET_FRACTIONS,
    SloTarget,
    TenantSloMonitor,
    rolling_percentile,
)


def completed(t, tenant="t0", delay=0.1, index=0):
    return TenantJobCompleted(time=t, tenant=tenant, job_index=index,
                              arrival=t - delay, finish=t, delay=delay)


def feed(monitor, delays, tenant="t0"):
    for i, delay in enumerate(delays):
        monitor.on_event(completed(float(i), tenant=tenant, delay=delay,
                                   index=i))


class TestSloTarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloTarget(p95_seconds=0.0)
        with pytest.raises(ValueError):
            SloTarget(p95_seconds=1.0, p99_seconds=-1.0)
        with pytest.raises(ValueError):
            SloTarget(p95_seconds=1.0, window=0)
        with pytest.raises(ValueError):
            SloTarget(p95_seconds=1.0, min_jobs=0)
        with pytest.raises(ValueError):
            SloTarget(p95_seconds=1.0, burn_threshold=0.5)

    def test_objectives(self):
        assert SloTarget(p95_seconds=1.0).objectives() == [("p95", 1.0)]
        assert SloTarget(p95_seconds=1.0, p99_seconds=2.0).objectives() == [
            ("p95", 1.0), ("p99", 2.0)]


class TestRollingPercentile:
    def test_nearest_rank(self):
        sample = [float(i) for i in range(1, 101)]  # 1..100
        assert rolling_percentile(sample, 0.95) == 95.0
        assert rolling_percentile(sample, 0.99) == 99.0
        assert rolling_percentile(sample, 1.0) == 100.0

    def test_small_samples(self):
        assert rolling_percentile([3.0], 0.95) == 3.0
        assert rolling_percentile([5.0, 1.0], 0.5) == 1.0


class TestMonitor:
    def target(self, **kw):
        kw.setdefault("p95_seconds", 1.0)
        kw.setdefault("window", 20)
        kw.setdefault("min_jobs", 10)
        return SloTarget(**kw)

    def test_quiet_until_min_jobs(self):
        monitor = TenantSloMonitor(EventBus(),
                                   default_target=self.target())
        feed(monitor, [10.0] * 9)  # every job breaches, but sample small
        assert monitor.alerts == []
        feed(monitor, [10.0])  # the 10th arms the window
        assert len(monitor.alerts) == 1

    def test_fire_then_clear_edges(self):
        monitor = TenantSloMonitor(EventBus(),
                                   default_target=self.target())
        # 10 breaches fill the window: burn = 1.0/0.05 = 20 -> fire once.
        feed(monitor, [10.0] * 10)
        assert [a.cleared for a in monitor.alerts] == [False]
        alert = monitor.alerts[0]
        assert alert.metric == "p95"
        assert alert.burn_rate == pytest.approx(1.0 / BUDGET_FRACTIONS["p95"])
        assert alert.breaching_jobs == 10
        # 20 compliant jobs push every breach out of the window: burn
        # falls to 0 -> one cleared=True edge, no re-fires in between.
        feed(monitor, [0.1] * 20)
        assert [a.cleared for a in monitor.alerts] == [False, True]
        assert monitor.alerts_by_tenant == {"t0": 1}
        assert monitor.total_alerts() == 1

    def test_burn_below_threshold_never_fires(self):
        # One breach in 20 jobs: burn = 0.05/0.05 = 1.0 < threshold 2.0.
        monitor = TenantSloMonitor(EventBus(),
                                   default_target=self.target())
        feed(monitor, [0.1] * 19 + [10.0])
        assert monitor.alerts == []

    def test_p99_objective_tracked_separately(self):
        target = self.target(p99_seconds=5.0)
        monitor = TenantSloMonitor(EventBus(), default_target=target)
        # 2 of 20 jobs over both targets: p95 burn = 0.1/0.05 = 2.0
        # (fires), p99 burn = 0.1/0.01 = 10.0 (fires too).
        feed(monitor, [0.1] * 18 + [10.0, 10.0])
        assert sorted(a.metric for a in monitor.alerts) == ["p95", "p99"]
        assert monitor.alerts_by_tenant == {"t0": 2}

    def test_alerts_posted_on_bus(self):
        bus = EventBus()
        collector = bus.subscribe(EventCollector())
        monitor = bus.subscribe(TenantSloMonitor(
            bus, default_target=self.target()))
        for i in range(10):
            bus.post(completed(float(i), delay=10.0, index=i))
        alerts = [e for e in collector.events
                  if isinstance(e, TenantSloAlert)]
        assert len(alerts) == 1
        assert alerts[0] is monitor.alerts[0]

    def test_per_tenant_targets_and_isolation(self):
        monitor = TenantSloMonitor(EventBus(),
                                   default_target=self.target())
        monitor.set_target("vip", self.target(p95_seconds=100.0))
        assert monitor.target_of("vip").p95_seconds == 100.0
        assert monitor.target_of("anyone").p95_seconds == 1.0
        # Same delays: the default target breaches, the vip one doesn't.
        feed(monitor, [10.0] * 10, tenant="vip")
        feed(monitor, [10.0] * 10, tenant="batch")
        assert monitor.alerts_by_tenant == {"batch": 1}

    def test_unconfigured_tenant_ignored(self):
        monitor = TenantSloMonitor(EventBus())  # no default target
        feed(monitor, [10.0] * 10)
        assert monitor.alerts == []
        assert monitor.snapshot() == {}

    def test_window_trims_to_target(self):
        monitor = TenantSloMonitor(
            EventBus(), default_target=self.target(window=5, min_jobs=5))
        feed(monitor, [0.1] * 50)
        assert monitor.snapshot()["t0"]["jobs_in_window"] == 5

    def test_snapshot_fields(self):
        monitor = TenantSloMonitor(EventBus(),
                                   default_target=self.target())
        feed(monitor, [0.1] * 9 + [10.0])
        row = monitor.snapshot()["t0"]
        assert row["jobs_in_window"] == 10
        assert row["alerts"] == 1
        assert row["alerting"] == ["p95"]
        assert row["p95"] == 10.0
        assert row["p95_target"] == 1.0
        assert row["p95_burn"] == pytest.approx(0.1 / 0.05)
