"""Per-tenant cache quotas: accounting, admission, victim preference.

The isolation contract: enforcing tenant A's quota only ever displaces
tenant A's blocks — other tenants' cached data is untouched by A's
admission, and only *over-quota* tenants are nominated to the capacity
evictor ahead of the store's base policy.
"""

import pytest

from repro import StarkContext
from repro.service import TenantCacheQuotas


def make_sc(memory_per_worker=1e9):
    return StarkContext(num_workers=2, cores_per_worker=2,
                        memory_per_worker=memory_per_worker)


def cached_pipeline(sc, source, num_partitions=4, records=200):
    def gen(pid, source=source):
        return [(pid * 1000 + i, (i * 31 + source) % 997)
                for i in range(records)]

    rdd = sc.generated(gen, num_partitions, read_cost="disk",
                       name=f"src{source}").cache()
    return rdd


def attach(sc, default_quota_mb=0.0):
    quotas = TenantCacheQuotas(sc.block_manager_master,
                               default_quota_bytes=default_quota_mb * 1e6)
    sc.cache_manager.quotas = quotas
    return quotas


def block_ids(sc, rdd_id):
    master = sc.block_manager_master
    return [(rdd_id, p)
            for p in sorted(master.cached_partitions_of(rdd_id))]


class TestAccounting:
    def test_usage_tracks_inserts_and_removals(self):
        sc = make_sc()
        quotas = attach(sc)
        rdd = cached_pipeline(sc, 0)
        quotas.own(rdd.rdd_id, "a")
        sc.run_job(rdd, len)
        assert quotas.usage("a") == pytest.approx(sc.cached_bytes())
        assert quotas.usage("a") > 0
        sc.block_manager_master.remove_rdd(rdd.rdd_id)
        assert quotas.usage("a") == 0

    def test_unowned_rdds_exempt(self):
        sc = make_sc()
        quotas = attach(sc, default_quota_mb=0.001)  # 1 kB quota
        rdd = cached_pipeline(sc, 0)
        sc.run_job(rdd, len)  # never owned: quota does not apply
        assert sc.cached_bytes() > 1e3
        assert quotas.usage("a") == 0
        assert quotas.quota_rejections == 0

    def test_first_owner_wins(self):
        sc = make_sc()
        quotas = attach(sc)
        quotas.own(7, "a")
        quotas.own(7, "b")
        assert quotas.owner(7) == "a"

    def test_validation(self):
        sc = make_sc()
        with pytest.raises(ValueError):
            TenantCacheQuotas(sc.block_manager_master,
                              default_quota_bytes=-1.0)
        quotas = attach(sc)
        with pytest.raises(ValueError):
            quotas.set_quota("a", -5.0)


class TestAdmission:
    def test_quota_zero_is_unlimited(self):
        sc = make_sc()
        quotas = attach(sc, default_quota_mb=0.0)
        rdd = cached_pipeline(sc, 0)
        quotas.own(rdd.rdd_id, "a")
        sc.run_job(rdd, len)
        assert quotas.quota_evictions == 0
        assert quotas.quota_rejections == 0
        assert len(block_ids(sc, rdd.rdd_id)) == 4

    def test_over_quota_evicts_own_oldest_blocks(self):
        sc = make_sc()
        quotas = attach(sc)
        rdd = cached_pipeline(sc, 0)
        quotas.own(rdd.rdd_id, "a")
        sc.run_job(rdd, len)
        per_block = quotas.usage("a") / 4
        # Quota fits two blocks: caching a second dataset must displace
        # a's own oldest blocks, never reject outright.
        quotas.set_quota("a", per_block * 2.5)
        rdd2 = cached_pipeline(sc, 1)
        quotas.own(rdd2.rdd_id, "a")
        sc.run_job(rdd2, len)
        assert quotas.quota_evictions > 0
        assert quotas.usage("a") <= per_block * 2.5
        # Newest blocks (rdd2's) are resident; rdd1 was displaced.
        assert len(block_ids(sc, rdd2.rdd_id)) > 0
        assert len(block_ids(sc, rdd.rdd_id)) < 4

    def test_block_larger_than_quota_rejected(self):
        sc = make_sc()
        quotas = attach(sc)
        rdd = cached_pipeline(sc, 0)
        quotas.own(rdd.rdd_id, "a")
        quotas.set_quota("a", 10.0)  # 10 bytes: nothing fits
        sc.run_job(rdd, len)
        assert quotas.quota_rejections > 0
        assert block_ids(sc, rdd.rdd_id) == []
        assert quotas.usage("a") == 0

    def test_enforcement_never_touches_other_tenants(self):
        """The isolation contract, asserted block by block."""
        sc = make_sc()
        quotas = attach(sc)
        victim_candidate = cached_pipeline(sc, 0)
        quotas.own(victim_candidate.rdd_id, "b")
        sc.run_job(victim_candidate, len)
        b_blocks = set(block_ids(sc, victim_candidate.rdd_id))
        b_usage = quotas.usage("b")

        rdd1 = cached_pipeline(sc, 1)
        quotas.own(rdd1.rdd_id, "a")
        sc.run_job(rdd1, len)
        quotas.set_quota("a", quotas.usage("a") * 0.6)
        rdd2 = cached_pipeline(sc, 2)
        quotas.own(rdd2.rdd_id, "a")
        sc.run_job(rdd2, len)  # forces intra-tenant evictions for a

        assert quotas.quota_evictions > 0
        assert set(block_ids(sc, victim_candidate.rdd_id)) == b_blocks
        assert quotas.usage("b") == b_usage


class TestPreferredVictim:
    def test_nominates_over_quota_tenant_only(self):
        sc = make_sc()
        quotas = attach(sc)
        rdd_a = cached_pipeline(sc, 0)
        rdd_b = cached_pipeline(sc, 1)
        quotas.own(rdd_a.rdd_id, "a")
        quotas.own(rdd_b.rdd_id, "b")
        sc.run_job(rdd_a, len)
        sc.run_job(rdd_b, len)
        resident = (block_ids(sc, rdd_a.rdd_id)
                    + block_ids(sc, rdd_b.rdd_id))
        # Nobody over quota: defer to the base policy.
        assert quotas.preferred_victim(0, resident) is None
        # Push b over quota: its block is nominated, a's never.
        quotas.set_quota("b", 1.0)
        victim = quotas.preferred_victim(0, resident)
        assert victim is not None and victim[0] == rdd_b.rdd_id

    def test_capacity_pressure_evicts_over_quota_tenant_first(self):
        """End to end through the block store's eviction path: a tiny
        store under pressure picks the over-quota tenant's blocks while
        the compliant tenant's survive."""
        sc = make_sc(memory_per_worker=1e9)
        quotas = attach(sc)
        compliant = cached_pipeline(sc, 0, records=100)
        quotas.own(compliant.rdd_id, "a")
        sc.run_job(compliant, len)
        a_blocks = set(block_ids(sc, compliant.rdd_id))
        assert a_blocks

        # Shrink every store so the next dataset overflows capacity.
        used = sc.cached_bytes() / 2  # per worker, roughly
        for store in sc.block_manager_master.stores.values():
            store.capacity_bytes = used + 40_000
        hog = cached_pipeline(sc, 1, records=100)
        quotas.own(hog.rdd_id, "b")
        quotas.set_quota("b", 30_000)  # b is instantly over quota
        sc.run_job(hog, len)
        sc.run_job(hog, len)
        # Compliant tenant's blocks all survived the pressure.
        assert set(block_ids(sc, compliant.rdd_id)) == a_blocks
