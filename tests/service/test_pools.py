"""Fair-share pools: policy unit tests + hypothesis properties.

The two properties the scheduler promises:

* **no starvation** — under saturation, every backlogged pool is served
  within a bounded number of dispatches (roughly total_weight/weight);
* **weighted convergence** — over a saturated interval, each pool's
  share of dispatches converges to its weight share.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    FIFOSchedulingPolicy,
    FairSharePolicy,
    PoolSet,
    make_scheduling_policy,
)
from repro.service.pools import SCHEDULING_POLICY_NAMES


def drain(ps, service_time=1.0):
    """Dispatch until empty; returns the pool-name sequence."""
    order = []
    while True:
        selection = ps.select()
        if selection is None:
            return order
        pool, _ = selection
        ps.charge(pool, service_time)
        order.append(pool.name)


class TestPolicies:
    def test_factory(self):
        assert isinstance(make_scheduling_policy("fifo"),
                          FIFOSchedulingPolicy)
        assert isinstance(make_scheduling_policy("fair"), FairSharePolicy)
        with pytest.raises(ValueError):
            make_scheduling_policy("wfq")
        assert set(SCHEDULING_POLICY_NAMES) == {"fifo", "fair"}

    def test_fifo_is_global_arrival_order(self):
        ps = PoolSet("fifo")
        ps.create("a"), ps.create("b", weight=100.0)
        for name in ["a", "a", "b", "a", "b"]:
            ps.enqueue(name, name)
        assert drain(ps) == ["a", "a", "b", "a", "b"]

    def test_fair_interleaves_a_burst(self):
        ps = PoolSet("fair")
        ps.create("burst"), ps.create("light")
        for i in range(10):
            ps.enqueue("burst", i)
        ps.enqueue("light", "x")
        order = drain(ps)
        # The light pool's single job runs within the first two slots,
        # not behind the whole burst (which FIFO would do).
        assert order.index("light") <= 1

    def test_weight_two_gets_twice_the_service(self):
        ps = PoolSet("fair")
        ps.create("heavy", weight=2.0), ps.create("light", weight=1.0)
        for i in range(60):
            ps.enqueue("heavy", i), ps.enqueue("light", i)
        order = drain(ps)[:30]
        assert order.count("heavy") == 2 * order.count("light")

    def test_min_share_preempts_vruntime_order(self):
        ps = PoolSet("fair")
        ps.create("a", weight=100.0)
        ps.create("b", weight=1.0, min_share=1)
        ps.enqueue("a", 1), ps.enqueue("b", 2)
        # b is needy (running 0 < min_share 1) so it goes first even
        # though a's weight dwarfs it.
        pool, _ = ps.select()
        assert pool.name == "b"

    def test_idle_pool_vruntime_floored_on_wakeup(self):
        ps = PoolSet("fair")
        ps.create("busy"), ps.create("sleeper")
        for i in range(20):
            ps.enqueue("busy", i)
        drain(ps)
        # sleeper idled through all that service; on wakeup it must not
        # monopolize on its banked vruntime deficit.
        ps.enqueue("sleeper", "x")
        assert ps.pools["sleeper"].vruntime >= ps.pools["busy"].vruntime

    def test_validation(self):
        ps = PoolSet("fair")
        with pytest.raises(ValueError):
            ps.create("bad", weight=0.0)
        with pytest.raises(ValueError):
            ps.create("bad", min_share=-1)
        ps.create("a")
        with pytest.raises(ValueError):
            ps.create("a")
        with pytest.raises(ValueError):
            ps.set_weight("a", -1.0)


weights = st.lists(
    st.floats(min_value=0.25, max_value=8.0,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=5)


class TestFairShareProperties:
    @settings(max_examples=60, deadline=None)
    @given(weights=weights, backlog=st.integers(min_value=5, max_value=40))
    def test_no_nonempty_pool_starves(self, weights, backlog):
        """Under saturation every pool is served at least once per
        ~total_weight/weight dispatches (plus constant slack)."""
        ps = PoolSet("fair")
        names = [f"p{i}" for i in range(len(weights))]
        for name, w in zip(names, weights):
            ps.create(name, weight=w)
        for j in range(backlog):
            for name in names:
                ps.enqueue(name, j)
        order = drain(ps)
        assert len(order) == backlog * len(names)
        total_w = sum(weights)
        for name, w in zip(names, weights):
            bound = math.ceil(total_w / w) + len(names)
            positions = [i for i, n in enumerate(order) if n == name]
            gaps = [b - a for a, b in zip(positions, positions[1:])]
            assert max(gaps, default=0) <= bound, (
                f"{name} (weight {w}) starved: max gap "
                f"{max(gaps)} > {bound}")

    @settings(max_examples=60, deadline=None)
    @given(weights=weights)
    def test_shares_converge_to_weights(self, weights):
        """Dispatch counts over a saturated prefix track weight shares."""
        ps = PoolSet("fair")
        names = [f"p{i}" for i in range(len(weights))]
        backlog = 400
        for name, w in zip(names, weights):
            ps.create(name, weight=w)
        for j in range(backlog):
            for name in names:
                ps.enqueue(name, j)
        # Look only at a prefix where every pool is still backlogged.
        total_w = sum(weights)
        horizon = int(backlog * min(weights) / total_w * len(names))
        order = drain(ps)[:horizon]
        for name, w in zip(names, weights):
            expected = len(order) * w / total_w
            # CFS keeps lag bounded by one max-size quantum per pool:
            # served time differs by <= 1 job, so counts differ by
            # <= weight-ratio jobs (+1 rounding).
            slack = w * total_w / min(weights) / total_w + 2
            assert abs(order.count(name) - expected) <= slack, (
                f"{name}: {order.count(name)} dispatches, "
                f"expected ~{expected:.1f} (slack {slack:.1f})")

    @settings(max_examples=40, deadline=None)
    @given(weights=weights,
           jobs=st.lists(st.integers(min_value=0, max_value=4),
                         min_size=2, max_size=5))
    def test_everything_submitted_is_dispatched_once(self, weights, jobs):
        ps = PoolSet("fair")
        expected = []
        for i, w in enumerate(weights):
            ps.create(f"p{i}", weight=w)
            n = jobs[i % len(jobs)]
            for j in range(n):
                ps.enqueue(f"p{i}", (i, j))
                expected.append((i, j))
        dispatched = []
        while True:
            selection = ps.select()
            if selection is None:
                break
            pool, item = selection
            ps.charge(pool, 1.0)
            dispatched.append(item)
        assert sorted(dispatched) == sorted(expected)
        assert ps.total_queued() == 0
