"""DatasetRegistry: versions, handles, deferred unpersist, dedup.

The headline integration test proves the multi-tenant promise end to
end: tenant B registers the *same computation* tenant A already
materialized, the registry aliases B's handle onto A's RDD, and B's job
is served entirely from A's cached blocks (pure cache hits, zero new
misses).
"""

import pytest

from repro import StarkContext
from repro.engine.lineage import lineage_fingerprint
from repro.service import DatasetRegistry, parse_dataset_ref


def make_sc():
    return StarkContext(num_workers=2, cores_per_worker=2,
                        memory_per_worker=1e9)


def pipeline(sc, source=0, num_partitions=4):
    """A deterministic cached-worthy pipeline, identical across calls
    with the same ``source``."""
    def gen(pid, source=source):
        return [(pid * 100 + i, (i * 31 + source) % 97)
                for i in range(50)]

    return (sc.generated(gen, num_partitions, read_cost="disk",
                         name=f"src{source}")
            .map(lambda kv: (kv[0], kv[1] + 1)))


class TestParseRef:
    def test_bare_name(self):
        assert parse_dataset_ref("events") == ("events", None)

    def test_versioned(self):
        assert parse_dataset_ref("events@3") == ("events", 3)

    def test_name_containing_at(self):
        assert parse_dataset_ref("a@b@2") == ("a@b", 2)

    @pytest.mark.parametrize("bad", ["@3", "events@", "events@x"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_dataset_ref(bad)


class TestLifecycle:
    def test_register_versions_grow(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        h1 = reg.register("a", "events", pipeline(sc, 0))
        h2 = reg.register("a", "events", pipeline(sc, 1))
        assert (h1.version, h2.version) == (1, 2)
        assert reg.versions_of("events") == [1, 2]
        assert h1.ref == "events@1"

    def test_register_marks_cached(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        rdd = pipeline(sc)
        assert not rdd.cached
        reg.register("a", "events", rdd)
        assert rdd.cached

    def test_lookup_latest_and_pinned_version(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        h1 = reg.register("a", "events", pipeline(sc, 0))
        h2 = reg.register("a", "events", pipeline(sc, 1))
        assert reg.lookup("b", "events").version == 2
        assert reg.lookup("b", "events@1").rdd_id == h1.rdd_id
        with pytest.raises(KeyError):
            reg.lookup("b", "events@9")
        with pytest.raises(KeyError):
            reg.lookup("b", "nope")
        assert h2.rdd is sc.get_rdd(h2.rdd_id)

    def test_drop_defers_until_handles_release(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        handle = reg.register("a", "events", pipeline(sc))
        rdd_id = handle.rdd_id
        extra = reg.lookup("b", "events")
        # Drop retires the version but blocks stay pinned: the version
        # pin drains, the two handles' pins remain.
        assert reg.drop("a", "events") is False
        assert reg.pins_of(rdd_id) == 2
        assert reg.versions_of("events") == []
        handle.release()
        assert reg.pins_of(rdd_id) == 1
        extra.release()
        assert reg.pins_of(rdd_id) == 0
        assert not sc.get_rdd(rdd_id).cached

    def test_unpersist_frees_cached_blocks(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        handle = reg.register("a", "events", pipeline(sc))
        sc.run_job(handle.rdd, len)
        assert sc.cached_bytes() > 0
        reg.drop("a", "events")
        assert sc.cached_bytes() > 0  # handle still pins the blocks
        handle.release()
        assert sc.cached_bytes() == 0

    def test_release_is_idempotent_and_context_managed(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        with reg.register("a", "events", pipeline(sc)) as handle:
            assert reg.pins_of(handle.rdd_id) == 2
        assert reg.pins_of(handle.rdd_id) == 1
        handle.release()
        assert reg.pins_of(handle.rdd_id) == 1  # second release no-ops


class TestBranch:
    def test_branch_shares_rdd(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        base = reg.register("a", "events", pipeline(sc))
        fork = reg.branch("b", "events@1", "events-b")
        assert fork.rdd_id == base.rdd_id
        assert (fork.name, fork.version) == ("events-b", 1)
        assert reg.versions_of("events-b") == [1]

    def test_branch_keeps_blocks_alive_after_source_drop(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        base = reg.register("a", "events", pipeline(sc))
        fork = reg.branch("b", "events", "events-b")
        base.release()
        reg.drop("a", "events@1")
        assert sc.get_rdd(fork.rdd_id).cached  # branch still pins
        fork.release()
        assert reg.drop("b", "events-b") is True
        assert not sc.get_rdd(fork.rdd_id).cached

    def test_branch_name_collision(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        reg.register("a", "events", pipeline(sc))
        with pytest.raises(ValueError):
            reg.branch("b", "events", "events")


class TestDedup:
    def test_identical_pipelines_share_one_rdd(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        ha = reg.register("a", "ds-a", pipeline(sc, 0))
        hb = reg.register("b", "ds-b", pipeline(sc, 0))
        hc = reg.register("c", "ds-c", pipeline(sc, 1))
        assert ha.rdd_id == hb.rdd_id
        assert hc.rdd_id != ha.rdd_id
        assert reg.dedup_hits == 1

    def test_fingerprint_distinguishes_structure(self):
        sc = make_sc()
        assert (lineage_fingerprint(pipeline(sc, 0))
                == lineage_fingerprint(pipeline(sc, 0)))
        assert (lineage_fingerprint(pipeline(sc, 0))
                != lineage_fingerprint(pipeline(sc, 1)))
        assert (lineage_fingerprint(pipeline(sc, 0))
                != lineage_fingerprint(pipeline(sc, 0).filter(bool)))

    def test_second_tenant_served_from_first_tenants_blocks(self):
        """The multi-tenant payoff: B's job is all cache hits."""
        sc = make_sc()
        reg = DatasetRegistry(sc)
        num_partitions = 4
        ha = reg.register("a", "ds-a",
                          pipeline(sc, 0, num_partitions))
        sc.run_job(ha.rdd, len)  # A materializes the cache
        warm = sc.metrics.cache_stats()
        assert warm["misses"] == num_partitions

        hb = reg.register("b", "ds-b",
                          pipeline(sc, 0, num_partitions))
        sc.run_job(hb.rdd, len)  # B runs "its" dataset
        stats = sc.metrics.cache_stats()
        assert stats["hits"] == warm["hits"] + num_partitions
        assert stats["misses"] == warm["misses"]  # zero new misses

    def test_dedup_retires_with_last_pin(self):
        sc = make_sc()
        reg = DatasetRegistry(sc)
        ha = reg.register("a", "ds-a", pipeline(sc, 0))
        ha.release()
        reg.drop("a", "ds-a")
        # All pins drained: a re-registration must NOT alias the retired
        # (uncached) RDD.
        hb = reg.register("b", "ds-b", pipeline(sc, 0))
        assert hb.rdd_id != ha.rdd_id
        assert sc.get_rdd(hb.rdd_id).cached
