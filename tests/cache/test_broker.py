"""Cluster-wide cache broker: global value ranking, the eviction /
migration memory market, cross-job lineage-prefix sharing, pin-deferred
auto-unpersist, quota interplay, ledger accounting, and the elastic
layer's density-driven scale-in."""

import math

from repro import obs
from repro.cache.broker import BrokerPolicy
from repro.cache.policy import value_score
from repro.cluster.cost_model import SimStr
from repro.elastic import BacklogPolicy, ResourceManager
from repro.engine.context import StarkConfig, StarkContext
from repro.service.quotas import TenantCacheQuotas


def make_context(num_workers=2, memory_per_worker=1e9, **config_kwargs):
    config_kwargs.setdefault("cache_broker", True)
    return StarkContext(num_workers=num_workers, cores_per_worker=2,
                        memory_per_worker=memory_per_worker,
                        config=StarkConfig(**config_kwargs))


def dataset(sc, payload_bytes=1000, partitions=4, read_cost="disk",
            name="d", records=4):
    payload = SimStr("x" * 8, sim_size=payload_bytes)

    def generate(pid):
        return [(pid * 10 + i, payload) for i in range(records)]

    return sc.generated(generate, partitions, read_cost=read_cost, name=name)


def ledger_matches_stores(sc):
    """Broker-accounted bytes must equal the stores' resident bytes
    exactly (both sides ``math.fsum`` — the `stark trace` reconciliation
    row)."""
    broker = sc.cache_broker
    master = sc.block_manager_master
    resident = math.fsum(
        store.peek(bid).size_bytes
        for wid in sorted(master.stores)
        for store in [master.stores[wid]]
        for bid in sorted(store.block_ids()))
    return broker.accounted_bytes() == resident


class TestValueScore:
    def test_cost_and_refs_raise_value_size_lowers_it(self):
        base = value_score(2.0, 1, 100.0)
        assert value_score(4.0, 1, 100.0) > base
        assert value_score(2.0, 3, 100.0) > base
        assert value_score(2.0, 1, 200.0) < base

    def test_degenerate_size_does_not_divide_by_zero(self):
        assert value_score(1.0, 0, 0.0) == value_score(1.0, 0, 1.0)


class TestLedgerSync:
    def test_every_store_runs_a_broker_policy(self):
        sc = make_context()
        for store in sc.block_manager_master.stores.values():
            assert isinstance(store.policy, BrokerPolicy)
            assert store.policy.name == "broker"

    def test_ledger_tracks_inserts_and_removals(self):
        sc = make_context()
        rdd = dataset(sc).cache()
        rdd.count()
        master = sc.block_manager_master
        for wid, store in master.stores.items():
            assert sc.cache_broker.resident_count(wid) == len(store)
        assert sc.cache_broker.accounted_bytes() > 0
        assert ledger_matches_stores(sc)
        rdd.unpersist()
        assert sc.cache_broker.accounted_bytes() == 0.0
        assert ledger_matches_stores(sc)

    def test_block_value_uses_cost_refs_and_size(self):
        sc = make_context()
        rdd = dataset(sc, read_cost="network", name="hot").cache()
        rdd.count()
        broker = sc.cache_broker
        wid = min(w for w in broker.master.stores
                  if broker.resident_count(w))
        bid = sorted(broker.master.stores[wid].block_ids())[0]
        cost = sc.cache_manager.estimate_recompute_cost(rdd.rdd_id)
        size = broker.master.stores[wid].peek(bid).size_bytes
        assert cost > 0
        assert broker.block_value(wid, bid) == value_score(
            cost, broker.cross_job_refcount(bid), size)
        # A declared future use raises the cross-job refcount and value.
        before = broker.block_value(wid, bid)
        sc.cache_manager.expect(rdd, 2)
        assert broker.cross_job_refcount(bid) >= 2
        assert broker.block_value(wid, bid) > before

    def test_top_blocks_ranked_highest_first(self):
        sc = make_context()
        dataset(sc, read_cost="network", name="hot").cache().count()
        dataset(sc, read_cost="none", name="cold").cache().count()
        top = sc.cache_broker.top_blocks(100)
        values = [v for v, _, _ in top]
        assert values == sorted(values, reverse=True)
        assert len(top) == sum(
            len(s) for s in sc.block_manager_master.stores.values())


def market_run(sc):
    """The determinism suite's broker workload: two structurally
    identical cached pipelines (separate jobs) plus cached filler that
    overflows the small stores and triggers the market."""
    def source(pid):
        return [(pid * 100 + i, i % 17) for i in range(200)]

    def pipeline():
        return (sc.generated(source, 6, read_cost="network", name="scan")
                .map(lambda kv: (kv[0], kv[1] + 1))
                .cache())

    first = pipeline()
    first.count()
    second = pipeline()
    second.count()
    for r in range(4):
        data = [(i, i * r) for i in range(800)]
        sc.parallelize(data, 3, name=f"filler{r}").cache().count()
    second.count()
    return first, second


class TestGlobalEvictionMarket:
    def test_market_evicts_remote_and_migrates_local_victim(self):
        sc = make_context(num_workers=3, memory_per_worker=2.5e5)
        collector = obs.EventCollector()
        sc.event_bus.subscribe(collector)
        market_run(sc)
        broker = sc.cache_broker

        evicted = [e for e in collector.events
                   if isinstance(e, obs.BrokerEvicted)]
        migrated = [e for e in collector.events
                    if isinstance(e, obs.BrokerMigrated)]
        assert broker.broker_evictions == len(evicted) > 0
        assert broker.broker_migrations == len(migrated) > 0
        # Every broker eviction is cluster-wide: the victim store is not
        # the store that asked for relief.
        assert all(e.worker_id != e.requested_by for e in evicted)
        # Store-side removals carry the "broker" reason for the trace.
        broker_reason = [e for e in collector.events
                         if isinstance(e, obs.BlockEvicted)
                         and e.reason == "broker"]
        assert len(broker_reason) == len(evicted)
        # The market only trades up: each remote victim was strictly
        # cheaper than the local victim migrated into its slot.
        for evict, migrate in zip(evicted, migrated):
            assert evict.value < migrate.value
        # Migrations land where the eviction freed space.
        for evict, migrate in zip(evicted, migrated):
            assert migrate.dst_worker == evict.worker_id
            assert migrate.src_worker == evict.requested_by

    def test_ledger_reconciles_after_market_activity(self):
        sc = make_context(num_workers=3, memory_per_worker=2.5e5)
        market_run(sc)
        assert sc.cache_broker.broker_evictions > 0
        assert ledger_matches_stores(sc)
        for wid, store in sc.block_manager_master.stores.items():
            assert sc.cache_broker.resident_count(wid) == len(store)


class TestPrefixSharing:
    def make_pipeline(self, sc, constant=1):
        def source(pid):
            return [(pid * 10 + i, i) for i in range(20)]

        return (sc.generated(source, 4, read_cost="network", name="scan")
                .map(lambda kv: (kv[0], kv[1] + constant))
                .cache())

    def test_identical_pipelines_share_cached_subgraph(self):
        sc = make_context()
        first = self.make_pipeline(sc)
        expected = first.collect()
        broker = sc.cache_broker
        assert broker.prefix_hits == 0

        second = self.make_pipeline(sc)
        assert second.rdd_id != first.rdd_id
        got = second.collect()
        assert got == expected  # served result is the provider's data
        assert broker.prefix_hits >= second.num_partitions
        assert broker.equivalent_for(second.rdd_id) == first.rdd_id
        # Sharing is symmetric only through the registry: the provider
        # itself never matches its own prefix.
        assert broker.equivalent_for(first.rdd_id) in (None, second.rdd_id)

    def test_different_closure_constants_never_match(self):
        sc = make_context()
        first = self.make_pipeline(sc, constant=1)
        first.collect()
        other = self.make_pipeline(sc, constant=2)
        got = other.collect()
        assert sc.cache_broker.equivalent_for(other.rdd_id) is None
        assert sc.cache_broker.prefix_hits == 0
        assert got != first.collect()

    def test_dead_provider_counts_a_prefix_miss(self):
        sc = make_context()
        first = self.make_pipeline(sc)
        expected = first.collect()
        first.unpersist()
        second = self.make_pipeline(sc)
        got = second.collect()
        assert got == expected  # recomputed from lineage, not served
        assert sc.cache_broker.prefix_hits == 0
        assert sc.cache_broker.prefix_misses > 0


class TestDeferredUnpersist:
    """S2: auto-unpersist defers while another job's prefix match pins
    the provider, and flushes once the pin is released."""

    def make_pipeline(self, sc):
        def source(pid):
            return [(pid * 10 + i, i) for i in range(20)]

        return (sc.generated(source, 4, read_cost="network", name="scan")
                .map(lambda kv: (kv[0], kv[1] * 3))
                .cache())

    def test_pin_defers_then_flush_unpersists(self):
        sc = make_context(cache_auto_unpersist=True)
        master = sc.block_manager_master
        tracker = sc.cache_manager.tracker
        provider = self.make_pipeline(sc)
        provider.count()
        assert master.cached_partitions_of(provider.rdd_id)
        sc.cache_manager.expect(provider, 1)

        # A second job with an identical lineage prefix pins the
        # provider for its lifetime.
        consumer = self.make_pipeline(sc)
        sc.cache_manager.on_job_submit(999, consumer, [])
        assert sc.cache_broker.pin_count(provider.rdd_id) == 1

        # The provider's last declared use drains — but the pin vetoes
        # the drop, so the blocks survive for the consumer to read.
        provider.count()
        assert tracker.deferred_unpersists == 1
        assert master.cached_partitions_of(provider.rdd_id)

        # Pin released at the consumer's completion: the deferred
        # unpersist flushes and the blocks go away.
        sc.cache_manager.on_job_complete(999)
        assert sc.cache_broker.pin_count(provider.rdd_id) == 0
        assert tracker.auto_unpersisted == 1
        assert master.cached_partitions_of(provider.rdd_id) == set()

    def test_without_a_pin_the_drop_is_immediate(self):
        sc = make_context(cache_auto_unpersist=True)
        provider = self.make_pipeline(sc)
        provider.count()
        sc.cache_manager.expect(provider, 1)
        provider.count()
        tracker = sc.cache_manager.tracker
        assert tracker.deferred_unpersists == 0
        assert tracker.auto_unpersisted == 1
        assert sc.block_manager_master.cached_partitions_of(
            provider.rdd_id) == set()


class TestQuotaBrokerInterplay:
    """S3: a tenant at quota displaces its OWN lowest-value block
    cluster-wide — never another tenant's — including after a migration
    moved that block to a different worker."""

    def setup_tenants(self, sc):
        quotas = TenantCacheQuotas(sc.block_manager_master)
        sc.cache_manager.quotas = quotas
        # The manager wires quota displacement to the broker ranking.
        assert quotas.value_fn == sc.cache_broker.block_value
        exp = dataset(sc, payload_bytes=50_000, partitions=2,
                      read_cost="network", name="t1-exp").cache()
        cheap = dataset(sc, payload_bytes=50_000, partitions=2,
                        read_cost="none", name="t1-cheap").cache()
        other = dataset(sc, payload_bytes=50_000, partitions=2,
                        read_cost="network", name="t2-hot").cache()
        quotas.own(exp.rdd_id, "t1")
        quotas.own(cheap.rdd_id, "t1")
        quotas.own(other.rdd_id, "t2")
        exp.count()
        cheap.count()
        other.count()
        return quotas, exp, cheap, other

    def partitions_of(self, sc, rdd):
        return sc.block_manager_master.cached_partitions_of(rdd.rdd_id)

    def test_displacement_takes_own_lowest_value_cluster_wide(self):
        sc = make_context()
        quotas, exp, cheap, other = self.setup_tenants(sc)
        master = sc.block_manager_master
        assert len(self.partitions_of(sc, exp)) == 2
        assert len(self.partitions_of(sc, cheap)) == 2

        # t1 is exactly at quota; admitting one more block must displace
        # one of t1's own blocks — the broker ranks cheap's (recompute
        # near zero) below exp's (network re-read), wherever it lives.
        quotas.set_quota("t1", quotas.usage("t1"))
        pid = sorted(self.partitions_of(sc, cheap))[0]
        block_size = next(
            master.stores[w].peek((cheap.rdd_id, pid)).size_bytes
            for w in sorted(master.locations((cheap.rdd_id, pid))))
        newcomer = dataset(sc, payload_bytes=50_000, partitions=1,
                           name="t1-new")
        quotas.own(newcomer.rdd_id, "t1")
        assert quotas.admit(newcomer.rdd_id, block_size)

        assert len(self.partitions_of(sc, cheap)) == 1  # own lowest value
        assert len(self.partitions_of(sc, exp)) == 2    # own hot: kept
        assert len(self.partitions_of(sc, other)) == 2  # never t2's
        assert ledger_matches_stores(sc)

    def test_displacement_follows_a_migrated_block(self):
        sc = make_context()
        quotas, exp, cheap, other = self.setup_tenants(sc)
        master = sc.block_manager_master
        quotas.set_quota("t1", quotas.usage("t1"))
        newcomer = dataset(sc, payload_bytes=50_000, partitions=1,
                           name="t1-new")
        quotas.own(newcomer.rdd_id, "t1")
        pid = sorted(self.partitions_of(sc, cheap))[0]
        size = next(
            master.stores[w].peek((cheap.rdd_id, pid)).size_bytes
            for w in sorted(master.locations((cheap.rdd_id, pid))))
        assert quotas.admit(newcomer.rdd_id, size)
        assert len(self.partitions_of(sc, cheap)) == 1

        # Migrate t1's one surviving cheap block to the other worker,
        # then push t1 over quota again: the displacement must find the
        # block at its NEW location and the accounting must have
        # followed it (usage unchanged by the move).
        last = (cheap.rdd_id, sorted(self.partitions_of(sc, cheap))[0])
        src = sorted(master.locations(last))[0]
        dst = next(w for w in sorted(master.stores) if w != src)
        usage_before = quotas.usage("t1")
        assert master.migrate_block(last, src=src, dst=dst)
        assert quotas.usage("t1") == usage_before
        assert sorted(master.locations(last)) == [dst]

        quotas.set_quota("t1", quotas.usage("t1"))  # back at the limit
        assert quotas.admit(newcomer.rdd_id, size)
        assert self.partitions_of(sc, cheap) == set()   # migrated victim
        assert len(self.partitions_of(sc, exp)) == 2
        assert len(self.partitions_of(sc, other)) == 2  # still untouched
        assert ledger_matches_stores(sc)


class TestElasticScaleIn:
    """The memory market's scale-in arm: victim choice by cached value
    density, hottest worker protected, drains hottest-block-first."""

    def sculpt(self, sc):
        """w_cold ends with only near-zero-value blocks, w_hot keeps a
        network-sourced block: unequal densities, deterministic."""
        hot = dataset(sc, payload_bytes=20_000, partitions=2,
                      read_cost="network", name="hot").cache()
        cheap = dataset(sc, payload_bytes=100_000, partitions=4,
                        read_cost="none", name="cheap").cache()
        hot.count()
        cheap.count()
        master = sc.block_manager_master
        hot_workers = sorted(
            w for pid in master.cached_partitions_of(hot.rdd_id)
            for w in master.locations((hot.rdd_id, pid)))
        w_hot = hot_workers[0]
        w_cold = next(w for w in sorted(master.stores) if w != w_hot)
        # Strip hot blocks from the cold worker so densities diverge.
        for pid in sorted(master.cached_partitions_of(hot.rdd_id)):
            bid = (hot.rdd_id, pid)
            if w_cold in master.locations(bid):
                master.remove_block(bid, w_cold)
        return hot, cheap, w_hot, w_cold

    def test_scale_in_spares_the_hottest_density_worker(self):
        sc = make_context()
        hot, cheap, w_hot, w_cold = self.sculpt(sc)
        broker = sc.cache_broker
        assert broker.worker_value_density(w_cold) \
            < broker.worker_value_density(w_hot)
        # The cold worker may well hold MORE bytes — density, not byte
        # count, is what the broker-aware victim rule ranks by.
        manager = ResourceManager(sc, BacklogPolicy(), min_workers=1)
        assert manager._pick_victim() == w_cold

    def test_exhausted_budget_unprotects_the_hottest(self):
        # With every candidate's resident bytes over the migration
        # budget, any choice drops cache — density ordering alone
        # decides, and equal densities fall through to the newest
        # worker, hottest or not.
        sc = make_context()
        hot = dataset(sc, payload_bytes=20_000, partitions=4,
                      read_cost="network", name="hot").cache()
        hot.count()
        master = sc.block_manager_master
        stores = sorted(master.stores)
        assert all(len(master.stores[w]) == 2 for w in stores)
        d0 = sc.cache_broker.worker_value_density(stores[0])
        d1 = sc.cache_broker.worker_value_density(stores[1])
        assert d0 == d1

        generous = ResourceManager(sc, BacklogPolicy(), min_workers=1)
        assert generous._pick_victim() == stores[0]  # hottest tie = w1
        broke = ResourceManager(sc, BacklogPolicy(), min_workers=1,
                                migration_budget_bytes=1.0)
        assert broke._pick_victim() == stores[1]

    def test_migration_order_is_hottest_first(self):
        sc = make_context()
        hot, cheap, w_hot, w_cold = self.sculpt(sc)
        broker = sc.cache_broker
        order = broker.migration_order(w_hot)
        assert order, "hot worker should hold blocks"
        values = [broker.block_value(w_hot, bid) for bid in order]
        assert values == sorted(values, reverse=True)
        assert order[0][0] == hot.rdd_id

    def test_decommission_saves_the_hot_block(self):
        sc = make_context()
        hot, cheap, w_hot, w_cold = self.sculpt(sc)
        manager = ResourceManager(sc, BacklogPolicy(), min_workers=1)
        report = manager.decommission(w_hot)
        assert report.migrated_blocks > 0
        master = sc.block_manager_master
        # The network-sourced blocks survived the scale-in by migrating
        # into the survivor's store.
        assert master.cached_partitions_of(hot.rdd_id) \
            == set(range(hot.num_partitions))
        for pid in master.cached_partitions_of(hot.rdd_id):
            assert master.locations((hot.rdd_id, pid)) == {w_cold}
        assert ledger_matches_stores(sc)
