"""Shared contract every eviction policy must honour, plus the
policy-specific orderings that distinguish them.

The contract (ISSUE acceptance): capacity is respected under any policy,
oversized blocks are refused, eviction callbacks fire for capacity
victims, and identical access traces evict identical sequences.
"""

import pytest
from hypothesis import given, strategies as st

from repro.cache.policy import (
    POLICY_NAMES,
    CostAwarePolicy,
    FIFOPolicy,
    LRCPolicy,
    LRUPolicy,
    make_policy,
)
from repro.engine.block_manager import Block, BlockManagerMaster, BlockStore


class Oracles:
    """Mutable reference/cost tables standing in for the tracker."""

    def __init__(self):
        self.refs = {}
        self.costs = {}

    def ref_fn(self, block_id):
        return self.refs.get(block_id[0], 0)

    def cost_fn(self, rdd_id):
        return self.costs.get(rdd_id, 0.0)


def fresh_policy(name, oracles=None):
    oracles = oracles or Oracles()
    return make_policy(name, ref_fn=oracles.ref_fn, cost_fn=oracles.cost_fn)


def block(rdd_id, pid, size):
    return Block((rdd_id, pid), ["r"], float(size))


# ---------------------------------------------------------------------------
# The contract, parametrized over every policy
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", POLICY_NAMES)
class TestPolicyContract:
    def test_capacity_respected(self, name):
        store = BlockStore(0, 100.0, policy=fresh_policy(name))
        for pid in range(10):
            store.put(block(1, pid, 30))
            assert store.used_bytes <= 100.0

    def test_oversized_block_refused(self, name):
        store = BlockStore(0, 100.0, policy=fresh_policy(name))
        store.put(block(1, 0, 60))
        rejected = store.put(block(2, 0, 150))
        assert rejected == [block(2, 0, 150)]
        assert (2, 0) not in store
        assert (1, 0) in store  # nothing was evicted for a refused block

    def test_eviction_callbacks_fired(self, name):
        oracles = Oracles()
        master = BlockManagerMaster(
            [0], lambda wid: 100.0,
            policy_factory=lambda wid: fresh_policy(name, oracles),
        )
        events = []
        master.add_capacity_eviction_listener(
            lambda wid, bid: events.append((wid, bid)))
        for pid in range(4):
            master.put(0, block(1, pid, 40))
        assert len(events) == 2
        for wid, bid in events:
            assert wid == 0
            assert not master.is_cached_on(0, bid)

    def test_policy_mirror_tracks_membership(self, name):
        store = BlockStore(0, 100.0, policy=fresh_policy(name))
        for pid in range(5):
            store.put(block(1, pid, 40))
        assert len(store.policy) == len(store)
        store.remove((1, 4))
        assert len(store.policy) == len(store)
        store.clear()
        assert len(store.policy) == 0

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["put", "get", "remove"]),
                  st.integers(0, 3), st.integers(0, 3),
                  st.floats(min_value=1, max_value=60)),
        max_size=60))
    def test_deterministic_given_identical_traces(self, name, ops):
        oracles = Oracles()
        oracles.refs = {0: 2, 1: 0, 2: 5, 3: 1}
        oracles.costs = {0: 0.5, 1: 0.0, 2: 4.0, 3: 0.1}

        def run():
            store = BlockStore(0, 100.0, policy=fresh_policy(name, oracles))
            evictions = []
            for op, rdd_id, pid, size in ops:
                if op == "put":
                    evicted = store.put(block(rdd_id, pid, size))
                    evictions.extend(b.block_id for b in evicted)
                elif op == "get":
                    store.get((rdd_id, pid))
                else:
                    store.remove((rdd_id, pid))
            return evictions, sorted(store.block_ids())

        assert run() == run()


# ---------------------------------------------------------------------------
# Orderings that tell the policies apart
# ---------------------------------------------------------------------------

class TestLRU:
    def test_access_promotes(self):
        store = BlockStore(0, 100.0, policy=LRUPolicy())
        store.put(block(1, 0, 40))
        store.put(block(1, 1, 40))
        store.get((1, 0))
        evicted = store.put(block(1, 2, 40))
        assert [b.block_id for b in evicted] == [(1, 1)]


class TestFIFO:
    def test_access_does_not_promote(self):
        store = BlockStore(0, 100.0, policy=FIFOPolicy())
        store.put(block(1, 0, 40))
        store.put(block(1, 1, 40))
        store.get((1, 0))  # unlike LRU this must not save block 0
        evicted = store.put(block(1, 2, 40))
        assert [b.block_id for b in evicted] == [(1, 0)]


class TestLRC:
    def test_zero_ref_evicted_before_recent(self):
        oracles = Oracles()
        oracles.refs = {1: 3, 2: 0}
        store = BlockStore(0, 100.0, policy=LRCPolicy(oracles.ref_fn))
        store.put(block(1, 0, 40))  # referenced, LRU-cold
        store.put(block(2, 0, 40))  # dead, LRU-hot
        evicted = store.put(block(3, 0, 40))
        assert [b.block_id for b in evicted] == [(2, 0)]

    def test_ties_fall_back_to_lru(self):
        store = BlockStore(0, 100.0, policy=LRCPolicy(lambda bid: 1))
        store.put(block(1, 0, 40))
        store.put(block(1, 1, 40))
        store.get((1, 0))
        evicted = store.put(block(1, 2, 40))
        assert [b.block_id for b in evicted] == [(1, 1)]

    def test_score_follows_live_ref_changes(self):
        oracles = Oracles()
        oracles.refs = {1: 0, 2: 0}
        store = BlockStore(0, 100.0, policy=LRCPolicy(oracles.ref_fn))
        store.put(block(1, 0, 40))
        store.put(block(2, 0, 40))
        oracles.refs[1] = 7  # rdd 1 gains readers after insertion
        evicted = store.put(block(3, 0, 40))
        assert [b.block_id for b in evicted] == [(2, 0)]


class TestCostAware:
    def test_cheap_block_evicted_before_expensive(self):
        oracles = Oracles()
        oracles.costs = {1: 10.0, 2: 0.001}
        store = BlockStore(
            0, 100.0, policy=CostAwarePolicy(oracles.ref_fn, oracles.cost_fn))
        store.put(block(1, 0, 40))  # expensive, LRU-cold
        store.put(block(2, 0, 40))  # cheap, LRU-hot
        evicted = store.put(block(3, 0, 40))
        assert [b.block_id for b in evicted] == [(2, 0)]

    def test_size_normalizes_value(self):
        oracles = Oracles()
        oracles.costs = {1: 1.0, 2: 1.0}
        store = BlockStore(
            0, 100.0, policy=CostAwarePolicy(oracles.ref_fn, oracles.cost_fn))
        store.put(block(1, 0, 10))  # same cost in a tenth of the bytes
        store.put(block(2, 0, 80))
        evicted = store.put(block(3, 0, 40))
        assert [b.block_id for b in evicted] == [(2, 0)]

    def test_references_multiply_value(self):
        oracles = Oracles()
        oracles.costs = {1: 1.0, 2: 1.0}
        oracles.refs = {1: 9, 2: 0}
        store = BlockStore(
            0, 100.0, policy=CostAwarePolicy(oracles.ref_fn, oracles.cost_fn))
        store.put(block(1, 0, 40))
        store.put(block(2, 0, 40))
        evicted = store.put(block(3, 0, 40))
        assert [b.block_id for b in evicted] == [(2, 0)]


class TestFactory:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("mru")

    def test_lrc_requires_ref_fn(self):
        with pytest.raises(ValueError, match="reference-count"):
            make_policy("lrc")

    def test_cost_requires_both_oracles(self):
        with pytest.raises(ValueError, match="reference and cost"):
            make_policy("cost", ref_fn=lambda bid: 0)

    def test_names_round_trip(self):
        for name in POLICY_NAMES:
            policy = fresh_policy(name)
            assert policy.name == name
