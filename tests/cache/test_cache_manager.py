"""CacheManager integration: policies, admission and auto-unpersist
wired into a real StarkContext running real jobs."""

import pytest

from repro.cache.admission import AdmissionController
from repro.cache.policy import (
    set_default_admission_min_cost,
    set_default_policy,
)
from repro.cluster.cost_model import SimStr
from repro.engine.context import StarkConfig, StarkContext


def make_context(**config_kwargs):
    return StarkContext(num_workers=2, cores_per_worker=2,
                        memory_per_worker=1e9,
                        config=StarkConfig(**config_kwargs))


def dataset(sc, payload_bytes=1000, partitions=4, read_cost="disk", name="d"):
    payload = SimStr("x" * 8, sim_size=payload_bytes)

    def generate(pid):
        return [(pid * 10 + i, payload) for i in range(4)]

    return sc.generated(generate, partitions, read_cost=read_cost, name=name)


class TestAdmissionController:
    def test_zero_threshold_admits_everything(self):
        ctl = AdmissionController(min_cost_seconds=0.0)
        assert ctl.should_admit(0.0)
        assert ctl.accepted == 1 and ctl.rejected == 0

    def test_threshold_splits(self):
        ctl = AdmissionController(min_cost_seconds=0.5)
        assert not ctl.should_admit(0.4)
        assert ctl.should_admit(0.5)
        assert ctl.stats() == {"accepted": 1, "rejected": 1,
                               "min_cost_seconds": 0.5}


class TestPolicySelection:
    def test_config_selects_store_policies(self):
        sc = make_context(cache_policy="lrc")
        for store in sc.block_manager_master.stores.values():
            assert store.policy.name == "lrc"

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_context(cache_policy="belady")

    def test_defaults_feed_new_configs(self):
        set_default_policy("cost")
        set_default_admission_min_cost(0.25)
        try:
            config = StarkConfig()
            assert config.cache_policy == "cost"
            assert config.cache_admission_min_cost == 0.25
        finally:
            set_default_policy("lru")
            set_default_admission_min_cost(0.0)
        assert StarkConfig().cache_policy == "lru"


class TestAdmissionIntegration:
    def test_blocks_below_threshold_never_cached(self):
        sc = make_context(cache_admission_min_cost=1e6)
        rdd = dataset(sc).cache()
        rdd.count()
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id) == set()
        assert sc.cache_manager.admission.rejected > 0

    def test_zero_threshold_caches(self):
        sc = make_context(cache_admission_min_cost=0.0)
        rdd = dataset(sc).cache()
        rdd.count()
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id) == \
            set(range(rdd.num_partitions))


class TestRecomputeCostEstimate:
    def test_sums_narrow_chain_delays(self):
        sc = make_context()
        source = dataset(sc, payload_bytes=100_000, read_cost="network")
        mapped = source.map(lambda kv: kv).cache()
        mapped.count()
        stats = sc.rdd_stats
        expected = (stats(mapped.rdd_id).max_partition_delay
                    + stats(source.rdd_id).max_partition_delay)
        estimate = sc.cache_manager.estimate_recompute_cost(mapped.rdd_id)
        assert estimate == pytest.approx(expected)
        assert estimate > 0

    def test_stops_at_cached_ancestor(self):
        sc = make_context()
        source = dataset(sc, payload_bytes=100_000, read_cost="network").cache()
        mapped = source.map(lambda kv: kv).cache()
        mapped.count()
        estimate = sc.cache_manager.estimate_recompute_cost(mapped.rdd_id)
        assert estimate == pytest.approx(
            sc.rdd_stats(mapped.rdd_id).max_partition_delay)

    def test_unobserved_rdd_estimates_zero(self):
        sc = make_context()
        rdd = dataset(sc)
        assert sc.cache_manager.estimate_recompute_cost(rdd.rdd_id) == 0.0


class TestAutoUnpersist:
    def test_declared_rdd_dropped_after_last_use(self):
        sc = make_context(cache_auto_unpersist=True)
        rdd = dataset(sc).cache()
        sc.cache_manager.expect(rdd, uses=2)
        rdd.count()  # materializes + first declared use
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id)
        rdd.count()  # last declared use: dropped cluster-wide
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id) == set()
        assert rdd.cached is False
        assert sc.cache_manager.tracker.auto_unpersisted == 1

    def test_undeclared_rdd_survives(self):
        sc = make_context(cache_auto_unpersist=True)
        rdd = dataset(sc).cache()
        for _ in range(3):
            rdd.count()
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id) == \
            set(range(rdd.num_partitions))

    def test_disabled_by_default(self):
        sc = make_context()
        rdd = dataset(sc).cache()
        sc.cache_manager.expect(rdd, uses=1)
        rdd.count()
        assert sc.block_manager_master.cached_partitions_of(rdd.rdd_id) == \
            set(range(rdd.num_partitions))


class TestMetricsCacheStats:
    def test_hits_misses_and_recompute_accounted(self):
        sc = make_context()
        rdd = dataset(sc).cache()
        rdd.count()  # all misses (first materialization)
        rdd.count()  # all hits
        stats = sc.metrics.cache_stats()
        assert stats["misses"] == rdd.num_partitions
        assert stats["hits"] == rdd.num_partitions
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["recomputed_partitions"] == rdd.num_partitions
        assert stats["recompute_time"] > 0
        assert stats["evictions"] == 0

    def test_capacity_evictions_counted(self):
        # ~2 kB of storage per worker: a 4-partition cached dataset of
        # ~1 kB partitions cannot fully fit and must evict.
        sc = StarkContext(num_workers=1, cores_per_worker=2,
                          memory_per_worker=4000, config=StarkConfig())
        rdd = dataset(sc, payload_bytes=100).cache()
        rdd.count()
        assert sc.metrics.cache_stats()["evictions"] > 0
