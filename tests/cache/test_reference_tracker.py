"""Driver-side reference counting over (fake) lineage DAGs.

The tracker is duck-typed: anything with ``rdd_id`` / ``cached`` /
``narrow_dependencies()`` passes for an RDD, and anything with
``stage_id`` / ``rdd`` for a stage, so these tests build tiny in-memory
DAGs without an engine.
"""

import pytest

from repro.cache.reference_tracker import ReferenceTracker


class FakeDep:
    def __init__(self, rdd):
        self.rdd = rdd


class FakeRDD:
    def __init__(self, rdd_id, parents=(), cached=False):
        self.rdd_id = rdd_id
        self.cached = cached
        self._parents = list(parents)

    def narrow_dependencies(self):
        return [FakeDep(p) for p in self._parents]


class FakeStage:
    _ids = iter(range(10_000))

    def __init__(self, rdd):
        self.stage_id = next(FakeStage._ids)
        self.rdd = rdd


def chain(*cached_flags):
    """source -> ... -> sink; returns the RDD list, index = depth."""
    rdds = []
    for i, cached in enumerate(cached_flags):
        parents = [rdds[-1]] if rdds else []
        rdds.append(FakeRDD(i, parents, cached=cached))
    return rdds


class TestPendingRefs:
    def test_stage_references_cached_narrow_closure(self):
        rdds = chain(True, False, True)
        tracker = ReferenceTracker()
        stage = FakeStage(rdds[-1])
        tracker.on_job_submit(1, rdds[-1], [stage])
        assert tracker.ref_count(0) == 1
        assert tracker.ref_count(1) == 0  # not cached: never counted
        assert tracker.ref_count(2) == 1

    def test_stage_completion_releases(self):
        rdds = chain(True, False, True)
        tracker = ReferenceTracker()
        stage = FakeStage(rdds[-1])
        tracker.on_job_submit(1, rdds[-1], [stage])
        tracker.on_stage_complete(1, stage.stage_id)
        assert tracker.ref_count(0) == 0
        assert tracker.ref_count(2) == 0

    def test_two_stages_hold_independent_refs(self):
        shared = FakeRDD(0, cached=True)
        left = FakeRDD(1, [shared])
        right = FakeRDD(2, [shared])
        tracker = ReferenceTracker()
        s1, s2 = FakeStage(left), FakeStage(right)
        tracker.on_job_submit(1, right, [s1, s2])
        assert tracker.ref_count(0) == 2
        tracker.on_stage_complete(1, s1.stage_id)
        assert tracker.ref_count(0) == 1
        tracker.on_stage_complete(1, s2.stage_id)
        assert tracker.ref_count(0) == 0

    def test_diamond_counted_once_per_stage(self):
        source = FakeRDD(0, cached=True)
        a = FakeRDD(1, [source])
        b = FakeRDD(2, [source])
        sink = FakeRDD(3, [a, b], cached=True)
        tracker = ReferenceTracker()
        tracker.on_job_submit(1, sink, [FakeStage(sink)])
        assert tracker.ref_count(0) == 1  # one stage, one ref

    def test_job_complete_releases_leftovers(self):
        rdds = chain(True)
        tracker = ReferenceTracker()
        tracker.on_job_submit(1, rdds[0], [FakeStage(rdds[0])])
        tracker.on_job_complete(1)  # stage never reported complete
        assert tracker.ref_count(0) == 0


class TestDeclaredRefs:
    def test_expect_adds_and_jobs_drain(self):
        rdd = FakeRDD(0, cached=True)
        tracker = ReferenceTracker()
        tracker.expect(0, uses=2)
        assert tracker.ref_count(0) == 2
        for job_id in (1, 2):
            stage = FakeStage(rdd)
            tracker.on_job_submit(job_id, rdd, [stage])
            tracker.on_stage_complete(job_id, stage.stage_id)
            tracker.on_job_complete(job_id)
        assert tracker.ref_count(0) == 0
        assert tracker.declared(0) == 0

    def test_untouched_jobs_do_not_drain(self):
        tracker = ReferenceTracker()
        tracker.expect(7, uses=1)
        other = FakeRDD(0, cached=True)
        tracker.on_job_submit(1, other, [FakeStage(other)])
        tracker.on_job_complete(1)
        assert tracker.declared(7) == 1

    def test_expect_rejects_nonpositive(self):
        tracker = ReferenceTracker()
        with pytest.raises(ValueError):
            tracker.expect(0, uses=0)


class TestAutoUnpersist:
    def run_job(self, tracker, rdd, job_id):
        stage = FakeStage(rdd)
        tracker.on_job_submit(job_id, rdd, [stage])
        tracker.on_stage_complete(job_id, stage.stage_id)
        tracker.on_job_complete(job_id)

    def test_fires_when_declared_drains(self):
        dropped = []
        tracker = ReferenceTracker(auto_unpersist=True,
                                   unpersist_fn=dropped.append)
        rdd = FakeRDD(0, cached=True)
        tracker.expect(0, uses=2)
        self.run_job(tracker, rdd, 1)
        assert dropped == []
        self.run_job(tracker, rdd, 2)
        assert dropped == [0]
        assert tracker.auto_unpersisted == 1

    def test_never_fires_without_declaration(self):
        dropped = []
        tracker = ReferenceTracker(auto_unpersist=True,
                                   unpersist_fn=dropped.append)
        rdd = FakeRDD(0, cached=True)
        for job_id in range(1, 5):
            self.run_job(tracker, rdd, job_id)
        assert dropped == []

    def test_never_fires_when_disabled(self):
        dropped = []
        tracker = ReferenceTracker(auto_unpersist=False,
                                   unpersist_fn=dropped.append)
        rdd = FakeRDD(0, cached=True)
        tracker.expect(0, uses=1)
        self.run_job(tracker, rdd, 1)
        assert dropped == []
        assert tracker.declared(0) == 0  # drained, just not dropped
