"""Import health: the columnar engine's numpy dependency is real.

The columnar subsystem leans on numpy APIs that predate 1.21 only in
spirit (``ufunc.reduceat``, ``np.unique(return_inverse=...)``,
structured-array factorization) — the floor in ``pyproject.toml``
records the oldest line we actually exercise.  These tests fail fast,
with a clear message, if the environment drifts below it or if the
declaration is dropped.
"""

import re
from pathlib import Path

import numpy as np

NUMPY_FLOOR = (1, 21)


def _version_tuple(text):
    return tuple(int(part) for part in re.findall(r"\d+", text)[:2])


def test_numpy_meets_declared_floor():
    assert _version_tuple(np.__version__) >= NUMPY_FLOOR, (
        f"numpy {np.__version__} is older than the declared floor "
        f"{'.'.join(map(str, NUMPY_FLOOR))}")


def test_pyproject_declares_numpy_floor():
    pyproject = (Path(__file__).resolve().parent.parent
                 / "pyproject.toml").read_text(encoding="utf-8")
    match = re.search(r'"numpy>=([\d.]+)"', pyproject)
    assert match, "pyproject.toml must declare a numpy floor version"
    assert _version_tuple(match.group(1)) == NUMPY_FLOOR


def test_columnar_and_sql_packages_import():
    import repro.columnar
    import repro.sql

    assert repro.columnar.ColumnarBatch is not None
    assert repro.sql.SQLSession is not None


def test_columnar_numpy_primitives_work():
    # The exact numpy primitives the kernels are built on.
    values = np.asarray([3, 1, 2, 1, 3], dtype=np.int64)
    uniq, inv = np.unique(values, return_inverse=True)
    assert uniq.tolist() == [1, 2, 3]
    order = np.argsort(inv, kind="stable")
    starts = np.searchsorted(inv[order], np.arange(len(uniq)))
    sums = np.add.reduceat(values[order], starts)
    assert sums.tolist() == [2, 2, 6]
