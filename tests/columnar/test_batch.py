"""ColumnarBatch: construction, round-trips, and size accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.columnar.batch import ColumnarBatch, column_bytes

SCHEMA = (("k", "str"), ("v", "int"), ("w", "float"))

rows_st = st.lists(
    st.tuples(st.sampled_from(["a", "bb", "ccc", ""]),
              st.integers(-10**6, 10**6),
              st.floats(-1e6, 1e6, allow_nan=False)),
    max_size=50)


class TestRoundTrip:
    @given(rows_st)
    def test_rows_round_trip(self, rows):
        batch = ColumnarBatch.from_rows(SCHEMA, rows)
        assert batch.num_rows == len(rows)
        assert batch.to_rows() == [tuple(r) for r in rows]

    def test_empty(self):
        batch = ColumnarBatch.empty(SCHEMA)
        assert batch.num_rows == 0
        assert batch.to_rows() == []

    def test_select_take_concat(self):
        batch = ColumnarBatch.from_rows(
            SCHEMA, [("a", 1, 0.5), ("b", 2, 1.5), ("a", 3, 2.5)])
        sel = batch.select(["v", "k"])
        assert sel.column_names == ["v", "k"]
        taken = batch.take(np.asarray([True, False, True]))
        assert taken.to_rows() == [("a", 1, 0.5), ("a", 3, 2.5)]
        merged = ColumnarBatch.concat(batch.schema, [batch, taken])
        assert merged.num_rows == 5


class TestSizes:
    def test_sim_size_counts_column_bytes(self):
        batch = ColumnarBatch.from_rows(
            SCHEMA, [("ab", 1, 0.5), ("c", 2, 1.5)])
        # str: actual characters; int/float: 8 bytes per value.
        expected = 3 + 2 * 8 + 2 * 8
        assert batch.sim_size == expected
        assert batch.sim_memory_size == expected

    def test_column_bytes_numeric(self):
        assert column_bytes(np.zeros(4, dtype=np.int64), "int") == 32

    def test_schema_mismatch_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            ColumnarBatch(SCHEMA, {"k": np.asarray(["a"])})
