"""Vectorized kernels vs plain-Python row references (hypothesis).

Every kernel is checked against the obvious row-at-a-time
implementation on randomized inputs: equality here is what lets the
engine swap row pipelines for columnar ones without changing results.
"""

import math
from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar import kernels as K
from repro.columnar.batch import ColumnarBatch
from repro.engine.partitioner import HashPartitioner

SCHEMA = (("k", "str"), ("g", "int"), ("v", "int"), ("w", "float"))

rows_st = st.lists(
    st.tuples(st.sampled_from(["a", "b", "cc", "dd"]),
              st.integers(0, 5),
              st.integers(-1000, 1000),
              st.floats(-100, 100, allow_nan=False)),
    max_size=60)


def batch_of(rows):
    return ColumnarBatch.from_rows(SCHEMA, rows)


class TestHashPartitionParity:
    @given(rows_st, st.integers(1, 7))
    @settings(max_examples=50)
    def test_codes_match_row_hash_partitioner(self, rows, n):
        batch = batch_of(rows)
        row_part = HashPartitioner(n)
        pids = K.hash_partition_codes(batch, ["k"], n)
        expected = [row_part.get_partition(r[0]) for r in rows]
        assert pids.tolist() == expected

    @given(rows_st, st.integers(1, 5))
    @settings(max_examples=30)
    def test_multi_column_keys_cover_all_rows(self, rows, n):
        batch = batch_of(rows)
        parts = K.split_by_partition(
            batch, K.hash_partition_codes(batch, ["k", "g"], n), n)
        assert sum(b.num_rows for b in parts.values()) == len(rows)
        rebuilt = sorted(r for b in parts.values() for r in b.to_rows())
        assert rebuilt == sorted(tuple(r) for r in rows)


class TestGroupAggregate:
    @given(rows_st)
    @settings(max_examples=60)
    def test_partial_plus_merge_equals_row_reference(self, rows):
        aggs = [("sum", "v", "total"), ("count", None, "n"),
                ("avg", "w", "mean_w"), ("min", "v", "lo"),
                ("max", "v", "hi")]
        batch = batch_of(rows)
        # split into two partials, merge — the shuffle path in miniature
        half = len(rows) // 2
        partials = [K.group_aggregate(batch_of(rows[:half]), ["k"], aggs),
                    K.group_aggregate(batch_of(rows[half:]), ["k"], aggs)]
        merged = K.merge_aggregate(
            ColumnarBatch.concat(partials[0].schema, partials), ["k"], aggs)

        ref = defaultdict(lambda: [0, 0, 0.0, None, None])
        for k, g, v, w in rows:
            r = ref[k]
            r[0] += v
            r[1] += 1
            r[2] += w
            r[3] = v if r[3] is None else min(r[3], v)
            r[4] = v if r[4] is None else max(r[4], v)

        got = {row[0]: row[1:] for row in merged.to_rows()}
        assert set(got) == set(ref)
        for k, (total, n, wsum, lo, hi) in ref.items():
            gt, gn, gm, glo, ghi = got[k]
            assert gt == total and gn == n
            assert math.isclose(gm, wsum / n, rel_tol=1e-9, abs_tol=1e-9)
            assert glo == lo and ghi == hi

    @given(rows_st)
    @settings(max_examples=60)
    def test_string_min_max_partial_plus_merge(self, rows):
        # regression: reduceat has no unicode loop — string min/max go
        # through the sorted-group layout instead
        aggs = [("min", "k", "lo"), ("max", "k", "hi")]
        half = len(rows) // 2
        partials = [K.group_aggregate(batch_of(rows[:half]), ["g"], aggs),
                    K.group_aggregate(batch_of(rows[half:]), ["g"], aggs)]
        merged = K.merge_aggregate(
            ColumnarBatch.concat(partials[0].schema, partials), ["g"], aggs)

        ref = defaultdict(list)
        for k, g, v, w in rows:
            ref[g].append(k)
        got = {row[0]: row[1:] for row in merged.to_rows()}
        assert set(got) == set(ref)
        for g, ks in ref.items():
            assert got[g] == (min(ks), max(ks))


class TestHashJoin:
    @given(rows_st, rows_st)
    @settings(max_examples=60)
    def test_matches_nested_loop_reference(self, left_rows, right_rows):
        right_schema = (("g", "int"), ("label", "str"))
        right_rows = [(g, k) for k, g, _, _ in right_rows]
        left = batch_of(left_rows)
        right = ColumnarBatch.from_rows(right_schema, right_rows)
        joined = K.hash_join(left, right, "g", "g")

        expected = []
        for lrow in left_rows:
            for g, label in right_rows:
                if lrow[1] == g:
                    expected.append(tuple(lrow) + (label,))
        assert sorted(joined.to_rows()) == sorted(expected)

    def test_name_clash_gets_suffix(self):
        left = ColumnarBatch.from_rows(
            (("id", "int"), ("x", "int")), [(1, 10)])
        right = ColumnarBatch.from_rows(
            (("id", "int"), ("x", "int")), [(1, 99)])
        out = K.hash_join(left, right, "id", "id")
        assert out.column_names == ["id", "x", "x_r"]
        assert out.to_rows() == [(1, 10, 99)]

    def test_mismatched_key_kinds_raise(self):
        # regression: casting float 2.5 to the left's int dtype made it
        # match int 2 — mixed-kind keys must error, not silently join
        left = ColumnarBatch.from_rows(
            (("id", "int"), ("x", "int")), [(2, 10)])
        right = ColumnarBatch.from_rows(
            (("id", "float"), ("y", "int")), [(2.5, 99)])
        with pytest.raises(TypeError, match="kind mismatch"):
            K.hash_join(left, right, "id", "id")


class TestSortLimit:
    @given(rows_st)
    @settings(max_examples=40)
    def test_sort_matches_python_sorted(self, rows):
        batch = batch_of(rows)
        out = K.sort_batch(batch, [("v", True), ("k", False)])
        expected = sorted(
            (tuple(r) for r in rows),
            key=lambda r: (r[2],))
        # verify primary key ordering and secondary (k desc) within ties
        got = out.to_rows()
        assert [r[2] for r in got] == [r[2] for r in expected]
        for i in range(len(got) - 1):
            if got[i][2] == got[i + 1][2]:
                assert got[i][0] >= got[i + 1][0]

    @given(rows_st, st.integers(0, 10))
    def test_limit(self, rows, n):
        out = K.limit_batch(batch_of(rows), n)
        assert out.to_rows() == [tuple(r) for r in rows[:n]]
