"""ColumnarRDD family through the real engine: parity with row RDDs,
cost accounting, and cache integration."""

from collections import defaultdict

from repro.columnar import kernels as K
from repro.columnar.batch import ColumnarBatch
from repro.columnar.rdd import (
    ColumnarExchangeRDD,
    ColumnarHashPartitioner,
    ColumnarKernelRDD,
    ColumnarScanRDD,
)
from repro.engine.context import StarkContext

SCHEMA = (("k", "str"), ("v", "int"))


def make_rows(pid, per=100):
    return [(f"k{(pid * per + i) % 13}", (i * 7 + pid) % 101)
            for i in range(per)]


def scan(context, parts=4, **kwargs):
    return ColumnarScanRDD(
        context,
        lambda pid: ColumnarBatch.from_rows(SCHEMA, make_rows(pid)),
        SCHEMA, parts, **kwargs)


def collect_batches(context, rdd):
    parts = context.run_job(rdd, lambda records: records)
    return [b for part in parts for b in part]


class TestPipelineParity:
    def test_scan_filter_aggregate_matches_row_reference(self):
        sc = StarkContext(num_workers=2)
        aggs = [("sum", "v", "total"), ("count", None, "n")]
        src = scan(sc)
        partial = ColumnarKernelRDD(
            src, lambda b: K.group_aggregate(b, ["k"], aggs),
            K.partial_agg_schema((("k", "str"),), aggs, dict(SCHEMA)),
            desc="partial", kernels=2)
        exchanged = ColumnarExchangeRDD(
            partial, ["k"], 4, partial.schema)
        merged = ColumnarKernelRDD(
            exchanged, lambda b: K.merge_aggregate(b, ["k"], aggs),
            (("k", "str"), ("total", "float"), ("n", "int")),
            desc="merge", kernels=2)
        rows = sorted(r for b in collect_batches(sc, merged)
                      for r in b.to_rows())

        ref = defaultdict(lambda: [0, 0])
        for pid in range(4):
            for k, v in make_rows(pid):
                ref[k][0] += v
                ref[k][1] += 1
        assert rows == sorted((k, float(t), n) for k, (t, n) in ref.items())

    def test_exchange_partitioner_co_locates_keys(self):
        sc = StarkContext(num_workers=2)
        exchanged = ColumnarExchangeRDD(scan(sc), ["k"], 4, SCHEMA)
        assert exchanged.partitioner == ColumnarHashPartitioner(4, ["k"])
        parts = sc.run_job(exchanged, lambda records: records)
        seen = {}
        for pid, batches in enumerate(parts):
            for batch in batches:
                for k in set(batch.column("k").tolist()):
                    assert seen.setdefault(k, pid) == pid


class TestCostAccounting:
    def test_columnar_compute_cost_is_cheaper_per_record(self):
        sc = StarkContext(num_workers=2)
        model = sc.cost_model
        # At realistic batch sizes the per-record rate dominates the
        # fixed kernel overhead and the vectorized arm wins by >5x.
        rows_total = 100_000
        row_cost = model.compute_cost(rows_total)
        col_cost = model.columnar_compute_cost(rows_total, kernels=1)
        assert col_cost < row_cost / 5

    def test_scan_charges_input_bytes(self):
        def job_bytes(sc, rdd):
            sc.run_job(rdd, len)
            return sum(t.input_bytes for t in sc.metrics.last_job().tasks)

        sc = StarkContext(num_workers=2)
        full_bytes = job_bytes(sc, scan(sc))
        sc2 = StarkContext(num_workers=2)
        projected_bytes = job_bytes(sc2, scan(sc2, columns=["v"]))
        assert 0 < projected_bytes < full_bytes


class TestCacheIntegration:
    def test_cached_batches_hit_on_reuse(self):
        sc = StarkContext(num_workers=2)
        rdd = scan(sc).cache()
        sc.run_job(rdd, len)
        misses_after_first = sc.metrics.cache_stats()["misses"]
        sc.run_job(rdd, len)
        stats = sc.metrics.cache_stats()
        assert misses_after_first == 4
        assert stats["hits"] == 4

    def test_batch_memory_size_is_declared_bytes(self):
        batch = ColumnarBatch.from_rows(SCHEMA, [("ab", 1), ("c", 2)])
        from repro.cluster.cost_model import RecordSizer

        sizer = RecordSizer()
        # declared size, not size_of * overhead: one element list holding
        # the batch occupies base + raw column bytes.
        expected = sizer.base + batch.sim_memory_size
        assert sizer.in_memory_size([batch]) == expected
