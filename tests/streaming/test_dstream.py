"""Tests for the micro-batch streaming layer."""

import pytest

from repro.engine.partitioner import HashPartitioner
from repro.streaming import StreamingContext
from repro.workloads.distributions import seeded_rng


def counting_receiver(records_per_step=40, num_keys=10):
    def receiver(step, num_partitions):
        def generate(pid):
            rng = seeded_rng("stream", step, pid)
            return [
                (f"k{rng.randint(0, num_keys - 1)}", step)
                for i in range(pid, records_per_step, num_partitions)
            ]

        return generate

    return receiver


@pytest.fixture
def ssc(sc):
    return StreamingContext(sc, batch_seconds=300.0, retention_steps=4)


class TestIngestion:
    def test_advance_creates_one_rdd_per_step(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        ssc.advance(3)
        assert sorted(stream.rdds) == [0, 1, 2]

    def test_batch_contents_correct(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(40), 4)
        ssc.advance(1)
        assert stream.rdd_of_step(0).count() == 40

    def test_retention_evicts_old_steps(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        ssc.advance(6)
        assert sorted(stream.rdds) == [2, 3, 4, 5]

    def test_eviction_unpersists_blocks(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        ssc.advance(1)
        old = stream.rdd_of_step(0)
        assert sc.block_manager_master.cached_partitions_of(old.rdd_id)
        ssc.advance(5)
        assert not sc.block_manager_master.cached_partitions_of(old.rdd_id)

    def test_stark_mode_registers_namespace(self, sc, ssc):
        part = HashPartitioner(4)
        ssc.receiver_stream(counting_receiver(), 4, partitioner=part,
                            namespace="stream")
        ssc.advance(2)
        assert sc.locality_manager.has_namespace("stream")
        assert len(sc.locality_manager.rdds_in_namespace("stream")) == 2

    def test_spark_mode_partitions_without_namespace(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(), 4, partitioner=part)
        ssc.advance(1)
        rdd = stream.latest()
        assert rdd.partitioner == part
        assert rdd.namespace is None

    def test_invalid_parameters(self, sc):
        with pytest.raises(ValueError):
            StreamingContext(sc, batch_seconds=0)
        with pytest.raises(ValueError):
            StreamingContext(sc, retention_steps=0)


class TestWindows:
    def test_window_returns_recent_steps(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        ssc.advance(4)
        window = stream.window(2)
        assert [r.name for r in window] == \
            [stream.rdd_of_step(2).name, stream.rdd_of_step(3).name]

    def test_slice_bounds_inclusive(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        ssc.advance(4)
        assert len(stream.slice(1, 2)) == 2

    def test_window_cogroup_over_steps(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(60), 4,
                                     partitioner=part, namespace="w")
        ssc.advance(3)
        rdds = stream.window(3)
        merged = rdds[0].cogroup(*rdds[1:])
        result = dict(merged.collect())
        for key, groups in result.items():
            assert len(groups) == 3
            # Values carry the step number they arrived in.
            for step, values in enumerate(groups):
                assert all(v == step for v in values)

    def test_missing_step_raises(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        ssc.advance(6)
        with pytest.raises(KeyError, match="not available"):
            stream.rdd_of_step(0)

    def test_latest_none_before_any_step(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        assert stream.latest() is None


class TestUpdateStateByKey:
    def test_running_counts(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(40, num_keys=5), 4,
                                     partitioner=part, namespace="state")

        def update(new_values, old_state):
            return (old_state or 0) + len(new_values)

        stateful = ssc.update_state_by_key(stream, update, part)
        ssc.advance(1)
        stateful.step()
        ssc.advance(1)
        state = stateful.step()
        totals = dict(state.collect())
        assert sum(totals.values()) == 80  # 40 records x 2 steps

    def test_state_without_batch_raises(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(), 4,
                                     partitioner=part, namespace="state")
        stateful = ssc.update_state_by_key(stream, lambda n, o: len(n), part)
        with pytest.raises(RuntimeError, match="advance"):
            stateful.step()

    def test_state_lineage_grows(self, sc, ssc):
        """The runningReduce chain grows unboundedly — the structure the
        CheckpointOptimizer exists for."""
        from repro.core.checkpoint_optimizer import CheckpointOptimizer

        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(20, num_keys=3), 4,
                                     partitioner=part, namespace="state")
        stateful = ssc.update_state_by_key(
            stream, lambda n, o: (o or 0) + len(n), part
        )
        opt = CheckpointOptimizer(sc, recovery_bound=1e9)
        lengths = []
        for _ in range(4):
            ssc.advance(1)
            state = stateful.step()
            nodes = opt.build_lineage([state])
            lengths.append(
                opt.longest_uncheckpointed_delay(nodes, state.rdd_id)
            )
        assert lengths == sorted(lengths)
        assert lengths[-1] > lengths[0]

    def test_optimizer_bounds_state_lineage(self, sc, ssc):
        from repro.core.checkpoint_optimizer import CheckpointOptimizer

        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(30, num_keys=3), 4,
                                     partitioner=part, namespace="state")
        stateful = ssc.update_state_by_key(
            stream, lambda n, o: (o or 0) + len(n), part
        )
        ssc.advance(1)
        state = stateful.step()
        probe = CheckpointOptimizer(sc, recovery_bound=1e9)
        view = probe.build_lineage([state])
        per_step = probe.longest_uncheckpointed_delay(view, state.rdd_id)
        bound = per_step * 3
        opt = CheckpointOptimizer(sc, recovery_bound=bound)
        for _ in range(6):
            ssc.advance(1)
            state = stateful.step()
            decision = opt.optimize([state])
            assert decision.residual_path_delay <= bound + 1e-12


class TestWindowedOps:
    def test_window_cogroup_groups_by_step(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(40, num_keys=4), 4,
                                     partitioner=part, namespace="wc")
        ssc.advance(3)
        grouped = stream.window_cogroup(3)
        for key, groups in grouped.collect():
            assert len(groups) == 3

    def test_window_cogroup_single_step(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(20), 4,
                                     partitioner=part, namespace="wc1")
        ssc.advance(1)
        grouped = stream.window_cogroup(1)
        for key, groups in grouped.collect():
            assert len(groups) == 1

    def test_window_cogroup_empty(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(), 4)
        assert stream.window_cogroup(3) is None

    def test_window_reduce_by_key(self, sc, ssc):
        part = HashPartitioner(4)
        stream = ssc.receiver_stream(counting_receiver(40, num_keys=4), 4,
                                     partitioner=part, namespace="wr")
        ssc.advance(2)
        # Values are the step index; summing over the window gives, per
        # key, (count_in_step0 * 0 + count_in_step1 * 1).
        reduced = stream.window_reduce_by_key(lambda a, b: a + b, 2)
        totals = dict(reduced.collect())
        raw = {}
        for step in (0, 1):
            for k, v in stream.rdd_of_step(step).collect():
                raw[k] = raw.get(k, 0) + v
        assert totals == raw

    def test_window_count(self, sc, ssc):
        stream = ssc.receiver_stream(counting_receiver(40), 4)
        ssc.advance(3)
        assert stream.window_count(2) == 80
