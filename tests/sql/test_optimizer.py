"""Optimizer rewrites: structural legality + result preservation."""

from repro.engine.context import StarkContext
from repro.sql import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Project,
    SQLSession,
    Scan,
    Sort,
    col,
    lit,
    optimize,
)
from repro.columnar.rdd import batch_of
from repro.sql.compiler import compile_plan
from repro.sql.dataframe import DataFrame


def make_session():
    sc = StarkContext(num_workers=2)
    session = SQLSession(sc)
    rows = [(f"k{i % 7}", i % 3, i, i * 0.5) for i in range(60)]
    session.from_rows(
        "t", [("k", "str"), ("g", "int"), ("v", "int"), ("w", "float")],
        rows, num_partitions=3)
    session.from_rows(
        "d", [("g", "int"), ("name", "str")],
        [(i, f"n{i}") for i in range(3)], num_partitions=2)
    return session, rows


class TestFilterPushdown:
    def test_filter_lands_in_scan(self):
        session, _ = make_session()
        plan = Filter(Scan(session.tables["t"]), col("v") > lit(10))
        optimized, stats = optimize(plan)
        assert isinstance(optimized, Scan)
        assert optimized.predicate is not None
        assert stats.pushed_filters == 1

    def test_filter_pushes_through_projection_with_substitution(self):
        session, _ = make_session()
        plan = Filter(
            Project(Scan(session.tables["t"]),
                    [("x", col("v") * lit(2))]),
            col("x") > lit(10))
        optimized, stats = optimize(plan)
        assert stats.pushed_filters == 1
        assert isinstance(optimized, Project)
        scan = optimized.child
        assert isinstance(scan, Scan)
        # x > 10 became (v * 2) > 10 inside the scan
        assert "v" in scan.predicate.columns()

    def test_filter_splits_to_matching_join_side(self):
        session, _ = make_session()
        plan = Filter(
            Join(Scan(session.tables["t"]), Scan(session.tables["d"]),
                 "g", "g"),
            col("name") != lit("n0"))
        optimized, stats = optimize(plan)
        assert stats.pushed_filters == 1
        assert isinstance(optimized, Join)
        assert optimized.right.predicate is not None
        assert optimized.left.predicate is None

    def test_filter_stops_above_limit(self):
        session, _ = make_session()
        plan = Filter(Limit(Scan(session.tables["t"]), 5),
                      col("v") > lit(10))
        optimized, stats = optimize(plan)
        assert isinstance(optimized, Filter)
        assert stats.pushed_filters == 0

    def test_filter_on_group_keys_passes_aggregate(self):
        session, _ = make_session()
        from repro.sql import AggSpec

        agg = Aggregate(Scan(session.tables["t"]), ["k"],
                        [AggSpec("sum", "v", "total")])
        optimized, stats = optimize(Filter(agg, col("k") != lit("k0")))
        assert isinstance(optimized, Aggregate)
        assert stats.pushed_filters == 1


class TestProjectionPruning:
    def test_scan_reads_only_needed_columns(self):
        session, _ = make_session()
        plan = Project(Scan(session.tables["t"]), [("v", col("v"))])
        optimized, stats = optimize(plan)
        scan = optimized.child
        assert [name for name, _ in scan.schema()] == ["v"]
        assert stats.pruned_columns == 3

    def test_pruning_preserves_join_rename(self):
        # regression: pruning the left side to required-only columns
        # dropped the left "x" whose clash drives the right column's
        # x_r rename, so the rebuilt Join output the bare name and the
        # parent Project crashed on the now-unknown suffixed column
        sc = StarkContext(num_workers=2)
        session = SQLSession(sc)
        session.from_rows(
            "a", [("k", "int"), ("x", "int")],
            [(i, i * 10) for i in range(6)], num_partitions=2)
        session.from_rows(
            "b", [("k", "int"), ("x", "int")],
            [(i, i * 100) for i in range(6)], num_partitions=2)
        plan = Project(
            Join(Scan(session.tables["a"]), Scan(session.tables["b"]),
                 "k", "k"),
            [("x_r", col("x_r"))])
        optimized, _ = optimize(plan)
        assert [name for name, _ in optimized.schema()] == ["x_r"]
        schema = optimized.schema()
        rdd, _ = compile_plan(optimized, sc)
        parts = sc.run_job(
            rdd, lambda records: batch_of(records, schema).to_rows())
        got = sorted(r for part in parts for r in part)
        assert got == [(i * 100,) for i in range(6)]

    def test_pushdown_reduces_simulated_bytes_read(self):
        session, _ = make_session()

        def bytes_read(plan):
            sc = session.context
            rdd, _ = compile_plan(optimize(plan)[0], sc)
            sc.run_job(rdd, len)
            return sum(t.input_bytes for t in sc.metrics.last_job().tasks)

        wide = Scan(session.tables["t"])
        narrow = Project(Scan(session.tables["t"]), [("v", col("v"))])
        assert 0 < bytes_read(narrow) < bytes_read(wide)


class TestResultPreservation:
    def test_optimized_equals_logical_semantics(self):
        session, rows = make_session()
        df = (session.table("t")
              .filter(col("v") > lit(7))
              .join(session.table("d"), on="g")
              .select("k", "name", (col("v") + lit(1)).alias("v1"))
              .order_by("k"))
        got = df.collect()
        names = {i: f"n{i}" for i in range(3)}
        expected = sorted(
            ((k, names[g], v + 1) for k, g, v, w in rows if v > 7),
            key=lambda r: (r[0],))
        assert sorted(got) == sorted(expected)
        # and the ordering column itself is sorted
        assert [r[0] for r in got] == sorted(r[0] for r in got)

    def test_sort_survives_pushdown(self):
        session, rows = make_session()
        optimized, _ = optimize(
            Filter(Sort(Scan(session.tables["t"]), [("v", False)]),
                   col("v") > lit(10)))
        assert isinstance(optimized, Sort)
        assert isinstance(optimized.child, Scan)
