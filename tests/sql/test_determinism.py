"""Columnar/SQL determinism: same seed ⇒ byte-identical event log.

Extends the determinism suite (``tests/cluster/test_determinism.py``)
to the columnar path: the full SQL workload — scans, vectorized
kernels, hash exchanges, joins, sorts — must replay exactly, including
every simulated timestamp and byte size in the JSONL log.
"""

import io

from repro.columnar.datagen import register_tpch_tables
from repro.engine.context import StarkContext
from repro.obs.listeners import JsonlEventLog
from repro.sql import SQLSession

QUERIES = [
    "SELECT o_status, COUNT(*) AS n, SUM(o_totalprice) AS total "
    "FROM orders WHERE o_totalprice > 250 GROUP BY o_status "
    "ORDER BY o_status",
    "SELECT l_returnflag, SUM(l_extendedprice) AS revenue FROM lineitem "
    "JOIN orders ON l_orderkey = o_orderkey WHERE o_status = 'O' "
    "GROUP BY l_returnflag ORDER BY revenue DESC",
    "SELECT o_orderkey, o_totalprice FROM orders "
    "ORDER BY o_totalprice DESC LIMIT 7",
]


def sql_run(seed: int):
    """Returns (event log text, all query results)."""
    sc = StarkContext(num_workers=3, cores_per_worker=2)
    sink = io.StringIO()
    log = JsonlEventLog(sink)
    sc.event_bus.subscribe(log)
    session = SQLSession(sc)
    register_tpch_tables(session, num_partitions=4,
                         orders_per_partition=100,
                         lineitems_per_partition=300, seed=seed)
    results = [session.sql(q).collect() for q in QUERIES]
    log.flush()
    return sink.getvalue(), results


class TestColumnarDeterminism:
    def test_log_is_byte_identical(self):
        first_log, first_results = sql_run(seed=21)
        second_log, second_results = sql_run(seed=21)
        assert first_log, "run produced no events"
        assert first_log == second_log
        assert first_results == second_results

    def test_different_seeds_diverge(self):
        assert sql_run(seed=1)[1] != sql_run(seed=2)[1]

    def test_results_are_row_tuples(self):
        _, results = sql_run(seed=3)
        assert all(isinstance(row, tuple)
                   for rows in results for row in rows)
