"""DataFrame plans vs row-at-a-time references (hypothesis).

Randomized rows run through the full optimize → compile → engine path
and are compared with plain-Python evaluation built on ``Expr.eval_row``
— the scalar reference semantics the vectorized kernels must match.
"""

import math
from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.context import StarkContext
from repro.obs import EventCollector, QueryCompleted, QueryFailed, QueryPlanned
from repro.sql import SQLSession, col, lit

SCHEMA = [("k", "str"), ("g", "int"), ("v", "int"), ("w", "float")]

rows_st = st.lists(
    st.tuples(st.sampled_from(["a", "b", "cc", "dd"]),
              st.integers(0, 4),
              st.integers(-500, 500),
              st.floats(-50, 50, allow_nan=False)),
    max_size=40)


def session_for(rows, num_partitions=3):
    sc = StarkContext(num_workers=2)
    session = SQLSession(sc)
    session.from_rows("t", SCHEMA, rows, num_partitions=num_partitions)
    return session


class TestPlanParity:
    @given(rows_st, st.integers(-500, 500))
    @settings(max_examples=30, deadline=None)
    def test_filter_project(self, rows, threshold):
        session = session_for(rows)
        predicate = (col("v") > lit(threshold)) & (col("k") != lit("cc"))
        df = (session.table("t").filter(predicate)
              .select("k", (col("v") * lit(2) + col("g")).alias("x")))
        got = df.collect()
        batch_cols = {name: None for name, _ in SCHEMA}
        expected = [
            (r[0], r[2] * 2 + r[1]) for r in rows
            if predicate.eval_row(dict(zip(batch_cols, r)))]
        assert got == expected

    @given(rows_st)
    @settings(max_examples=30, deadline=None)
    def test_group_aggregate(self, rows):
        session = session_for(rows)
        df = (session.table("t").group_by("k")
              .agg(total=("sum", "v"), n=("count",), m=("avg", "w"))
              .order_by("k"))
        got = df.collect()
        ref = defaultdict(lambda: [0, 0, 0.0])
        for k, g, v, w in rows:
            ref[k][0] += v
            ref[k][1] += 1
            ref[k][2] += w
        expected = sorted((k, r[0], r[1], r[2] / r[1])
                          for k, r in ref.items())
        assert len(got) == len(expected)
        for (gk, gt, gn, gm), (ek, et, en, em) in zip(got, expected):
            assert gk == ek and gt == et and gn == en
            assert math.isclose(gm, em, rel_tol=1e-9, abs_tol=1e-9)

    @given(rows_st, rows_st)
    @settings(max_examples=20, deadline=None)
    def test_join(self, left_rows, right_rows):
        session = session_for(left_rows)
        dim = [(g, f"label{g}") for g in
               sorted({r[1] for r in right_rows})]
        session.from_rows("dim", [("g", "int"), ("name", "str")], dim,
                          num_partitions=2)
        df = session.table("t").join(session.table("dim"), on="g") \
            .select("k", "g", "name")
        got = sorted(df.collect())
        labels = dict(dim)
        expected = sorted((k, g, labels[g]) for k, g, _, _ in left_rows
                          if g in labels)
        assert got == expected

    def test_join_on_mismatched_key_kinds_raises_at_plan_time(self):
        # regression: int-vs-float keys hashed to different partitions
        # in the exchange, silently dropping matches
        session = session_for([("a", 1, 2, 3.0)])
        session.from_rows("fdim", [("g", "float"), ("name", "str")],
                          [(1.0, "one")], num_partitions=2)
        with pytest.raises(TypeError, match="kind mismatch"):
            session.table("t").join(session.table("fdim"), on="g")

    @given(rows_st)
    @settings(max_examples=20, deadline=None)
    def test_string_min_max(self, rows):
        # regression: min/max over str columns crashed in reduceat
        session = session_for(rows)
        df = (session.table("t").group_by("g")
              .agg(lo=("min", "k"), hi=("max", "k"))
              .order_by("g"))
        got = df.collect()
        ref = defaultdict(list)
        for k, g, v, w in rows:
            ref[g].append(k)
        expected = sorted((g, min(ks), max(ks)) for g, ks in ref.items())
        assert got == expected


class TestSessionAccounting:
    def test_counters_and_events(self):
        session = session_for([("a", 1, 2, 3.0), ("b", 2, 3, 4.0)])
        collector = EventCollector()
        session.context.event_bus.subscribe(collector)
        df = session.table("t").filter(col("v") > lit(0))
        assert df.count() == 2
        assert df.collect()  # second query, fresh DataFrame state reused
        assert session.queries_planned == 2
        assert session.queries_completed == 2
        assert session.queries_failed == 0
        assert len(collector.of_type(QueryPlanned)) == 2
        assert len(collector.of_type(QueryCompleted)) == 2
        planned = collector.of_type(QueryPlanned)[0]
        # the filter collapsed into the scan: one operator, one pushdown
        assert planned.num_operators == 1
        assert planned.pushed_filters == 1

    def test_failed_query_counts_and_raises(self):
        sc = StarkContext(num_workers=2)
        session = SQLSession(sc)
        collector = EventCollector()
        sc.event_bus.subscribe(collector)

        def exploding(pid):
            raise RuntimeError("bad generator")

        session.create_table("boom", [("x", "int")], exploding, 2,
                             read_cost="none")
        with pytest.raises(RuntimeError):
            session.table("boom").collect()
        assert session.queries_planned == 1
        assert session.queries_failed == 1
        assert session.queries_completed == 0
        assert len(collector.of_type(QueryFailed)) == 1
        # identity the stark trace reconciliation row checks
        assert (len(collector.of_type(QueryPlanned))
                == len(collector.of_type(QueryCompleted))
                + len(collector.of_type(QueryFailed)))

    def test_session_attaches_to_context(self):
        session = session_for([])
        assert session.context.sql_session is session
