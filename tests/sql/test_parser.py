"""SQL parser: grammar coverage and parity with the fluent API."""

import pytest

from repro.engine.context import StarkContext
from repro.sql import SQLParseError, SQLSession, col, lit


def make_session():
    sc = StarkContext(num_workers=2)
    session = SQLSession(sc)
    rows = [(f"k{i % 5}", i % 3, i, i * 0.25) for i in range(40)]
    session.from_rows(
        "t", [("k", "str"), ("g", "int"), ("v", "int"), ("w", "float")],
        rows, num_partitions=2)
    session.from_rows(
        "d", [("g", "int"), ("name", "str")],
        [(i, f"n{i}") for i in range(3)], num_partitions=2)
    return session


class TestGrammar:
    def test_select_star(self):
        session = make_session()
        assert len(session.sql("SELECT * FROM t").collect()) == 40

    def test_projection_arithmetic_aliases(self):
        session = make_session()
        out = session.sql(
            "SELECT v, v * 2 + g AS x FROM t WHERE v < 3").collect()
        assert out == [(0, 0), (1, 3), (2, 6)]

    def test_where_and_or_not_precedence(self):
        session = make_session()
        sql_rows = session.sql(
            "SELECT v FROM t WHERE v < 5 AND NOT k = 'k0' OR v = 10"
        ).collect()
        fluent = (session.table("t")
                  .filter(((col("v") < lit(5)) & ~(col("k") == lit("k0")))
                          | (col("v") == lit(10)))
                  .select("v")).collect()
        assert sql_rows == fluent

    def test_group_by_aggregates(self):
        session = make_session()
        out = session.sql(
            "SELECT g, COUNT(*) AS n, SUM(v) AS total, MIN(v) AS lo "
            "FROM t GROUP BY g ORDER BY g").collect()
        assert [r[0] for r in out] == [0, 1, 2]
        assert sum(r[1] for r in out) == 40

    def test_join_order_limit(self):
        session = make_session()
        out = session.sql(
            "SELECT k, name, v FROM t JOIN d ON g = g "
            "ORDER BY v DESC LIMIT 3").collect()
        assert [r[2] for r in out] == [39, 38, 37]
        assert all(r[1].startswith("n") for r in out)

    def test_string_literals_and_quotes(self):
        session = make_session()
        out = session.sql(
            "SELECT v FROM t WHERE k = 'k1' LIMIT 2").collect()
        assert out == [(1,), (6,)]


class TestErrors:
    def test_aggregate_without_group_by(self):
        with pytest.raises(SQLParseError):
            make_session().sql("SELECT SUM(v) AS s FROM t")

    def test_non_key_select_with_group_by(self):
        with pytest.raises(SQLParseError):
            make_session().sql(
                "SELECT v, SUM(w) AS s FROM t GROUP BY g")

    def test_unknown_table(self):
        with pytest.raises(SQLParseError):
            make_session().sql("SELECT * FROM nope")

    def test_trailing_garbage(self):
        with pytest.raises(SQLParseError):
            make_session().sql("SELECT * FROM t WHAT")

    def test_tokenizer_rejects_junk(self):
        with pytest.raises(SQLParseError):
            make_session().sql("SELECT * FROM t WHERE v > §")
