"""Perfetto trace export round-trip: export a full-stack service run,
re-parse the JSON, and check track/span structure."""

import json

from repro.cli import _run_traced_workload
from repro.obs import ChromeTraceExporter, JsonlEventLog
from repro.obs.listeners import validate_event_log
from repro.obs.trace import DRIVER_PID, SERVICE_TID

_US = 1e6


def _export_service_run(tmp_path):
    tracer = ChromeTraceExporter()
    jsonl = tmp_path / "events.jsonl"
    with JsonlEventLog(jsonl) as log:
        _run_traced_workload("service", [tracer, log])
    trace_path = tracer.export(tmp_path / "trace.json")
    return json.loads(trace_path.read_text()), jsonl


def test_service_run_round_trips(tmp_path):
    trace, jsonl = _export_service_run(tmp_path)

    # The raw event log the trace was rendered from is schema-valid.
    assert validate_event_log(jsonl) == []

    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events, "trace is non-empty"
    phases = {e["ph"] for e in events}
    assert "M" in phases and "X" in phases

    spans = [e for e in events if e["ph"] == "X"]
    for span in spans:
        assert span["dur"] >= 0
        assert span["ts"] >= 0
        assert {"name", "pid", "tid", "cat"} <= set(span)

    # Driver track: job spans on tid 1, stage spans on tid 2; worker
    # processes hold the task spans.
    jobs = [s for s in spans
            if s["pid"] == DRIVER_PID and s["cat"] == "job"]
    stages = [s for s in spans
              if s["pid"] == DRIVER_PID and s["cat"] == "stage"]
    tasks = [s for s in spans if s["pid"] != DRIVER_PID
             and s["cat"] == "task"]
    assert jobs and stages and tasks
    assert all(s["tid"] == 1 for s in jobs)
    assert all(s["tid"] == 2 for s in stages)

    # Every stage span nests inside its job's window, every task span
    # inside its stage's window (matched via args).
    tol = 1e-3  # microsecond timestamps: 1e-3 us = 1e-9 s
    job_windows = {}
    for span in jobs:
        job_windows[span["args"]["job_id"]] = (
            span["ts"], span["ts"] + span["dur"])
    stage_windows = {}
    for span in stages:
        begin, end = span["ts"], span["ts"] + span["dur"]
        stage_windows[(span["args"]["job_id"],
                       span["args"]["stage_id"])] = (begin, end)
        jb, je = job_windows[span["args"]["job_id"]]
        assert jb - tol <= begin and end <= je + tol
    assert stage_windows
    for span in tasks:
        key = (span["args"]["job_id"], span["args"]["stage_id"])
        sb, se = stage_windows[key]
        assert sb - tol <= span["ts"]
        assert span["ts"] + span["dur"] <= se + tol

    # Process metadata names the driver and at least one worker.
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert any("driver" in n for n in names)
    assert any("worker" in n for n in names)


def test_service_run_renders_service_track(tmp_path):
    """Sheds, dataset lifecycle, and pool reweights land as instant
    markers on the driver's dedicated service track."""
    trace, _ = _export_service_run(tmp_path)
    events = trace["traceEvents"]
    markers = [e for e in events if e["ph"] == "i"
               and e["pid"] == DRIVER_PID and e["tid"] == SERVICE_TID]
    names = [m["name"] for m in markers]
    assert any(n.startswith("shed gamma") for n in names)
    assert any(n.startswith("register ds-") for n in names)
    assert any("(dedup)" in n for n in names)
    assert any(n.startswith("branch ds-beta") for n in names)
    assert any(n.startswith("drop ds-scratch") for n in names)
    assert any(n.startswith("pool ") for n in names)
    # ... and the track is named in process metadata.
    assert any(e["ph"] == "M" and e["name"] == "thread_name"
               and e.get("tid") == SERVICE_TID
               and e["args"]["name"] == "service" for e in events)
