"""Event-ordering invariants: real streams pass, corrupted ones fail.

The hypothesis test drives randomized workloads (shapes, caching,
cluster sizes) through a real context and requires the emitted stream to
satisfy every invariant — the property the observability layer promises
its consumers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EventCollector, check_event_invariants
from repro.obs.events import JobEnd, JobStart, TaskEnd, TaskStart

from .conftest import make_context, run_small_workload


def job_start(t=0.0, job_id=0):
    return JobStart(time=t, job_id=job_id, description="j")


def job_end(t=1.0, job_id=0):
    return JobEnd(time=t, job_id=job_id, duration=t, num_stages=0,
                  skipped_stages=0)


def task_start(t, task_id=0, stage_id=-1, job_id=0):
    return TaskStart(time=t, job_id=job_id, stage_id=stage_id,
                     task_id=task_id, partition=0, worker_id=0,
                     locality="ANY")


def task_end(t, task_id=0, stage_id=-1, job_id=0, duration=0.0):
    return TaskEnd(
        time=t, job_id=job_id, stage_id=stage_id, task_id=task_id,
        partition=0, worker_id=0, locality="ANY", duration=duration,
        launch_overhead=0.0, cache_read_time=0.0, compute_time=0.0,
        shuffle_fetch_local_time=0.0, shuffle_fetch_remote_time=0.0,
        shuffle_write_time=0.0, checkpoint_read_time=0.0,
        source_read_time=0.0, gc_time=0.0,
    )


class TestViolationsDetected:
    def test_empty_stream_is_clean(self):
        assert check_event_invariants([]) == []

    def test_well_formed_minimal_stream(self):
        events = [job_start(0.0), task_start(0.1), task_end(0.2),
                  job_end(0.3)]
        assert check_event_invariants(events) == []

    def test_task_end_without_start(self):
        problems = check_event_invariants(
            [job_start(), task_end(0.5), job_end()])
        assert any("TaskEnd without TaskStart" in p for p in problems)

    def test_task_ends_before_it_starts(self):
        problems = check_event_invariants(
            [job_start(0.0), task_start(0.5), task_end(0.2), job_end(1.0)])
        assert any("ends at" in p for p in problems)

    def test_job_end_without_start(self):
        problems = check_event_invariants([job_end()])
        assert any("JobEnd without JobStart" in p for p in problems)

    def test_dangling_job_and_task(self):
        problems = check_event_invariants([job_start(), task_start(0.1)])
        assert any("never ended" in p for p in problems)
        assert any("started but never ended" in p for p in problems)

    def test_double_start_and_double_end(self):
        problems = check_event_invariants([
            job_start(0.0), task_start(0.1), task_start(0.1),
            task_end(0.2), task_end(0.2), job_end(0.3),
        ])
        assert any("started twice" in p for p in problems)
        assert any("ended twice" in p for p in problems)

    def test_bad_timestamp(self):
        problems = check_event_invariants([job_start(float("nan"), 0)])
        assert any("bad timestamp" in p for p in problems)

    def test_launch_goes_backwards_within_stage(self):
        problems = check_event_invariants([
            job_start(0.0),
            TaskStart(time=1.0, job_id=0, stage_id=-1, task_id=0,
                      partition=0, worker_id=0, locality="ANY"),
        ])
        # stage -1 (checkpoint pseudo-stage) is exempt...
        assert not any("moves backwards" in p for p in problems)
        stream = [
            job_start(0.0),
            task_start(1.0, task_id=0, stage_id=3),
            task_start(0.5, task_id=1, stage_id=3),
        ]
        problems = check_event_invariants(stream)
        # ...but a real stage is not
        assert any("moves backwards" in p for p in problems)


class TestRealStreams:
    def test_small_workload_stream_is_well_formed(self, sc):
        collector = EventCollector()
        sc.event_bus.subscribe(collector)
        run_small_workload(sc)
        assert len(collector) > 0
        assert check_event_invariants(collector.events) == []

    def test_checkpoint_stream_is_well_formed(self, sc):
        collector = EventCollector()
        sc.event_bus.subscribe(collector)
        rdd = sc.parallelize([(i, i) for i in range(100)], num_partitions=4)
        sc.checkpoint_rdd(rdd)
        assert check_event_invariants(collector.events) == []

    @settings(max_examples=12, deadline=None)
    @given(
        num_workers=st.integers(min_value=1, max_value=4),
        cores=st.integers(min_value=1, max_value=3),
        num_partitions=st.integers(min_value=1, max_value=8),
        num_keys=st.integers(min_value=1, max_value=20),
        records=st.integers(min_value=1, max_value=300),
        cached=st.booleans(),
        shuffle=st.booleans(),
        repeats=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_randomized_workloads_emit_well_formed_streams(
            self, num_workers, cores, num_partitions, num_keys, records,
            cached, shuffle, repeats, seed):
        context = make_context(num_workers=num_workers,
                               cores_per_worker=cores,
                               memory_per_worker=1e8, seed=seed)
        collector = EventCollector()
        context.event_bus.subscribe(collector)
        data = [(i % num_keys, i) for i in range(records)]
        rdd = context.parallelize(data, num_partitions=num_partitions)
        if cached:
            rdd = rdd.cache()
        if shuffle:
            query = rdd.reduce_by_key(lambda a, b: a + b)
        else:
            query = rdd.map(lambda kv: kv[1])
        for _ in range(repeats):
            query.count()

        events = collector.events
        assert check_event_invariants(events) == []
        # sim timestamps never run backwards within one task's lifecycle
        ends = {e.task_id: e for e in events if isinstance(e, TaskEnd)}
        starts = {e.task_id: e for e in events if isinstance(e, TaskStart)}
        assert set(ends) == set(starts)
        for task_id, end in ends.items():
            assert end.time >= starts[task_id].time
            assert end.duration >= 0
        # job nesting: every job's task events sit inside its window
        for job_evt in (e for e in events if isinstance(e, JobEnd)):
            job_tasks = [e for e in ends.values()
                         if e.job_id == job_evt.job_id]
            for t in job_tasks:
                assert t.time <= job_evt.time + 1e-9
