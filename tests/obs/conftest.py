"""Shared workload drivers for the observability tests."""

from __future__ import annotations

from repro import StarkContext
from repro.cluster import Cluster


def make_context(num_workers: int = 4, cores_per_worker: int = 2,
                 memory_per_worker: float = 1e9,
                 seed: int = 0) -> StarkContext:
    """Fresh context on a seeded cluster (StarkContext has no seed kwarg)."""
    cluster = Cluster(num_workers=num_workers,
                      cores_per_worker=cores_per_worker,
                      memory_per_worker=memory_per_worker, seed=seed)
    return StarkContext(cluster=cluster)


def run_small_workload(context: StarkContext) -> None:
    """A deterministic mini-workload touching cache hits, misses, and a
    shuffle: a cached RDD counted twice plus one reduce_by_key."""
    data = [(i % 10, i) for i in range(400)]
    rdd = context.parallelize(data, num_partitions=4, name="wl").cache()
    rdd.count()
    rdd.count()
    rdd.reduce_by_key(lambda a, b: a + b, name="wl.reduce").count()
