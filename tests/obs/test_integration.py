"""End-to-end acceptance: reconciliation, zero-perturbation, artifacts.

These tests pin the observability layer's two core guarantees:

* event-log aggregates reconcile exactly with MetricsCollector totals;
* tracing disabled emits zero events and leaves every simulated
  makespan bit-identical.
"""

import json
import logging

from repro.obs import (
    EventCollector,
    check_event_invariants,
    log as obs_log,
    observe_to_dir,
    read_event_log,
    validate_event_log,
)
from repro.obs.events import BlockEvicted, CacheHit, CacheMiss, TaskEnd

from .conftest import make_context, run_small_workload


class TestReconciliation:
    def test_event_counts_match_metrics(self, sc):
        collector = EventCollector()
        sc.event_bus.subscribe(collector)
        run_small_workload(sc)

        metrics = sc.metrics
        stats = metrics.cache_stats()
        assert len(collector.of_type(TaskEnd)) == metrics.total_tasks()
        assert len(collector.of_type(CacheHit)) == stats["hits"]
        assert len(collector.of_type(CacheMiss)) == stats["misses"]
        capacity = [e for e in collector.of_type(BlockEvicted)
                    if e.reason == "capacity"]
        assert len(capacity) == metrics.evictions

    def test_eviction_events_under_memory_pressure(self):
        context = make_context(num_workers=2, cores_per_worker=2,
                               memory_per_worker=3e5, seed=5)
        collector = EventCollector()
        context.event_bus.subscribe(collector)
        rdds = []
        for i in range(4):
            data = [(j % 7, j + i) for j in range(2000)]
            rdds.append(
                context.parallelize(data, num_partitions=4).cache())
        for rdd in rdds:
            rdd.count()
        assert context.metrics.evictions > 0
        capacity = [e for e in collector.of_type(BlockEvicted)
                    if e.reason == "capacity"]
        assert len(capacity) == context.metrics.evictions


class TestZeroPerturbation:
    def test_no_listeners_means_no_events_and_inactive_bus(self, sc):
        assert not sc.event_bus.active
        run_small_workload(sc)
        assert not sc.event_bus.active
        assert len(sc.event_bus) == 0

    def test_tracing_does_not_change_makespans(self):
        def run(traced):
            context = make_context(num_workers=4, cores_per_worker=2,
                                   memory_per_worker=1e9, seed=42)
            if traced:
                context.event_bus.subscribe(EventCollector())
            run_small_workload(context)
            return ([(tm.start_time, tm.finish_time)
                     for job in context.metrics.jobs for tm in job.tasks],
                    context.metrics.cache_stats())

        assert run(traced=False) == run(traced=True)


class TestObserveToDir:
    def test_writes_valid_artifacts_per_context(self, tmp_path):
        out = tmp_path / "artifacts"
        with observe_to_dir(out):
            context = make_context(num_workers=2, cores_per_worker=2,
                                   memory_per_worker=1e9, seed=1)
            run_small_workload(context)

        events_path = out / "events-0.jsonl"
        trace_path = out / "trace-0.json"
        assert events_path.exists()
        assert trace_path.exists()
        assert validate_event_log(events_path) == []
        events = read_event_log(events_path)
        assert check_event_invariants(events) == []
        assert len([e for e in events if isinstance(e, TaskEnd)]) \
            == context.metrics.total_tasks()
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_contexts_outside_block_are_not_observed(self, tmp_path):
        with observe_to_dir(tmp_path / "x"):
            pass
        context = make_context(num_workers=1, cores_per_worker=1,
                               memory_per_worker=1e9)
        assert not context.event_bus.active


class TestSimTimeLogging:
    def test_formatter_prefixes_sim_time(self):
        class FakeClock:
            now = 12.5

        try:
            obs_log.bind_clock(FakeClock())
            formatter = obs_log.SimTimeFormatter(
                "[t=%(sim_time)10.3fs] %(message)s")
            record = logging.LogRecord(
                "stark.test", logging.INFO, __file__, 1, "hello", (), None)
            line = formatter.format(record)
            assert "t=" in line
            assert "12.500" in line
            assert "hello" in line
        finally:
            obs_log.reset()

    def test_configure_idempotent_and_reset(self):
        import io

        try:
            stream = io.StringIO()
            obs_log.configure("DEBUG", stream=stream)
            obs_log.configure("DEBUG", stream=stream)
            root = logging.getLogger(obs_log.ROOT_NAME)
            assert len(root.handlers) == 1
            obs_log.get_logger("unit").debug("probe message")
            assert "probe message" in stream.getvalue()
        finally:
            obs_log.reset()
        assert logging.getLogger(obs_log.ROOT_NAME).handlers == []
