"""Chrome/Perfetto trace exporter: format validity and slot tracks."""

import json

from repro.obs import ChromeTraceExporter, EventCollector, assign_slots
from repro.obs.events import TaskEnd

from .conftest import run_small_workload


class TestAssignSlots:
    def test_sequential_spans_share_one_slot(self):
        assert assign_slots([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]) \
            == [0, 0, 0]

    def test_overlapping_spans_open_new_slots(self):
        assert assign_slots([(0.0, 2.0), (1.0, 3.0), (2.5, 4.0)]) \
            == [0, 1, 0]

    def test_empty(self):
        assert assign_slots([]) == []


class TestTraceExport(object):
    def _trace(self, sc, tmp_path):
        tracer = ChromeTraceExporter()
        collector = EventCollector()
        sc.event_bus.subscribe(tracer)
        sc.event_bus.subscribe(collector)
        run_small_workload(sc)
        path = tracer.export(tmp_path / "trace.json")
        with open(path) as fh:
            trace = json.load(fh)
        return trace, collector

    def test_container_shape(self, sc, tmp_path):
        trace, _ = self._trace(sc, tmp_path)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        for entry in trace["traceEvents"]:
            assert entry["ph"] in ("X", "i", "M", "C")
            if entry["ph"] == "X":
                assert entry["dur"] >= 0
                assert entry["ts"] >= 0

    def test_one_span_per_executed_task(self, sc, tmp_path):
        trace, collector = self._trace(sc, tmp_path)
        task_spans = [e for e in trace["traceEvents"]
                      if e.get("cat") == "task"]
        ends = collector.of_type(TaskEnd)
        assert len(ends) > 0
        assert len(task_spans) == len(ends)
        assert {e["args"]["task_id"] for e in task_spans} \
            == {t.task_id for t in ends}

    def test_one_named_track_per_worker_slot(self, sc, tmp_path):
        trace, _ = self._trace(sc, tmp_path)
        slot_names = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] > 0:
                slot_names[(e["pid"], e["tid"])] = e["args"]["name"]
        used_tracks = {(e["pid"], e["tid"]) for e in trace["traceEvents"]
                       if e.get("cat") == "task"}
        assert used_tracks  # every task track is a named slot
        assert used_tracks <= set(slot_names)
        # reconstructed slots never exceed the simulated core count
        per_worker = {}
        for pid, tid in used_tracks:
            per_worker.setdefault(pid, set()).add(tid)
        for pid, tids in per_worker.items():
            assert len(tids) <= sc.cluster.get_worker(pid - 1).cores

    def test_phase_subspans_nest_inside_task(self, sc, tmp_path):
        trace, _ = self._trace(sc, tmp_path)
        phases = [e for e in trace["traceEvents"] if e.get("cat") == "phase"]
        assert phases
        tasks = {e["args"]["task_id"]: e for e in trace["traceEvents"]
                 if e.get("cat") == "task"}
        for phase in phases:
            task = tasks[phase["args"]["task_id"]]
            assert phase["ts"] >= task["ts"] - 1e-6
            assert phase["ts"] + phase["dur"] \
                <= task["ts"] + task["dur"] + 1e-6
            assert "cname" in phase

    def test_driver_spans_for_jobs_and_stages(self, sc, tmp_path):
        trace, _ = self._trace(sc, tmp_path)
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "job" in cats
        assert "stage" in cats
        driver = [e for e in trace["traceEvents"]
                  if e.get("cat") in ("job", "stage")]
        assert all(e["pid"] == 0 for e in driver)

    def test_include_phases_off(self, sc, tmp_path):
        tracer = ChromeTraceExporter(include_phases=False)
        sc.event_bus.subscribe(tracer)
        run_small_workload(sc)
        trace = tracer.to_trace()
        assert not [e for e in trace["traceEvents"]
                    if e.get("cat") == "phase"]
        assert [e for e in trace["traceEvents"] if e.get("cat") == "task"]
