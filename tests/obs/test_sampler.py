"""UtilizationSampler timelines from synthetic event streams."""

import pytest

from repro.obs import UtilizationSampler
from repro.obs.events import BlockCached, BlockEvicted, ShuffleFetch, TaskEnd


def task_end(worker_id, start, end, task_id=0):
    return TaskEnd(
        time=end, job_id=0, stage_id=0, task_id=task_id, partition=0,
        worker_id=worker_id, locality="ANY", duration=end - start,
        launch_overhead=0.0, cache_read_time=0.0, compute_time=end - start,
        shuffle_fetch_local_time=0.0, shuffle_fetch_remote_time=0.0,
        shuffle_write_time=0.0, checkpoint_read_time=0.0,
        source_read_time=0.0, gc_time=0.0,
    )


class TestSlotOccupancy:
    def test_single_worker(self):
        s = UtilizationSampler()
        s.on_event(task_end(0, 0.0, 2.0, task_id=0))
        s.on_event(task_end(0, 1.0, 3.0, task_id=1))
        assert s.tasks_seen == 2
        assert s.slot_occupancy(0) == [
            (0.0, 1.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)]

    def test_cluster_wide_sums_workers(self):
        s = UtilizationSampler()
        s.on_event(task_end(0, 0.0, 2.0, task_id=0))
        s.on_event(task_end(1, 0.0, 2.0, task_id=1))
        assert s.slot_occupancy() == [(0.0, 2.0), (2.0, 0.0)]
        assert s.slot_occupancy(0) == [(0.0, 1.0), (2.0, 0.0)]
        assert s.worker_ids() == [0, 1]


class TestCacheBytes:
    def test_cache_and_evict(self):
        s = UtilizationSampler()
        s.on_event(BlockCached(time=1.0, worker_id=0, rdd_id=1, partition=0,
                               size_bytes=100.0))
        s.on_event(BlockCached(time=2.0, worker_id=0, rdd_id=1, partition=1,
                               size_bytes=50.0))
        s.on_event(BlockEvicted(time=3.0, worker_id=0, rdd_id=1, partition=0,
                                reason="capacity"))
        assert s.cache_bytes(0) == [(1.0, 100.0), (2.0, 150.0), (3.0, 50.0)]

    def test_recache_replaces_size(self):
        s = UtilizationSampler()
        s.on_event(BlockCached(time=1.0, worker_id=0, rdd_id=1, partition=0,
                               size_bytes=100.0))
        s.on_event(BlockCached(time=2.0, worker_id=0, rdd_id=1, partition=0,
                               size_bytes=80.0))
        assert s.cache_bytes(0)[-1] == (2.0, 80.0)

    def test_unknown_eviction_ignored(self):
        s = UtilizationSampler()
        s.on_event(BlockEvicted(time=1.0, worker_id=0, rdd_id=9, partition=0,
                                reason="capacity"))
        assert s.cache_bytes() == []


class TestNetwork:
    def test_in_flight_interval(self):
        s = UtilizationSampler()
        s.on_event(ShuffleFetch(time=1.0, worker_id=0, shuffle_id=0,
                                reduce_id=0, local_bytes=10.0,
                                remote_bytes=100.0, local_seconds=0.0,
                                remote_seconds=2.0))
        assert s.network_in_flight() == [(1.0, 100.0), (3.0, 0.0)]

    def test_local_only_fetch_is_invisible(self):
        s = UtilizationSampler()
        s.on_event(ShuffleFetch(time=1.0, worker_id=0, shuffle_id=0,
                                reduce_id=0, local_bytes=10.0,
                                remote_bytes=0.0, local_seconds=0.1,
                                remote_seconds=0.0))
        assert s.network_in_flight() == []


class TestSummaries:
    def test_resample(self):
        timeline = [(0.0, 1.0), (1.0, 3.0), (2.0, 0.0)]
        samples = UtilizationSampler.resample(timeline, 4)
        assert samples == [1.0, 1.0, 3.0, 3.0]
        assert UtilizationSampler.resample([], 3) == [0.0, 0.0, 0.0]

    def test_time_weighted_mean(self):
        timeline = [(0.0, 2.0), (1.0, 0.0)]
        assert UtilizationSampler.time_weighted_mean(timeline) \
            == pytest.approx(2.0)
        assert UtilizationSampler.time_weighted_mean(timeline, t_end=2.0) \
            == pytest.approx(1.0)
        assert UtilizationSampler.time_weighted_mean([]) == 0.0

    def test_peak(self):
        s = UtilizationSampler()
        assert s.peak([(0.0, 1.0), (1.0, 5.0), (2.0, 0.0)]) == 5.0
        assert s.peak([]) == 0.0


class TestFinalFlush:
    def test_flush_extends_timelines_to_run_end(self):
        s = UtilizationSampler()
        s.on_event(task_end(0, 0.0, 2.0, task_id=0))
        s.on_event(BlockCached(time=1.0, worker_id=0, rdd_id=1, partition=0,
                               size_bytes=100.0))
        s.on_event(task_end(0, 3.0, 5.0, task_id=1))
        # Without a flush the cache timeline dangles at its last change.
        assert s.cache_bytes(0)[-1] == (1.0, 100.0)
        assert s.flush() == 5.0  # defaults to the last event seen
        # Flush appends a closing sample carrying the final value.
        assert s.cache_bytes(0)[-1] == (5.0, 100.0)
        assert s.slot_occupancy(0)[-1] == (5.0, 0.0)

    def test_flush_with_explicit_end(self):
        s = UtilizationSampler()
        s.on_event(BlockCached(time=1.0, worker_id=0, rdd_id=1, partition=0,
                               size_bytes=100.0))
        s.flush(t_end=10.0)
        assert s.cache_bytes(0)[-1] == (10.0, 100.0)

    def test_flush_at_last_sample_is_a_noop(self):
        s = UtilizationSampler()
        s.on_event(task_end(0, 0.0, 2.0))
        before = s.slot_occupancy(0)
        s.flush()  # last event time == last sample time: nothing to add
        assert s.slot_occupancy(0) == before

    def test_flush_closes_mean_window(self):
        # One slot busy from 0..2, then idle until the flush at 4: the
        # time-weighted mean halves once the idle tail is visible.
        s = UtilizationSampler()
        s.on_event(task_end(0, 0.0, 2.0))
        s.flush(t_end=4.0)
        assert UtilizationSampler.time_weighted_mean(
            s.slot_occupancy(0)) == pytest.approx(0.5)
