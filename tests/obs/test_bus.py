"""EventBus subscribe/unsubscribe/post semantics."""

import pytest

from repro.obs import EventBus
from repro.obs.events import CacheMiss


def miss(t=0.0):
    return CacheMiss(time=t, worker_id=0, rdd_id=1, partition=2)


class TestEventBus:
    def test_inactive_until_subscribed(self):
        bus = EventBus()
        assert not bus.active
        assert len(bus) == 0
        received = []
        bus.subscribe(received.append)
        assert bus.active
        assert len(bus) == 1

    def test_callable_listener(self):
        bus = EventBus()
        received = []
        bus.subscribe(received.append)
        event = miss()
        bus.post(event)
        assert received == [event]

    def test_on_event_listener(self):
        class Listener:
            def __init__(self):
                self.events = []

            def on_event(self, event):
                self.events.append(event)

        bus = EventBus()
        listener = bus.subscribe(Listener())
        bus.post(miss())
        assert len(listener.events) == 1

    def test_non_listener_rejected(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(object())

    def test_unsubscribe(self):
        bus = EventBus()
        received = []
        listener = bus.subscribe(received.append)
        assert bus.unsubscribe(listener)
        assert not bus.active
        bus.post(miss())
        assert received == []
        assert not bus.unsubscribe(listener)

    def test_delivery_in_subscribe_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("a"))
        bus.subscribe(lambda e: order.append("b"))
        bus.post(miss())
        assert order == ["a", "b"]
