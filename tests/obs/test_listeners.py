"""EventCollector, JSONL event logs, and formatting."""

import io
import json

from repro.obs import (
    EventCollector,
    JsonlEventLog,
    format_event,
    read_event_log,
    validate_event_log,
)
from repro.obs.events import CacheHit, CacheMiss, TaskEnd


def hit(t=0.0):
    return CacheHit(time=t, worker_id=0, rdd_id=1, partition=2,
                    size_bytes=64.0)


def miss(t=0.0):
    return CacheMiss(time=t, worker_id=0, rdd_id=1, partition=2)


class TestEventCollector:
    def test_collects_and_filters(self):
        c = EventCollector()
        c.on_event(hit(1.0))
        c.on_event(miss(2.0))
        c.on_event(hit(3.0))
        assert len(c) == 3
        assert len(c.of_type(CacheHit)) == 2
        assert len(c.of_type(CacheHit, CacheMiss)) == 3
        assert c.of_type(TaskEnd) == []
        assert c.counts_by_type() == {"CacheHit": 2, "CacheMiss": 1}
        assert [e.time for e in c.tail(2)] == [2.0, 3.0]
        assert c.tail(0) == []
        c.clear()
        assert len(c) == 0


class TestJsonlEventLog:
    def test_round_trip_via_path(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with JsonlEventLog(path) as log:
            log.on_event(hit(1.0))
            log.on_event(miss(2.0))
            assert log.events_written == 2
        events = read_event_log(path)
        assert events == [hit(1.0), miss(2.0)]
        assert validate_event_log(path) == []

    def test_file_like_target(self):
        buf = io.StringIO()
        log = JsonlEventLog(buf)
        log.on_event(hit())
        log.close()  # must not close a caller-owned stream
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "CacheHit"

    def test_validate_reports_line_numbers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps(hit().to_dict())
        path.write_text(f"{good}\nnot json\n"
                        + json.dumps({"type": "Nope"}) + "\n")
        problems = validate_event_log(path)
        assert any(p.startswith("line 2: invalid JSON") for p in problems)
        assert "line 3: unknown event type: 'Nope'" in problems

    def test_validate_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("bad\n" * 100)
        problems = validate_event_log(path, max_problems=5)
        assert problems[-1] == "... (truncated)"
        assert len(problems) == 6


class TestFormatEvent:
    def test_human_readable_line(self):
        line = format_event(hit(12.345))
        assert line.startswith("[t=    12.345s] CacheHit")
        assert "worker_id=0" in line
        assert "size_bytes=64" in line
