"""Span reconstruction: event streams fold back into the causality tree."""

from repro.obs import EventCollector, build_spans
from repro.obs.events import (
    JobEnd,
    JobStart,
    StageCompleted,
    StageSubmitted,
    TaskEnd,
)

from .conftest import make_context, run_small_workload


def job_start(t=0.0, job_id=0, description="j"):
    return JobStart(time=t, job_id=job_id, description=description)


def job_end(t, job_id=0):
    return JobEnd(time=t, job_id=job_id, duration=t, num_stages=1,
                  skipped_stages=0)


def stage_submitted(t, stage_id=0, job_id=0, num_tasks=1):
    return StageSubmitted(time=t, job_id=job_id, stage_id=stage_id,
                          num_tasks=num_tasks, is_shuffle_map=False)


def stage_completed(t, stage_id=0, job_id=0, duration=0.0, skipped=False):
    return StageCompleted(time=t, job_id=job_id, stage_id=stage_id,
                          duration=duration, skipped=skipped)


def task_end(t, task_id=0, stage_id=0, job_id=0, partition=0,
             duration=0.1, status="success"):
    return TaskEnd(
        time=t, job_id=job_id, stage_id=stage_id, task_id=task_id,
        partition=partition, worker_id=0, locality="ANY",
        duration=duration, launch_overhead=0.0, cache_read_time=0.0,
        compute_time=duration, shuffle_fetch_local_time=0.0,
        shuffle_fetch_remote_time=0.0, shuffle_write_time=0.0,
        checkpoint_read_time=0.0, source_read_time=0.0, gc_time=0.0,
        status=status,
    )


class TestSynthetic:
    def test_single_job_tree(self):
        jobs = build_spans([
            job_start(0.0, description="q"),
            stage_submitted(0.0),
            task_end(0.5, task_id=0),
            task_end(0.6, task_id=1, partition=1),
            stage_completed(0.6, duration=0.6),
            job_end(0.6),
        ])
        assert len(jobs) == 1
        job = jobs[0]
        assert job.description == "q"
        assert job.makespan == 0.6
        assert len(job.stages) == 1
        assert [t.task_id for t in job.stages[0].tasks] == [0, 1]
        assert job.successful_tasks() == job.tasks()

    def test_jobs_returned_in_id_order(self):
        jobs = build_spans([
            job_start(0.0, job_id=1), job_end(1.0, job_id=1),
            job_start(0.0, job_id=0), job_end(2.0, job_id=0),
        ])
        assert [j.job_id for j in jobs] == [0, 1]

    def test_dangling_job_closed_at_last_child(self):
        jobs = build_spans([
            job_start(0.0),
            stage_submitted(0.0),
            task_end(0.7),
        ])
        assert len(jobs) == 1
        assert jobs[0].finish == 0.7

    def test_resubmitted_stage_gets_two_spans(self):
        jobs = build_spans([
            job_start(0.0),
            stage_submitted(0.0),
            task_end(0.3, task_id=0, status="fetch_failed"),
            stage_completed(0.3, duration=0.3),
            stage_submitted(0.4),
            task_end(0.8, task_id=1),
            stage_completed(0.8, duration=0.4),
            job_end(0.8),
        ])
        stages = jobs[0].stages
        assert len(stages) == 2
        assert stages[0].submit_time == 0.0
        assert stages[1].submit_time == 0.4
        # The retry attempt (started after 0.4) belongs to the new span.
        assert [t.task_id for t in stages[0].tasks] == [0]
        assert [t.task_id for t in stages[1].tasks] == [1]
        assert jobs[0].stage_submit_times() == {0: [0.0, 0.4]}

    def test_logical_key_shared_across_attempts(self):
        a = task_end(0.3, task_id=0, status="failed")
        b = task_end(0.8, task_id=7)
        jobs = build_spans([job_start(), stage_submitted(0.0), a, b,
                            stage_completed(0.8), job_end(0.8)])
        tasks = jobs[0].tasks()
        assert tasks[0].logical_key() == tasks[1].logical_key()
        assert not tasks[0].succeeded and tasks[1].succeeded

    def test_task_span_window(self):
        span = build_spans([job_start(), stage_submitted(0.0),
                            task_end(1.0, duration=0.4),
                            stage_completed(1.0), job_end(1.0)])[0].tasks()[0]
        assert span.start == 0.6
        assert span.finish == 1.0
        assert span.duration == 0.4


class TestRealStream:
    def test_small_workload_tree(self):
        context = make_context()
        collector = EventCollector()
        context.event_bus.subscribe(collector)
        run_small_workload(context)
        jobs = build_spans(collector.events)
        assert len(jobs) == 3  # two counts + one shuffle count
        for job in jobs:
            assert job.makespan >= 0
            assert job.stages, "every job ran at least one stage"
            # every non-skipped stage owns its tasks, inside its window
            for stage in job.stages:
                if stage.skipped:
                    continue
                assert len(stage.tasks) == stage.num_tasks
                for task in stage.tasks:
                    assert stage.submit_time <= task.start + 1e-9
                    assert task.finish <= stage.complete_time + 1e-9
        # the shuffle job has a map stage feeding a result stage
        shuffle_job = jobs[-1]
        assert any(s.is_shuffle_map for s in shuffle_job.stages)
