"""MetricsRegistry: counters, gauges, histograms, exports."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("jobs_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ValueError):
            c.labels().inc(-1)

    def test_labels(self):
        c = Counter("hits", label_names=("worker",))
        c.labels(worker="0").inc(3)
        c.labels(worker="1").inc()
        assert c.get(worker="0") == 3
        assert c.get(worker="1") == 1
        assert c.get(worker="9") == 0
        assert c.value == 4

    def test_wrong_labels_rejected(self):
        c = Counter("hits", label_names=("worker",))
        with pytest.raises(ValueError):
            c.inc(1, nope="x")
        with pytest.raises(ValueError):
            c.labels()

    def test_render(self):
        c = Counter("hits", "cache hits", label_names=("worker",))
        c.inc(2, worker="0")
        text = "\n".join(c.render())
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{worker="0"} 2' in text


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("occupancy")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.get() == 4

    def test_labels(self):
        g = Gauge("bytes", label_names=("worker",))
        g.set(100, worker="0")
        g.set(50, worker="1")
        assert g.get(worker="0") == 100
        assert g.get(worker="1") == 50


class TestHistogram:
    def test_observe_and_snapshot(self):
        h = Histogram("delay", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)
        assert snap["mean"] == pytest.approx(55.5 / 3)

    def test_infinity_bucket_always_present(self):
        h = Histogram("delay", buckets=(1.0,))
        assert h.bounds[-1] == float("inf")

    def test_cumulative_render(self):
        h = Histogram("delay", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = "\n".join(h.render())
        assert 'delay_bucket{le="1"} 1' in text
        assert 'delay_bucket{le="10"} 2' in text
        assert 'delay_bucket{le="+Inf"} 2' in text
        assert "delay_sum 5.5" in text
        assert "delay_count 2" in text

    def test_unobserved_snapshot(self):
        h = Histogram("delay")
        assert h.snapshot() == {"sum": 0.0, "count": 0.0, "mean": 0.0}


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help")
        b = reg.counter("x")
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_as_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g", label_names=("w",)).set(7, w="0")
        reg.histogram("h").observe(1.0)
        out = reg.as_dict()
        assert out["c"] == {"": 2.0}
        assert out["g"] == {'{w="0"}': 7.0}
        assert out["h_sum"] == {"": 1.0}
        assert out["h_count"] == {"": 1.0}

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "things").inc()
        reg.gauge("b").set(2)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        assert "# TYPE a_total counter" in text
        assert "a_total 1" in text
        assert "# TYPE b gauge" in text
        assert "b 2" in text

    def test_get_and_families(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert reg.get("x") is c
        assert reg.get("missing") is None
        assert list(reg.families()) == [c]
