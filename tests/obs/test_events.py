"""Event dataclasses, serialization round-trips, and the schema."""

import pytest

from repro.engine.metrics import TaskMetrics
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_TYPES,
    CacheHit,
    TaskEnd,
    TaskStart,
    event_from_dict,
    task_events_from_metrics,
    validate_event_dict,
)

_SAMPLE_VALUES = {
    (int,): 3,
    (int, float): 1.5,
    (str,): "x",
    (bool,): True,
}


def make_sample(name):
    """Construct an event of type ``name`` with schema-typed dummies."""
    kwargs = {
        field: _SAMPLE_VALUES[accepted]
        for field, accepted in EVENT_SCHEMA[name].items()
    }
    kwargs["time"] = 1.25
    return EVENT_TYPES[name](**kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(EVENT_TYPES))
    def test_to_dict_validates_and_round_trips(self, name):
        event = make_sample(name)
        record = event.to_dict()
        assert record["type"] == name
        assert record["time"] == 1.25
        assert validate_event_dict(record) == []
        assert event_from_dict(record) == event

    def test_type_property(self):
        event = CacheHit(time=0.0, worker_id=1, rdd_id=2, partition=3,
                         size_bytes=10.0)
        assert event.type == "CacheHit"


class TestSchemaValidation:
    def test_unknown_type(self):
        assert validate_event_dict({"type": "Nope"}) \
            == ["unknown event type: 'Nope'"]
        assert validate_event_dict({}) == ["unknown event type: None"]

    def test_missing_field(self):
        record = make_sample("CacheMiss").to_dict()
        record.pop("rdd_id")
        problems = validate_event_dict(record)
        assert problems == ["CacheMiss: missing field 'rdd_id'"]

    def test_wrong_type(self):
        record = make_sample("CacheMiss").to_dict()
        record["worker_id"] = "zero"
        assert any("expected int, got str" in p
                   for p in validate_event_dict(record))

    def test_bool_is_not_int(self):
        record = make_sample("CacheMiss").to_dict()
        record["worker_id"] = True
        assert any("got bool" in p for p in validate_event_dict(record))

    def test_int_accepted_for_float_field(self):
        record = make_sample("CacheHit").to_dict()
        record["size_bytes"] = 7
        assert validate_event_dict(record) == []

    def test_extra_field(self):
        record = make_sample("JobStart").to_dict()
        record["bonus"] = 1
        assert validate_event_dict(record) \
            == ["JobStart: unexpected field 'bonus'"]

    def test_schema_covers_every_event_type(self):
        assert set(EVENT_SCHEMA) == set(EVENT_TYPES)
        for name, schema in EVENT_SCHEMA.items():
            assert "time" in schema, name


class TestTaskEventsFromMetrics:
    def test_pair_mirrors_metrics(self):
        tm = TaskMetrics(task_id=5, stage_id=2, job_id=1, partition=3,
                         worker_id=0, locality="PROCESS_LOCAL",
                         start_time=1.0, finish_time=3.5,
                         compute_time=2.0, gc_time=0.25)
        start, end = task_events_from_metrics(tm)
        assert isinstance(start, TaskStart)
        assert isinstance(end, TaskEnd)
        assert start.time == 1.0
        assert end.time == 3.5
        assert end.duration == 2.5
        assert end.compute_time == 2.0
        assert end.gc_time == 0.25
        for event in (start, end):
            assert event.task_id == 5
            assert event.stage_id == 2
            assert event.job_id == 1
            assert event.worker_id == 0
            assert event.locality == "PROCESS_LOCAL"
