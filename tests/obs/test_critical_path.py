"""Critical-path blame attribution: the invariant is that blame tiles
the makespan — on synthetic trees, real streams, randomized workloads
(hypothesis), and the full-stack determinism scenario (speculation,
failures, elastic scaling)."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    CATEGORIES,
    EventCollector,
    ascii_blame_chart,
    build_spans,
    compute_critical_path,
    critical_paths,
    critical_span_trace_events,
)
from repro.obs.listeners import read_event_log

from ..cluster.test_determinism import full_stack_run
from .conftest import make_context, run_small_workload
from .test_spans import (
    job_end,
    job_start,
    stage_completed,
    stage_submitted,
    task_end,
)


def assert_sound(report):
    assert report.problems() == []
    blame = report.blame()
    assert set(blame) == set(CATEGORIES)
    assert abs(sum(blame.values()) - report.makespan) < 1e-6
    assert all(v >= -1e-9 for v in blame.values())


class TestSynthetic:
    def test_single_task_job(self):
        events = [
            job_start(0.0),
            stage_submitted(0.0),
            task_end(1.0, duration=0.4),
            stage_completed(1.0, duration=1.0),
            job_end(1.0),
        ]
        report = compute_critical_path(build_spans(events)[0], events)
        assert_sound(report)
        blame = report.blame()
        # 0.6s before the launch is scheduling wait, 0.4s is the task.
        assert abs(blame["sched_wait"] - 0.6) < 1e-9
        assert abs(blame["compute"] - 0.4) < 1e-9

    def test_empty_job_blames_sched_wait(self):
        events = [job_start(0.0), job_end(2.0)]
        report = compute_critical_path(build_spans(events)[0], events)
        assert_sound(report)
        assert abs(report.blame()["sched_wait"] - 2.0) < 1e-9

    def test_failed_attempt_blames_retry(self):
        events = [
            job_start(0.0),
            stage_submitted(0.0),
            task_end(0.5, task_id=0, duration=0.5, status="failed"),
            task_end(1.0, task_id=1, duration=0.4),
            stage_completed(1.0, duration=1.0),
            job_end(1.0),
        ]
        report = compute_critical_path(build_spans(events)[0], events)
        assert_sound(report)
        blame = report.blame()
        assert blame["retry"] > 0.4  # the failed attempt's window
        assert abs(blame["compute"] - 0.4) < 1e-9

    def test_killed_copy_blames_speculation(self):
        events = [
            job_start(0.0),
            stage_submitted(0.0),
            task_end(0.55, task_id=0, duration=0.55, status="killed"),
            task_end(0.6, task_id=1, duration=0.2),
            stage_completed(0.6, duration=0.6),
            job_end(0.6),
        ]
        report = compute_critical_path(build_spans(events)[0], events)
        assert_sound(report)
        assert report.blame()["speculation"] > 0

    def test_locality_wait_charged_before_nonlocal_launch(self):
        events = [
            job_start(0.0),
            stage_submitted(0.0),
            task_end(0.5, duration=0.2),  # locality="ANY" (non-local)
            stage_completed(0.5, duration=0.5),
            job_end(0.5),
        ]
        report = compute_critical_path(build_spans(events)[0], events,
                                       locality_wait=0.1)
        assert_sound(report)
        blame = report.blame()
        assert abs(blame["locality_wait"] - 0.1) < 1e-9
        assert abs(blame["sched_wait"] - 0.2) < 1e-9

    def test_chart_and_trace_annotation(self):
        events = [
            job_start(0.0), stage_submitted(0.0),
            task_end(1.0, duration=0.4), stage_completed(1.0), job_end(1.0),
        ]
        report = compute_critical_path(build_spans(events)[0], events)
        chart = ascii_blame_chart(report)
        assert "compute" in chart and "sched_wait" in chart
        trace = critical_span_trace_events(report)
        assert trace[0]["ph"] == "M"
        assert trace[0]["args"] == {"name": "critical path"}
        for span in trace[1:]:
            assert span["ph"] == "X"
            assert span["dur"] >= 0
            assert span["tid"] == trace[0]["tid"]
            assert span["args"]["category"] in CATEGORIES


class TestRealStreams:
    def test_small_workload(self):
        context = make_context()
        collector = EventCollector()
        context.event_bus.subscribe(collector)
        run_small_workload(context)
        reports = critical_paths(
            collector.events,
            locality_wait=context.config.locality_wait)
        assert len(reports) == 3
        for report in reports:
            assert_sound(report)
            assert report.makespan > 0
            # something other than pure wait sits on the critical path
            blame = report.blame()
            assert sum(blame[c] for c in
                       ("compute", "recompute", "read", "fetch",
                        "shuffle_write", "launch", "gc")) > 0

    def test_full_stack_scenario(self, tmp_path):
        """Speculation + failures + elastic scaling: retries and killed
        copies appear and the invariant still holds for every job."""
        log = full_stack_run(seed=7)
        path = tmp_path / "events.jsonl"
        path.write_text(log)
        events = read_event_log(path)
        reports = critical_paths(events, locality_wait=0.1)
        assert len(reports) == 12
        for report in reports:
            assert_sound(report)

    @settings(max_examples=12, deadline=None)
    @given(
        num_workers=st.integers(min_value=1, max_value=4),
        cores=st.integers(min_value=1, max_value=3),
        num_partitions=st.integers(min_value=1, max_value=8),
        num_keys=st.integers(min_value=1, max_value=20),
        records=st.integers(min_value=1, max_value=300),
        cached=st.booleans(),
        shuffle=st.booleans(),
        repeats=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_blame_sums_to_makespan_on_randomized_workloads(
            self, num_workers, cores, num_partitions, num_keys, records,
            cached, shuffle, repeats, seed):
        context = make_context(num_workers=num_workers,
                               cores_per_worker=cores,
                               memory_per_worker=1e8, seed=seed)
        collector = EventCollector()
        context.event_bus.subscribe(collector)
        data = [(i % num_keys, i) for i in range(records)]
        rdd = context.parallelize(data, num_partitions=num_partitions)
        if cached:
            rdd = rdd.cache()
        if shuffle:
            query = rdd.reduce_by_key(lambda a, b: a + b)
        else:
            query = rdd.map(lambda kv: kv[1])
        for _ in range(repeats):
            query.count()
        for report in critical_paths(
                collector.events,
                locality_wait=context.config.locality_wait):
            assert_sound(report)
