"""SimProfiler: counters, kernel hooks, and the zero-interference
contract — a profiled run's event log is byte-identical to an
unprofiled one."""

import repro.obs as obs
from repro.cluster.events import SimKernel
from repro.obs import SimProfiler

from ..cluster.test_determinism import full_stack_run


class TestCounters:
    def test_dispatch_stats(self):
        p = SimProfiler()
        p.on_dispatch(lambda: None, 0.002)
        p.on_dispatch(lambda: None, 0.001)
        assert p.events_dispatched == 2
        assert abs(p.dispatch_seconds - 0.003) < 1e-12
        (label, stat), = p.hotspots()
        assert "<lambda>" in label
        assert stat.count == 2
        assert abs(stat.mean_seconds - 0.0015) < 1e-12
        assert stat.max_seconds == 0.002

    def test_hotspots_ranked_by_total_cost(self):
        p = SimProfiler()

        def cheap():
            pass

        def costly():
            pass

        for _ in range(5):
            p.on_dispatch(cheap, 0.0001)
        p.on_dispatch(costly, 0.01)
        labels = [label for label, _ in p.hotspots(top=2)]
        assert labels[0].endswith("costly")
        assert labels[1].endswith("cheap")

    def test_heap_stats(self):
        p = SimProfiler()
        for length in (1, 3, 2):
            p.on_schedule(length)
        assert p.heap.scheduled == 3
        assert p.heap.peak_len == 3
        assert abs(p.heap.mean_len - 2.0) < 1e-12

    def test_wall_window_and_summary(self):
        p = SimProfiler()
        with p:
            p.on_dispatch(lambda: None, 0.001)
        assert p.wall_seconds > 0
        assert p.events_per_sec() > 0
        summary = p.summary()
        for key in ("events_dispatched", "events_per_sec",
                    "dispatch_seconds", "wall_seconds", "heap_scheduled",
                    "heap_peak", "heap_mean"):
            assert key in summary
        assert summary["events_dispatched"] == 1.0


class TestKernelHooks:
    def test_counts_every_dispatch_and_schedule(self):
        kernel = SimKernel()
        profiler = kernel.attach_profiler(SimProfiler().start())
        fired = []
        for i in range(5):
            kernel.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
        kernel.run_all()
        profiler.stop()
        assert fired == [0, 1, 2, 3, 4]
        assert profiler.events_dispatched == 5
        assert profiler.heap.scheduled == 5
        assert profiler.heap.peak_len == 5
        assert profiler.dispatch_seconds > 0

    def test_detach_stops_counting(self):
        kernel = SimKernel()
        profiler = kernel.attach_profiler(SimProfiler())
        kernel.schedule(0.1, lambda: None)
        kernel.run_all()
        kernel.detach_profiler()
        assert kernel.profiler is None
        kernel.schedule(0.2, lambda: None)
        kernel.run_all()
        assert profiler.events_dispatched == 1

    def test_one_profiler_many_kernels(self):
        profiler = SimProfiler()
        for _ in range(2):
            kernel = SimKernel()
            kernel.attach_profiler(profiler)
            kernel.schedule(0.1, lambda: None)
            kernel.run_all()
        assert profiler.events_dispatched == 2


class TestZeroInterference:
    def test_profiled_run_is_byte_identical(self):
        """The whole contract: wall-clock profiling must not move a
        single simulated timestamp.  Run the determinism suite's
        full-stack scenario (speculation, failures, elastic scaling)
        with and without a profiler attached to every kernel and
        require byte-identical JSONL event logs."""
        baseline = full_stack_run(seed=11)

        profiler = SimProfiler()

        def attach(context):
            context.cluster.kernel.attach_profiler(profiler)

        obs.add_context_observer(attach)
        try:
            with profiler:
                profiled = full_stack_run(seed=11)
        finally:
            obs.remove_context_observer(attach)

        assert profiler.events_dispatched > 0  # it really was attached
        assert profiled == baseline
