"""Tests for the command-line interface."""

import pytest

from repro.cache import (
    DEFAULTS,
    set_default_admission_min_cost,
    set_default_policy,
)
from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_have_subparsers(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["fig11"])
        assert args.rdd_counts == [1, 2, 3, 4, 5, 6]
        args = parser.parse_args(["fig19", "--rates", "2", "5"])
        assert args.rates == [2.0, 5.0]


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_fig17_runs(self, capsys):
        assert main(["fig17", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 17" in out
        assert "jall" in out

    def test_fig07_runs(self, capsys):
        assert main(["fig07", "--partitions", "1", "8"]) == 0
        assert "Fig 7" in capsys.readouterr().out

    def test_cache_runs(self, capsys):
        assert main(["cache", "--policies", "lru", "lrc",
                     "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "Cache policies" in out
        assert "lrc" in out
        assert "faster than lru" in out

    def test_global_cache_flags_set_defaults(self):
        try:
            assert main(["--cache-policy", "lrc",
                         "--cache-admission-min-cost", "0.2", "list"]) == 0
            assert DEFAULTS.policy == "lrc"
            assert DEFAULTS.admission_min_cost == 0.2
        finally:
            set_default_policy("lru")
            set_default_admission_min_cost(0.0)

    def test_unknown_cache_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["--cache-policy", "belady", "list"])


class TestElasticCli:
    def test_elastic_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["elastic"])
        assert args.min_workers == 2
        assert args.max_workers == 8
        assert sorted(args.policies) == ["backlog", "latency", "utilization"]
        assert args.delay_cap == 0.8

    def test_scaling_flags_on_load_figures(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig20", "--scale-policy", "latency",
             "--min-workers", "2", "--max-workers", "6"])
        assert args.scale_policy == "latency"
        assert args.min_workers == 2
        assert args.max_workers == 6

    def test_unknown_scale_policy_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig19", "--scale-policy", "nope"])

    def test_bad_bounds_exit_with_error(self, capsys):
        code = main(["elastic", "--min-workers", "6", "--max-workers", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestObservabilityCli:
    def test_critical_path_smoke(self, capsys, tmp_path):
        out = tmp_path / "annotated.json"
        assert main(["critical-path", "smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "makespan" in printed
        assert "annotated trace" in printed
        import json
        trace = json.loads(out.read_text())
        from repro.obs.critical_path import CRITICAL_PATH_TID
        critical = [e for e in trace["traceEvents"]
                    if e.get("tid") == CRITICAL_PATH_TID]
        assert critical, "critical-path track was merged into the trace"
        # One metadata record total, even with several jobs annotated.
        assert sum(1 for e in critical if e["ph"] == "M") == 1

    def test_critical_path_job_filter(self, capsys):
        assert main(["critical-path", "smoke", "--job", "1"]) == 0
        assert "job 1" in capsys.readouterr().out
        assert main(["critical-path", "smoke", "--job", "99"]) == 2
        assert "no job 99" in capsys.readouterr().err

    def test_profile_service_workload(self, capsys):
        assert main(["profile", "service"]) == 0
        printed = capsys.readouterr().out
        assert "SimKernel self-profile" in printed
        assert "Dispatch hotspots" in printed

    def test_profile_smoke_workload_has_no_kernel_events(self, capsys):
        # Plain RDD jobs never touch the event heap; the command should
        # say so rather than print an empty hotspot table.
        assert main(["profile", "smoke"]) == 0
        assert "no kernel events dispatched" in capsys.readouterr().out

    def test_trace_service_reconciles(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "service", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "tenant jobs submitted" in printed
        assert "datasets registered" in printed
        assert "problem" not in printed
        assert out.exists()
