"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_have_subparsers(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["fig11"])
        assert args.rdd_counts == [1, 2, 3, 4, 5, 6]
        args = parser.parse_args(["fig19", "--rates", "2", "5"])
        assert args.rates == [2.0, 5.0]


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_fig17_runs(self, capsys):
        assert main(["fig17", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 17" in out
        assert "jall" in out

    def test_fig07_runs(self, capsys):
        assert main(["fig07", "--partitions", "1", "8"]) == 0
        assert "Fig 7" in capsys.readouterr().out
