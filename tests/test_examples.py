"""Smoke tests for the runnable examples.

Each example must import cleanly; the fastest one also runs end to end.
(The heavier examples are exercised by the benchmark suite through the
same harness code paths.)
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "log_diagnosis",
    "taxi_advertising",
    "trending_topics",
    "streaming_window",
]


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "Stark (co-located)" in out
        assert "speedup" in out

    def test_quickstart_shows_colocality_win(self, capsys):
        module = load_example("quickstart")
        spark = module.run(locality=False)
        stark = module.run(locality=True)
        capsys.readouterr()
        assert stark < spark
