"""Trending topics with bounded-delay failure recovery (§III-D / Fig 16).

Runs the paper's trending-keys application (the exact Fig 16 lineage)
over a stream of Zipf-keyed posts, with the CheckpointOptimizer bounding
recovery delay at minimum cost.  Compares the bytes written against the
Tachyon Edge baseline, then injects a worker failure and measures
recovery.

Run:  python examples/trending_topics.py
"""

from repro import StarkContext
from repro.apps.trending import TrendingApp
from repro.core.checkpoint_optimizer import CheckpointOptimizer
from repro.core.edge_checkpoint import EdgeCheckpointer
from repro.cluster.cost_model import SimStr
from repro.engine.failure import FailureInjector
from repro.workloads.distributions import ZipfSampler, seeded_rng

NUM_STEPS = 10
RECORDS_PER_STEP = 3_000
NUM_TOPICS = 300


def raw_posts(records_per_step=RECORDS_PER_STEP, num_topics=NUM_TOPICS):
    zipf = ZipfSampler(num_topics, 1.05)

    def raw_for_step(step, num_partitions):
        def generate(pid):
            rng = seeded_rng("posts", step, pid)
            out = []
            for i in range(pid, records_per_step, num_partitions):
                topic = f"topic_{zipf.sample(rng):04d}"
                out.append((topic, SimStr(f"{topic}!", sim_size=1_500)))
            return out

        return generate

    return raw_for_step


def run_policy(label, make_checkpointer):
    sc = StarkContext(num_workers=8, cores_per_worker=2)
    app = TrendingApp(sc, raw_posts(), num_partitions=8,
                      popular_threshold=40)
    # Calibrate the recovery bound to ~2.5 steps of lineage.
    probe_sc = StarkContext(num_workers=8, cores_per_worker=2)
    probe = TrendingApp(probe_sc, raw_posts(), num_partitions=8,
                        popular_threshold=40)
    probe_opt = CheckpointOptimizer(probe_sc, recovery_bound=1e9)
    lengths = []
    for step in range(3):
        probe.run_step(step)
        nodes = probe_opt.build_lineage(probe.frontier_rdds())
        lengths.append(max(
            probe_opt.longest_uncheckpointed_delay(nodes, r.rdd_id)
            for r in probe.frontier_rdds()
        ))
    bound = lengths[1] + 2.5 * max(lengths[2] - lengths[1], 1e-9)

    checkpointer = make_checkpointer(sc, bound)
    actions = []

    def on_step(step, rdds):
        decision = checkpointer.optimize(app.frontier_rdds())
        if decision.triggered:
            names = [sc.get_rdd(r).name for r in decision.chosen_rdd_ids]
            actions.append((step, names, decision.total_cost))

    app.run(NUM_STEPS, on_step=on_step)
    total = sc.checkpoint_store.total_bytes_written
    print(f"\n{label}: {total / 1e6:.2f} MB checkpointed over "
          f"{NUM_STEPS} steps")
    for step, names, cost in actions:
        print(f"  step {step}: wrote {', '.join(names)} "
              f"({cost / 1e3:.0f} kB)")
    return sc, app, total


def main():
    print("Trending-topics application (the paper's Fig 16 lineage), "
          f"{NUM_STEPS} steps\n")
    sc, app, stark_bytes = run_policy(
        "Stark optimizer (min-cut, f=3)",
        lambda sc, r: CheckpointOptimizer(sc, recovery_bound=r,
                                          relax_factor=3.0),
    )
    _, _, edge_bytes = run_policy(
        "Tachyon Edge baseline (all leaves)",
        lambda sc, r: EdgeCheckpointer(sc, recovery_bound=r),
    )
    print(f"\ncheckpoint savings vs Edge: {edge_bytes / stark_bytes:.1f}x "
          "less data written")

    print("\nCurrent trends:")
    for topic, score in app.trending()[:5]:
        print(f"  {topic}: {score:.1f}")

    # Failure drill: kill a worker holding state and measure recovery.
    frontier = app.frontier_rdds()[0]
    locations = sc.block_manager_master.locations((frontier.rdd_id, 0))
    victim = next(iter(locations))
    report = FailureInjector(sc).measure_recovery(frontier, victim)
    print(f"\nfailure drill: killed worker {victim}; "
          f"warm delay {report.baseline_delay * 1000:.1f} ms -> "
          f"recovery {report.recovery_delay * 1000:.1f} ms "
          f"({report.slowdown:.1f}x, bounded by checkpoints)")


if __name__ == "__main__":
    main()
