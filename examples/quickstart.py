"""Quickstart: co-locality on a dynamic dataset collection.

Loads three "hourly" datasets under one co-locality namespace, runs a
cogroup query across them, and shows the difference co-locality makes —
the same comparison as the paper's Figure 2 vs Figure 3 example.

Run:  python examples/quickstart.py
"""

from repro import HashPartitioner, StarkConfig, StarkContext


def build_collection(sc, locality: bool):
    """Load 3 datasets of (user, score) pairs, cached across the cluster."""
    part = HashPartitioner(8)
    rdds = []
    for hour in range(3):
        data = [(f"user{i % 500}", i * hour) for i in range(5_000)]
        base = sc.parallelize(data, 8, name=f"hour-{hour}")
        if locality:
            # Stark: register the shared partitioner under a namespace;
            # the LocalityManager pins collection partitions to stable
            # executors so all three RDDs co-locate.
            rdd = base.locality_partition_by(part, namespace="hours")
        else:
            # Plain Spark: same partitioner (co-partitioned), but each
            # RDD's partitions land wherever slots happened to be free.
            rdd = base.partition_by(part)
        rdd.cache()
        rdd.count()  # materialize + cache
        rdds.append(rdd)
    return rdds


def run(locality: bool) -> float:
    config = StarkConfig(
        locality_enabled=locality,
        mcf_enabled=locality,
        replication_enabled=locality,
    )
    sc = StarkContext(num_workers=8, cores_per_worker=2,
                      memory_per_worker=2e9, config=config)
    hours = build_collection(sc, locality)

    # A query spanning the collection: cogroup all hours, count users
    # whose total score exceeds a threshold.
    merged = hours[0].cogroup(*hours[1:])
    busy_users = merged.filter(
        lambda kv: sum(sum(scores) for scores in kv[1]) > 10_000
    )
    count = busy_users.count()

    job = sc.metrics.last_job()
    mode = "Stark (co-located)" if locality else "Spark (scattered)"
    print(f"{mode:22s}: {count} busy users, "
          f"query took {job.makespan * 1000:7.1f} ms simulated "
          f"(shuffle fetch {job.total_shuffle_fetch_time() * 1000:6.1f} ms)")
    return job.makespan


def main():
    print("Cogroup query over a 3-dataset collection, 8 simulated workers\n")
    spark = run(locality=False)
    stark = run(locality=True)
    print(f"\nco-locality speedup: {spark / stark:.1f}x")


if __name__ == "__main__":
    main()
