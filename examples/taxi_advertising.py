"""Taxi advertising with extendable partition groups (§III-C).

The motivating application of the paper's elasticity section: taxi
pick-up/drop-off events stream in every five minutes, spatially skewed
toward moving hotspots, and advertising campaigns query the last hour's
events inside target regions.  Extendable partition groups split hot
spatial regions across executors and merge drained ones — without ever
re-partitioning (the key→partition mapping never changes).

Run:  python examples/taxi_advertising.py
"""

import random

from repro import ExtendablePartitioner, StarkConfig, StarkContext
from repro.apps.taxi_ads import TaxiAdsApp
from repro.workloads.taxi import TaxiTrace, TaxiTraceConfig


def main():
    trace = TaxiTrace(TaxiTraceConfig(
        base_events_per_step=3_000,
        steps_per_day=24,       # compressed day: 1 step == 1 hour
        holiday=True,           # evening brings Fig 6(c)'s broad hotspots
        record_bytes=20_000,    # one event stands in for ~100 real trips
    ))
    partitioner = ExtendablePartitioner.over_key_range(
        0, trace.encoder.key_space(), num_groups=4, partitions_per_group=8,
    )
    step_bytes = 3_000 * 20_000
    sc = StarkContext(
        num_workers=8, cores_per_worker=2, memory_per_worker=4e9,
        config=StarkConfig(
            max_group_mem_size=step_bytes * 6 / 8,
            min_group_mem_size=step_bytes * 6 / 32,
        ),
    )
    app = TaxiAdsApp(sc, partitioner, trace, namespace="taxi",
                     window_steps=6)
    rng = random.Random(42)

    print("hour | groups | splits | merges | campaign matches | delay (ms)")
    print("-" * 66)
    for step in range(12, 24):  # afternoon into the holiday evening
        app.ingest_step(step)
        campaign = app.random_campaign(rng, hotspot_biased=True)
        result = app.match_campaign(campaign)
        stats = sc.group_manager.stats("taxi")
        print(f"{step:4d} | {stats['groups']:6d} | {stats['splits']:6d} "
              f"| {stats['merges']:6d} | {result.matched_events:16d} "
              f"| {result.delay * 1000:9.1f}")

    stats = sc.group_manager.stats("taxi")
    print(f"\nGroup tree adapted to the moving hotspots: "
          f"{stats['splits']} splits, {stats['merges']} merges, "
          f"{stats['groups']} active groups.")
    hottest = sc.replication_manager.hottest_partitions(3)
    if hottest:
        print("Hottest collection partitions (by remote-launch signals):")
        for (namespace, pid), count in hottest:
            print(f"  {namespace}[{pid}] -> {count} overflow launches")


if __name__ == "__main__":
    main()
