"""Micro-batch streaming over the merged taxi + Twitter feed (§IV-E).

Stands up a StreamingContext, ingests the paper's merged stream under a
shared co-locality namespace, maintains a running per-topic count with
``update_state_by_key``, and answers sliding-window region queries — the
workload behind Figs 19/20.

Run:  python examples/streaming_window.py
"""

import random

from repro import StarkContext, StaticRangePartitioner
from repro.streaming import StreamingContext
from repro.workloads.taxi import TaxiTrace, TaxiTraceConfig
from repro.workloads.twitter import MergedTaxiTwitterTrace, Tweet


def main():
    taxi = TaxiTrace(TaxiTraceConfig(
        base_events_per_step=1_500, record_bytes=10_000,
    ))
    trace = MergedTaxiTwitterTrace(taxi)
    partitioner = StaticRangePartitioner.uniform(
        0, taxi.encoder.key_space(), 16,
    )
    sc = StarkContext(num_workers=8, cores_per_worker=2,
                      memory_per_worker=3e9)
    ssc = StreamingContext(sc, batch_seconds=300.0, retention_steps=8)

    def receiver(step, num_partitions):
        return trace.step_generator(step, num_partitions, partitioner)

    stream = ssc.receiver_stream(
        receiver, partitioner.num_partitions, partitioner=partitioner,
        namespace="feed", name="taxi+twitter",
    )

    def update(new_values, old_count):
        tweets = sum(1 for v in new_values if isinstance(v, Tweet))
        return (old_count or 0) + tweets

    topic_counts = ssc.update_state_by_key(
        stream,
        lambda new, old: (old or 0) + len(new),
        partitioner,
        state_name="per-cell-volume",
    )

    rng = random.Random(3)
    print("step | window | region events | query ms | state keys")
    print("-" * 58)
    for step in range(8):
        ssc.advance(1)
        state = topic_counts.step()
        window = stream.window(min(4, step + 1))
        lo, hi = taxi.random_region_query(rng)
        if len(window) == 1:
            region = window[0].filter(lambda kv: lo <= kv[0] <= hi)
            matches = region.count()
        else:
            merged = window[0].cogroup(*window[1:])
            region = merged.filter(lambda kv: lo <= kv[0] <= hi)
            matches = sum(
                region.map(
                    lambda kv: sum(len(vals) for vals in kv[1])
                ).collect()
            )
        delay = sc.metrics.last_job().makespan
        print(f"{step:4d} | {len(window):6d} | {matches:14d} "
              f"| {delay * 1000:8.1f} | {state.count():10d}")

    print("\nRetained steps:", sorted(stream.rdds))
    print("Locality of the last query:",
          sc.metrics.locality_fractions())


if __name__ == "__main__":
    main()
