"""Interactive log diagnosis over a dynamic collection of hourly logs.

The paper's IT-administrator scenario: hourly log datasets are loaded
and evicted as the diagnosis session moves through time, and interactive
keyword queries cogroup whichever hours the administrator is looking at.
Compares the three partitioning strategies of §IV-B on the same session.

Run:  python examples/log_diagnosis.py
"""

import random

from repro.apps.log_mining import LogMiningApp
from repro.bench.configs import ClusterSpec, make_setup
from repro.workloads.wikipedia import WikipediaTrace, WikipediaTraceConfig


def run_session(mode_name: str, config_name: str, app_mode: str) -> float:
    trace = WikipediaTrace(WikipediaTraceConfig(
        base_requests_per_hour=2_000,
        num_articles=500,
        line_padding_bytes=20_000,  # ~40 MB hour-files
    ))
    setup = make_setup(config_name, ClusterSpec(
        num_workers=8, cores_per_worker=2, memory_per_worker=3e9,
    ))
    app = LogMiningApp(setup.context, trace, num_partitions=8,
                       mode=app_mode, partitioner=setup.partitioner)
    rng = random.Random(7)

    # The session: slide through hours 0..9 keeping 4 hours loaded,
    # firing 2 keyword queries per position.
    total_delay = 0.0
    queries = 0
    for hour in range(10):
        app.load_hour(hour)
        if hour >= 4:
            app.evict_hour(hour - 4)
        loaded = sorted(app.hours)
        for _ in range(2):
            keyword = f"Article_{rng.randint(0, 99):05d}"
            result = app.query(keyword, loaded)
            total_delay += result.delay
            queries += 1
    mean = total_delay / queries
    print(f"{mode_name:28s}: {queries} queries, "
          f"mean delay {mean * 1000:8.1f} ms simulated")
    return mean


def main():
    print("Sliding-window log diagnosis: 10 hours, 4-hour window, "
          "2 queries/position\n")
    spark_r = run_session("Spark-R (range per RDD)", "Spark-R", "spark-r")
    spark_h = run_session("Spark-H (shared hash)", "Spark-H", "spark-h")
    stark = run_session("Stark (co-locality)", "Stark-H", "stark")
    print(f"\nStark vs Spark-H speedup: {spark_h / stark:4.1f}x")
    print(f"Stark vs Spark-R speedup: {spark_r / stark:4.1f}x")


if __name__ == "__main__":
    main()
