"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig11 --rdd-counts 1 2 3 4 5 6
    python -m repro fig19 --rates 2 5 10 20 40
    python -m repro all          # everything (several minutes)

Each command prints the paper-style rows the corresponding figure
reports; delays are simulated seconds (see README for calibration).
"""

from __future__ import annotations

import argparse
import math
import statistics
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from . import obs
from .bench import harness
from .bench.ascii_charts import timeline_chart, utilization_chart
from .bench.reporting import print_comparison, print_table
from .cache import (
    POLICY_NAMES,
    set_default_admission_min_cost,
    set_default_policy,
)
from .elastic import POLICY_NAMES as SCALE_POLICY_NAMES
from .obs import log as obs_log

if TYPE_CHECKING:  # pragma: no cover
    from .engine.context import StarkContext

LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR")


def _cmd_fig01(args: argparse.Namespace) -> None:
    result = harness.run_fig01(file_bytes=args.file_mb * 1e6)
    print_table(
        "Fig 1(b): data locality benefits (simulated s)",
        ["bar", "delay (s)"],
        [["C (first count)", result.c_count_delay],
         ["D (cached)", result.d_cached_delay],
         ["D- (no locality)", result.d_nolocality_delay]],
    )


def _cmd_fig07(args: argparse.Namespace) -> None:
    points = harness.run_fig07(partition_counts=tuple(args.partitions))
    print_table("Fig 7: delay vs number of partitions",
                ["partitions", "delay (s)"], points)


def _cmd_fig11(args: argparse.Namespace) -> None:
    results = harness.run_colocality(rdd_counts=tuple(args.rdd_counts))
    by: Dict[int, Dict[str, harness.CoLocalityResult]] = {}
    for r in results:
        by.setdefault(r.num_rdds, {})[r.config] = r
    rows = []
    for n in sorted(by):
        spark = by[n]["Spark-H"].job_delay
        stark = by[n]["Stark-H"].job_delay
        rows.append([n, spark, stark, spark / stark])
    print_table("Fig 11: co-locality job delay",
                ["rdds", "Spark-H (s)", "Stark-H (s)", "speedup"], rows)


def _cmd_fig12(args: argparse.Namespace) -> None:
    results = harness.run_colocality(rdd_counts=tuple(args.rdd_counts),
                                     queries_per_point=2)
    rows = []
    for r in results:
        total = sum(r.task_delays)
        gc = sum(r.task_gc)
        rows.append([r.config, r.num_rdds, max(r.task_delays),
                     gc / total if total else 0.0])
    print_table("Fig 12: task delay and GC fraction",
                ["config", "rdds", "max task (s)", "gc fraction"], rows)


def _cmd_skew(args: argparse.Namespace) -> None:
    results = harness.run_skew()
    rows13, rows14, rows15 = [], [], []
    for r in results:
        sizes = r.task_input_sizes
        mean = statistics.fmean(sizes) if sizes else 0.0
        cv = statistics.pstdev(sizes) / mean if mean else 0.0
        rows13.append([r.config, str(r.collection), len(sizes),
                       max(sizes) / 1e6 if sizes else 0.0, cv])
        rows14.append([r.config, str(r.collection),
                       r.first_job_delay, r.second_job_delay])
        delays = sorted(r.task_delays)
        rows15.append([r.config, str(r.collection), delays[0],
                       statistics.median(delays), delays[-1],
                       sum(r.task_shuffle_times)])
    print_table("Fig 13: task input sizes",
                ["config", "collection", "tasks", "max (MB)", "cv"], rows13)
    print_table("Fig 14: job delay (1st vs 2nd)",
                ["config", "collection", "1st (s)", "2nd (s)"], rows14)
    print_table("Fig 15: task delay min/mid/max + shuffle",
                ["config", "collection", "min", "mid", "max", "shuffle"],
                rows15)


def _cmd_fig17(args: argparse.Namespace) -> None:
    rows = harness.run_fig17(num_steps=args.steps)
    print_table(
        "Fig 17: cached vs checkpoint size (MB)",
        ["rdd", "cached", "checkpoint", "ratio"],
        [[name, c / 1e6, w / 1e6, c / w if w else float("nan")]
         for name, c, w in rows],
    )


def _cmd_fig18(args: argparse.Namespace) -> None:
    series = harness.run_fig18(num_steps=args.steps)
    by = {s.policy: s.cumulative_bytes for s in series}
    steps = range(1, args.steps + 1)
    print_table(
        "Fig 18: cumulative checkpointed data (MB)",
        ["step"] + list(by),
        [[s] + [by[p][s - 1] / 1e6 for p in by] for s in steps],
    )


def _cmd_fig19(args: argparse.Namespace) -> None:
    points, throughput = harness.run_fig19(
        rates=tuple(args.rates),
        min_workers=args.min_workers, max_workers=args.max_workers,
        scale_policy=args.scale_policy,
    )
    print_table("Fig 19: mean delay (ms) vs rate (jobs/s)",
                ["config", "rate", "delay (ms)"],
                [[p.config, p.rate, p.mean_delay * 1000] for p in points])
    print_table("Fig 19: throughput at the 800 ms cap",
                ["config", "jobs/s"], sorted(throughput.items()))
    if throughput.get("Spark-H"):
        print_comparison("throughput gain", "Spark-H",
                         throughput["Spark-H"], "Stark-H",
                         throughput["Stark-H"], higher_is_better=True)


def _cmd_fig20(args: argparse.Namespace) -> None:
    from .bench.ascii_charts import sparkline

    points = harness.run_fig20(hours=args.hours, steps_per_hour=1,
                               jobs_per_step=args.jobs_per_step,
                               min_workers=args.min_workers,
                               max_workers=args.max_workers,
                               scale_policy=args.scale_policy)
    by: Dict[str, Dict[float, float]] = {}
    for p in points:
        by.setdefault(p.config, {})[p.hour] = p.mean_delay
    hours = sorted(next(iter(by.values())))
    print_table("Fig 20: mean delay (ms) over the day",
                ["hour"] + list(by),
                [[h] + [by[c][h] * 1000 for c in by] for h in hours])
    print()
    for config, per_hour in by.items():
        series = [per_hour[h] for h in hours]
        print(f"{config:>8s}  {sparkline(series)}  "
              f"(max {max(series) * 1000:.0f} ms)")


def _cmd_cache_broker(args: argparse.Namespace) -> int:
    """Run the canned broker workload and print the cluster-wide cache
    broker's view: per-worker cached value density, the most valuable
    resident blocks, and the cross-job sharing / memory-market
    counters."""
    context = WORKLOADS["broker"]()
    broker = context.cache_broker
    master = context.block_manager_master
    print_table(
        "Cache broker: per-worker cached value density",
        ["worker", "blocks", "resident (KB)", "capacity (KB)",
         "density (µs/B)"],
        [[wid, broker.resident_count(wid),
          master.used_bytes(wid) / 1e3,
          master.stores[wid].capacity_bytes / 1e3,
          broker.worker_value_density(wid) * 1e6]
         for wid in sorted(master.stores)],
        floatfmt="{:.6f}",
    )
    print_table(
        f"Cache broker: top {args.top} blocks by value "
        "(recompute_cost x (1 + refs) / size)",
        ["value (µs/B)", "worker", "rdd", "partition", "size (KB)"],
        [[value * 1e6, wid, bid[0], bid[1],
          master.stores[wid].peek(bid).size_bytes / 1e3]
         for value, wid, bid in broker.top_blocks(args.top)],
        floatfmt="{:.6f}",
    )
    tracker = context.cache_manager.tracker
    print_table(
        "Cache broker: cross-job sharing and memory-market counters",
        ["counter", "value"],
        [["prefix hits (cross-job serves)", broker.prefix_hits],
         ["prefix hits paying a remote read", broker.prefix_remote_hits],
         ["prefix misses (no live provider)", broker.prefix_misses],
         ["broker evictions (market)", broker.broker_evictions],
         ["broker migrations (market)", broker.broker_migrations],
         ["auto-unpersists deferred on pins", tracker.deferred_unpersists],
         ["ledger bytes", broker.accounted_bytes()],
         ["resident bytes", master.total_cached_bytes()]],
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.broker:
        return _cmd_cache_broker(args)
    results = harness.run_cache_policies(
        policies=tuple(args.policies),
        iterations=args.iterations,
        admission_min_cost=args.admission_min_cost,
        auto_unpersist=args.auto_unpersist,
    )
    print_table(
        "Cache policies: iterative workload under memory pressure",
        ["policy", "mean job (s)", "hit rate", "evictions",
         "recomputed", "recompute (s)", "rejected"],
        [[r.policy, r.mean_makespan, f"{r.hit_rate:.2%}", r.evictions,
          r.recomputed_partitions, r.recompute_time, r.admission_rejected]
         for r in results],
        floatfmt="{:.4f}",
    )
    by = {r.policy: r for r in results}
    if "lru" in by:
        for name in ("lrc", "cost"):
            if name in by:
                print_comparison("mean job makespan", "lru",
                                 by["lru"].mean_makespan, name,
                                 by[name].mean_makespan)
    return 0


def _cmd_elastic(args: argparse.Namespace) -> int:
    results = harness.run_elastic_diurnal(
        policies=tuple(args.policies),
        hours=args.hours,
        hour_seconds=args.hour_seconds,
        base_jobs_per_hour=args.base_jobs_per_hour,
        peak_factor=args.peak_factor,
        base_events_per_step=args.events_per_step,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        delay_cap=args.delay_cap,
        max_pending_jobs=args.max_pending_jobs or None,
    )
    if not results:
        return 0
    static_wh = results[0].static_worker_hours
    static_p95 = results[0].static_p95
    rows = [["static", static_p95 * 1000, "-", static_wh, "-",
             "-", "-", "-", "-", "-"]]
    for r in results:
        rows.append([
            r.policy, r.autoscaled_p95 * 1000, r.autoscaled_p99 * 1000,
            r.autoscaled_worker_hours, f"{r.worker_hours_saved:.0%}",
            r.scale_outs, r.scale_ins, r.migrated_blocks, r.dropped_blocks,
            r.shed_jobs,
        ])
    print_table(
        "Elastic diurnal replay: autoscaled vs static peak provisioning",
        ["policy", "p95 (ms)", "p99 (ms)", "worker-h", "saved",
         "outs", "ins", "migrated", "dropped", "shed"],
        rows,
    )
    status = 0
    for r in results:
        if not r.lost_zero_blocks:
            print(f"DATA LOSS: policy {r.policy} dropped "
                  f"{r.dropped_blocks} cached blocks on decommission")
            status = 1
    return status


def _cmd_service(args: argparse.Namespace) -> int:
    # Route the knobs through StarkConfig so the CLI rejects exactly what
    # the engine would (unknown policy, negative quota) with exit 2.
    from .engine.context import StarkConfig

    StarkConfig(scheduling_policy=args.scheduling_policy,
                tenant_quota_mb=args.tenant_quota_mb).validate_service()
    results = harness.run_tenant_fairness(
        num_tenants=args.tenants,
        zipf_s=args.zipf_s,
        burst_jobs=args.burst_jobs,
        tenant_quota_mb=args.tenant_quota_mb,
        seed=args.seed,
    )
    by_arm = {r.arm: r for r in results}
    print_table(
        "Multi-tenant service: compliant-tenant delay under an abusive burst",
        ["arm", "policy", "abuser", "p95 (ms)", "mean (ms)", "max (ms)",
         "jobs", "shed", "quota evict", "dedup", "SLO alerts"],
        [[r.arm, r.scheduling_policy, str(r.abuser_active),
          r.compliant_p95_delay * 1000, r.compliant_mean_delay * 1000,
          r.compliant_max_delay * 1000, r.completed_jobs, r.shed_jobs,
          r.quota_evictions, r.dedup_hits,
          f"{r.compliant_slo_alerts}+{r.slo_alerts - r.compliant_slo_alerts}"]
         for r in results],
        floatfmt="{:.2f}",
    )
    slo_target = by_arm["fair"].slo_target
    print(f"SLO alerts are compliant+abuser burn-rate fires against a "
          f"per-tenant p95 target of {slo_target * 1000:.1f} ms "
          f"(3x the no-abuser reference); the reference arm sets the "
          f"target and is not judged against it.")
    reference = by_arm["fair_no_abuser"]
    selected = by_arm.get(args.scheduling_policy, by_arm["fair"])
    print_comparison(
        "compliant p95 vs no-abuser reference",
        f"{selected.arm} (with abuser)", selected.compliant_p95_delay,
        "no-abuser reference", reference.compliant_p95_delay,
    )
    if by_arm["fair"].compliant_p95_delay > \
            2.0 * max(reference.compliant_p95_delay, 1e-9):
        print("FAIRNESS REGRESSION: fair-share p95 exceeded 2x the "
              "no-abuser reference")
        return 1
    return 0


def _cmd_speculation(args: argparse.Namespace) -> int:
    off, on = harness.run_speculation_tail(
        num_jobs=args.jobs,
        num_partitions=args.partitions,
        transient_rate=args.straggler_rate,
        transient_duration=args.straggler_duration,
        transient_factor=args.straggler_factor,
        speculation_multiplier=args.multiplier,
        speculation_quantile=args.quantile,
        seed=args.seed,
    )
    print_table(
        "Speculative execution vs straggler tail (identical slowdowns)",
        ["speculation", "mean (ms)", "p95 (ms)", "p99 (ms)",
         "mean job (ms)", "straggled", "copies", "killed"],
        [[str(r.speculation), r.mean_task_delay * 1000,
          r.p95_task_delay * 1000, r.p99_task_delay * 1000,
          r.mean_makespan * 1000, f"{r.straggler_incidence:.1%}",
          r.speculative_copies, r.killed_copies]
         for r in (off, on)],
        floatfmt="{:.3f}",
    )
    print_comparison("p99 task delay", "spec off", off.p99_task_delay,
                     "spec on", on.p99_task_delay)
    if on.results_digest != off.results_digest:
        print("RESULT MISMATCH: speculation changed job outputs")
        return 1
    print("job results identical across both arms "
          f"(sha256 {on.results_digest[:12]}…)")
    return 0


# ---- canned traceable workloads ------------------------------------------------


def _workload_smoke() -> "StarkContext":
    """Cached RDD counted twice (misses then hits) plus one shuffle."""
    from .bench.configs import ClusterSpec, make_context

    context = make_context(
        "Stark-H", ClusterSpec(num_workers=4, cores_per_worker=2, seed=7))
    data = [(i % 40, i) for i in range(2000)]
    rdd = context.parallelize(data, num_partitions=8, name="smoke").cache()
    rdd.count()
    rdd.count()
    rdd.reduce_by_key(lambda a, b: a + b, name="smoke.reduce").count()
    return context


def _workload_cache_pressure() -> "StarkContext":
    """Several cached RDDs larger than aggregate store capacity, cycled
    repeatedly: capacity evictions, misses, and recomputation."""
    from .bench.configs import ClusterSpec, make_context

    context = make_context(
        "Spark-H",
        ClusterSpec(num_workers=2, cores_per_worker=2,
                    memory_per_worker=6e5, seed=11))
    rdds = []
    for r in range(4):
        data = [(i, i * r) for i in range(3000)]
        rdds.append(context.parallelize(
            data, num_partitions=4, name=f"pressure{r}").cache())
    for _ in range(3):
        for rdd in rdds:
            rdd.count()
    return context


def _workload_streaming() -> "StarkContext":
    """A few micro-batch steps with a short retention window: batch
    events plus explicit evictions of expired step RDDs."""
    from .bench.configs import ClusterSpec, make_context
    from .streaming.dstream import StreamingContext

    context = make_context(
        "Stark-H", ClusterSpec(num_workers=4, cores_per_worker=2, seed=3))
    ssc = StreamingContext(context, batch_seconds=10.0, retention_steps=3)

    def receiver(step: int, parts: int):
        def gen(pid: int) -> list:
            return [((pid * 97 + i) % (1 << 16), step) for i in range(100)]
        return gen

    ssc.receiver_stream(receiver, num_partitions=8, name="ingest")
    ssc.advance(5)
    return context


def _workload_service() -> "StarkContext":
    """Three tenants on a DatasetService: registrations (one deduped),
    a branch, a drop, and async arrivals with one tenant bounded so
    admission sheds fire — every service event type in one run."""
    from .bench.configs import ClusterSpec, make_context
    from .service import DatasetService

    context = make_context(
        "Stark-H", ClusterSpec(num_workers=2, cores_per_worker=2, seed=13))
    svc = DatasetService(context)
    svc.create_tenant("alpha", weight=2.0)
    svc.create_tenant("beta", weight=1.0)
    svc.create_tenant("gamma", weight=1.0, max_pending_jobs=2)

    def make_rdd(source: int):
        def gen(pid: int, source: int = source) -> list:
            return [(pid * 500 + i, (i * 31 + source) % 97)
                    for i in range(200)]
        return (context.generated(gen, 4, read_cost="disk",
                                  name=f"svc-src{source}")
                .map(lambda kv: (kv[0], kv[1] + 1)))

    handles = {
        "alpha": svc.register_dataset("alpha", "ds-alpha", make_rdd(0)),
        "beta": svc.register_dataset("beta", "ds-beta", make_rdd(1)),
        # gamma files alpha's exact computation: registry dedup.
        "gamma": svc.register_dataset("gamma", "ds-gamma", make_rdd(0)),
    }
    svc.branch_dataset("beta", "ds-beta", "ds-beta-fork")
    svc.register_dataset("beta", "ds-scratch", make_rdd(2)).release()
    svc.drop_dataset("beta", "ds-scratch")

    def make_job(name: str) -> Callable[[float, int], float]:
        handle = handles[name]

        def job(t: float, i: int) -> float:
            context.run_job(handle.rdd, len, submit_time=t,
                            description=f"{name}-{i}")
            return context.metrics.last_job().finish_time

        return job

    svc.submit_arrivals("alpha", make_job("alpha"), [0.1, 0.4, 0.7])
    svc.submit_arrivals("beta", make_job("beta"), [0.2, 0.5])
    # gamma's burst exceeds max_pending_jobs=2: later arrivals shed.
    svc.submit_arrivals("gamma", make_job("gamma"),
                        [0.3 + 1e-3 * j for j in range(6)])
    svc.run()
    context.dataset_service = svc
    return context


def _workload_broker() -> "StarkContext":
    """Two tenants' structurally identical cached pipelines run as
    separate jobs under the cluster-wide cache broker — the second scan
    is served from the first's cached prefix — plus filler datasets that
    overflow the stores so the broker's global eviction/migration market
    fires."""
    from .bench.configs import ClusterSpec, make_context
    from .engine.context import StarkConfig

    context = make_context(
        "Stark-H",
        ClusterSpec(num_workers=3, cores_per_worker=2,
                    memory_per_worker=2.5e5, seed=19),
        stark_config=StarkConfig(cache_broker=True))

    def source(pid: int) -> list:
        return [(pid * 200 + i, i % 13) for i in range(200)]

    def tenant_scan():
        return (context.generated(source, 6, read_cost="network",
                                  name="broker-shared-scan")
                .map(lambda kv: (kv[0], kv[1] * 2))
                .cache())

    first = tenant_scan()
    first.count()
    second = tenant_scan()   # same structure, different RDD ids
    second.count()           # served from first's cached prefix
    for r in range(4):
        data = [(i, i * r) for i in range(2500)]
        context.parallelize(data, num_partitions=3,
                            name=f"broker-filler{r}").cache().count()
    second.count()
    return context


#: The canned SQL workload's queries: a scan-filter-aggregate, a
#: join + group-by (TPC-H Q3/Q5 in spirit), and a top-k — enough to
#: exercise pushdown, exchanges, and ordering on every run.
SQL_QUERIES: List[tuple] = [
    ("status_totals",
     "SELECT o_status, COUNT(*) AS orders, SUM(o_totalprice) AS total "
     "FROM orders WHERE o_totalprice > 100 GROUP BY o_status "
     "ORDER BY o_status"),
    ("revenue_by_flag",
     "SELECT l_returnflag, SUM(l_extendedprice) AS revenue, "
     "AVG(l_quantity) AS avg_qty FROM lineitem "
     "JOIN orders ON l_orderkey = o_orderkey "
     "WHERE o_status = 'O' GROUP BY l_returnflag ORDER BY revenue DESC"),
    ("top_orders",
     "SELECT o_orderkey, o_totalprice FROM orders "
     "WHERE o_status = 'F' ORDER BY o_totalprice DESC LIMIT 10"),
]


def _sql_session(num_workers: int = 4, seed: int = 17):
    """A context + SQLSession with the canned orders/lineitem tables."""
    from .bench.configs import ClusterSpec, make_context
    from .columnar.datagen import register_tpch_tables
    from .sql import SQLSession

    context = make_context(
        "Stark-H",
        ClusterSpec(num_workers=num_workers, cores_per_worker=2, seed=seed))
    session = SQLSession(context)
    register_tpch_tables(session, seed=seed)
    return context, session


def _workload_sql() -> "StarkContext":
    """The canned SQL workload under tracing: every query plans, runs,
    and posts QueryPlanned/QueryCompleted events the reconciliation
    table checks against the session's counters."""
    context, session = _sql_session()
    for _, text in SQL_QUERIES:
        session.sql(text).collect()
    return context


WORKLOADS: Dict[str, Callable[[], "StarkContext"]] = {
    "smoke": _workload_smoke,
    "cache-pressure": _workload_cache_pressure,
    "streaming": _workload_streaming,
    "service": _workload_service,
    "sql": _workload_sql,
    "broker": _workload_broker,
}


def _run_traced_workload(name: str, listeners: Sequence) -> List["StarkContext"]:
    """Run a canned workload with ``listeners`` subscribed to every
    context it creates; returns those contexts for reconciliation."""
    contexts: List["StarkContext"] = []

    def attach(context: "StarkContext") -> None:
        contexts.append(context)
        for listener in listeners:
            context.event_bus.subscribe(listener)

    obs.add_context_observer(attach)
    try:
        WORKLOADS[name]()
    finally:
        obs.remove_context_observer(attach)
    return contexts


def _reconcile(contexts: Sequence["StarkContext"],
               collector: obs.EventCollector) -> List[List]:
    """Rows of [quantity, from events, from metrics, ok] — the event
    stream must agree exactly with ``MetricsCollector`` totals."""
    counts = collector.counts_by_type()
    tasks = hits = misses = evictions = 0
    for context in contexts:
        stats = context.metrics.cache_stats()
        tasks += context.metrics.total_tasks()
        hits += int(stats["hits"])
        misses += int(stats["misses"])
        evictions += int(stats["evictions"])
    capacity_evictions = sum(
        1 for e in collector.of_type(obs.BlockEvicted)
        if e.reason == "capacity")
    checks = [
        ("tasks", counts.get("TaskEnd", 0), tasks),
        ("cache hits", counts.get("CacheHit", 0), hits),
        ("cache misses", counts.get("CacheMiss", 0), misses),
        ("capacity evictions", capacity_evictions, evictions),
    ]

    # Service-layer events reconcile against the DatasetService's own
    # unconditional counters (kept whether or not the bus is active).
    services = [c.dataset_service for c in contexts
                if getattr(c, "dataset_service", None) is not None]
    if services:
        completed = sum(len(t.result.results)
                        for svc in services for t in svc.tenants.values())
        shed = sum(t.result.shed_jobs
                   for svc in services for t in svc.tenants.values())
        checks += [
            ("tenant jobs submitted", counts.get("TenantJobSubmitted", 0),
             completed + shed),
            ("tenant jobs admitted", counts.get("TenantJobAdmitted", 0),
             completed),
            ("tenant jobs shed", counts.get("TenantJobShed", 0), shed),
            ("tenant jobs completed", counts.get("TenantJobCompleted", 0),
             completed),
            ("datasets registered", counts.get("DatasetRegistered", 0),
             sum(s.registry.registered_versions for s in services)),
            ("datasets branched", counts.get("DatasetBranched", 0),
             sum(s.registry.branched_versions for s in services)),
            ("datasets dropped", counts.get("DatasetDropped", 0),
             sum(s.registry.dropped_versions for s in services)),
            ("pool reweights", counts.get("PoolWeightsUpdated", 0),
             sum(s.pool_updates for s in services)),
        ]

    # SQL plan events reconcile against the SQLSession's unconditional
    # counters, plus the internal identity planned = completed + failed.
    sessions = [c.sql_session for c in contexts
                if getattr(c, "sql_session", None) is not None]
    if sessions:
        planned = sum(s.queries_planned for s in sessions)
        completed = sum(s.queries_completed for s in sessions)
        failed = sum(s.queries_failed for s in sessions)
        checks += [
            ("queries planned", counts.get("QueryPlanned", 0), planned),
            ("queries completed", counts.get("QueryCompleted", 0),
             completed),
            ("queries failed", counts.get("QueryFailed", 0), failed),
            ("queries planned = completed + failed",
             counts.get("QueryPlanned", 0),
             counts.get("QueryCompleted", 0)
             + counts.get("QueryFailed", 0)),
        ]

    # Broker rows: the global ledger must account for exactly the bytes
    # resident in the block stores (both sides ``math.fsum``, so exact),
    # and every broker action must have posted its event.  Cross-job
    # hits combine lineage-prefix serves with registry fingerprint
    # dedup — the two sharing mechanisms.
    brokers = [c for c in contexts
               if getattr(c, "cache_broker", None) is not None]
    if brokers:
        ledger = math.fsum(c.cache_broker.accounted_bytes()
                           for c in brokers)
        resident = math.fsum(
            store.peek(bid).size_bytes
            for c in brokers
            for _, store in sorted(c.block_manager_master.stores.items())
            for bid in store.block_ids())
        broker_evicted = sum(1 for e in collector.of_type(obs.BlockEvicted)
                             if e.reason == "broker")
        dedup_events = sum(
            1 for e in collector.of_type(obs.DatasetRegistered)
            if e.deduped)
        checks += [
            ("broker ledger bytes = resident bytes", ledger, resident),
            ("broker evictions", broker_evicted,
             sum(c.cache_broker.broker_evictions for c in brokers)),
            ("broker migrations", counts.get("BrokerMigrated", 0),
             sum(c.cache_broker.broker_migrations for c in brokers)),
            ("cross-job hits",
             counts.get("BrokerPrefixHit", 0) + dedup_events,
             sum(c.cache_broker.prefix_hits for c in brokers)
             + sum(s.registry.dedup_hits for s in services)),
        ]

    rows = []
    for label, from_events, from_metrics in checks:
        rows.append([label, from_events, from_metrics,
                     "ok" if from_events == from_metrics else "MISMATCH"])
    return rows


def _cmd_trace(args: argparse.Namespace) -> int:
    out = Path(args.out)
    events_path = (Path(args.events_out) if args.events_out
                   else out.with_name(out.stem + ".events.jsonl"))
    collector = obs.EventCollector()
    sampler = obs.UtilizationSampler()
    tracer = obs.ChromeTraceExporter()
    with obs.JsonlEventLog(events_path) as event_log:
        contexts = _run_traced_workload(
            args.workload, [collector, sampler, tracer, event_log])
    if contexts:
        # Close the sampler's step timelines at the clock frontier so the
        # final partial interval counts.
        sampler.flush(max(c.now for c in contexts))
    tracer.export(out)
    print(f"trace:     {out} ({len(collector.of_type(obs.TaskEnd))} task "
          f"spans; load in https://ui.perfetto.dev)")
    print(f"event log: {events_path} ({event_log.events_written} events)")

    failures = 0
    problems = obs.validate_event_log(events_path)
    for problem in problems:
        print(f"schema: {problem}")
        failures += 1
    violations = obs.check_event_invariants(collector.events)
    for violation in violations:
        print(f"invariant: {violation}")
        failures += 1

    rows = _reconcile(contexts, collector)
    print_table("Events vs. MetricsCollector",
                ["quantity", "events", "metrics", "check"], rows)
    failures += sum(1 for row in rows if row[3] != "ok")

    lanes: Dict[str, List] = {}
    for worker_id, assigned in tracer.slot_assignment().items():
        for task, slot in assigned:
            lanes.setdefault(f"w{worker_id}/s{slot}", []).append(
                (task.time - task.duration, task.time))
    if lanes:
        print("\ntask timeline (one lane per worker slot):")
        print(timeline_chart(lanes))
    occupancy = sampler.slot_occupancy()
    if occupancy:
        print("\ncluster slot occupancy:")
        print(utilization_chart(occupancy, unit=" slots"))
    cache = sampler.cache_bytes()
    if cache:
        print("\nresident cache bytes:")
        print(utilization_chart(cache, unit="B"))
    blocks = sampler.cache_blocks()
    if blocks:
        print("\nresident cache blocks:")
        print(utilization_chart(blocks, unit=" blocks"))
    if failures:
        print(f"\n{failures} problem(s) found")
    return 1 if failures else 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    import json as _json

    collector = obs.EventCollector()
    tracer = obs.ChromeTraceExporter()
    contexts = _run_traced_workload(args.workload, [collector, tracer])
    locality_wait = (contexts[0].config.locality_wait if contexts else 0.0)
    reports = obs.critical_paths(collector.events,
                                 locality_wait=locality_wait)
    if args.job is not None:
        reports = [r for r in reports if r.job_id == args.job]
        if not reports:
            print(f"error: no job {args.job} in workload "
                  f"{args.workload!r}", file=sys.stderr)
            return 2

    failures = 0
    for report in reports:
        problems = report.problems()
        failures += len(problems)
        blame = report.blame()
        top = sorted(blame.items(), key=lambda kv: -kv[1])[:args.top]
        label = report.description or f"job {report.job_id}"
        print(f"\njob {report.job_id} ({label}): makespan "
              f"{report.makespan * 1000:.3f} ms over "
              f"{len(report.segments)} critical segments; dominated by "
              + ", ".join(f"{c} {v / max(report.makespan, 1e-12):.0%}"
                          for c, v in top if v > 0))
        print(obs.ascii_blame_chart(report))
        for problem in problems:
            print(f"invariant: {problem}")

    if args.out:
        trace = tracer.to_trace()
        seen_meta = False
        for report in reports:
            events = obs.critical_span_trace_events(report)
            if seen_meta:
                events = [e for e in events if e.get("ph") != "M"]
            seen_meta = True
            trace["traceEvents"].extend(events)
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            _json.dump(trace, fh)
        print(f"\nannotated trace: {out} (critical-path track on the "
              f"driver process; load in https://ui.perfetto.dev)")
    if failures:
        print(f"\n{failures} invariant violation(s)")
    return 1 if failures else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    profiler = obs.SimProfiler()

    def attach(context: "StarkContext") -> None:
        context.cluster.kernel.attach_profiler(profiler)

    obs.add_context_observer(attach)
    profiler.start()
    try:
        WORKLOADS[args.workload]()
    finally:
        profiler.stop()
        obs.remove_context_observer(attach)

    summary = profiler.summary()
    print_table(
        f"SimKernel self-profile ({args.workload} workload, wall clock)",
        ["metric", "value"],
        [["events dispatched", int(summary["events_dispatched"])],
         ["events/sec", summary["events_per_sec"]],
         ["dispatch seconds", summary["dispatch_seconds"]],
         ["wall seconds", summary["wall_seconds"]],
         ["heap schedules", int(summary["heap_scheduled"])],
         ["heap peak", int(summary["heap_peak"])],
         ["heap mean", summary["heap_mean"]]],
        floatfmt="{:.6f}",
    )
    hotspots = profiler.hotspots(top=args.top)
    if hotspots:
        print_table(
            "Dispatch hotspots (total wall cost per callback kind)",
            ["callback", "count", "total (ms)", "mean (µs)", "max (µs)"],
            [[label, stat.count, stat.total_seconds * 1e3,
              stat.mean_seconds * 1e6, stat.max_seconds * 1e6]
             for label, stat in hotspots],
            floatfmt="{:.3f}",
        )
    else:
        print("no kernel events dispatched (this workload never touches "
              "the event heap)")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    """Run SQL against the canned orders/lineitem tables: either one
    ad-hoc query (``--query``) or the canned workload's query set."""
    context, session = _sql_session(num_workers=args.workers,
                                    seed=args.seed)
    queries = ([("adhoc", args.query)] if args.query else SQL_QUERIES)
    for name, text in queries:
        print(f"\n-- {name}\n{text}")
        df = session.sql(text)
        if args.explain:
            print()
            print(df.explain())
        rows = df.collect()
        shown = rows[:args.rows]
        print_table(
            f"{name} ({len(rows)} row(s)"
            + (f", first {len(shown)} shown" if len(shown) < len(rows)
               else "") + ")",
            [col_name for col_name, _ in df.schema],
            [list(row) for row in shown],
            floatfmt="{:.2f}",
        )
    metrics = context.metrics
    print(f"\n{session.queries_completed} quer"
          f"{'y' if session.queries_completed == 1 else 'ies'} in "
          f"{context.now * 1000:.3f} simulated ms "
          f"({metrics.total_tasks()} tasks)")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    collector = obs.EventCollector()
    _run_traced_workload(args.workload, [collector])
    shown = collector.tail(args.tail) if args.tail else collector.events
    skipped = len(collector.events) - len(shown)
    if skipped > 0:
        print(f"... {skipped} earlier events "
              f"(--tail {len(collector.events)} to see all)")
    for event in shown:
        print(obs.format_event(event))
    return 0


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig01": _cmd_fig01,
    "fig07": _cmd_fig07,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "skew": _cmd_skew,       # Figs 13 + 14 + 15 share one run
    "fig17": _cmd_fig17,
    "fig18": _cmd_fig18,
    "fig19": _cmd_fig19,
    "fig20": _cmd_fig20,
    "cache": _cmd_cache,
    "elastic": _cmd_elastic,
    "service": _cmd_service,
    "speculation": _cmd_speculation,
    "sql": _cmd_sql,
    "trace": _cmd_trace,
    "events": _cmd_events,
    "critical-path": _cmd_critical_path,
    "profile": _cmd_profile,
}


def _nonnegative_seconds(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative seconds: {text}")
    return value


def _add_scaling_flags(p: argparse.ArgumentParser) -> None:
    """Elastic bounds shared by the streaming benchmarks: without
    ``--scale-policy`` the cluster stays fixed; with it, the run starts
    at ``--min-workers`` and autoscales up to ``--max-workers``."""
    p.add_argument("--min-workers", type=int, default=None,
                   help="lower bound (and starting size) for autoscaling")
    p.add_argument("--max-workers", type=int, default=None,
                   help="upper bound for autoscaling")
    p.add_argument("--scale-policy", choices=SCALE_POLICY_NAMES,
                   default=None,
                   help="enable elastic resource management under this "
                        "autoscaling policy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Stark paper's evaluation figures.",
    )
    parser.add_argument(
        "--cache-policy", choices=POLICY_NAMES, default=None,
        help="block-store eviction policy every experiment runs under "
             "(default: lru)",
    )
    parser.add_argument(
        "--cache-admission-min-cost", type=_nonnegative_seconds,
        default=None, metavar="SECONDS",
        help="never cache blocks whose estimated recompute cost is below "
             "this many simulated seconds (default: 0, admit everything)",
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default=None,
        help="enable engine logging at this level (sim-time-prefixed, "
             "to stderr)",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="write events-N.jsonl + trace-N.json for every context the "
             "command creates into DIR",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("all", help="run every experiment (several minutes)")

    p = sub.add_parser("fig01", help="Fig 1(b): locality benefit")
    p.add_argument("--file-mb", type=float, default=700.0)

    p = sub.add_parser("fig07", help="Fig 7: partition count trade-off")
    p.add_argument("--partitions", type=int, nargs="+",
                   default=[1, 4, 16, 64, 256, 1024, 4096])

    for name, help_text in (("fig11", "Fig 11: co-locality job delay"),
                            ("fig12", "Fig 12: task delay + GC")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--rdd-counts", type=int, nargs="+",
                       default=[1, 2, 3, 4, 5, 6])

    sub.add_parser("skew", help="Figs 13/14/15: skewed distributions")

    p = sub.add_parser("fig17", help="Fig 17: checkpoint size estimation")
    p.add_argument("--steps", type=int, default=4)
    p = sub.add_parser("fig18", help="Fig 18: checkpoint totals per policy")
    p.add_argument("--steps", type=int, default=10)

    p = sub.add_parser("fig19", help="Fig 19: throughput and delay")
    p.add_argument("--rates", type=float, nargs="+",
                   default=[2, 5, 10, 20, 40, 80, 160, 240])
    _add_scaling_flags(p)

    p = sub.add_parser("fig20", help="Fig 20: delay over a replayed day")
    p.add_argument("--hours", type=int, default=24)
    p.add_argument("--jobs-per-step", type=int, default=5)
    _add_scaling_flags(p)

    p = sub.add_parser(
        "elastic", help="diurnal replay under each autoscaling policy vs "
                        "a static peak-provisioned cluster")
    p.add_argument("--policies", nargs="+", choices=SCALE_POLICY_NAMES,
                   default=list(SCALE_POLICY_NAMES))
    p.add_argument("--hours", type=int, default=12)
    p.add_argument("--hour-seconds", type=float, default=30.0,
                   help="simulated seconds per replayed hour")
    p.add_argument("--base-jobs-per-hour", type=int, default=70)
    p.add_argument("--peak-factor", type=float, default=3.0,
                   help="job-rate multiplier at the diurnal peak")
    p.add_argument("--events-per-step", type=int, default=600)
    p.add_argument("--min-workers", type=int, default=2)
    p.add_argument("--max-workers", type=int, default=8,
                   help="autoscaling ceiling; also the static baseline size")
    p.add_argument("--delay-cap", type=float, default=0.8,
                   help="the 800 ms SLO the latency policy protects")
    p.add_argument("--max-pending-jobs", type=int, default=32,
                   help="admission-control bound; arrivals beyond it are "
                        "shed (0 disables)")

    p = sub.add_parser(
        "service",
        help="multi-tenant dataset service: fair-share pools + per-tenant "
             "quotas vs FIFO under an abusive tenant")
    p.add_argument("--tenants", type=int, default=6,
                   help="tenant count; the last one is the abuser")
    p.add_argument("--zipf-s", type=float, default=1.0,
                   help="Zipf exponent for tenant rates and pool weights")
    p.add_argument("--scheduling-policy", default="fair",
                   help="arm to headline in the comparison (validated "
                        "through StarkConfig: fifo or fair)")
    p.add_argument("--tenant-quota-mb", type=float, default=16.0,
                   help="per-tenant cache quota in MB (0 = unlimited)")
    p.add_argument("--burst-jobs", type=int, default=400,
                   help="size of the abuser's instantaneous burst")
    p.add_argument("--seed", type=int, default=23)

    p = sub.add_parser(
        "speculation",
        help="straggler tail with speculative execution off vs on")
    p.add_argument("--jobs", type=int, default=10)
    p.add_argument("--partitions", type=int, default=32)
    p.add_argument("--straggler-rate", type=float, default=3.0,
                   help="transient slowdown windows per worker per "
                        "simulated second")
    p.add_argument("--straggler-duration", type=float, default=0.1,
                   help="length of each slowdown window (simulated s)")
    p.add_argument("--straggler-factor", type=float, default=8.0,
                   help="how many times slower work progresses inside a "
                        "window")
    p.add_argument("--multiplier", type=float, default=1.3,
                   help="speculate when running time exceeds this "
                        "multiple of the median task duration")
    p.add_argument("--quantile", type=float, default=0.5,
                   help="fraction of the taskset that must finish before "
                        "speculation may fire")
    p.add_argument("--seed", type=int, default=11)

    p = sub.add_parser("cache", help="compare block-store eviction policies")
    p.add_argument("--policies", nargs="+", choices=POLICY_NAMES,
                   default=list(POLICY_NAMES))
    p.add_argument("--iterations", type=int, default=12)
    p.add_argument("--admission-min-cost", type=float, default=0.0)
    p.add_argument("--auto-unpersist", action="store_true",
                   help="drop cached RDDs whose declared uses drain to zero")
    p.add_argument("--broker", action="store_true",
                   help="run the canned broker workload and print the "
                        "cluster-wide cache broker's state instead of the "
                        "policy comparison")
    p.add_argument("--top", type=int, default=8, metavar="N",
                   help="blocks shown in the broker's top-value table "
                        "(with --broker)")

    p = sub.add_parser(
        "trace", help="run a canned workload under full tracing; export a "
                      "Perfetto trace + JSONL event log")
    p.add_argument("workload", nargs="?", choices=sorted(WORKLOADS),
                   default="smoke")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="Chrome/Perfetto trace output path "
                        "(default: trace.json)")
    p.add_argument("--events-out", default=None, metavar="FILE",
                   help="JSONL event log path "
                        "(default: <out stem>.events.jsonl)")

    p = sub.add_parser(
        "sql", help="run SQL over the canned columnar orders/lineitem "
                    "tables (DataFrame plans lowered onto the engine)")
    p.add_argument("--query", default=None, metavar="SQL",
                   help="one ad-hoc SELECT statement (default: run the "
                        "canned query set)")
    p.add_argument("--explain", action="store_true",
                   help="print logical + optimized plans and rewrite "
                        "stats per query")
    p.add_argument("--rows", type=int, default=10, metavar="N",
                   help="result rows shown per query")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--seed", type=int, default=17)

    p = sub.add_parser("events",
                       help="run a canned workload and print its event "
                            "stream")
    p.add_argument("workload", nargs="?", choices=sorted(WORKLOADS),
                   default="smoke")
    p.add_argument("--tail", type=int, default=40, metavar="N",
                   help="show only the last N events (0 = all)")

    p = sub.add_parser(
        "critical-path",
        help="run a canned workload and attribute each job's makespan to "
             "named wait categories along its critical path")
    p.add_argument("workload", nargs="?", choices=sorted(WORKLOADS),
                   default="smoke")
    p.add_argument("--job", type=int, default=None, metavar="ID",
                   help="only analyse this job id")
    p.add_argument("--top", type=int, default=3, metavar="N",
                   help="categories named in the per-job headline")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write a Perfetto trace with the critical path "
                        "annotated as its own driver track")

    p = sub.add_parser(
        "profile",
        help="run a canned workload with the SimKernel self-profiler "
             "attached; print throughput and dispatch hotspots")
    p.add_argument("workload", nargs="?", choices=sorted(WORKLOADS),
                   default="service")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="hotspot rows to show")
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "all":
        defaults = build_parser()
        status = 0
        for name in COMMANDS:
            print(f"\n### {name} ###")
            sub_args = defaults.parse_args([name])
            status = max(status, COMMANDS[name](sub_args) or 0)
        return status
    return COMMANDS[args.command](args) or 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_policy is not None:
        set_default_policy(args.cache_policy)
    if args.cache_admission_min_cost is not None:
        set_default_admission_min_cost(args.cache_admission_min_cost)
    if args.log_level is not None:
        obs_log.configure(args.log_level)
    if args.command in (None, "list"):
        print("available experiments:")
        for name in COMMANDS:
            print(f"  {name}")
        print("  all")
        return 0
    try:
        if args.trace_dir is not None:
            with obs.observe_to_dir(args.trace_dir) as out:
                status = _dispatch(args)
            print(f"\nobservability artifacts written to {out}/",
                  file=sys.stderr)
            return status
        return _dispatch(args)
    except ValueError as exc:
        # Bad knob combinations (e.g. --min-workers above --max-workers)
        # are user errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
