"""Command-line interface: regenerate any figure of the paper.

Usage::

    python -m repro list
    python -m repro fig11 --rdd-counts 1 2 3 4 5 6
    python -m repro fig19 --rates 2 5 10 20 40
    python -m repro all          # everything (several minutes)

Each command prints the paper-style rows the corresponding figure
reports; delays are simulated seconds (see README for calibration).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .bench import harness
from .bench.reporting import print_comparison, print_table
from .cache import (
    POLICY_NAMES,
    set_default_admission_min_cost,
    set_default_policy,
)


def _cmd_fig01(args: argparse.Namespace) -> None:
    result = harness.run_fig01(file_bytes=args.file_mb * 1e6)
    print_table(
        "Fig 1(b): data locality benefits (simulated s)",
        ["bar", "delay (s)"],
        [["C (first count)", result.c_count_delay],
         ["D (cached)", result.d_cached_delay],
         ["D- (no locality)", result.d_nolocality_delay]],
    )


def _cmd_fig07(args: argparse.Namespace) -> None:
    points = harness.run_fig07(partition_counts=tuple(args.partitions))
    print_table("Fig 7: delay vs number of partitions",
                ["partitions", "delay (s)"], points)


def _cmd_fig11(args: argparse.Namespace) -> None:
    results = harness.run_colocality(rdd_counts=tuple(args.rdd_counts))
    by: Dict[int, Dict[str, harness.CoLocalityResult]] = {}
    for r in results:
        by.setdefault(r.num_rdds, {})[r.config] = r
    rows = []
    for n in sorted(by):
        spark = by[n]["Spark-H"].job_delay
        stark = by[n]["Stark-H"].job_delay
        rows.append([n, spark, stark, spark / stark])
    print_table("Fig 11: co-locality job delay",
                ["rdds", "Spark-H (s)", "Stark-H (s)", "speedup"], rows)


def _cmd_fig12(args: argparse.Namespace) -> None:
    results = harness.run_colocality(rdd_counts=tuple(args.rdd_counts),
                                     queries_per_point=2)
    rows = []
    for r in results:
        total = sum(r.task_delays)
        gc = sum(r.task_gc)
        rows.append([r.config, r.num_rdds, max(r.task_delays),
                     gc / total if total else 0.0])
    print_table("Fig 12: task delay and GC fraction",
                ["config", "rdds", "max task (s)", "gc fraction"], rows)


def _cmd_skew(args: argparse.Namespace) -> None:
    results = harness.run_skew()
    rows13, rows14, rows15 = [], [], []
    for r in results:
        sizes = r.task_input_sizes
        mean = statistics.fmean(sizes) if sizes else 0.0
        cv = statistics.pstdev(sizes) / mean if mean else 0.0
        rows13.append([r.config, str(r.collection), len(sizes),
                       max(sizes) / 1e6 if sizes else 0.0, cv])
        rows14.append([r.config, str(r.collection),
                       r.first_job_delay, r.second_job_delay])
        delays = sorted(r.task_delays)
        rows15.append([r.config, str(r.collection), delays[0],
                       statistics.median(delays), delays[-1],
                       sum(r.task_shuffle_times)])
    print_table("Fig 13: task input sizes",
                ["config", "collection", "tasks", "max (MB)", "cv"], rows13)
    print_table("Fig 14: job delay (1st vs 2nd)",
                ["config", "collection", "1st (s)", "2nd (s)"], rows14)
    print_table("Fig 15: task delay min/mid/max + shuffle",
                ["config", "collection", "min", "mid", "max", "shuffle"],
                rows15)


def _cmd_fig17(args: argparse.Namespace) -> None:
    rows = harness.run_fig17(num_steps=args.steps)
    print_table(
        "Fig 17: cached vs checkpoint size (MB)",
        ["rdd", "cached", "checkpoint", "ratio"],
        [[name, c / 1e6, w / 1e6, c / w if w else float("nan")]
         for name, c, w in rows],
    )


def _cmd_fig18(args: argparse.Namespace) -> None:
    series = harness.run_fig18(num_steps=args.steps)
    by = {s.policy: s.cumulative_bytes for s in series}
    steps = range(1, args.steps + 1)
    print_table(
        "Fig 18: cumulative checkpointed data (MB)",
        ["step"] + list(by),
        [[s] + [by[p][s - 1] / 1e6 for p in by] for s in steps],
    )


def _cmd_fig19(args: argparse.Namespace) -> None:
    points, throughput = harness.run_fig19(rates=tuple(args.rates))
    print_table("Fig 19: mean delay (ms) vs rate (jobs/s)",
                ["config", "rate", "delay (ms)"],
                [[p.config, p.rate, p.mean_delay * 1000] for p in points])
    print_table("Fig 19: throughput at the 800 ms cap",
                ["config", "jobs/s"], sorted(throughput.items()))
    if throughput.get("Spark-H"):
        print_comparison("throughput gain", "Spark-H",
                         throughput["Spark-H"], "Stark-H",
                         throughput["Stark-H"], higher_is_better=True)


def _cmd_fig20(args: argparse.Namespace) -> None:
    from .ascii_charts import sparkline

    points = harness.run_fig20(hours=args.hours, steps_per_hour=1,
                               jobs_per_step=args.jobs_per_step)
    by: Dict[str, Dict[float, float]] = {}
    for p in points:
        by.setdefault(p.config, {})[p.hour] = p.mean_delay
    hours = sorted(next(iter(by.values())))
    print_table("Fig 20: mean delay (ms) over the day",
                ["hour"] + list(by),
                [[h] + [by[c][h] * 1000 for c in by] for h in hours])
    print()
    for config, per_hour in by.items():
        series = [per_hour[h] for h in hours]
        print(f"{config:>8s}  {sparkline(series)}  "
              f"(max {max(series) * 1000:.0f} ms)")


def _cmd_cache(args: argparse.Namespace) -> None:
    results = harness.run_cache_policies(
        policies=tuple(args.policies),
        iterations=args.iterations,
        admission_min_cost=args.admission_min_cost,
        auto_unpersist=args.auto_unpersist,
    )
    print_table(
        "Cache policies: iterative workload under memory pressure",
        ["policy", "mean job (s)", "hit rate", "evictions",
         "recomputed", "recompute (s)", "rejected"],
        [[r.policy, r.mean_makespan, f"{r.hit_rate:.2%}", r.evictions,
          r.recomputed_partitions, r.recompute_time, r.admission_rejected]
         for r in results],
        floatfmt="{:.4f}",
    )
    by = {r.policy: r for r in results}
    if "lru" in by:
        for name in ("lrc", "cost"):
            if name in by:
                print_comparison("mean job makespan", "lru",
                                 by["lru"].mean_makespan, name,
                                 by[name].mean_makespan)


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "fig01": _cmd_fig01,
    "fig07": _cmd_fig07,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "skew": _cmd_skew,       # Figs 13 + 14 + 15 share one run
    "fig17": _cmd_fig17,
    "fig18": _cmd_fig18,
    "fig19": _cmd_fig19,
    "fig20": _cmd_fig20,
    "cache": _cmd_cache,
}


def _nonnegative_seconds(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be non-negative seconds: {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Stark paper's evaluation figures.",
    )
    parser.add_argument(
        "--cache-policy", choices=POLICY_NAMES, default=None,
        help="block-store eviction policy every experiment runs under "
             "(default: lru)",
    )
    parser.add_argument(
        "--cache-admission-min-cost", type=_nonnegative_seconds,
        default=None, metavar="SECONDS",
        help="never cache blocks whose estimated recompute cost is below "
             "this many simulated seconds (default: 0, admit everything)",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("all", help="run every experiment (several minutes)")

    p = sub.add_parser("fig01", help="Fig 1(b): locality benefit")
    p.add_argument("--file-mb", type=float, default=700.0)

    p = sub.add_parser("fig07", help="Fig 7: partition count trade-off")
    p.add_argument("--partitions", type=int, nargs="+",
                   default=[1, 4, 16, 64, 256, 1024, 4096])

    for name, help_text in (("fig11", "Fig 11: co-locality job delay"),
                            ("fig12", "Fig 12: task delay + GC")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--rdd-counts", type=int, nargs="+",
                       default=[1, 2, 3, 4, 5, 6])

    sub.add_parser("skew", help="Figs 13/14/15: skewed distributions")

    p = sub.add_parser("fig17", help="Fig 17: checkpoint size estimation")
    p.add_argument("--steps", type=int, default=4)
    p = sub.add_parser("fig18", help="Fig 18: checkpoint totals per policy")
    p.add_argument("--steps", type=int, default=10)

    p = sub.add_parser("fig19", help="Fig 19: throughput and delay")
    p.add_argument("--rates", type=float, nargs="+",
                   default=[2, 5, 10, 20, 40, 80, 160, 240])

    p = sub.add_parser("fig20", help="Fig 20: delay over a replayed day")
    p.add_argument("--hours", type=int, default=24)
    p.add_argument("--jobs-per-step", type=int, default=5)

    p = sub.add_parser("cache", help="compare block-store eviction policies")
    p.add_argument("--policies", nargs="+", choices=POLICY_NAMES,
                   default=list(POLICY_NAMES))
    p.add_argument("--iterations", type=int, default=12)
    p.add_argument("--admission-min-cost", type=float, default=0.0)
    p.add_argument("--auto-unpersist", action="store_true",
                   help="drop cached RDDs whose declared uses drain to zero")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_policy is not None:
        set_default_policy(args.cache_policy)
    if args.cache_admission_min_cost is not None:
        set_default_admission_min_cost(args.cache_admission_min_cost)
    if args.command in (None, "list"):
        print("available experiments:")
        for name in COMMANDS:
            print(f"  {name}")
        print("  all")
        return 0
    if args.command == "all":
        defaults = build_parser()
        for name in COMMANDS:
            print(f"\n### {name} ###")
            sub_args = defaults.parse_args([name])
            COMMANDS[name](sub_args)
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
