"""DStreams: micro-batch streaming on top of the batch engine (§II-A).

Spark Streaming batches each timestep's incoming data into an RDD and
relies on the batch core for everything else; a DStream is just the
series of those RDDs plus operators that map over the series.  This
module reproduces that layering:

* :class:`StreamingContext` advances timesteps and asks a *receiver*
  (any ``step -> generator`` function, e.g. the workload traces) for the
  step's RDD;
* :class:`DStream` supports per-RDD transformations, ``slice``/``window``
  over past steps, and ``update_state_by_key`` — the runningReduce
  pattern whose ever-growing lineage motivates the CheckpointOptimizer;
* eviction: RDDs older than the retention window are unpersisted, which
  is precisely the "dynamically loaded and evicted datasets" setting of
  the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from ..engine.partitioner import Partitioner
from ..engine.rdd import RDD
from ..obs.events import BatchCompleted, BatchSubmitted

if TYPE_CHECKING:  # pragma: no cover
    from ..elastic.manager import ResourceManager
    from ..engine.context import StarkContext

ReceiverFn = Callable[[int, int], Callable[[int], list]]


class DStream:
    """A discretized stream: one RDD per completed timestep."""

    def __init__(self, ssc: "StreamingContext", name: str = "dstream") -> None:
        self.ssc = ssc
        self.name = name
        #: step index -> RDD of that step (only retained steps present).
        self.rdds: Dict[int, RDD] = {}

    # ---- series access ---------------------------------------------------------

    def rdd_of_step(self, step: int) -> RDD:
        try:
            return self.rdds[step]
        except KeyError:
            raise KeyError(
                f"step {step} not available in {self.name!r} "
                f"(retained: {sorted(self.rdds)})"
            ) from None

    def slice(self, from_step: int, to_step: int) -> List[RDD]:
        """RDDs of steps in ``[from_step, to_step]`` that are retained —
        Spark Streaming's ``slice`` used for multi-timestep jobs."""
        return [self.rdds[s] for s in sorted(self.rdds)
                if from_step <= s <= to_step]

    def window(self, window_steps: int) -> List[RDD]:
        """RDDs of the last ``window_steps`` completed steps."""
        if window_steps <= 0:
            raise ValueError(f"window must be positive: {window_steps}")
        current = self.ssc.current_step
        return self.slice(current - window_steps, current - 1)

    def latest(self) -> Optional[RDD]:
        if not self.rdds:
            return None
        return self.rdds[max(self.rdds)]

    # ---- windowed operations (the paper's multi-timestep jobs) ---------------

    def window_cogroup(self, window_steps: int) -> Optional[RDD]:
        """Cogroup the last ``window_steps`` steps into one RDD of
        ``(key, (values_step_a, values_step_b, …))`` — narrow (and fully
        local under Stark) when the steps share a partitioner."""
        rdds = self.window(window_steps)
        if not rdds:
            return None
        if len(rdds) == 1:
            return rdds[0].map_values(lambda v: (v,),
                                      name=f"{self.name}.window1")
        return rdds[0].cogroup(*rdds[1:], name=f"{self.name}.window")

    def window_reduce_by_key(
        self, fn: Callable[[Any, Any], Any], window_steps: int
    ) -> Optional[RDD]:
        """Reduce values per key across the last ``window_steps`` steps
        (Spark Streaming's ``reduceByKeyAndWindow`` over cached steps)."""
        grouped = self.window_cogroup(window_steps)
        if grouped is None:
            return None

        def fold(kv):
            key, groups = kv
            acc = None
            for values in groups:
                for value in values:
                    acc = value if acc is None else fn(acc, value)
            return (key, acc)

        return grouped.map(fold, name=f"{self.name}.window_reduce",
                           preserves_partitioning=True)

    def window_count(self, window_steps: int) -> int:
        """Total records over the last ``window_steps`` steps."""
        rdds = self.window(window_steps)
        return sum(rdd.count() for rdd in rdds)

    # ---- per-step hooks --------------------------------------------------------------

    def _record(self, step: int, rdd: RDD) -> None:
        self.rdds[step] = rdd

    def _evict_older_than(self, min_step: int) -> List[RDD]:
        """Unpersist and forget steps below ``min_step``."""
        evicted = []
        for step in sorted(self.rdds):
            if step < min_step:
                rdd = self.rdds.pop(step)
                rdd.unpersist()
                evicted.append(rdd)
        return evicted


class StreamingContext:
    """Drives timesteps: receive, transform, run registered jobs."""

    def __init__(
        self,
        context: "StarkContext",
        batch_seconds: float = 300.0,
        retention_steps: int = 36,
        resource_manager: Optional["ResourceManager"] = None,
    ) -> None:
        if batch_seconds <= 0:
            raise ValueError(f"batch interval must be positive: {batch_seconds}")
        if retention_steps <= 0:
            raise ValueError(f"retention must be positive: {retention_steps}")
        self.context = context
        self.batch_seconds = batch_seconds
        self.retention_steps = retention_steps
        self.current_step = 0
        self._streams: List[DStream] = []
        self._receivers: List[tuple] = []  # (dstream, receiver, partitions, partitioner, namespace, cache)
        #: Optional elastic hook: each completed batch feeds its
        #: processing delay to the manager (the latency-SLO signal);
        #: scaling itself runs on the manager's periodic kernel timer.
        self.resource_manager = resource_manager
        #: Per-step batch processing delays (simulated seconds).
        self.batch_delays: List[float] = []

    # ---- building the pipeline -----------------------------------------------------

    def receiver_stream(
        self,
        receiver: ReceiverFn,
        num_partitions: int,
        partitioner: Optional[Partitioner] = None,
        namespace: Optional[str] = None,
        cache: bool = True,
        name: str = "input",
    ) -> DStream:
        """Create an input DStream.

        ``receiver(step, num_partitions)`` must return a deterministic
        partition generator for the step.  With a ``namespace`` (Stark
        mode), each step's RDD is registered for co-locality via
        ``locality_partition_by``; otherwise it is plain-partitioned when
        a partitioner is given (Spark mode), or left as received.
        """
        stream = DStream(self, name=name)
        self._streams.append(stream)
        self._receivers.append(
            (stream, receiver, num_partitions, partitioner, namespace, cache)
        )
        return stream

    # ---- advancing time ----------------------------------------------------------------

    def advance(self, steps: int = 1) -> None:
        """Complete ``steps`` timesteps back-to-back at the frontier.

        Each step is posted as a batch-tick event on the kernel and the
        loop pumped, so armed failures and policy timers interleave with
        the batches at true sim time.  Use :meth:`run` for ticks on
        nominal batch boundaries.
        """
        kernel = self.context.cluster.kernel
        for _ in range(steps):
            t = kernel.now
            kernel.schedule(t, lambda t=t: self._tick(t))
            kernel.run_until(t)

    def run(self, steps: int) -> None:
        """Drive ``steps`` batch ticks at nominal ``batch_seconds``
        boundaries through the kernel's event loop.

        A batch whose predecessor overran its interval fires late (the
        frontier has passed its boundary) but keeps its nominal submit
        time, so ``batch_delays`` then includes the scheduling backlog —
        the signal a latency-SLO autoscaler reacts to.
        """
        kernel = self.context.cluster.kernel
        base = kernel.now
        for i in range(steps):
            t = base + i * self.batch_seconds
            kernel.schedule(max(t, kernel.now), lambda t=t: self._tick(t))
        kernel.run_until(max(base + steps * self.batch_seconds, kernel.now))

    def _tick(self, submitted: float) -> None:
        """One batch: ingest data, cache, evict old; nominal time
        ``submitted`` (the frontier may already sit further)."""
        bus = self.context.event_bus
        clock = self.context.cluster.clock
        step = self.current_step
        if bus.active:
            bus.post(BatchSubmitted(time=clock.now, step=step))
        for (stream, receiver, parts, partitioner, namespace, cache) \
                in self._receivers:
            rdd = self._ingest(step, receiver, parts, partitioner,
                               namespace, cache, stream.name)
            stream._record(step, rdd)
        self.current_step += 1
        min_step = self.current_step - self.retention_steps
        evicted_rdds = 0
        for stream in self._streams:
            evicted_rdds += len(stream._evict_older_than(min_step))
        if bus.active:
            bus.post(BatchCompleted(time=clock.now, step=step,
                                    num_streams=len(self._streams),
                                    evicted_rdds=evicted_rdds))
        delay = clock.now - submitted
        self.batch_delays.append(delay)
        if self.resource_manager is not None:
            self.resource_manager.note_delay(delay)

    def _ingest(
        self,
        step: int,
        receiver: ReceiverFn,
        num_partitions: int,
        partitioner: Optional[Partitioner],
        namespace: Optional[str],
        cache: bool,
        name: str,
    ) -> RDD:
        generator = receiver(step, num_partitions)
        if namespace is not None and partitioner is not None:
            # Stark path: the receiver writes blocks straight into the
            # partitioner's layout; register co-locality.
            rdd = self.context.generated(
                generator, partitioner.num_partitions, partitioner=partitioner,
                read_cost="network", name=f"{name}[{step}]",
            ).locality_partition_by(partitioner, namespace)
        elif partitioner is not None:
            # Spark Streaming path: a single node batches the data, then
            # repartitions it across the cluster (§IV-E).
            rdd = self.context.generated(
                generator, num_partitions, read_cost="network",
                name=f"{name}[{step}]",
            ).partition_by(partitioner)
        else:
            rdd = self.context.generated(
                generator, num_partitions, read_cost="network",
                name=f"{name}[{step}]",
            )
        if cache:
            rdd.cache()
            if namespace is not None:
                # Materialize eagerly so co-located caches exist before
                # queries arrive, and let the GroupManager account sizes.
                rdd.count()
                self.context.group_manager.report_rdd(rdd)
            else:
                rdd.count()
        return rdd

    # ---- stateful processing -----------------------------------------------------------------

    def update_state_by_key(
        self,
        stream: DStream,
        update: Callable[[List[Any], Any], Any],
        partitioner: Partitioner,
        state_name: str = "state",
    ) -> "StatefulStream":
        return StatefulStream(self, stream, update, partitioner, state_name)


class StatefulStream:
    """runningReduce (``updateStateByKey``): state RDD chained per step.

    Each step cogroups the new batch with the previous state RDD and
    applies ``update(new_values, old_state)`` per key.  The state lineage
    grows without bound — exactly the structure (Fig 16) that forces
    proactive checkpointing.
    """

    def __init__(
        self,
        ssc: StreamingContext,
        source: DStream,
        update: Callable[[List[Any], Any], Any],
        partitioner: Partitioner,
        name: str,
    ) -> None:
        self.ssc = ssc
        self.source = source
        self.update = update
        self.partitioner = partitioner
        self.name = name
        self.state_rdd: Optional[RDD] = None
        self.state_history: List[RDD] = []

    def step(self, step_index: Optional[int] = None) -> RDD:
        """Fold the given (default: latest) step's batch into the state."""
        batch = (
            self.source.rdd_of_step(step_index)
            if step_index is not None else self.source.latest()
        )
        if batch is None:
            raise RuntimeError("no batch available; advance the stream first")
        update = self.update
        if self.state_rdd is None:
            new_state = batch.group_by_key(self.partitioner).map_values(
                lambda values: update(list(values), None),
                name=f"{self.name}.init",
            )
        else:
            def apply_update(kv):
                key, (new_values, old_states) = kv
                old = old_states[0] if old_states else None
                return (key, update(list(new_values), old))

            new_state = batch.cogroup(
                self.state_rdd, partitioner=self.partitioner
            ).map(apply_update, name=f"{self.name}.update",
                  preserves_partitioning=True)
        new_state.cache()
        new_state.count()
        self.state_rdd = new_state
        self.state_history.append(new_state)
        return new_state
