"""Micro-batch streaming on top of the batch engine."""

from .dstream import DStream, StatefulStream, StreamingContext

__all__ = ["DStream", "StatefulStream", "StreamingContext"]
