"""repro — reproduction of Stark (ICDCS 2017).

Stark optimizes in-memory computing for *dynamic dataset collections*:
applications that continuously load and evict related datasets and run
transformations (cogroup/join) spanning many of them.  This package
rebuilds both the Spark-like substrate (as a discrete-event simulated
engine executing real data) and Stark's three contributions:

* **co-locality** — ``RDD.locality_partition_by`` + ``LocalityManager``
  pin collection partitions to stable executor sets (§III-B);
* **elasticity** — ``ExtendablePartitioner`` + ``GroupManager`` split and
  merge partition groups without re-partitioning (§III-C);
* **bounded recovery** — ``CheckpointOptimizer`` picks the minimum-cost
  checkpoint set via min-cut (§III-D).

Quickstart::

    from repro import StarkContext, StarkConfig, HashPartitioner

    sc = StarkContext(num_workers=8)
    part = HashPartitioner(8)
    hours = [
        sc.parallelize([(k, 1) for k in range(1000)], 8)
          .locality_partition_by(part, namespace="logs")
          .cache()
        for _ in range(3)
    ]
    for rdd in hours:
        rdd.count()                       # materialize + cache co-located
    merged = hours[0].cogroup(*hours[1:]) # narrow, fully local
    print(merged.count())
"""

from .cache import (
    AdmissionController,
    CacheManager,
    CachePolicy,
    CostAwarePolicy,
    FIFOPolicy,
    LRCPolicy,
    LRUPolicy,
    POLICY_NAMES,
    ReferenceTracker,
    make_policy,
)
from .cluster import (
    Cluster,
    CostModel,
    EventQueue,
    RecordSizer,
    SimClock,
    SimKernel,
    TIME_EPS,
    Worker,
)
from .core import (
    CheckpointOptimizer,
    EdgeCheckpointer,
    ExtendablePartitioner,
    FlowNetwork,
    GroupManager,
    GroupTree,
    LocalityManager,
    MinimumContentionFirstPolicy,
    ReplicationManager,
)
from .engine import (
    FailureInjector,
    HashPartitioner,
    RDD,
    RangePartitioner,
    StarkConfig,
    StarkContext,
    StaticRangePartitioner,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "CacheManager",
    "CachePolicy",
    "CheckpointOptimizer",
    "Cluster",
    "CostAwarePolicy",
    "CostModel",
    "EdgeCheckpointer",
    "EventQueue",
    "ExtendablePartitioner",
    "FIFOPolicy",
    "FailureInjector",
    "FlowNetwork",
    "GroupManager",
    "GroupTree",
    "HashPartitioner",
    "LRCPolicy",
    "LRUPolicy",
    "LocalityManager",
    "MinimumContentionFirstPolicy",
    "POLICY_NAMES",
    "RDD",
    "RangePartitioner",
    "RecordSizer",
    "ReferenceTracker",
    "ReplicationManager",
    "SimClock",
    "SimKernel",
    "TIME_EPS",
    "make_policy",
    "StarkConfig",
    "StarkContext",
    "StaticRangePartitioner",
    "Worker",
    "__version__",
]
