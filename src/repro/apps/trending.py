"""The Fig 16 application: tracking popular keys and contents over steps.

The paper evaluates checkpointing with an application that "tracks
popular keys and corresponding contents in a similar way as Twitter
trends".  Each step receives a raw key-value RDD and builds this exact
lineage (names follow the figure):

* ``kv``   = raw.partitionBy
* ``cnt``  = kv.reduceByKey(count)         ``ctt`` = kv.reduceByKey(content)
* ``ccnt`` = cnt cogroup dec(ayed count of last step), summed by key
* ``acnt`` = ccnt.filter(popular keys only)
* ``cctt`` = ctt cogroup res(ult of last step)
* ``jall`` = cctt join acnt
* ``res``  = jall.map(clean)              ``dec`` = ccnt.map(decay)

``dec`` and ``res`` feed the next step, chaining steps into an
ever-growing lineage — the structure that makes proactive, cost-aware
checkpointing matter (§IV-D, Figs 17/18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..engine.partitioner import HashPartitioner, Partitioner
from ..engine.rdd import RDD

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext


@dataclass
class TrendingStepRDDs:
    """All named RDDs produced by one step (Fig 16's node names)."""

    kv: RDD
    cnt: RDD
    ctt: RDD
    ccnt: RDD
    acnt: RDD
    cctt: RDD
    jall: RDD
    res: RDD
    dec: RDD

    def named(self) -> Dict[str, RDD]:
        return {
            "kv": self.kv, "cnt": self.cnt, "ctt": self.ctt,
            "ccnt": self.ccnt, "acnt": self.acnt, "cctt": self.cctt,
            "jall": self.jall, "res": self.res, "dec": self.dec,
        }


class TrendingApp:
    """Runs the Fig 16 pipeline step by step.

    ``raw_for_step(step, num_partitions)`` must return a partition
    generator of ``(key, content)`` pairs (the Wikipedia trace's keyed
    generator fits directly).
    """

    def __init__(
        self,
        context: "StarkContext",
        raw_for_step: Callable[[int, int], Callable[[int], list]],
        num_partitions: int = 8,
        partitioner: Optional[Partitioner] = None,
        popular_threshold: int = 3,
        decay: float = 0.5,
    ) -> None:
        self.context = context
        self.raw_for_step = raw_for_step
        self.num_partitions = num_partitions
        self.partitioner = partitioner or HashPartitioner(num_partitions)
        self.popular_threshold = popular_threshold
        self.decay = decay
        self.steps: List[TrendingStepRDDs] = []
        self._prev_dec: Optional[RDD] = None
        self._prev_res: Optional[RDD] = None

    # ---- one step of Fig 16 ------------------------------------------------------

    def run_step(self, step: int) -> TrendingStepRDDs:
        sc = self.context
        part = self.partitioner
        raw = sc.generated(
            self.raw_for_step(step, self.num_partitions),
            self.num_partitions, read_cost="network", name=f"raw[{step}]",
        )
        kv = raw.partition_by(part, name=f"kv[{step}]").cache()
        cnt = kv.map_values(lambda _content: 1).reduce_by_key(
            lambda a, b: a + b, part, name=f"cnt[{step}]"
        ).cache()
        ctt = kv.reduce_by_key(
            lambda a, b: a if len(str(a)) >= len(str(b)) else b, part,
            name=f"ctt[{step}]",
        ).cache()

        if self._prev_dec is None:
            ccnt = cnt.map_values(float, name=f"ccnt[{step}]").cache()
        else:
            def sum_cogroup(kv_pair):
                key, (new_counts, decayed) = kv_pair
                return (key, sum(new_counts) + sum(decayed))

            ccnt = cnt.cogroup(self._prev_dec, partitioner=part).map(
                sum_cogroup, name=f"ccnt[{step}]",
                preserves_partitioning=True,
            ).cache()

        threshold = self.popular_threshold
        acnt = ccnt.filter(
            lambda kv_pair: kv_pair[1] >= threshold, name=f"acnt[{step}]"
        ).cache()

        if self._prev_res is None:
            cctt = ctt.map_values(
                lambda content: (content,), name=f"cctt[{step}]"
            ).cache()
        else:
            def merge_content(kv_pair):
                key, (new_content, old_results) = kv_pair
                merged = tuple(new_content) + tuple(
                    c for result in old_results for c in result
                )
                return (key, merged[:4])

            cctt = ctt.cogroup(self._prev_res, partitioner=part).map(
                merge_content, name=f"cctt[{step}]",
                preserves_partitioning=True,
            ).cache()

        jall = cctt.join(acnt, partitioner=part, name=f"jall[{step}]").cache()
        res = jall.map(
            lambda kv_pair: (kv_pair[0], kv_pair[1][0]), name=f"res[{step}]",
            preserves_partitioning=True,
        ).cache()
        decay = self.decay
        dec = ccnt.map_values(
            lambda count: count * decay, name=f"dec[{step}]"
        ).cache()

        # Materialize the step's results (the per-step action).
        res.count()
        dec.count()

        rdds = TrendingStepRDDs(kv, cnt, ctt, ccnt, acnt, cctt, jall, res, dec)
        self.steps.append(rdds)
        self._prev_dec = dec
        self._prev_res = res
        return rdds

    def run(self, num_steps: int, on_step=None) -> List[TrendingStepRDDs]:
        """Run ``num_steps`` steps; ``on_step(step, rdds)`` fires after
        each (checkpoint policies hook in here)."""
        for step in range(num_steps):
            rdds = self.run_step(step)
            if on_step is not None:
                on_step(step, rdds)
        return self.steps

    # ---- results -----------------------------------------------------------------------

    def trending(self) -> List[Tuple[str, float]]:
        """Current popular keys with scores, most popular first."""
        if not self.steps:
            return []
        acnt = self.steps[-1].acnt
        return sorted(acnt.collect(), key=lambda kv: kv[1], reverse=True)

    def frontier_rdds(self) -> List[RDD]:
        """The RDDs whose lineage recovery matters next step (res, dec)."""
        if not self.steps:
            return []
        last = self.steps[-1]
        return [last.res, last.dec]
