"""Taxi advertising pipeline (the motivating application of §III-C).

An advertising optimizer creates a dataset of taxi events every few
minutes and uses the collection of the past hour to: (1) filter
trajectories intersecting each campaign's target region, and (2) match
campaign messages to taxi monitors by demand.  Campaign intensity is
itself spatially skewed and time-varying (the Times-Square-on-weekend-
evening effect), which drives both partition-size skew (extendable
groups) and compute-demand skew (contention-aware replication).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..engine.partitioner import Partitioner
from ..engine.rdd import RDD
from ..workloads.taxi import TaxiTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext


@dataclass(frozen=True)
class Campaign:
    """An advertising campaign targeting a Z-key interval."""

    campaign_id: int
    zkey_lo: int
    zkey_hi: int
    message: str

    def covers(self, zkey: int) -> bool:
        return self.zkey_lo <= zkey <= self.zkey_hi


@dataclass
class AdQueryResult:
    """Outcome of one campaign-matching query."""

    campaign: Campaign
    steps: List[int]
    matched_events: int
    delay: float


class TaxiAdsApp:
    """Maintains a sliding collection of taxi timesteps and matches ads."""

    def __init__(
        self,
        context: "StarkContext",
        partitioner: Partitioner,
        trace: Optional[TaxiTrace] = None,
        namespace: Optional[str] = "taxi",
        window_steps: int = 12,
    ) -> None:
        self.context = context
        self.partitioner = partitioner
        self.trace = trace or TaxiTrace()
        self.namespace = namespace
        self.window_steps = window_steps
        self.steps: Dict[int, RDD] = {}

    # ---- data lifecycle -----------------------------------------------------------

    def ingest_step(self, step: int) -> RDD:
        """Load one timestep of events under the shared partitioner and
        slide the window (evicting the oldest step)."""
        sc = self.context
        generator = self.trace.step_generator(
            step, self.partitioner.num_partitions, self.partitioner
        )
        base = sc.generated(
            generator, self.partitioner.num_partitions,
            partitioner=self.partitioner, read_cost="network",
            name=f"taxi[{step}]",
        )
        if self.namespace is not None:
            rdd = base.locality_partition_by(self.partitioner, self.namespace)
        else:
            rdd = base
        rdd = rdd.cache()
        rdd.count()
        if self.namespace is not None:
            sc.group_manager.report_rdd(rdd)
        self.steps[step] = rdd
        for old in [s for s in self.steps if s <= step - self.window_steps]:
            self.steps.pop(old).unpersist()
        return rdd

    # ---- queries ----------------------------------------------------------------------

    def match_campaign(self, campaign: Campaign,
                       steps: Optional[Sequence[int]] = None) -> AdQueryResult:
        """Count events inside the campaign's region across the window.

        Cogroups the window's timesteps (narrow under co-partitioning)
        and filters by Z-key interval — the "filter qualified trajectories
        using location information" stage of §III-C3.
        """
        chosen = sorted(steps) if steps is not None else sorted(self.steps)
        if not chosen:
            raise RuntimeError("no steps ingested")
        rdds = [self.steps[s] for s in chosen]
        lo, hi = campaign.zkey_lo, campaign.zkey_hi
        if len(rdds) == 1:
            region = rdds[0].filter(lambda kv: lo <= kv[0] <= hi, name="region")
            matched = region.count()
        else:
            grouped = rdds[0].cogroup(*rdds[1:], name="window-cogroup")
            region = grouped.filter(lambda kv: lo <= kv[0] <= hi, name="region")
            matched = sum(
                region.map(
                    lambda kv: sum(len(events) for events in kv[1]),
                    name="count-events",
                ).collect()
            )
        delay = self.context.metrics.last_job().makespan
        return AdQueryResult(campaign, chosen, matched, delay)

    def random_campaign(self, rng: random.Random,
                        hotspot_biased: bool = True) -> Campaign:
        """Generate a campaign; with ``hotspot_biased`` the region centers
        on a current hotspot (weekend-evening Times Square demand)."""
        if hotspot_biased and self.steps:
            regime = self.trace.regime_for_step(max(self.steps))
            hotspot = rng.choice(list(regime))
            side = self.trace.encoder.cells_per_side
            cx = min(side - 1, max(0, int(hotspot.x * side)))
            cy = min(side - 1, max(0, int(hotspot.y * side)))
            span = max(2, int(hotspot.sigma * side))
            x0, y0 = max(0, cx - span), max(0, cy - span)
            x1 = min(side - 1, cx + span)
            y1 = min(side - 1, cy + span)
            lo, hi = self.trace.encoder.region_key_range(x0, y0, x1, y1)
        else:
            lo, hi = self.trace.random_region_query(rng)
        return Campaign(
            campaign_id=rng.randint(0, 10_000),
            zkey_lo=lo,
            zkey_hi=hi,
            message=f"ad-{rng.randint(0, 999):03d}",
        )
