"""Log mining over dataset collections (§IV-B's workload).

Typical IT-diagnosis jobs on a collection of hourly log files: load each
hour as an RDD under a shared partitioner, cache it, and run interactive
queries that cogroup a range of hours and count the lines matching a
keyword.  This is the workload of Figs 11/12 and (under skew) 13-15.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..engine.partitioner import HashPartitioner, Partitioner
from ..engine.rdd import RDD
from ..workloads.wikipedia import WikipediaTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext


@dataclass
class LogMiningResult:
    """Outcome of one keyword query."""

    keyword: str
    hours: List[int]
    matches: int
    delay: float


class LogMiningApp:
    """Loads hourly logs and answers keyword queries across hours.

    ``mode`` selects the paper's configurations:

    * ``"spark-r"`` — fresh RangePartitioner per RDD (always shuffles);
    * ``"spark-h"`` — shared HashPartitioner, no co-locality management;
    * ``"stark"``  — shared partitioner registered under a namespace
      (co-locality; pass an ExtendablePartitioner for Stark-E).
    """

    def __init__(
        self,
        context: "StarkContext",
        trace: Optional[WikipediaTrace] = None,
        num_partitions: int = 8,
        mode: str = "stark",
        partitioner: Optional[Partitioner] = None,
        namespace: str = "wiki-logs",
    ) -> None:
        if mode not in ("spark-r", "spark-h", "stark"):
            raise ValueError(f"unknown mode {mode!r}")
        self.context = context
        self.trace = trace or WikipediaTrace()
        self.num_partitions = num_partitions
        self.mode = mode
        self.namespace = namespace
        self.partitioner = partitioner or HashPartitioner(num_partitions)
        self.hours: Dict[int, RDD] = {}

    # ---- loading / evicting hours ---------------------------------------------------

    def load_hour(self, hour: int) -> RDD:
        """Load one hour-file: text -> (url, line) pairs -> partitioned,
        cached, materialized."""
        sc = self.context
        lines = sc.text_file(
            self.trace.hour_generator(hour, self.num_partitions),
            self.num_partitions,
            name=f"wiki-hour-{hour}",
        )
        pairs = lines.map(_line_to_pair, name=f"kv-hour-{hour}")
        if self.mode == "spark-r":
            from ..engine.partitioner import RangePartitioner

            sample = [
                url for url, _ in _sample_pairs(self.trace, hour,
                                                self.num_partitions)
            ]
            partitioner: Partitioner = RangePartitioner(
                self.num_partitions, sample
            )
            routed = pairs.partition_by(partitioner)
        elif self.mode == "spark-h":
            routed = pairs.partition_by(self.partitioner)
        else:
            routed = pairs.locality_partition_by(self.partitioner, self.namespace)
        routed = routed.cache().set_name(f"hour-{hour}")
        routed.count()
        if self.mode == "stark":
            self.context.group_manager.report_rdd(routed)
        self.hours[hour] = routed
        return routed

    def load_hours(self, hours: Sequence[int]) -> List[RDD]:
        return [self.load_hour(h) for h in hours]

    def evict_hour(self, hour: int) -> None:
        rdd = self.hours.pop(hour, None)
        if rdd is not None:
            rdd.unpersist()

    # ---- queries ----------------------------------------------------------------------

    def query(self, keyword: str, hours: Sequence[int]) -> LogMiningResult:
        """Cogroup the given hours and count lines containing ``keyword``."""
        hours = list(hours)
        missing = [h for h in hours if h not in self.hours]
        if missing:
            raise KeyError(f"hours not loaded: {missing}")
        rdds = [self.hours[h] for h in hours]
        if len(rdds) == 1:
            target = rdds[0].filter(
                lambda kv: keyword in kv[1], name="grep"
            )
            matches = target.count()
        else:
            grouped = rdds[0].cogroup(*rdds[1:], name=f"cogroup-{len(rdds)}")
            matches_per_key = grouped.map(
                lambda kv: sum(
                    1 for lines in kv[1] for line in lines if keyword in line
                ),
                name="grep",
            )
            matches = sum(matches_per_key.collect())
        delay = self.context.metrics.last_job().makespan
        return LogMiningResult(keyword, hours, matches, delay)

    def random_query(self, rng: random.Random, window: int = 3) -> LogMiningResult:
        loaded = sorted(self.hours)
        if not loaded:
            raise RuntimeError("no hours loaded")
        span = min(window, len(loaded))
        start = rng.randint(0, len(loaded) - span)
        keyword = f"Article_{rng.randint(0, 200):05d}"
        return self.query(keyword, loaded[start:start + span])


def _line_to_pair(line: str) -> tuple:
    """``<ts> <url> <status>`` -> (url, line)."""
    parts = line.split(" ", 2)
    return (parts[1], line)


def _sample_pairs(trace: WikipediaTrace, hour: int, num_partitions: int,
                  limit: int = 500) -> List[tuple]:
    lines = trace.lines_for_hour_partition(hour, 0, num_partitions)[:limit]
    return [_line_to_pair(line) for line in lines]
