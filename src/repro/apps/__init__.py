"""Example applications built on the public API (the paper's workloads)."""

from .log_mining import LogMiningApp, LogMiningResult
from .taxi_ads import AdQueryResult, Campaign, TaxiAdsApp
from .trending import TrendingApp, TrendingStepRDDs

__all__ = [
    "AdQueryResult",
    "Campaign",
    "LogMiningApp",
    "LogMiningResult",
    "TaxiAdsApp",
    "TrendingApp",
    "TrendingStepRDDs",
]
