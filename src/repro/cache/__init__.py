"""Pluggable, lineage-aware cache management.

This package owns every caching policy decision the engine makes:

* :mod:`~repro.cache.policy` — the :class:`CachePolicy` eviction
  interface and its four implementations (LRU, FIFO, LRC, cost-aware);
* :mod:`~repro.cache.reference_tracker` — driver-side reference counts
  over the lineage DAG, fed by DAGScheduler stage-completion hooks;
* :mod:`~repro.cache.admission` — refuses blocks cheaper to recompute
  than a configurable threshold;
* :mod:`~repro.cache.manager` — the per-context coordinator wiring the
  above into the block manager and the schedulers;
* :mod:`~repro.cache.broker` — the cluster-wide cache broker
  (``StarkConfig.cache_broker``): global value-ranked eviction with
  migration, cross-job lineage-prefix sharing, and the memory-market
  scoring elastic scale-in consults.

Select a policy via ``StarkConfig(cache_policy="lrc")``, the benchmark
configs (``make_setup(..., cache_policy="cost")``), or globally via the
CLI (``python -m repro --cache-policy lrc <figure>``).  See
``docs/CACHING.md``.
"""

from .admission import AdmissionController
from .broker import BrokerPolicy, CacheBroker
from .manager import CacheManager
from .policy import (
    DEFAULTS,
    POLICY_NAMES,
    CacheDefaults,
    CachePolicy,
    CostAwarePolicy,
    FIFOPolicy,
    LRCPolicy,
    LRUPolicy,
    make_policy,
    set_default_admission_min_cost,
    set_default_policy,
    value_score,
)
from .reference_tracker import ReferenceTracker

__all__ = [
    "AdmissionController",
    "BrokerPolicy",
    "CacheBroker",
    "CacheDefaults",
    "CacheManager",
    "CachePolicy",
    "CostAwarePolicy",
    "DEFAULTS",
    "FIFOPolicy",
    "LRCPolicy",
    "LRUPolicy",
    "POLICY_NAMES",
    "ReferenceTracker",
    "make_policy",
    "set_default_admission_min_cost",
    "set_default_policy",
    "value_score",
]
