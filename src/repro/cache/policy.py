"""Pluggable eviction policies for the per-executor block stores.

Each :class:`~repro.engine.block_manager.BlockStore` owns one policy
instance.  The store keeps the authoritative block map and byte
accounting; the policy only mirrors membership (via ``on_insert`` /
``on_access`` / ``on_remove``) and answers one question: *which resident
block should go next* (``choose_victim``).

Four policies are provided:

* :class:`LRUPolicy` — Spark's default, and this engine's historical
  behaviour: evict the least-recently-used block.
* :class:`FIFOPolicy` — evict in insertion order, ignoring accesses.
* :class:`LRCPolicy` — least-reference-count (after *Intermediate Data
  Caching Optimization for Multi-Stage and Parallel Big Data
  Frameworks*): evict the block whose RDD has the fewest remaining
  downstream references, as tracked by the driver-side
  :class:`~repro.cache.reference_tracker.ReferenceTracker`.  Dead data
  (zero remaining references) goes first regardless of recency.
* :class:`CostAwarePolicy` — weight each block by
  ``recompute_cost * (1 + remaining_references) / size`` and evict the
  lightest.  Under Spark-1.3 semantics a cache miss re-executes the
  whole narrow chain, so keeping expensive-to-rebuild, still-referenced
  blocks minimizes expected recovery work per byte of RAM.  (The ``1 +``
  smoothing keeps recompute cost relevant when no references are
  declared.)

All policies are deterministic: given identical insert/access/remove
traces (and, for the scored policies, identical reference/cost
functions) they evict identical sequences.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

BlockId = Tuple[int, int]  # (rdd_id, partition_index)

#: Remaining-reference oracle: block id -> pending + declared references.
RefCountFn = Callable[[BlockId], int]
#: Recompute-cost oracle: rdd_id -> estimated seconds to rebuild one
#: partition from the nearest barrier (shuffle/checkpoint/source).
CostFn = Callable[[int], float]


class CachePolicy:
    """Eviction-order strategy of one :class:`BlockStore`.

    Subclasses must keep their internal membership mirror in sync purely
    from the ``on_*`` notifications — the store never hands them the
    block map.
    """

    name: str = "base"

    def on_insert(self, block_id: BlockId, size_bytes: float) -> None:
        raise NotImplementedError

    def on_access(self, block_id: BlockId) -> None:
        raise NotImplementedError

    def on_remove(self, block_id: BlockId) -> None:
        raise NotImplementedError

    def choose_victim(self) -> BlockId:
        """Return the resident block to evict next.

        Only called when at least one block is resident.
        """
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUPolicy(CachePolicy):
    """Evict the least-recently-used block (inserts count as uses)."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[BlockId, None]" = OrderedDict()

    def on_insert(self, block_id: BlockId, size_bytes: float) -> None:
        self._order[block_id] = None
        self._order.move_to_end(block_id)

    def on_access(self, block_id: BlockId) -> None:
        if block_id in self._order:
            self._order.move_to_end(block_id)

    def on_remove(self, block_id: BlockId) -> None:
        self._order.pop(block_id, None)

    def choose_victim(self) -> BlockId:
        return next(iter(self._order))

    def clear(self) -> None:
        self._order.clear()

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy(LRUPolicy):
    """Evict in insertion order; accesses never refresh a block."""

    name = "fifo"

    def on_access(self, block_id: BlockId) -> None:
        pass


@dataclass
class _ScoredEntry:
    """Bookkeeping for one resident block under a scored policy."""

    seq: int           # insertion sequence number (FIFO tie-break)
    size_bytes: float
    last_access: int   # recency sequence number (LRU tie-break)


class _ScoredPolicy(CachePolicy):
    """Base for policies that evict the minimum of a score function.

    Victims are ``min`` by ``(score, last_access, seq)`` so identical
    traces always evict identically; the recency tie-break makes the
    scored policies degrade to LRU when their oracles are uninformative
    (all scores equal).
    """

    def __init__(self) -> None:
        self._entries: Dict[BlockId, _ScoredEntry] = {}
        self._seq = itertools.count()

    def score(self, block_id: BlockId, entry: _ScoredEntry) -> float:
        raise NotImplementedError

    def on_insert(self, block_id: BlockId, size_bytes: float) -> None:
        seq = next(self._seq)
        self._entries[block_id] = _ScoredEntry(seq, size_bytes, seq)

    def on_access(self, block_id: BlockId) -> None:
        entry = self._entries.get(block_id)
        if entry is not None:
            entry.last_access = next(self._seq)

    def on_remove(self, block_id: BlockId) -> None:
        self._entries.pop(block_id, None)

    def choose_victim(self) -> BlockId:
        return min(
            self._entries.items(),
            key=lambda kv: (self.score(kv[0], kv[1]),
                            kv[1].last_access, kv[1].seq),
        )[0]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def value_score(recompute_cost: float, references: float,
                size_bytes: float) -> float:
    """The canonical cache-value density of a block.

    ``recompute_cost * (1 + references) / size`` — the expected stage
    re-execution seconds a cached byte is saving.  This is
    :class:`CostAwarePolicy`'s per-executor score generalized so the
    cluster-wide :class:`repro.cache.broker.CacheBroker` ranks every
    live block with the *same* value function, with ``references``
    counted across all jobs instead of within one executor's horizon.
    """
    return recompute_cost * (1.0 + references) / max(size_bytes, 1.0)


class LRCPolicy(_ScoredPolicy):
    """Least-reference-count eviction.

    A block's score is the number of not-yet-executed consumers of its
    RDD (in-job pending reads plus driver-declared future jobs).  Blocks
    nothing will read again score zero and are reclaimed first; ties
    fall back to LRU.
    """

    name = "lrc"

    def __init__(self, ref_fn: RefCountFn) -> None:
        super().__init__()
        self._ref_fn = ref_fn

    def score(self, block_id: BlockId, entry: _ScoredEntry) -> float:
        return float(self._ref_fn(block_id))


class CostAwarePolicy(_ScoredPolicy):
    """Evict the block with the least recompute-value per byte.

    ``score = recompute_cost * (1 + references) / size`` — the expected
    stage re-execution time a cached byte is saving.  Cheap-to-rebuild
    or dead blocks yield their RAM to expensive, still-referenced ones.
    """

    name = "cost"

    def __init__(self, ref_fn: RefCountFn, cost_fn: CostFn) -> None:
        super().__init__()
        self._ref_fn = ref_fn
        self._cost_fn = cost_fn

    def score(self, block_id: BlockId, entry: _ScoredEntry) -> float:
        cost = self._cost_fn(block_id[0])
        refs = self._ref_fn(block_id)
        return value_score(cost, refs, entry.size_bytes)


class QuotaAwarePolicy(CachePolicy):
    """Wrapper adding per-tenant quota awareness to any inner policy.

    On capacity pressure, blocks owned by **over-quota** tenants are
    evicted first (oldest-inserted of theirs, deterministically); only
    when no tenant is over its quota does victim choice fall through to
    the wrapped policy.  This is the *cross-tenant* half of quota
    enforcement — the intra-tenant half (a tenant displacing its own
    blocks before touching anyone else's) lives in
    :class:`repro.service.quotas.TenantCacheQuotas`, which this wrapper
    consults through ``quotas_fn``.

    ``quotas_fn`` is late-bound (returns ``None`` until a service layer
    attaches quotas), so stores built at context creation pick up quota
    awareness the moment a :class:`~repro.service.DatasetService` turns
    it on, including elastically provisioned workers.
    """

    def __init__(self, inner: CachePolicy, worker_id: int,
                 quotas_fn: Callable[[], Optional[object]]) -> None:
        self._inner = inner
        self._worker_id = worker_id
        self._quotas_fn = quotas_fn
        self._resident: "OrderedDict[BlockId, None]" = OrderedDict()
        self.name = inner.name

    def on_insert(self, block_id: BlockId, size_bytes: float) -> None:
        self._resident[block_id] = None
        self._inner.on_insert(block_id, size_bytes)

    def on_access(self, block_id: BlockId) -> None:
        self._inner.on_access(block_id)

    def on_remove(self, block_id: BlockId) -> None:
        self._resident.pop(block_id, None)
        self._inner.on_remove(block_id)

    def choose_victim(self) -> BlockId:
        quotas = self._quotas_fn()
        if quotas is not None:
            victim = quotas.preferred_victim(
                self._worker_id, self._resident.keys())
            if victim is not None:
                return victim
        return self._inner.choose_victim()

    def clear(self) -> None:
        self._resident.clear()
        self._inner.clear()

    def __len__(self) -> int:
        return len(self._inner)


POLICY_NAMES = (LRUPolicy.name, FIFOPolicy.name, LRCPolicy.name,
                CostAwarePolicy.name)


def make_policy(
    name: str,
    ref_fn: Optional[RefCountFn] = None,
    cost_fn: Optional[CostFn] = None,
) -> CachePolicy:
    """Instantiate the policy called ``name``.

    ``lrc`` requires ``ref_fn``; ``cost`` requires both oracles.
    """
    if name == LRUPolicy.name:
        return LRUPolicy()
    if name == FIFOPolicy.name:
        return FIFOPolicy()
    if name == LRCPolicy.name:
        if ref_fn is None:
            raise ValueError("LRCPolicy needs a reference-count function")
        return LRCPolicy(ref_fn)
    if name == CostAwarePolicy.name:
        if ref_fn is None or cost_fn is None:
            raise ValueError("CostAwarePolicy needs reference and cost functions")
        return CostAwarePolicy(ref_fn, cost_fn)
    raise ValueError(f"unknown cache policy {name!r}; pick from {POLICY_NAMES}")


@dataclass
class CacheDefaults:
    """Process-wide defaults consumed by new :class:`StarkConfig` objects.

    The CLI sets these (``--cache-policy`` / ``--cache-admission-min-cost``)
    so every experiment driver — none of which thread cache options —
    runs under the selected policy.
    """

    policy: str = LRUPolicy.name
    admission_min_cost: float = 0.0


DEFAULTS = CacheDefaults()


def set_default_policy(name: str) -> None:
    if name not in POLICY_NAMES:
        raise ValueError(f"unknown cache policy {name!r}; pick from {POLICY_NAMES}")
    DEFAULTS.policy = name


def set_default_admission_min_cost(seconds: float) -> None:
    if seconds < 0:
        raise ValueError(f"admission threshold must be non-negative: {seconds}")
    DEFAULTS.admission_min_cost = seconds
