"""Cluster-wide cache broker: the single authority for cache value.

With ``StarkConfig.cache_broker`` on, eviction stops being a
per-executor decision.  Every block store's policy is a
:class:`BrokerPolicy` stub that forwards all bookkeeping to the
driver-side :class:`CacheBroker`, which ranks **every live block in the
cluster** with the same value function the cost-aware policy uses per
executor (:func:`repro.cache.policy.value_score`)::

    value = recompute_cost * (1 + cross_job_references) / size_bytes

where ``cross_job_references`` counts both the in-job/declared reads the
:class:`~repro.cache.reference_tracker.ReferenceTracker` knows about
*and* the running jobs whose lineage **prefix-matches** the block's RDD
(see below) — the cluster-level generalization of LRC the paper's
dynamic dataset collections need.

Three coordination mechanisms hang off this one ranking:

**Global eviction (the memory market).**  When a store cannot fit an
insert, it calls the broker's pressure reliever *before* evicting
locally.  The broker compares the local victim against the globally
cheapest block on any *other* worker; while a strictly cheaper remote
victim exists (and the local victim fits in the space it frees), the
broker evicts the remote block (reason ``"broker"``) and **migrates**
the local victim into the freed space via
:meth:`~repro.engine.block_manager.BlockManagerMaster.migrate_block` —
"evict remote block B and move yours there".  Only when the local
victim is already the cluster-wide cheapest does eviction fall through
to the store's normal local path.  Migrations and remote evictions are
modeled as asynchronous background transfers (like decommission
migration): they cost no task time, only the recompute the evicted
block's next reader will pay.

**Cross-job lineage-prefix sharing.**  At job submission the broker
computes Merkle-style per-node prefix fingerprints
(:func:`repro.engine.lineage.prefix_fingerprints`) of the job's lineage
and registers every *cached* node as a provider of its prefix hash.
When another job evaluates a node with the same hash and misses
locally, the evaluator asks :meth:`equivalent_for` and serves the
partition from the provider's cached block (free locally, serde +
network cost remotely) instead of recomputing — tenant B's scan runs
off tenant A's cached subgraph even though their RDD ids differ.  A
running job *pins* the providers it may read; the reference tracker
defers auto-unpersist while a pin is live (:meth:`pin_count`).

**Memory-market scale-in.**  The elastic
:class:`~repro.elastic.manager.ResourceManager` consults
:meth:`worker_value_density` so scale-in decommissions the *coldest*
worker and never the one holding the most cache value per byte of
capacity (unless every candidate's resident bytes exceed the migration
budget), and drains stores hottest-block-first so the budget is spent
on the blocks most worth saving.

Tenant quotas (:class:`~repro.service.quotas.TenantCacheQuotas`) become
a broker *constraint* rather than a policy wrapper: local victim choice
nominates over-quota tenants' blocks first, and quota displacement uses
the broker's value ranking to drop the owning tenant's own
lowest-value block **cluster-wide** — never another tenant's.

All state lives in insertion-ordered dicts with total-order tie-breaks,
so runs are byte-identical for identical inputs.
"""

from __future__ import annotations

import math
from itertools import count
from typing import Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from .policy import CachePolicy, value_score

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.block_manager import Block, BlockManagerMaster, BlockStore
    from ..engine.rdd import RDD
    from ..engine.stage import Stage
    from .manager import CacheManager

BlockId = Tuple[int, int]  # (rdd_id, partition_index)


class _BrokerEntry:
    """Broker-side bookkeeping for one resident block."""

    __slots__ = ("seq", "size_bytes", "last_access")

    def __init__(self, seq: int, size_bytes: float) -> None:
        self.seq = seq
        self.size_bytes = size_bytes
        self.last_access = seq


class BrokerPolicy(CachePolicy):
    """Per-store policy stub that defers every decision to the broker.

    The store still calls the standard policy contract
    (insert/access/remove/victim/clear), which is exactly the channel
    that keeps the broker's global ledger in sync with store contents —
    including migrations, quota removals, and worker loss, which all go
    through the same store mutations.
    """

    name = "broker"

    def __init__(self, broker: "CacheBroker", worker_id: int) -> None:
        self._broker = broker
        self._worker_id = worker_id

    def on_insert(self, block_id: BlockId, size_bytes: float) -> None:
        self._broker.note_insert(self._worker_id, block_id, size_bytes)

    def on_access(self, block_id: BlockId) -> None:
        self._broker.note_access(self._worker_id, block_id)

    def on_remove(self, block_id: BlockId) -> None:
        self._broker.note_remove(self._worker_id, block_id)

    def choose_victim(self) -> BlockId:
        return self._broker.choose_local_victim(self._worker_id)

    def clear(self) -> None:
        self._broker.note_clear(self._worker_id)

    def __len__(self) -> int:
        return self._broker.resident_count(self._worker_id)


class CacheBroker:
    """Driver-side authority for cluster-wide cache value decisions."""

    def __init__(self, manager: "CacheManager") -> None:
        self.manager = manager
        self.master: "BlockManagerMaster | None" = None
        #: worker_id -> {block_id -> entry}, both insertion-ordered.
        self._entries: Dict[int, Dict[BlockId, _BrokerEntry]] = {}
        self._seq = count()
        self._relieving = False

        # -- prefix sharing state -------------------------------------------
        #: rdd_id -> Merkle prefix hash (every lineage node ever submitted).
        self._prefix_of: Dict[int, str] = {}
        #: prefix hash -> cached provider rdd_ids in registration order.
        self._providers: Dict[str, List[int]] = {}
        #: provider rdd_id -> job_ids currently pinning it.
        self._pins: Dict[int, Set[int]] = {}
        #: job_id -> provider rdd_ids it pinned at submission.
        self._job_pins: Dict[int, List[int]] = {}

        # -- counters (all deterministic) -----------------------------------
        #: Remote blocks evicted by the broker to host a migrated victim.
        self.broker_evictions: int = 0
        #: Local victims the broker migrated instead of evicting.
        self.broker_migrations: int = 0
        #: Partitions served from an equivalent RDD's cached block.
        self.prefix_hits: int = 0
        #: Prefix hits that paid a remote (serde + network) read.
        self.prefix_remote_hits: int = 0
        #: Equivalence lookups that found no live provider.
        self.prefix_misses: int = 0

    # ---- wiring -------------------------------------------------------------

    def attach(self, master: "BlockManagerMaster") -> None:
        """Bind to the block manager master and hook every store's
        pressure reliever (new stores hook via
        :meth:`on_worker_registered`)."""
        self.master = master
        for wid in master.stores:
            self.on_worker_registered(wid)

    def on_worker_registered(self, worker_id: int) -> None:
        assert self.master is not None
        self._entries.setdefault(worker_id, {})
        self.master.stores[worker_id].pressure_reliever = self.relieve_pressure

    # ---- store bookkeeping (BrokerPolicy callbacks) -------------------------

    def note_insert(self, worker_id: int, block_id: BlockId,
                    size_bytes: float) -> None:
        entries = self._entries.setdefault(worker_id, {})
        entries.pop(block_id, None)
        entries[block_id] = _BrokerEntry(next(self._seq), size_bytes)

    def note_access(self, worker_id: int, block_id: BlockId) -> None:
        entry = self._entries.get(worker_id, {}).get(block_id)
        if entry is not None:
            entry.last_access = next(self._seq)

    def note_remove(self, worker_id: int, block_id: BlockId) -> None:
        self._entries.get(worker_id, {}).pop(block_id, None)

    def note_clear(self, worker_id: int) -> None:
        self._entries.get(worker_id, {}).clear()

    def resident_count(self, worker_id: int) -> int:
        return len(self._entries.get(worker_id, ()))

    # ---- the value function -------------------------------------------------

    def cross_job_refcount(self, block_id: BlockId) -> float:
        """Reference count across *all* jobs: the tracker's pending +
        declared reads plus running jobs pinning the RDD through a
        lineage-prefix match."""
        return (self.manager.tracker.block_ref_count(block_id)
                + self.pin_count(block_id[0]))

    def block_value(self, worker_id: int, block_id: BlockId,
                    size_bytes: Optional[float] = None) -> float:
        """``recompute_cost × cross_job_refcount / size`` for one block
        (the per-byte seconds this block's residency is saving)."""
        if size_bytes is None:
            entry = self._entries.get(worker_id, {}).get(block_id)
            size_bytes = entry.size_bytes if entry is not None else 1.0
        cost = self.manager.estimate_recompute_cost(block_id[0])
        return value_score(cost, self.cross_job_refcount(block_id),
                           size_bytes)

    def worker_value_density(self, worker_id: int) -> float:
        """Total cache value resident on ``worker_id`` per byte of its
        store capacity — the elastic layer's don't-kill-the-hot-worker
        score."""
        assert self.master is not None
        store = self.master.stores[worker_id]
        total = math.fsum(
            self.block_value(worker_id, bid, entry.size_bytes)
            * entry.size_bytes
            for bid, entry in self._entries.get(worker_id, {}).items())
        return total / max(store.capacity_bytes, 1.0)

    def accounted_bytes(self) -> float:
        """Broker-ledger resident bytes (``math.fsum`` so the trace
        reconciliation row compares exactly against the store sizes)."""
        return math.fsum(entry.size_bytes
                         for entries in self._entries.values()
                         for entry in entries.values())

    def top_blocks(self, n: int = 10) -> List[Tuple[float, int, BlockId]]:
        """The ``n`` most valuable resident blocks as
        ``(value, worker_id, block_id)``, highest first (deterministic
        tie-break on worker then block id)."""
        scored = [
            (self.block_value(wid, bid, entry.size_bytes), wid, bid)
            for wid in sorted(self._entries)
            for bid, entry in self._entries[wid].items()
        ]
        scored.sort(key=lambda t: (-t[0], t[1], t[2]))
        return scored[:n]

    # ---- global eviction ----------------------------------------------------

    def choose_local_victim(self, worker_id: int) -> BlockId:
        """The block ``worker_id`` should drop first: an over-quota
        tenant's oldest block when one is resident (the quota
        constraint), else the lowest-value block by the broker
        ranking."""
        entries = self._entries[worker_id]
        quotas = self.manager.quotas
        if quotas is not None:
            preferred = quotas.preferred_victim(worker_id, iter(entries))
            if preferred is not None:
                return preferred
        return min(
            entries.items(),
            key=lambda kv: (self.block_value(worker_id, kv[0],
                                             kv[1].size_bytes),
                            kv[1].last_access, kv[1].seq),
        )[0]

    def relieve_pressure(self, store: "BlockStore",
                         incoming: "Block") -> None:
        """Memory-market arbitration before ``store`` evicts locally.

        While the insert still overflows and a strictly cheaper victim
        exists on another worker (with room for our local victim once
        evicted), evict the remote block cluster-wide (reason
        ``"broker"``) and migrate the local victim into the freed
        space.  Whatever overflow remains falls through to the store's
        normal local eviction loop (which asks
        :meth:`choose_local_victim`)."""
        master = self.master
        if master is None or self._relieving:
            return
        if incoming.size_bytes > store.capacity_bytes:
            return  # store will reject it outright
        quotas = self.manager.quotas
        self._relieving = True
        try:
            while (store.used_bytes + incoming.size_bytes
                   > store.capacity_bytes and len(store)):
                wid = store.worker_id
                if quotas is not None and quotas.preferred_victim(
                        wid, iter(self._entries[wid])) is not None:
                    return  # quota enforcement wants a local eviction
                local_id = self.choose_local_victim(wid)
                local_entry = self._entries[wid][local_id]
                local_value = self.block_value(wid, local_id,
                                               local_entry.size_bytes)
                move = self._cheapest_remote_slot(
                    wid, local_entry.size_bytes, local_value)
                if move is None:
                    return  # local victim is the cluster-wide cheapest
                remote_wid, remote_id, remote_value = move
                master.remove_block(remote_id, remote_wid, reason="broker")
                self.broker_evictions += 1
                self._post_broker_evicted(remote_wid, remote_id, wid,
                                          remote_value)
                if master.migrate_block(local_id, src=wid, dst=remote_wid):
                    self.broker_migrations += 1
                    self._post_broker_migrated(local_id, wid, remote_wid,
                                               local_entry.size_bytes,
                                               local_value)
        finally:
            self._relieving = False

    def _cheapest_remote_slot(
        self, local_wid: int, needed_bytes: float, local_value: float,
    ) -> Optional[Tuple[int, BlockId, float]]:
        """The cheapest block on any *other* worker that is strictly
        cheaper than the local victim and whose eviction frees enough
        room to host it (no cascading evictions at the destination)."""
        assert self.master is not None
        best: Optional[Tuple[Tuple[float, int, int], int, BlockId]] = None
        for wid in sorted(self._entries):
            if wid == local_wid or wid not in self.master.stores:
                continue
            dst = self.master.stores[wid]
            headroom = dst.capacity_bytes - dst.used_bytes
            for bid, entry in self._entries[wid].items():
                if headroom + entry.size_bytes < needed_bytes:
                    continue
                value = self.block_value(wid, bid, entry.size_bytes)
                if value >= local_value:
                    continue
                key = (value, entry.last_access, entry.seq)
                if best is None or key < best[0]:
                    best = (key, wid, bid)
        if best is None:
            return None
        return best[1], best[2], best[0][0]

    # ---- cross-job lineage-prefix sharing -----------------------------------

    def on_job_submit(self, job_id: int, final_rdd: "RDD",
                      stages: Iterable["Stage"]) -> None:
        """Register the job's lineage-prefix fingerprints: cached nodes
        become providers of their prefix hash; matching providers from
        *other* lineage positions get pinned for the job's lifetime."""
        from ..engine.lineage import ancestors, prefix_fingerprints

        nodes = ancestors(final_rdd, include_self=True)
        hashes = prefix_fingerprints(final_rdd)
        self._prefix_of.update(hashes)
        for node in nodes:
            if node.cached:
                providers = self._providers.setdefault(
                    hashes[node.rdd_id], [])
                if node.rdd_id not in providers:
                    providers.append(node.rdd_id)
        pinned: List[int] = []
        for node in nodes:
            for provider in self._providers.get(hashes[node.rdd_id], ()):
                if provider != node.rdd_id and provider not in pinned:
                    pinned.append(provider)
                    self._pins.setdefault(provider, set()).add(job_id)
        self._job_pins[job_id] = pinned

    def on_job_complete(self, job_id: int) -> None:
        """Release the job's pins, then let the tracker run any
        auto-unpersists it deferred on them."""
        for provider in self._job_pins.pop(job_id, []):
            jobs = self._pins.get(provider)
            if jobs is not None:
                jobs.discard(job_id)
                if not jobs:
                    self._pins.pop(provider, None)
        self.manager.tracker.flush_deferred()

    def pin_count(self, rdd_id: int) -> int:
        """Running jobs whose lineage prefix-matches ``rdd_id`` (the
        tracker defers auto-unpersist while this is non-zero)."""
        return len(self._pins.get(rdd_id, ()))

    def equivalent_for(self, rdd_id: int) -> Optional[int]:
        """A *different* RDD with an identical lineage prefix that has
        cached blocks right now, or ``None``.  Providers are tried in
        registration order (deterministic)."""
        prefix = self._prefix_of.get(rdd_id)
        if prefix is None:
            return None
        assert self.master is not None
        candidates = [p for p in self._providers.get(prefix, ())
                      if p != rdd_id]
        for provider in candidates:
            if self.master.cached_partitions_of(provider):
                return provider
        if candidates:
            self.prefix_misses += 1
        return None

    def note_prefix_hit(self, remote: bool) -> None:
        self.prefix_hits += 1
        if remote:
            self.prefix_remote_hits += 1

    # ---- memory-market scale-in ---------------------------------------------

    def migration_order(self, worker_id: int) -> List[BlockId]:
        """A decommissioning worker's blocks hottest-first, so the
        migration budget is spent on the most valuable ones."""
        return sorted(
            self._entries.get(worker_id, {}),
            key=lambda bid: (-self.block_value(worker_id, bid), bid))

    # ---- event posting ------------------------------------------------------

    def _bus(self):
        bus = getattr(self.manager.context, "event_bus", None)
        return bus if bus is not None and bus.active else None

    def _now(self) -> float:
        return self.manager.context.cluster.clock.now

    def _post_broker_evicted(self, worker_id: int, block_id: BlockId,
                             requested_by: int, value: float) -> None:
        bus = self._bus()
        if bus is not None:
            from ..obs.events import BrokerEvicted

            bus.post(BrokerEvicted(
                time=self._now(), worker_id=worker_id,
                rdd_id=block_id[0], partition=block_id[1],
                requested_by=requested_by, value=value))

    def _post_broker_migrated(self, block_id: BlockId, src: int, dst: int,
                              size_bytes: float, value: float) -> None:
        bus = self._bus()
        if bus is None:
            return
        from ..obs.events import BlockCached, BrokerMigrated

        bus.post(BrokerMigrated(
            time=self._now(), rdd_id=block_id[0], partition=block_id[1],
            src_worker=src, dst_worker=dst, size_bytes=size_bytes,
            value=value))
        # The migration's destination insert does not go through the
        # compute path, so keep the trace's cached-bytes counter honest
        # (the source side already posted BlockEvicted("migrated")).
        bus.post(BlockCached(
            time=self._now(), worker_id=dst, rdd_id=block_id[0],
            partition=block_id[1], size_bytes=size_bytes))
