"""Cache admission control: refuse blocks not worth their RAM.

Under Spark-1.3 semantics a cache miss recomputes the partition from the
beginning of the stage, so the value of caching a block is its recompute
cost.  Blocks cheaper to rebuild than ``min_cost_seconds`` are not
admitted at all — caching them would only displace blocks whose loss
actually hurts.  ``min_cost_seconds = 0`` (the default) admits
everything, preserving stock behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdmissionController:
    """Gate in front of every block-store insert."""

    min_cost_seconds: float = 0.0
    accepted: int = 0
    rejected: int = 0

    def should_admit(self, recompute_cost_seconds: float) -> bool:
        """Admit unless the block rebuilds faster than the threshold."""
        if (self.min_cost_seconds > 0
                and recompute_cost_seconds < self.min_cost_seconds):
            self.rejected += 1
            return False
        self.accepted += 1
        return True

    def stats(self) -> dict:
        return {"accepted": self.accepted, "rejected": self.rejected,
                "min_cost_seconds": self.min_cost_seconds}
