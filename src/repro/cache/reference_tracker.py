"""Driver-side reference counting over the RDD lineage DAG.

The tracker is what makes :class:`~repro.cache.policy.LRCPolicy` and
:class:`~repro.cache.policy.CostAwarePolicy` lineage-aware: at job
submission it walks the job's stage DAG and counts, per *cached* RDD,
how many not-yet-executed consumers will read it; as stages complete the
counts drain.  Eviction policies consult :meth:`ref_count` — a block
whose RDD no longer has pending or declared readers is dead weight.

Two kinds of references:

* **pending** — within one running job: every dependency edge whose
  parent is cached contributes one reference, released when the stage
  containing the consuming child completes.  (A skipped stage releases
  immediately — its map outputs persist, so it reads no caches.)
* **declared** — across jobs: the driver announces future use with
  :meth:`expect` (``tracker.expect(rdd_id, uses=3)`` = "three more jobs
  will read this RDD").  Each completed job that referenced the RDD
  consumes one declared use.  When the last declared use is consumed and
  auto-unpersist is enabled, the RDD is dropped cluster-wide — the
  paper's dynamic-collection setting, where the driver knows the window
  of datasets the next queries span.

Auto-unpersist only ever fires for RDDs with explicit declarations, so
applications that never call :meth:`expect` keep exact Spark semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.rdd import RDD
    from ..engine.stage import Stage

BlockId = Tuple[int, int]


class ReferenceTracker:
    """Counts remaining readers of every cached RDD."""

    def __init__(
        self,
        auto_unpersist: bool = False,
        unpersist_fn: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.auto_unpersist = auto_unpersist
        self._unpersist_fn = unpersist_fn
        #: rdd_id -> references held by stages of currently-running jobs.
        self._pending: Dict[int, int] = {}
        #: rdd_id -> declared remaining future-job uses.
        self._declared: Dict[int, int] = {}
        #: (job_id, stage_id) -> rdd_ids to release on stage completion.
        self._releases: Dict[Tuple[int, int], List[int]] = {}
        #: job_id -> cached rdd_ids this job references (declared drain).
        self._touched: Dict[int, Set[int]] = {}
        #: External pin lookup (the cache broker's lineage-prefix pins):
        #: auto-unpersist is *deferred* while this reports a live pin,
        #: so a job finishing cannot drop a block a concurrent job's
        #: prefix match was counting on re-reading.
        self._pin_fn: Optional[Callable[[int], int]] = None
        #: rdd_ids whose auto-unpersist was deferred on a live pin.
        self._deferred: Set[int] = set()
        self.auto_unpersisted: int = 0
        self.deferred_unpersists: int = 0

    # ---- queries -----------------------------------------------------------

    def ref_count(self, rdd_id: int) -> int:
        return self._pending.get(rdd_id, 0) + self._declared.get(rdd_id, 0)

    def block_ref_count(self, block_id: BlockId) -> int:
        return self.ref_count(block_id[0])

    # ---- cross-job declarations --------------------------------------------

    def expect(self, rdd_id: int, uses: int = 1) -> None:
        """Declare that ``uses`` more jobs will reference ``rdd_id``."""
        if uses <= 0:
            raise ValueError(f"declared uses must be positive: {uses}")
        self._declared[rdd_id] = self._declared.get(rdd_id, 0) + uses

    def declared(self, rdd_id: int) -> int:
        return self._declared.get(rdd_id, 0)

    # ---- job lifecycle (driven by the DAGScheduler) ------------------------

    def on_job_submit(self, job_id: int, final_rdd: "RDD",
                      stages: Iterable["Stage"]) -> None:
        """Register the references job ``job_id`` will hold.

        A stage references every *cached* RDD in its narrow closure: its
        tasks evaluate the closure root (the final RDD for the result
        stage, the map-side RDD for a shuffle stage) and evaluation
        either reads each cached node from the block store or recomputes
        it — both are uses that keep the block warm until the stage
        completes.  Each reference is released when its stage finishes.
        """
        touched = self._touched.setdefault(job_id, set())
        for stage in stages:
            released: List[int] = self._releases.setdefault(
                (job_id, stage.stage_id), []
            )
            for node in self._narrow_closure(stage.rdd):
                if node.cached:
                    self._pending[node.rdd_id] = (
                        self._pending.get(node.rdd_id, 0) + 1
                    )
                    released.append(node.rdd_id)
                    touched.add(node.rdd_id)

    def on_stage_complete(self, job_id: int, stage_id: int) -> None:
        for rdd_id in self._releases.pop((job_id, stage_id), ()):
            self._release_pending(rdd_id)

    def on_job_complete(self, job_id: int) -> None:
        """Release any leftover pending refs and drain declared uses."""
        leftovers = [key for key in self._releases if key[0] == job_id]
        for key in leftovers:
            for rdd_id in self._releases.pop(key):
                self._release_pending(rdd_id)
        for rdd_id in sorted(self._touched.pop(job_id, ())):
            remaining = self._declared.get(rdd_id)
            if remaining is None:
                continue
            remaining -= 1
            if remaining > 0:
                self._declared[rdd_id] = remaining
            else:
                self._declared.pop(rdd_id, None)
                if (self.auto_unpersist and self._unpersist_fn is not None
                        and self._pending.get(rdd_id, 0) == 0):
                    self._unpersist_or_defer(rdd_id)

    # ---- external pins (cross-job prefix sharing) --------------------------

    def set_external_pin_fn(self, pin_fn: Callable[[int], int]) -> None:
        """Install a pin lookup (``rdd_id -> live pin count``) that
        vetoes auto-unpersist until :meth:`flush_deferred` runs with the
        pin released."""
        self._pin_fn = pin_fn

    def flush_deferred(self) -> None:
        """Run deferred auto-unpersists whose external pins are gone
        (called whenever a pin holder releases, e.g. job completion)."""
        if not self._deferred:
            return
        for rdd_id in sorted(self._deferred):
            if self._pin_fn is not None and self._pin_fn(rdd_id) > 0:
                continue
            self._deferred.discard(rdd_id)
            if self._pending.get(rdd_id, 0) == 0 \
                    and self._unpersist_fn is not None:
                self.auto_unpersisted += 1
                self._unpersist_fn(rdd_id)

    # ---- internals ---------------------------------------------------------

    def _unpersist_or_defer(self, rdd_id: int) -> None:
        if self._pin_fn is not None and self._pin_fn(rdd_id) > 0:
            self.deferred_unpersists += 1
            self._deferred.add(rdd_id)
            return
        self.auto_unpersisted += 1
        assert self._unpersist_fn is not None
        self._unpersist_fn(rdd_id)

    def _release_pending(self, rdd_id: int) -> None:
        count = self._pending.get(rdd_id, 0) - 1
        if count > 0:
            self._pending[rdd_id] = count
        else:
            self._pending.pop(rdd_id, None)

    @staticmethod
    def _narrow_closure(rdd: "RDD") -> List["RDD"]:
        """The RDDs a stage executes: ``rdd`` plus everything reachable
        through narrow dependencies (shuffle parents belong to their own
        map stages)."""
        seen: Set[int] = set()
        order: List["RDD"] = []
        stack = [rdd]
        while stack:
            node = stack.pop()
            if node.rdd_id in seen:
                continue
            seen.add(node.rdd_id)
            order.append(node)
            for dep in node.narrow_dependencies():
                stack.append(dep.rdd)
        return order
