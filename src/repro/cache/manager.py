"""CacheManager: the driver-side owner of all caching policy decisions.

One instance lives on every :class:`~repro.engine.context.StarkContext`
and ties the subsystem together:

* builds one :class:`~repro.cache.policy.CachePolicy` per executor store
  (``policy_for_worker`` is handed to the
  :class:`~repro.engine.block_manager.BlockManagerMaster` as a factory),
  wiring the lineage-aware policies to the shared
  :class:`~repro.cache.reference_tracker.ReferenceTracker` and to the
  recompute-cost estimator;
* gates every insert through the
  :class:`~repro.cache.admission.AdmissionController`;
* receives the DAGScheduler's job/stage lifecycle hooks and forwards
  them to the tracker (which may auto-unpersist drained RDDs).

The recompute-cost estimate walks the narrow chain above an RDD, summing
the per-RDD transformation delays the cost model has observed
(:class:`~repro.engine.compute.RDDStats`), and stops at barriers —
checkpointed RDDs, shuffle inputs, or cached ancestors that still hold
blocks.  It is the same quantity the CheckpointOptimizer reasons about
(§III-D1), reused as an eviction weight.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from .admission import AdmissionController
from .broker import BrokerPolicy, CacheBroker
from .policy import CachePolicy, QuotaAwarePolicy, make_policy
from .reference_tracker import ReferenceTracker

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.rdd import RDD
    from ..engine.stage import Stage
    from ..service.quotas import TenantCacheQuotas


class CacheManager:
    """Central cache-policy coordinator of one context."""

    def __init__(self, context: "StarkContext") -> None:
        self.context = context
        config = context.config
        self.policy_name: str = config.cache_policy
        self.admission = AdmissionController(
            min_cost_seconds=config.cache_admission_min_cost
        )
        self.tracker = ReferenceTracker(
            auto_unpersist=config.cache_auto_unpersist,
            unpersist_fn=self._auto_unpersist,
        )
        #: Cluster-wide cache broker (``StarkConfig.cache_broker``);
        #: ``None`` keeps classic per-executor eviction.  The broker
        #: subsumes both the per-store policy (every store gets a
        #: :class:`~repro.cache.broker.BrokerPolicy` stub) and the
        #: quota wrapper (quotas become a broker constraint).
        self.broker: "CacheBroker | None" = (
            CacheBroker(self) if getattr(config, "cache_broker", False)
            else None)
        if self.broker is not None:
            self.tracker.set_external_pin_fn(self.broker.pin_count)
        self._quotas: "TenantCacheQuotas | None" = None

    @property
    def quotas(self) -> "TenantCacheQuotas | None":
        """Per-tenant quota enforcer, attached by the service layer
        (:class:`repro.service.quotas.TenantCacheQuotas`); ``None``
        means single-tenant operation with no quota gating."""
        return self._quotas

    @quotas.setter
    def quotas(self, quotas: "TenantCacheQuotas | None") -> None:
        self._quotas = quotas
        if quotas is not None and self.broker is not None:
            # Broker mode: quota displacement drops the owning tenant's
            # *lowest-value block cluster-wide*, not its oldest.
            quotas.value_fn = self.broker.block_value

    # ---- policy construction ----------------------------------------------

    def policy_for_worker(self, worker_id: int) -> CachePolicy:
        """Build this context's configured policy for one block store.

        With the cluster-wide broker on, every store gets a
        :class:`~repro.cache.broker.BrokerPolicy` stub instead — victim
        choice (including the tenant-quota constraint) moves to the
        broker, so no :class:`QuotaAwarePolicy` wrapper is needed.

        Otherwise the policy is wrapped in a :class:`QuotaAwarePolicy`
        whose quota lookup is late-bound to :attr:`quotas`, so attaching
        a service layer retrofits quota-aware victim selection onto
        stores that already exist.
        """
        if self.broker is not None:
            return BrokerPolicy(self.broker, worker_id)
        inner = make_policy(
            self.policy_name,
            ref_fn=self.tracker.block_ref_count,
            cost_fn=self.estimate_recompute_cost,
        )
        return QuotaAwarePolicy(inner, worker_id, lambda: self.quotas)

    # ---- declarations (application API) ------------------------------------

    def expect(self, rdd: "RDD", uses: int = 1) -> None:
        """Declare that ``uses`` more jobs will read ``rdd`` — the
        knowledge LRC/cost eviction and auto-unpersist act on."""
        self.tracker.expect(rdd.rdd_id, uses)

    # ---- admission ----------------------------------------------------------

    def should_admit(self, rdd_id: int, size_bytes: float) -> bool:
        if self.quotas is not None and not self.quotas.admit(rdd_id, size_bytes):
            return False
        if self.admission.min_cost_seconds <= 0:
            self.admission.accepted += 1
            return True
        return self.admission.should_admit(
            self.estimate_recompute_cost(rdd_id)
        )

    # ---- recompute-cost estimation ------------------------------------------

    def estimate_recompute_cost(self, rdd_id: int) -> float:
        """Seconds to rebuild one partition of ``rdd_id`` from the
        nearest barrier, per the delays observed so far.

        Unobserved RDDs (never materialized) estimate zero — the
        admission controller then refuses them only under a positive
        threshold, which is the conservative direction.
        """
        context = self.context
        total = 0.0
        seen = set()
        stack = [rdd_id]
        root = True
        while stack:
            rid = stack.pop()
            if rid in seen:
                continue
            seen.add(rid)
            if not root:
                if context.checkpoint_store.has_checkpoint(rid):
                    continue  # rebuilt by a cheap checkpoint read
                rdd = context.get_rdd(rid)
                if rdd.cached and context.block_manager_master.cached_partitions_of(rid):
                    continue  # served from some executor's RAM
            else:
                rdd = context.get_rdd(rid)
                root = False
            total += context.rdd_stats(rid).max_partition_delay
            for dep in rdd.narrow_dependencies():
                stack.append(dep.rdd.rdd_id)
        return total

    # ---- DAGScheduler lifecycle hooks ---------------------------------------

    def on_job_submit(self, job_id: int, final_rdd: "RDD",
                      stages: Iterable["Stage"]) -> None:
        self.tracker.on_job_submit(job_id, final_rdd, stages)
        if self.broker is not None:
            self.broker.on_job_submit(job_id, final_rdd, stages)

    def on_stage_complete(self, job_id: int, stage_id: int) -> None:
        self.tracker.on_stage_complete(job_id, stage_id)

    def on_job_complete(self, job_id: int) -> None:
        # Tracker first (it may defer an auto-unpersist on a broker
        # pin), then the broker releases this job's pins and flushes
        # any deferrals that just became safe.
        self.tracker.on_job_complete(job_id)
        if self.broker is not None:
            self.broker.on_job_complete(job_id)

    # ---- internals -----------------------------------------------------------

    def _auto_unpersist(self, rdd_id: int) -> None:
        """Drop a fully-drained RDD cluster-wide (declared uses hit 0)."""
        try:
            self.context.get_rdd(rdd_id).cached = False
        except KeyError:
            pass
        self.context.block_manager_master.remove_rdd(rdd_id)
