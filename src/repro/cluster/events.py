"""SimKernel: the discrete-event simulation core and single time authority.

The engine charges *simulated* time for every physical effect (CPU work,
disk and network transfers, GC pauses, task launches).  Simulated time is
kept in floating-point **seconds** and owned by exactly one place — the
kernel in this module.  Three layers build on each other:

``SimClock``
    A monotonically advancing clock.  Components read it to timestamp
    metrics; only the kernel moves it.

``EventQueue``
    A priority queue of timestamped callbacks with deterministic
    tie-breaking: events at the same instant fire in insertion order
    (a global sequence number breaks ties).  Popping an event advances
    the shared clock to the event's time.

``SimKernel``
    The queue plus everything else that used to mutate time-indexed
    state from the outside: the worker slot ledger (every write to
    ``Worker.slot_free_times`` goes through kernel APIs, which also
    maintain a cached earliest-free-slot index per worker), periodic
    timers (:meth:`SimKernel.every`) for time-triggered policies such as
    autoscaler evaluation, and worker kill/restart/decommission.

Two kinds of events share the heap:

* **Regular events** — job arrivals, armed failures, streaming batch
  ticks.  ``run_all`` drains these.
* **Daemon events** — self-rescheduling housekeeping such as periodic
  policy timers.  They fire whenever simulated time passes them, but
  never *keep the simulation alive* on their own: ``run_all`` stops once
  only daemon events remain (otherwise a periodic timer would spin the
  drain loop forever).

The task scheduler remains an *analytic* executor: it computes task
start/finish times against per-slot free times rather than scheduling
one event per task, which is equivalent and much faster for the job
shapes in the paper (stages of independent tasks).  Crucially, all its
slot mutations are kernel transactions, so there is a single consistent
ledger of "when is this core busy" that timers and policies can query at
any simulated instant — the property that lets autoscaling run on
periodic timers instead of piggybacking on job arrivals.

Determinism: given the same seed and configuration, the kernel's event
order is a pure function of (time, sequence number), both derived
deterministically from the simulation itself — no wall-clock, no id()
ordering, no set iteration.  ``docs/SIMULATION.md`` documents the
guarantee and its test (`tests/cluster/test_determinism.py`).
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter as _perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .worker import Worker

#: The single time-comparison tolerance of the simulator (seconds).
#: Used for "is this slot free yet", "did the clock move backwards",
#: slot-boundary merging in the observability layer, and the scheduler's
#: arithmetic guards.  One epsilon, one module — callers import it from
#: here instead of scattering magic 1e-9/1e-12 constants.
TIME_EPS = 1e-9


class SimClock:
    """A monotonically advancing simulated clock (seconds).

    Only the kernel module mutates the clock; everything else reads
    ``now`` (enforced by ``tests/cluster/test_kernel_authority.py``).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t``.

        Moving backwards is a programming error and raises ``ValueError``;
        advancing to the current time is a no-op.
        """
        if t < self._now - TIME_EPS:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = max(self._now, t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative duration: {dt}")
        self._now += dt
        return self._now

    def reset(self, t: float = 0.0) -> None:
        """Reset the clock (used between independent experiments)."""
        self._now = float(t)


# Heap entries are plain lists, not dataclass instances: the dispatch
# loop is the simulator's hottest path and attribute access on a
# dataclass (descriptor lookup per field) measurably dominates it.  A
# list compares elementwise — ``[time, seq, ...]`` orders by time with
# the globally unique sequence number breaking ties, so comparison never
# reaches the callback slot.  Index constants below are the "schema".
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_DAEMON = 3
_CANCELLED = 4
_FIRED = 5


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`, allows cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: list, queue: "EventQueue") -> None:
        self._event = event
        self._queue = queue

    def cancel(self) -> None:
        event = self._event
        if not event[_CANCELLED]:
            event[_CANCELLED] = True
            if not event[_FIRED]:
                # Still on the heap: it will be swept lazily.
                self._queue._cancelled_in_heap += 1
                if not event[_DAEMON]:
                    self._queue._live_regular -= 1

    @property
    def cancelled(self) -> bool:
        return self._event[_CANCELLED]

    @property
    def time(self) -> float:
        return self._event[_TIME]


class EventQueue:
    """Priority queue of timestamped callbacks sharing a :class:`SimClock`.

    Events scheduled for the same instant fire in insertion order (the
    global sequence number is the deterministic tie-break).
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[list] = []
        self._seq = itertools.count()
        #: Non-cancelled, non-daemon events still on the heap.
        self._live_regular = 0
        #: Cancelled events still sitting on the heap, swept lazily.
        self._cancelled_in_heap = 0
        #: True while run_until/run_all is popping events; lets
        #: :meth:`SimKernel.pump` no-op instead of re-entering the loop.
        self._running = False
        #: Optional wall-clock self-profiler (duck-typed: on_dispatch /
        #: on_schedule / on_sweep — see
        #: :class:`repro.obs.profiler.SimProfiler`).  It reads only
        #: ``perf_counter``, never simulated time, so a profiled run
        #: replays byte-identically; detached, the cost is one ``is
        #: None`` check per event.  Attaching takes effect at the next
        #: entry into ``run_until``/``run_all``.
        self._profiler: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled_in_heap

    def attach_profiler(self, profiler: Any) -> Any:
        """Attach a wall-clock self-profiler (``on_dispatch(cb, s)`` /
        ``on_schedule(heap_len)``); returns it for chaining."""
        self._profiler = profiler
        return profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    @property
    def profiler(self) -> Optional[Any]:
        return self._profiler

    def schedule(self, time: float, callback: Callable[[], Any],
                 daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self.clock.now - TIME_EPS:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now={self.clock.now}"
            )
        event = [time, next(self._seq), callback, daemon, False, False]
        heapq.heappush(self._heap, event)
        if not daemon:
            self._live_regular += 1
        if self._profiler is not None:
            self._profiler.on_schedule(len(self._heap))
        return EventHandle(event, self)

    def schedule_many(
        self,
        arrivals: "List[Tuple[float, Callable[[], Any]]]",
        daemon: bool = False,
    ) -> List[EventHandle]:
        """Bulk-schedule ``(time, callback)`` pairs; returns their handles.

        Semantically identical to calling :meth:`schedule` once per pair
        in order — sequence numbers are assigned in list order, so the
        delivery order is exactly the same.  The difference is cost: a
        large batch (job-arrival floods, timer grids) is appended and
        re-heapified in one O(heap + batch) pass instead of paying
        O(batch x log heap) pushes.
        """
        now = self.clock.now
        floor = now - TIME_EPS
        seq = self._seq
        entries: List[list] = []
        for time, callback in arrivals:
            if time < floor:
                raise ValueError(
                    f"cannot schedule event in the past: {time} < now={now}"
                )
            entries.append([time, next(seq), callback, daemon, False, False])
        heap = self._heap
        if len(entries) > 4 and len(entries) * 2 >= len(heap):
            # Batch dominates the heap: one heapify beats per-item pushes.
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                heapq.heappush(heap, entry)
        if not daemon:
            self._live_regular += len(entries)
        profiler = self._profiler
        if profiler is not None and entries:
            on_many = getattr(profiler, "on_schedule_many", None)
            if on_many is not None:
                on_many(len(entries), len(heap))
            else:
                for _ in entries:
                    profiler.on_schedule(len(heap))
        return [EventHandle(entry, self) for entry in entries]

    def schedule_in(self, delay: float, callback: Callable[[], Any],
                    daemon: bool = False) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay}")
        return self.schedule(self.clock.now + delay, callback, daemon=daemon)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        if self._cancelled_in_heap:
            self._drop_cancelled()
        return self._heap[0][_TIME] if self._heap else None

    def step(self) -> bool:
        """Run the next pending event; return ``False`` if none remain."""
        if self._cancelled_in_heap:
            self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        event[_FIRED] = True
        if not event[_DAEMON]:
            self._live_regular -= 1
        # An event may fire late when the clock was advanced past its
        # timestamp by other components (the virtual-time task scheduler
        # does this); never move the clock backwards.
        clock = self.clock
        if event[_TIME] > clock._now:
            clock._now = event[_TIME]
        callback = event[_CALLBACK]
        profiler = self._profiler
        if profiler is None:
            callback()
        else:
            t0 = _perf_counter()
            callback()
            profiler.on_dispatch(callback, _perf_counter() - t0)
        return True

    def run_until(self, end_time: float) -> int:
        """Run events with ``time <= end_time``; return how many ran.

        The clock is left at ``end_time`` (or further, if a callback
        advanced it) even when the queue drains early.  Daemon events due
        by ``end_time`` fire too — time passing is exactly their trigger.

        This is the simulator's hottest loop: the detached variant pops
        and dispatches with local bindings only (no profiler check, no
        method-call indirection per event); both variants perform the
        same simulated-state mutations, so a profiled run replays
        byte-identically.
        """
        count = 0
        prev, self._running = self._running, True
        clock = self.clock
        heappop = heapq.heappop
        profiler = self._profiler
        try:
            if profiler is None:
                heap = self._heap
                while heap:
                    if self._cancelled_in_heap:
                        self._drop_cancelled()
                        heap = self._heap  # a sweep may rebuild the list
                        if not heap:
                            break
                    event = heap[0]
                    t = event[_TIME]
                    if t > end_time:
                        break
                    heappop(heap)
                    event[_FIRED] = True
                    if not event[_DAEMON]:
                        self._live_regular -= 1
                    if t > clock._now:
                        clock._now = t
                    event[_CALLBACK]()
                    count += 1
            else:
                while True:
                    if self._cancelled_in_heap:
                        self._drop_cancelled()
                    heap = self._heap
                    if not heap:
                        break
                    event = heap[0]
                    t = event[_TIME]
                    if t > end_time:
                        break
                    heappop(heap)
                    event[_FIRED] = True
                    if not event[_DAEMON]:
                        self._live_regular -= 1
                    if t > clock._now:
                        clock._now = t
                    callback = event[_CALLBACK]
                    t0 = _perf_counter()
                    callback()
                    profiler.on_dispatch(callback, _perf_counter() - t0)
                    count += 1
        finally:
            self._running = prev
        if end_time > clock._now:
            clock._now = end_time
        return count

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain all regular events; guard against runaway loops.

        Daemon events due before the last regular event fire along the
        way, but once only daemons remain the drain stops — a periodic
        timer must not keep the simulation alive forever.
        """
        count = 0
        prev, self._running = self._running, True
        clock = self.clock
        heappop = heapq.heappop
        profiler = self._profiler
        try:
            while self._live_regular > 0:
                if self._cancelled_in_heap:
                    self._drop_cancelled()
                heap = self._heap
                if not heap:
                    break
                event = heappop(heap)
                event[_FIRED] = True
                if not event[_DAEMON]:
                    self._live_regular -= 1
                t = event[_TIME]
                if t > clock._now:
                    clock._now = t
                callback = event[_CALLBACK]
                if profiler is None:
                    callback()
                else:
                    t0 = _perf_counter()
                    callback()
                    profiler.on_dispatch(callback, _perf_counter() - t0)
                count += 1
                if count >= max_events:
                    raise RuntimeError(
                        f"event queue did not drain after {max_events} events")
        finally:
            self._running = prev
        return count

    def _drop_cancelled(self) -> None:
        """Sweep cancelled events: pop from the top, and — once cancelled
        entries dominate the heap — rebuild it in one O(n) pass so the
        cost amortizes over the steps between sweeps instead of growing
        with stale-entry depth.  With a profiler attached the sweep wall
        time is attributed to the dedicated ``sweep`` kind, never to the
        next event's dispatch."""
        profiler = self._profiler
        t0 = _perf_counter() if profiler is not None else 0.0
        heap = self._heap
        dropped = 0
        while heap and heap[0][_CANCELLED]:
            heapq.heappop(heap)
            dropped += 1
        remaining = self._cancelled_in_heap - dropped
        if remaining > 64 and remaining * 2 >= len(heap):
            live = [e for e in heap if not e[_CANCELLED]]
            dropped += len(heap) - len(live)
            heapq.heapify(live)
            self._heap = live
            remaining = 0
        self._cancelled_in_heap = remaining
        if profiler is not None and dropped:
            profiler.on_sweep(dropped, _perf_counter() - t0)


class TimerHandle:
    """Cancellable handle for a periodic timer (:meth:`SimKernel.every`)."""

    def __init__(self, interval: float, callback: Callable[[float], Any]) -> None:
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        #: Nominal time of the next tick (the value passed to the callback).
        self.next_time: Optional[float] = None
        self._event: Optional[EventHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class SimKernel(EventQueue):
    """The single authority over simulated time and worker slot state.

    On top of the event heap this adds:

    * **Time authority** — :attr:`now`, :meth:`advance_to`,
      :meth:`advance_by` and :meth:`pump`.  Components that used to poke
      the clock directly go through these; ``pump`` fires every event due
      at or before the current frontier and is safe to call from inside a
      running event loop (it no-ops, the outer loop is already pumping).
    * **Periodic timers** — :meth:`every` schedules a self-rescheduling
      daemon event.  The callback receives the tick's *nominal* time,
      which may trail the clock frontier when jobs ran ahead; because
      slot free times are absolute, load signals can still be measured
      retroactively at the nominal instant.  When the frontier has raced
      more than one interval ahead, missed ticks are coalesced (the
      timer skips forward on its nominal grid) unless ``catch_up=True``.
    * **The worker slot ledger** — every mutation of
      ``Worker.slot_free_times`` (occupy, truncate, kill, restart,
      provision) is a kernel transaction, which lets the kernel keep a
      cached ``(free_time, slot)`` minimum per worker.  The cache turns
      the scheduler's hot earliest-free-slot query from O(cores) into
      O(1) amortized and ``Cluster.earliest_free_worker`` from
      O(workers x cores) into O(workers).
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        super().__init__(clock)
        self._workers: Dict[int, "Worker"] = {}
        #: worker_id -> (free_time, slot) of its earliest-free slot, or
        #: ``None`` when dirty (recomputed lazily on next query).
        self._earliest: Dict[int, Optional[Tuple[float, int]]] = {}
        #: Inter-worker heap of ``(free_time, worker_id)`` lower bounds:
        #: every alive registered worker always has at least one entry
        #: whose time is <= its true earliest free time.  Occupancy only
        #: *raises* free times, so the hot path (``occupy_slot``) never
        #: touches the heap; mutations that can lower a worker's minimum
        #: (register, explicit set, restart, reset) push eagerly, and
        #: the query pops/refreshes stale entries lazily.  This turns
        #: the scheduler's "globally earliest-free slot" pick from
        #: O(workers) per launch into O(log workers) amortized.
        self._free_heap: List[Tuple[float, int]] = []

    # ---- time authority -----------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (see SimClock)."""
        return self.clock.advance_to(t)

    def advance_by(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds."""
        return self.clock.advance_by(dt)

    def pump(self) -> int:
        """Fire every event due at or before the current frontier.

        No-ops (returns 0) when called re-entrantly from inside a running
        event loop — the outer ``run_until``/``run_all`` is already
        delivering due events, and recursing would nest job execution.
        """
        if self._running:
            return 0
        return self.run_until(self.clock.now)

    def reset(self, t: float = 0.0) -> None:
        """Reset clock and heap between independent experiments.

        Pending events and timers are discarded; registered workers stay
        registered (reset their slots with :meth:`reset_worker`).
        """
        self.clock.reset(t)
        self._heap.clear()
        self._live_regular = 0
        self._cancelled_in_heap = 0
        self._running = False

    # ---- periodic timers ----------------------------------------------------

    def every(
        self,
        interval: float,
        callback: Callable[[float], Any],
        start: Optional[float] = None,
        catch_up: bool = False,
    ) -> TimerHandle:
        """Fire ``callback(nominal_tick_time)`` every ``interval`` seconds.

        The first tick is at ``start`` (default: one interval from now).
        Ticks stay on the nominal grid ``start + k*interval``; a tick the
        frontier has already passed fires immediately with its nominal
        time, and — unless ``catch_up`` — ticks the frontier skipped by
        more than one whole interval are coalesced into the next grid
        point.  Timers are daemon events: they never keep ``run_all``
        alive on their own.  Returns a cancellable :class:`TimerHandle`.
        """
        if interval <= 0:
            raise ValueError(f"timer interval must be positive: {interval}")
        handle = TimerHandle(interval, callback)

        def arm(t: float) -> None:
            def fire() -> None:
                if handle.cancelled:
                    return
                nxt = t + interval
                if not catch_up and self.clock.now - nxt > TIME_EPS:
                    missed = math.ceil((self.clock.now - t) / interval)
                    nxt = t + missed * interval
                arm(nxt)
                callback(t)

            handle.next_time = t
            handle._event = self.schedule(max(t, self.clock.now), fire,
                                          daemon=True)

        arm(self.clock.now + interval if start is None else start)
        return handle

    # ---- the worker slot ledger ---------------------------------------------

    def register_worker(self, worker: "Worker",
                        ready_at: Optional[float] = None) -> None:
        """Attach a worker to the kernel's slot ledger.

        With ``ready_at``, the worker's slots are occupied until that
        time (provisioning spin-up); otherwise its current slot state is
        adopted as-is.
        """
        if ready_at is not None:
            worker.alive = True
            worker.slot_free_times = [float(ready_at)] * worker.cores
        self._workers[worker.worker_id] = worker
        worker._kernel = self
        self._earliest[worker.worker_id] = None
        heapq.heappush(self._free_heap,
                       (min(worker.slot_free_times), worker.worker_id))

    def deregister_worker(self, worker: "Worker") -> None:
        """Detach a worker (decommission); its slot state is frozen."""
        self._workers.pop(worker.worker_id, None)
        self._earliest.pop(worker.worker_id, None)
        worker._kernel = None

    def occupy_slot(self, worker: "Worker", slot: int, start: float,
                    duration: float) -> float:
        """Charge ``duration`` of occupancy to ``slot`` starting no
        earlier than ``start``; return the finish time."""
        if not worker.alive:
            raise RuntimeError(f"worker {worker.worker_id} is dead")
        if duration < 0:
            raise ValueError(f"task duration must be non-negative: {duration}")
        begin = max(start, worker.slot_free_times[slot])
        finish = begin + duration
        worker.slot_free_times[slot] = finish
        cached = self._earliest.get(worker.worker_id)
        if cached is not None and cached[1] == slot:
            # The cached minimum just moved; recompute lazily.
            self._earliest[worker.worker_id] = None
        return finish

    def run_on_earliest_slot(self, worker: "Worker", not_before: float,
                             duration: float) -> Tuple[float, float]:
        """Occupy the worker's earliest-free slot; returns (start, finish)."""
        slot, free = self.earliest_free_slot(worker)
        begin = max(not_before, free)
        return begin, self.occupy_slot(worker, slot, begin, duration)

    def slot_free_time(self, worker: "Worker", slot: int) -> float:
        return worker.slot_free_times[slot]

    def set_slot_free_time(self, worker: "Worker", slot: int, t: float) -> None:
        """Overwrite one slot's free time (speculation truncates the
        losing attempt; tests preload load shapes)."""
        worker.slot_free_times[slot] = t
        if worker.worker_id in self._earliest:
            self._earliest[worker.worker_id] = None
            # The write may have lowered the worker's minimum: keep the
            # inter-worker heap's lower-bound invariant.
            heapq.heappush(self._free_heap, (t, worker.worker_id))

    def earliest_free_slot(self, worker: "Worker") -> Tuple[int, float]:
        """``(slot, free_time)`` of the worker's earliest-free slot —
        O(1) when the cached minimum is clean."""
        cached = self._earliest.get(worker.worker_id)
        if cached is None:
            times = worker.slot_free_times
            slot = min(range(worker.cores), key=times.__getitem__)
            cached = (times[slot], slot)
            if worker.worker_id in self._earliest:
                self._earliest[worker.worker_id] = cached
        return cached[1], cached[0]

    def earliest_free_time(self, worker: "Worker") -> float:
        return self.earliest_free_slot(worker)[1]

    # ---- worker lifecycle ---------------------------------------------------

    def kill_worker(self, worker: "Worker") -> None:
        """Fail a worker: running tasks are lost, disk state survives a
        restart but cached blocks do not (the block manager tracks those)."""
        worker.alive = False
        worker.slot_free_times = [float("inf")] * worker.cores
        if worker.worker_id in self._earliest:
            self._earliest[worker.worker_id] = (float("inf"), 0)

    def restart_worker(self, worker: "Worker",
                       at: Optional[float] = None) -> None:
        """Bring a worker back with cold caches; slots open at ``at``
        (default: the current frontier)."""
        at = self.clock.now if at is None else at
        worker.alive = True
        worker.slot_free_times = [at] * worker.cores
        if worker.worker_id in self._earliest:
            self._earliest[worker.worker_id] = (at, 0)
            heapq.heappush(self._free_heap, (at, worker.worker_id))

    def reset_worker(self, worker: "Worker", at: float = 0.0) -> None:
        """Return a worker's slot state to pristine (between experiments)."""
        worker.alive = True
        worker.slot_free_times = [at] * worker.cores
        if worker.worker_id in self._earliest:
            self._earliest[worker.worker_id] = (at, 0)
            heapq.heappush(self._free_heap, (at, worker.worker_id))

    def invalidate(self, worker: "Worker") -> None:
        """Mark a worker's cached minimum dirty.  Only needed after an
        out-of-band mutation of ``slot_free_times`` — which production
        code must never do (the authority test greps for it)."""
        if worker.worker_id in self._earliest:
            self._earliest[worker.worker_id] = None
            heapq.heappush(self._free_heap,
                           (min(worker.slot_free_times), worker.worker_id))

    def earliest_free_worker(self) -> Optional[Tuple[int, int, float]]:
        """``(worker_id, slot, free_time)`` of the globally earliest-free
        slot among alive registered workers, or ``None`` when none is.

        Lazy heap query: dead/deregistered entries are discarded, stale
        lower bounds are refreshed in place (``heapreplace``) until the
        top entry matches its worker's true cached minimum.  Ties on
        free time resolve to the smallest worker id — exactly the
        ordering of the O(workers) scan this replaces."""
        heap = self._free_heap
        workers = self._workers
        while heap:
            t, wid = heap[0]
            worker = workers.get(wid)
            if worker is None or not worker.alive:
                heapq.heappop(heap)
                continue
            slot, cur = self.earliest_free_slot(worker)
            if cur != t:
                heapq.heapreplace(heap, (cur, wid))
                continue
            return wid, slot, t
        return None
