"""Discrete-event simulation core.

The engine charges *simulated* time for every physical effect (CPU work,
disk and network transfers, GC pauses, task launches).  Simulated time is
kept in floating-point **seconds**.  Two small primitives are enough for
the whole system:

``SimClock``
    A monotonically advancing clock.  Components read it to timestamp
    metrics and advance it when they know how long an operation took.

``EventQueue``
    A priority queue of timestamped callbacks used by the open-loop
    drivers (job arrival processes, failure injectors, stream sources).
    The task scheduler itself uses slot free-time bookkeeping rather than
    per-task events, which is equivalent and much faster for the job
    shapes in the paper (stages of independent tasks).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t``.

        Moving backwards is a programming error and raises ``ValueError``;
        advancing to the current time is a no-op.
        """
        if t < self._now - 1e-12:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = max(self._now, t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative duration: {dt}")
        self._now += dt
        return self._now

    def reset(self, t: float = 0.0) -> None:
        """Reset the clock (used between independent experiments)."""
        self._now = float(t)


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`, allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventQueue:
    """Priority queue of timestamped callbacks sharing a :class:`SimClock`.

    Events scheduled for the same instant fire in insertion order.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[_ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self.clock.now - 1e-12:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now={self.clock.now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next pending event; return ``False`` if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        # An event may fire late when the clock was advanced past its
        # timestamp by other components (the virtual-time task scheduler
        # does this); never move the clock backwards.
        self.clock.advance_to(max(event.time, self.clock.now))
        event.callback()
        return True

    def run_until(self, end_time: float) -> int:
        """Run events with ``time <= end_time``; return how many ran.

        The clock is left at ``end_time`` (or further, if a callback
        advanced it) even when the queue drains early.
        """
        count = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
            count += 1
        self.clock.advance_to(max(end_time, self.clock.now))
        return count

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue entirely; guard against runaway loops."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(f"event queue did not drain after {max_events} events")
        return count

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
