"""Cost model: translates physical effects into simulated seconds.

Every delay the benchmarks report flows through this module, so the
constants are documented and calibrated against the absolute numbers the
paper reports for its 50-server testbed (Dell R610/R620, 16 GB RAM
executors, GbE network, spinning disks):

* Fig 1(b): loading + hash-partitioning a 700 MB text file over two
  partitions takes ~17 s end to end; the cached follow-up count takes
  ~0.2 s; recomputing from shuffle outputs takes ~9 s.
* Fig 7: per-task launch overhead makes 10^4 partitions slower than 10^2.
* Fig 12: cogrouping six ~800 MB RDDs on 8 executors pushes heaps near
  capacity and GC time explodes superlinearly.

The model is deliberately simple — linear in bytes/records with a convex
GC term — because the paper's effects are first-order: locality decides
whether a stage reads RAM or re-executes a shuffle over disk + network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CostModel:
    """Simulated-time cost parameters.

    All rates are for one executor core.  Sizes are bytes, record counts
    are plain counts, returned costs are seconds.
    """

    #: CPU cost of applying one narrow transformation to one record.
    cpu_per_record: float = 2.0e-7
    #: Extra CPU cost per record on the reduce side of a shuffle
    #: (deserialize + aggregate).
    shuffle_cpu_per_record: float = 4.0e-7
    #: CPU cost per record inside one vectorized columnar kernel
    #: (``repro.columnar``).  Columnar execution amortizes interpreter
    #: dispatch over whole arrays, so the per-record cost is ~25x below
    #: ``cpu_per_record`` — the order-of-magnitude cut Shark reports for
    #: columnar storage + vectorized operators.
    columnar_cpu_per_record: float = 8.0e-9
    #: Fixed cost of launching one columnar kernel over one batch
    #: (dispatch, dtype checks, output allocation).  Keeps tiny batches
    #: from looking free and drives the row-vs-columnar crossover.
    columnar_kernel_overhead: float = 1.0e-4
    #: Sequential disk bandwidth (bytes/s) — reading text files, shuffle
    #: spills, checkpoint writes.  ~120 MB/s spinning disk.
    disk_bytes_per_sec: float = 120e6
    #: Network bandwidth per flow (bytes/s) — remote shuffle fetch.
    #: ~1 GbE with protocol overhead.
    network_bytes_per_sec: float = 90e6
    #: Fixed latency for opening a remote fetch connection.
    network_latency: float = 1.0e-3
    #: Serialization/deserialization throughput (bytes/s).
    serde_bytes_per_sec: float = 400e6
    #: Reading a cached block from local RAM (bytes/s).
    memory_bytes_per_sec: float = 8e9
    #: Zero-copy handoff between co-located executors (bytes/s): when a
    #: shuffle fetch's source and destination share a worker and
    #: ``StarkConfig.zero_copy_handoff`` is on, the block *reference* is
    #: handed over through shared memory (Sparkle's shared-memory
    #: shuffle) instead of being read back from local disk — no disk
    #: pass, no serialization.  Page-remap plus a metadata exchange is
    #: cheaper than a full RAM scan of the payload, hence faster than
    #: ``memory_bytes_per_sec``.
    intra_worker_bytes_per_sec: float = 24e9
    #: Fixed per-task launch cost (scheduling, serialization of the task
    #: closure, executor dispatch).  Drives the right side of Fig 7.
    task_launch_overhead: float = 8.0e-3
    #: Per-task cost paid by the driver for bookkeeping; drives scheduler
    #: saturation when tasks are tiny.
    driver_overhead_per_task: float = 1.2e-3
    #: GC model: baseline fraction of compute time spent in GC when the
    #: heap is relaxed.
    gc_base_fraction: float = 0.04
    #: GC model: pressure knee — above this heap utilisation GC cost grows
    #: superlinearly.
    gc_pressure_knee: float = 0.6
    #: GC model: steepness of the superlinear term.
    gc_pressure_power: float = 3.0
    #: GC model: multiplier of the superlinear term.
    gc_pressure_scale: float = 6.0
    #: Simulated seconds to provision one new executor (container/VM
    #: spin-up + executor registration); a scale-out's new slots only
    #: open this long after the scaling decision (``repro.elastic``).
    worker_spinup_seconds: float = 8.0

    # ---- primitive costs -------------------------------------------------

    def compute_cost(self, records: int) -> float:
        """CPU seconds for a narrow transformation over ``records``."""
        return records * self.cpu_per_record

    def shuffle_reduce_cost(self, records: int) -> float:
        """CPU seconds for the reduce side of a shuffle over ``records``."""
        return records * self.shuffle_cpu_per_record

    def columnar_compute_cost(self, records: int, kernels: int = 1) -> float:
        """CPU seconds for ``kernels`` vectorized kernels over a batch of
        ``records`` rows."""
        return kernels * self.columnar_kernel_overhead \
            + records * self.columnar_cpu_per_record

    def disk_read_cost(self, size_bytes: float) -> float:
        """Seconds to read ``size_bytes`` sequentially from local disk."""
        return size_bytes / self.disk_bytes_per_sec

    def disk_write_cost(self, size_bytes: float) -> float:
        """Seconds to write ``size_bytes`` sequentially to local disk."""
        return size_bytes / self.disk_bytes_per_sec

    def network_cost(self, size_bytes: float) -> float:
        """Seconds to move ``size_bytes`` over one network flow."""
        if size_bytes <= 0:
            return 0.0
        return self.network_latency + size_bytes / self.network_bytes_per_sec

    def serde_cost(self, size_bytes: float) -> float:
        """Seconds to serialize or deserialize ``size_bytes``."""
        return size_bytes / self.serde_bytes_per_sec

    def memory_read_cost(self, size_bytes: float) -> float:
        """Seconds to scan a cached block of ``size_bytes`` from RAM."""
        return size_bytes / self.memory_bytes_per_sec

    def intra_worker_cost(self, size_bytes: float) -> float:
        """Seconds to hand ``size_bytes`` between co-located executors by
        reference (zero-copy shared-memory transfer)."""
        return size_bytes / self.intra_worker_bytes_per_sec

    def gc_cost(self, compute_seconds: float, heap_utilisation: float) -> float:
        """GC seconds charged on top of ``compute_seconds``.

        Below the knee, GC is a small constant fraction of compute.  Above
        it, the fraction grows as ``scale * (u - knee)^power``, modelling
        full-heap collections: at u=0.95 with the defaults the fraction is
        ~0.3, i.e. GC takes a third as long as the work itself — matching
        the white bars of Fig 12 for the 6-RDD cogroup.
        """
        u = min(max(heap_utilisation, 0.0), 1.0)
        fraction = self.gc_base_fraction
        if u > self.gc_pressure_knee:
            over = (u - self.gc_pressure_knee) / (1.0 - self.gc_pressure_knee)
            fraction += self.gc_pressure_scale * (over ** self.gc_pressure_power) \
                * self.gc_base_fraction * 2.0
        return compute_seconds * fraction


@dataclass(frozen=True)
class HeterogeneityModel:
    """Worker heterogeneity + transient-fault distributions.

    The default model is the identity: every worker runs at unit speed,
    never slows down, and never fails — applying it changes nothing, so
    existing experiments are bit-identical.  Non-trivial settings are
    sampled onto a cluster via :meth:`repro.cluster.Cluster.apply_heterogeneity`
    (which draws from the cluster's seeded RNG for reproducibility):

    * a ``slow_worker_fraction`` of workers runs *all* tasks at
      ``slow_worker_speed`` × their nominal duration (old hardware,
      degraded disks);
    * every worker independently suffers transient slowdown *windows*
      (JVM full GCs, noisy neighbours): window starts form a Poisson
      process with rate ``transient_rate`` per simulated second over
      ``[0, horizon)``, each lasting ``transient_duration`` seconds
      during which work progresses ``transient_factor`` × slower;
    * each task attempt fails outright with ``task_failure_prob`` and
      each remote shuffle fetch fails with ``fetch_failure_prob``
      (these two are consumed by the scheduler/executor via
      ``StarkConfig``-style knobs; see ``docs/FAULT_TOLERANCE.md``).
    """

    #: Fraction of workers sampled as uniformly slow.
    slow_worker_fraction: float = 0.0
    #: Wall-time multiplier (>= 1) for slow workers.
    slow_worker_speed: float = 1.0
    #: Transient slowdown windows per worker per simulated second.
    transient_rate: float = 0.0
    #: Length of one transient slowdown window, seconds.
    transient_duration: float = 0.0
    #: Wall-time multiplier (>= 1) while inside a window.
    transient_factor: float = 1.0
    #: Windows are pre-sampled over ``[0, horizon)`` simulated seconds.
    horizon: float = 0.0
    #: Per-attempt probability that a task fails mid-run.
    task_failure_prob: float = 0.0
    #: Per-remote-fetch probability of a shuffle fetch failure.
    fetch_failure_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.slow_worker_speed < 1.0 or self.transient_factor < 1.0:
            raise ValueError("slowdown multipliers must be >= 1")
        for name in ("slow_worker_fraction", "task_failure_prob",
                     "fetch_failure_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability: {p}")
        if self.transient_rate < 0 or self.transient_duration < 0 \
                or self.horizon < 0:
            raise ValueError("transient window parameters must be >= 0")

    def sample_speed(self, rng) -> float:
        """Draw one worker's constant speed multiplier."""
        if self.slow_worker_fraction > 0 \
                and rng.random() < self.slow_worker_fraction:
            return self.slow_worker_speed
        return 1.0

    def sample_slowdowns(self, rng):
        """Draw one worker's transient windows: ``[(start, end, factor)]``."""
        windows = []
        if self.transient_rate <= 0 or self.transient_duration <= 0 \
                or self.transient_factor <= 1.0:
            return windows
        t = rng.expovariate(self.transient_rate)
        while t < self.horizon:
            windows.append((t, t + self.transient_duration,
                            self.transient_factor))
            t += self.transient_duration
            t += rng.expovariate(self.transient_rate)
        return windows


class SimStr(str):
    """A string carrying a *simulated* byte size.

    Workload generators emit short real strings standing in for large
    records (a 40-byte line simulating a 40 kB one): all string operations
    work normally, but the :class:`RecordSizer` accounts ``sim_size``
    bytes.  This keeps Python-side memory and CPU proportional to the
    record *count* while disk/network/GC costs follow the simulated
    *bytes* — the quantity the paper's effects depend on.
    """

    __slots__ = ("sim_size",)

    def __new__(cls, value: str, sim_size: Optional[int] = None) -> "SimStr":
        self = super().__new__(cls, value)
        self.sim_size = len(value) if sim_size is None else int(sim_size)
        return self


@dataclass(frozen=True)
class RecordSizer:
    """Maps records to byte sizes for cache/shuffle/checkpoint accounting.

    Real Spark measures block sizes after serialization; we approximate a
    record's footprint from its Python shape.  A fixed ``base`` covers
    object headers; strings/bytes add their length; tuples recurse.  Any
    object exposing a ``sim_size`` attribute declares its own serialized
    size (see :class:`SimStr`).

    ``memory_overhead`` is the deserialized-objects blow-up factor: a JVM
    heap holds strings/boxed objects at ~2-3x their serialized size, so
    cached blocks occupy ``memory_overhead`` times the serialized bytes.
    This single constant is also why Fig 17 sees a constant ratio between
    cached RDD sizes and checkpoint sizes.
    """

    base: int = 24
    memory_overhead: float = 2.5

    def size_of(self, record: object) -> int:
        return self.base + self._payload(record)

    def _payload(self, value: object) -> int:
        declared = getattr(value, "sim_size", None)
        if declared is not None:
            return int(declared)
        if value is None or isinstance(value, (bool, int, float)):
            return 8
        if isinstance(value, (str, bytes)):
            return len(value)
        if isinstance(value, (tuple, list)):
            return sum(self._payload(v) for v in value) + 8 * len(value)
        if isinstance(value, dict):
            return sum(self._payload(k) + self._payload(v) for k, v in value.items())
        return 48  # opaque object

    def size_of_partition(self, records) -> int:
        return sum(self.size_of(r) for r in records)

    def in_memory_size(self, records) -> float:
        """Deserialized (heap) footprint of a cached partition.

        A record exposing ``sim_memory_size`` declares its own heap
        footprint and skips the deserialized-objects blow-up — columnar
        batches (``repro.columnar``) sit in contiguous typed arrays, so
        their in-memory size *is* their byte size plus one object header.
        Everything else pays ``memory_overhead`` on its serialized size.
        """
        total = 0.0
        for r in records:
            declared = getattr(r, "sim_memory_size", None)
            if declared is not None:
                total += self.base + declared
            else:
                total += self.size_of(r) * self.memory_overhead
        return total
