"""Workers (executors) of the simulated cluster.

A :class:`Worker` models one executor JVM: a fixed number of task slots
(cores), a RAM budget shared by the block cache and task working sets, and
a local disk holding shuffle map outputs.  Slot occupancy is tracked as
per-slot *free times* in simulated seconds — the scheduler assigns a task
to a slot by picking the earliest-free slot and pushing its free time
forward by the task duration.

Workers are passive state holders: every **mutation** of slot state
(occupy, kill, restart, provision) goes through the
:class:`~repro.cluster.events.SimKernel` a worker is registered with —
the single time authority — which also maintains the cached
earliest-free-slot index that makes the read path O(1).  The read
methods here delegate to the kernel when attached and fall back to a
linear scan for bare, unregistered workers (unit-test convenience).

Workers are heterogeneous: a constant ``speed`` multiplier (>= 1 means
slower hardware) and a list of transient ``slowdowns`` windows
``(start, end, factor)`` — GC pauses, noisy neighbours — stretch a
task's *wall* duration beyond its nominal work
(:meth:`Worker.wall_duration`).  Defaults are the identity, so a
homogeneous cluster behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .events import TIME_EPS


@dataclass
class Worker:
    """One executor: ``cores`` task slots and ``memory_bytes`` of RAM."""

    worker_id: int
    cores: int = 4
    memory_bytes: float = 12e9
    hostname: str = ""
    #: Constant wall-time multiplier: 1.0 is nominal, 2.0 runs everything
    #: twice as slowly.
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"worker needs at least one core: {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError(f"worker needs positive memory: {self.memory_bytes}")
        if self.speed < 1.0:
            raise ValueError(f"worker speed multiplier must be >= 1: {self.speed}")
        if not self.hostname:
            self.hostname = f"worker-{self.worker_id}"
        # Absolute simulated time at which each slot becomes idle.  This
        # declaration is the one blessed assignment outside the kernel;
        # all subsequent writes go through SimKernel APIs.
        self.slot_free_times: List[float] = [0.0] * self.cores
        self.alive: bool = True
        # Shuffle map outputs persisted on this worker's local disk:
        # (shuffle_id, map_partition, reduce_partition) -> size_bytes.
        self.shuffle_disk: Dict[Tuple[int, int, int], float] = {}
        # Transient slowdown windows (start, end, factor), factor >= 1.
        self.slowdowns: List[Tuple[float, float, float]] = []
        # Per-worker task failure probability; None defers to the
        # config-level ``task_failure_prob``.
        self.failure_prob: Optional[float] = None
        # Set by SimKernel.register_worker; reads delegate to the
        # kernel's cached index when attached.
        self._kernel = None

    # ---- slot views (mutations live in SimKernel) --------------------------

    def earliest_free_slot(self) -> Tuple[int, float]:
        """Return ``(slot_index, free_time)`` of the earliest-free slot."""
        if self._kernel is not None:
            return self._kernel.earliest_free_slot(self)
        slot = min(range(self.cores), key=lambda i: self.slot_free_times[i])
        return slot, self.slot_free_times[slot]

    def earliest_free_time(self) -> float:
        if self._kernel is not None:
            return self._kernel.earliest_free_time(self)
        return min(self.slot_free_times)

    def wall_duration(self, begin: float, work_seconds: float) -> float:
        """Wall-clock seconds to complete ``work_seconds`` of nominal work
        starting at ``begin`` on this worker.

        The constant ``speed`` multiplier stretches all work; transient
        ``slowdowns`` windows stretch whatever portion of the run overlaps
        them by their factor (piecewise integration, so a task that
        straddles a window pays the slowdown only for the overlap).  On a
        nominal worker with no windows this is the identity.
        """
        if work_seconds <= 0:
            return 0.0
        wall = work_seconds * self.speed
        if not self.slowdowns:
            return wall
        t = begin
        remaining = wall
        for start, end, factor in sorted(self.slowdowns):
            if remaining <= 0 or end <= t:
                continue
            if start > t:
                gap = start - t
                if remaining <= gap:
                    t += remaining
                    remaining = 0.0
                    break
                t = start
                remaining -= gap
            # Inside the window work progresses ``factor`` times slower.
            progress = (end - t) / factor
            if remaining <= progress:
                t += remaining * factor
                remaining = 0.0
                break
            t = end
            remaining -= progress
        result = (t + remaining) - begin
        # Tasks that never touched a window must pay exactly ``wall`` —
        # the piecewise walk above leaves float residue that would
        # otherwise masquerade as straggler time.
        return wall if abs(result - wall) < TIME_EPS else result

    def pending_work_until(self, now: float) -> float:
        """Total queued seconds of slot occupancy beyond ``now``."""
        return sum(max(0.0, t - now) for t in self.slot_free_times)

    def idle_slots(self, now: float) -> int:
        """Number of slots free at simulated time ``now``."""
        return sum(1 for t in self.slot_free_times if t <= now + TIME_EPS)

    def has_idle_slot(self, now: float) -> bool:
        """Whether any slot is free at ``now`` — equivalent to
        ``idle_slots(now) > 0`` but O(1) via the kernel's cached
        earliest-free slot instead of an O(cores) scan.  The scheduler's
        offer construction calls this once per worker per launch, which
        made the scan version an O(workers x cores) hot path."""
        return self.earliest_free_time() <= now + TIME_EPS
