"""Workers (executors) of the simulated cluster.

A :class:`Worker` models one executor JVM: a fixed number of task slots
(cores), a RAM budget shared by the block cache and task working sets, and
a local disk holding shuffle map outputs.  Slot occupancy is tracked as
per-slot *free times* in simulated seconds — the scheduler assigns a task
to a slot by picking the earliest-free slot and pushing its free time
forward by the task duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Worker:
    """One executor: ``cores`` task slots and ``memory_bytes`` of RAM."""

    worker_id: int
    cores: int = 4
    memory_bytes: float = 12e9
    hostname: str = ""

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"worker needs at least one core: {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError(f"worker needs positive memory: {self.memory_bytes}")
        if not self.hostname:
            self.hostname = f"worker-{self.worker_id}"
        # Absolute simulated time at which each slot becomes idle.
        self.slot_free_times: List[float] = [0.0] * self.cores
        self.alive: bool = True
        # Shuffle map outputs persisted on this worker's local disk:
        # (shuffle_id, map_partition, reduce_partition) -> size_bytes.
        self.shuffle_disk: Dict[Tuple[int, int, int], float] = {}

    # ---- slot management --------------------------------------------------

    def earliest_free_slot(self) -> Tuple[int, float]:
        """Return ``(slot_index, free_time)`` of the earliest-free slot."""
        slot = min(range(self.cores), key=lambda i: self.slot_free_times[i])
        return slot, self.slot_free_times[slot]

    def earliest_free_time(self) -> float:
        return min(self.slot_free_times)

    def occupy_slot(self, slot: int, start: float, duration: float) -> float:
        """Run a task of ``duration`` on ``slot`` starting no earlier than
        ``start``; return the finish time."""
        if not self.alive:
            raise RuntimeError(f"worker {self.worker_id} is dead")
        if duration < 0:
            raise ValueError(f"task duration must be non-negative: {duration}")
        begin = max(start, self.slot_free_times[slot])
        finish = begin + duration
        self.slot_free_times[slot] = finish
        return finish

    def run_task(self, not_before: float, duration: float) -> Tuple[float, float]:
        """Convenience: run on the earliest-free slot.

        Returns ``(start_time, finish_time)``.
        """
        slot, free = self.earliest_free_slot()
        begin = max(not_before, free)
        finish = self.occupy_slot(slot, begin, duration)
        return begin, finish

    def pending_work_until(self, now: float) -> float:
        """Total queued seconds of slot occupancy beyond ``now``."""
        return sum(max(0.0, t - now) for t in self.slot_free_times)

    def idle_slots(self, now: float) -> int:
        """Number of slots free at simulated time ``now``."""
        return sum(1 for t in self.slot_free_times if t <= now + 1e-12)

    # ---- failure ----------------------------------------------------------

    def kill(self, now: float) -> None:
        """Fail this worker: running tasks are lost, disk state survives a
        restart but cached blocks do not (the block manager tracks those)."""
        self.alive = False
        self.slot_free_times = [float("inf")] * self.cores

    def restart(self, now: float) -> None:
        """Bring the worker back with cold caches."""
        self.alive = True
        self.slot_free_times = [now] * self.cores

    def reset(self) -> None:
        """Return to pristine state (between experiments)."""
        self.alive = True
        self.slot_free_times = [0.0] * self.cores
        self.shuffle_disk.clear()
