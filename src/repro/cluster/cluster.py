"""The simulated cluster: a set of workers plus shared infrastructure."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from .cost_model import CostModel, RecordSizer
from .events import EventQueue, SimClock
from .worker import Worker


class Cluster:
    """A set of :class:`Worker` executors sharing a clock and cost model.

    The paper's testbed runs 40 Spark workers; the default here matches
    that, scaled down in cores/RAM so that laptop-scale workloads exercise
    the same memory-pressure regimes.
    """

    def __init__(
        self,
        num_workers: int = 8,
        cores_per_worker: int = 4,
        memory_per_worker: float = 12e9,
        cost_model: Optional[CostModel] = None,
        sizer: Optional[RecordSizer] = None,
        seed: int = 0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"cluster needs at least one worker: {num_workers}")
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.sizer = sizer if sizer is not None else RecordSizer()
        self.rng = random.Random(seed)
        self.workers: Dict[int, Worker] = {
            wid: Worker(wid, cores=cores_per_worker, memory_bytes=memory_per_worker)
            for wid in range(num_workers)
        }

    # ---- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def worker_ids(self) -> List[int]:
        return sorted(self.workers)

    def alive_workers(self) -> List[Worker]:
        return [w for w in self.workers.values() if w.alive]

    def alive_worker_ids(self) -> List[int]:
        return [w.worker_id for w in self.alive_workers()]

    def get_worker(self, worker_id: int) -> Worker:
        try:
            return self.workers[worker_id]
        except KeyError:
            raise KeyError(f"unknown worker id {worker_id}") from None

    def total_cores(self) -> int:
        return sum(w.cores for w in self.alive_workers())

    def earliest_free_worker(self, candidates: Optional[Sequence[int]] = None) -> int:
        """Worker (among ``candidates`` or all alive) whose next slot frees
        soonest; ties broken by id for determinism."""
        ids = list(candidates) if candidates is not None else self.alive_worker_ids()
        ids = [i for i in ids if self.workers[i].alive]
        if not ids:
            raise RuntimeError("no alive workers available")
        return min(ids, key=lambda i: (self.workers[i].earliest_free_time(), i))

    # ---- failure injection --------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        self.get_worker(worker_id).kill(self.clock.now)

    def restart_worker(self, worker_id: int) -> None:
        self.get_worker(worker_id).restart(self.clock.now)

    # ---- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Reset clock and all workers (between experiments)."""
        self.clock.reset()
        for w in self.workers.values():
            w.reset()
