"""The simulated cluster: a set of workers plus shared infrastructure."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .cost_model import CostModel, HeterogeneityModel, RecordSizer
from .events import SimKernel
from .worker import Worker


class Cluster:
    """A set of :class:`Worker` executors sharing a kernel and cost model.

    The paper's testbed runs 40 Spark workers; the default here matches
    that, scaled down in cores/RAM so that laptop-scale workloads exercise
    the same memory-pressure regimes.

    All time and slot state is owned by the cluster's
    :class:`~repro.cluster.events.SimKernel` (``self.kernel``); the
    ``clock`` and ``events`` attributes are views of it kept for
    compatibility (``events`` *is* the kernel).
    """

    def __init__(
        self,
        num_workers: int = 8,
        cores_per_worker: int = 4,
        memory_per_worker: float = 12e9,
        cost_model: Optional[CostModel] = None,
        sizer: Optional[RecordSizer] = None,
        seed: int = 0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"cluster needs at least one worker: {num_workers}")
        self.kernel = SimKernel()
        self.clock = self.kernel.clock
        #: The kernel doubles as the event queue (one heap for arrivals,
        #: failures, timers and batch ticks).
        self.events = self.kernel
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.sizer = sizer if sizer is not None else RecordSizer()
        self.rng = random.Random(seed)
        self.workers: Dict[int, Worker] = {
            wid: Worker(wid, cores=cores_per_worker, memory_bytes=memory_per_worker)
            for wid in range(num_workers)
        }
        for worker in self.workers.values():
            self.kernel.register_worker(worker)

    # ---- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def worker_ids(self) -> List[int]:
        return sorted(self.workers)

    def alive_workers(self) -> List[Worker]:
        return [w for w in self.workers.values() if w.alive]

    def alive_worker_ids(self) -> List[int]:
        return [w.worker_id for w in self.alive_workers()]

    def get_worker(self, worker_id: int) -> Worker:
        try:
            return self.workers[worker_id]
        except KeyError:
            raise KeyError(f"unknown worker id {worker_id}") from None

    def total_cores(self) -> int:
        return sum(w.cores for w in self.alive_workers())

    def earliest_free_worker(self, candidates: Optional[Sequence[int]] = None) -> int:
        """Worker (among ``candidates`` or all alive) whose next slot frees
        soonest; ties broken by id for determinism.  With no candidate
        filter this is O(log workers) via the kernel's inter-worker free
        heap; a candidate subset falls back to an O(candidates) scan of
        the kernel's cached per-worker minima."""
        if candidates is None:
            found = self.kernel.earliest_free_worker()
            if found is None:
                raise RuntimeError("no alive workers available")
            return found[0]
        ids = [i for i in candidates if self.workers[i].alive]
        if not ids:
            raise RuntimeError("no alive workers available")
        kernel = self.kernel
        return min(ids, key=lambda i: (kernel.earliest_free_time(self.workers[i]), i))

    # ---- elastic membership -------------------------------------------------

    def add_worker(
        self,
        cores: Optional[int] = None,
        memory_bytes: Optional[float] = None,
        ready_at: Optional[float] = None,
    ) -> int:
        """Provision a new worker; returns its id (max existing + 1).

        ``cores``/``memory_bytes`` default to the shape of the
        lowest-numbered existing worker (homogeneous fleets).  The new
        worker's slots are occupied until ``ready_at`` (default: now) —
        the caller charges the spin-up delay by passing
        ``now + cost_model.worker_spinup_seconds``.
        """
        template = self.workers[min(self.workers)] if self.workers else None
        if cores is None:
            cores = template.cores if template is not None else 4
        if memory_bytes is None:
            memory_bytes = template.memory_bytes if template is not None else 12e9
        worker_id = max(self.workers) + 1 if self.workers else 0
        worker = Worker(worker_id, cores=cores, memory_bytes=memory_bytes)
        ready = self.clock.now if ready_at is None else ready_at
        self.kernel.register_worker(worker, ready_at=ready)
        self.workers[worker_id] = worker
        return worker_id

    def remove_worker(self, worker_id: int) -> Worker:
        """Decommission a worker: drop it from the membership entirely
        (unlike :meth:`kill_worker`, which keeps a dead entry around for
        restart).  The caller is responsible for draining/migrating its
        state first — see ``repro.elastic.ResourceManager``."""
        worker = self.get_worker(worker_id)
        self.kernel.deregister_worker(worker)
        return self.workers.pop(worker_id)

    # ---- heterogeneity ------------------------------------------------------

    def apply_heterogeneity(self, model: HeterogeneityModel) -> None:
        """Sample per-worker speeds and transient slowdown windows from
        ``model`` using the cluster's seeded RNG.

        Idempotent in distribution (each call resamples); call once after
        construction, before running workloads.  The identity model leaves
        every worker untouched.
        """
        for wid in sorted(self.workers):
            worker = self.workers[wid]
            worker.speed = model.sample_speed(self.rng)
            worker.slowdowns = model.sample_slowdowns(self.rng)

    # ---- failure injection --------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        self.kernel.kill_worker(self.get_worker(worker_id))

    def restart_worker(self, worker_id: int) -> None:
        self.kernel.restart_worker(self.get_worker(worker_id))

    # ---- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Reset kernel (clock + heap) and all workers (between experiments)."""
        self.kernel.reset()
        for w in self.workers.values():
            self.kernel.reset_worker(w)
            w.shuffle_disk.clear()
