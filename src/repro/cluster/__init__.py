"""Simulated cluster substrate: workers, clock, cost model, queueing."""

from .cluster import Cluster
from .cost_model import CostModel, HeterogeneityModel, RecordSizer
from .events import EventHandle, EventQueue, SimClock
from .worker import Worker

__all__ = [
    "Cluster",
    "CostModel",
    "HeterogeneityModel",
    "RecordSizer",
    "EventHandle",
    "EventQueue",
    "SimClock",
    "Worker",
]
