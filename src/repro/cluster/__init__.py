"""Simulated cluster substrate: workers, kernel, cost model, queueing."""

from .cluster import Cluster
from .cost_model import CostModel, HeterogeneityModel, RecordSizer
from .events import (
    EventHandle,
    EventQueue,
    SimClock,
    SimKernel,
    TIME_EPS,
    TimerHandle,
)
from .worker import Worker

__all__ = [
    "Cluster",
    "CostModel",
    "HeterogeneityModel",
    "RecordSizer",
    "EventHandle",
    "EventQueue",
    "SimClock",
    "SimKernel",
    "TIME_EPS",
    "TimerHandle",
    "Worker",
]
