"""Open-loop job arrival driver for throughput experiments (§IV-E).

Figures 19 and 20 measure *response time under load*: jobs arrive at a
controlled rate (fixed rate for Fig 19, trace-replay diurnal rate for
Fig 20) and the measured delay includes queueing behind earlier jobs.
Because the engine tracks per-slot free times in simulated seconds,
queueing arises naturally: a job submitted at arrival time ``t`` can only
use slots after the work already queued on them.

``JobDriver`` therefore just spaces out ``submit_time`` values, invokes a
caller-supplied job thunk for each arrival, and aggregates response-time
statistics, including the capacity search used to report "queries per
second the system could handle when keeping the delay below 800 ms".
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from .events import SimClock

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext

#: Signature of a job thunk: (arrival_time, job_index) -> finish_time.
JobFn = Callable[[float, int], float]


@dataclass
class ArrivalResult:
    """Response-time record of one job."""

    arrival: float
    finish: float

    @property
    def delay(self) -> float:
        return self.finish - self.arrival


@dataclass
class LoadResult:
    """Aggregate of one constant-rate run."""

    rate_jobs_per_sec: float
    results: List[ArrivalResult] = field(default_factory=list)

    @property
    def mean_delay(self) -> float:
        if not self.results:
            return 0.0
        return statistics.fmean(r.delay for r in self.results)

    @property
    def p95_delay(self) -> float:
        if not self.results:
            return 0.0
        delays = sorted(r.delay for r in self.results)
        return delays[min(len(delays) - 1, int(len(delays) * 0.95))]

    @property
    def max_delay(self) -> float:
        return max((r.delay for r in self.results), default=0.0)


class JobDriver:
    """Submits jobs open-loop and records response times."""

    def __init__(self, context: "StarkContext", seed: int = 0) -> None:
        self.context = context
        self.rng = random.Random(seed)

    def run_constant_rate(
        self,
        job: JobFn,
        rate_jobs_per_sec: float,
        num_jobs: int,
        start_time: Optional[float] = None,
        poisson: bool = True,
    ) -> LoadResult:
        """Submit ``num_jobs`` jobs at ``rate_jobs_per_sec``.

        Arrivals are Poisson by default (deterministic spacing with
        ``poisson=False``).  Each job's delay is ``finish - arrival``,
        so saturation shows up as unbounded queueing delay.
        """
        if rate_jobs_per_sec <= 0:
            raise ValueError(f"rate must be positive: {rate_jobs_per_sec}")
        clock = self.context.cluster.clock
        t = start_time if start_time is not None else clock.now
        out = LoadResult(rate_jobs_per_sec)
        for i in range(num_jobs):
            gap = (
                self.rng.expovariate(rate_jobs_per_sec)
                if poisson else 1.0 / rate_jobs_per_sec
            )
            t += gap
            clock.advance_to(max(clock.now, t))
            finish = job(t, i)
            out.results.append(ArrivalResult(arrival=t, finish=finish))
        return out

    def run_arrivals(self, job: JobFn, arrivals: Sequence[float]) -> LoadResult:
        """Submit one job per explicit arrival timestamp (trace replay)."""
        clock = self.context.cluster.clock
        out = LoadResult(rate_jobs_per_sec=0.0)
        for i, t in enumerate(sorted(arrivals)):
            clock.advance_to(max(clock.now, t))
            finish = job(t, i)
            out.results.append(ArrivalResult(arrival=t, finish=finish))
        return out


def find_max_throughput(
    run_at_rate: Callable[[float], LoadResult],
    delay_cap: float = 0.8,
    lo: float = 1.0,
    hi: float = 512.0,
    tolerance: float = 0.15,
) -> float:
    """Largest rate whose mean delay stays under ``delay_cap``.

    Binary search over the rate axis; ``run_at_rate`` must build a fresh
    system per probe (warm-cache state must not leak between rates).
    """
    if not run_at_rate(lo).mean_delay < delay_cap:
        return 0.0
    while run_at_rate(hi).mean_delay < delay_cap:
        hi *= 2
        if hi > 1e5:
            return hi
    while (hi - lo) / hi > tolerance:
        mid = (lo + hi) / 2
        if run_at_rate(mid).mean_delay < delay_cap:
            lo = mid
        else:
            hi = mid
    return lo
