"""Open-loop job arrival driver for throughput experiments (§IV-E).

Figures 19 and 20 measure *response time under load*: jobs arrive at a
controlled rate (fixed rate for Fig 19, trace-replay diurnal rate for
Fig 20) and the measured delay includes queueing behind earlier jobs.
Because the engine tracks per-slot free times in simulated seconds,
queueing arises naturally: a job submitted at arrival time ``t`` can only
use slots after the work already queued on them.

``JobDriver`` therefore just spaces out ``submit_time`` values, invokes a
caller-supplied job thunk for each arrival, and aggregates response-time
statistics, including the capacity search used to report "queries per
second the system could handle when keeping the delay below 800 ms".
"""

from __future__ import annotations

import heapq
import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from ..obs.events import JobShed

if TYPE_CHECKING:  # pragma: no cover
    from ..elastic.manager import ResourceManager
    from ..engine.context import StarkContext

#: Signature of a job thunk: (arrival_time, job_index) -> finish_time.
JobFn = Callable[[float, int], float]

#: Pluggable admission predicate: ``(arrival_time, job_index, pending)
#: -> admit?``.  Generalizes the built-in ``max_pending_jobs`` bound —
#: the multi-tenant service layer supplies per-tenant policies here.
AdmissionFn = Callable[[float, int, int], bool]


def nearest_rank(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    The smallest value with at least ``pct`` percent of the sample at or
    below it, i.e. rank ``ceil(n * pct / 100)``.  (Truncating
    ``int(n * pct / 100)`` over-shoots by one whole rank whenever
    ``n * pct`` divides evenly — p95 of twenty samples returned the
    maximum.)  Shared by ``MetricsCollector.percentile_makespan`` and
    :class:`LoadResult`.
    """
    if not sorted_values:
        return 0.0
    rank = math.ceil(len(sorted_values) * pct / 100.0)
    idx = min(len(sorted_values) - 1, max(0, rank - 1))
    return sorted_values[idx]


@dataclass
class ArrivalResult:
    """Response-time record of one job."""

    arrival: float
    finish: float

    @property
    def delay(self) -> float:
        return self.finish - self.arrival


@dataclass
class LoadResult:
    """Aggregate of one constant-rate run."""

    rate_jobs_per_sec: float
    results: List[ArrivalResult] = field(default_factory=list)
    #: Jobs rejected by admission control (``max_pending_jobs``).
    shed_jobs: int = 0

    @property
    def offered_jobs(self) -> int:
        """Arrivals offered to the system: completed + shed."""
        return len(self.results) + self.shed_jobs

    @property
    def mean_delay(self) -> float:
        if not self.results:
            return 0.0
        return statistics.fmean(r.delay for r in self.results)

    def delay_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of the response-time sample."""
        return nearest_rank(sorted(r.delay for r in self.results), pct)

    @property
    def p95_delay(self) -> float:
        return self.delay_percentile(95.0)

    @property
    def p99_delay(self) -> float:
        return self.delay_percentile(99.0)

    @property
    def max_delay(self) -> float:
        return max((r.delay for r in self.results), default=0.0)

    def merge(self, other: "LoadResult") -> None:
        """Fold another run's records in (multi-window experiments)."""
        self.results.extend(other.results)
        self.shed_jobs += other.shed_jobs


class JobDriver:
    """Submits jobs open-loop and records response times.

    Arrivals are scheduled as events on the cluster's
    :class:`~repro.cluster.events.SimKernel` and replayed through its
    event loop, so they interleave deterministically with armed failures
    and periodic policy timers.  Jobs still execute synchronously inside
    their arrival event (the virtual-time task scheduler), which pushes
    the clock frontier ahead of later arrivals under saturation; those
    arrivals then fire at the frontier while keeping their own nominal
    arrival timestamps — queueing delay arises exactly as before.

    Two optional elasticity hooks (``repro.elastic``):

    * ``max_pending_jobs`` bounds the in-system job count (submitted,
      not yet finished).  An arrival finding the queue at the bound is
      *shed* — counted in ``LoadResult.shed_jobs`` and announced as a
      :class:`~repro.obs.events.JobShed` event — so saturation degrades
      to rejected jobs instead of unbounded queueing delay.
      ``admission_fn`` generalizes the bound to an arbitrary predicate
      (the service layer's per-tenant admission control); when both are
      given, an arrival must pass both.
    * ``resource_manager`` is told every completion (feeding the
      latency-SLO policy's response-time window) and handed this
      driver's :meth:`pending_jobs` as its backlog source; scaling
      itself runs on the manager's periodic kernel timer, not at
      arrival epochs.
    """

    def __init__(
        self,
        context: "StarkContext",
        seed: int = 0,
        resource_manager: Optional["ResourceManager"] = None,
        max_pending_jobs: Optional[int] = None,
        admission_fn: Optional[AdmissionFn] = None,
    ) -> None:
        if max_pending_jobs is not None and max_pending_jobs < 1:
            raise ValueError(
                f"max_pending_jobs must be at least 1: {max_pending_jobs}")
        self.context = context
        self.rng = random.Random(seed)
        self.resource_manager = resource_manager
        if resource_manager is not None and hasattr(resource_manager,
                                                    "bind_pending_jobs"):
            resource_manager.bind_pending_jobs(self.pending_jobs)
        self.max_pending_jobs = max_pending_jobs
        self.admission_fn = admission_fn
        #: Finish times of submitted jobs still in the system (min-heap);
        #: survives across run_* calls so multi-window replays carry
        #: their backlog over.
        self._in_flight: List[float] = []
        self._job_index = 0

    def pending_jobs(self, now: float) -> int:
        """Jobs submitted but not finished at ``now``."""
        while self._in_flight and self._in_flight[0] <= now:
            heapq.heappop(self._in_flight)
        return len(self._in_flight)

    def _schedule_arrivals(self, out: LoadResult, job: JobFn,
                           arrivals: Sequence[float]) -> float:
        """Post one kernel event per arrival; returns the last timestamp.

        An arrival the frontier has already passed (a previous job ran
        long) fires immediately but keeps its nominal timestamp ``t`` —
        insertion order preserves arrival order among clamped events.
        """
        kernel = self.context.cluster.kernel
        now = kernel.now
        last = now
        batch = []
        for t in arrivals:
            batch.append((max(t, now),
                          lambda t=t: self._submit(out, job, t)))
            last = max(last, t)
        # One heapify for the whole flood instead of per-arrival pushes;
        # sequence numbers are assigned in list order, so delivery order
        # is identical to the per-event loop this replaces.
        kernel.schedule_many(batch)
        return last

    def _submit(self, out: LoadResult, job: JobFn, t: float) -> None:
        pending = self.pending_jobs(t)
        index = self._job_index
        self._job_index += 1
        shed = (self.max_pending_jobs is not None
                and pending >= self.max_pending_jobs)
        if not shed and self.admission_fn is not None:
            shed = not self.admission_fn(t, index, pending)
        if shed:
            out.shed_jobs += 1
            bus = self.context.event_bus
            if bus.active:
                bus.post(JobShed(time=t, job_index=index,
                                 pending_jobs=pending))
            return
        finish = job(t, index)
        heapq.heappush(self._in_flight, finish)
        out.results.append(ArrivalResult(arrival=t, finish=finish))
        if self.resource_manager is not None:
            self.resource_manager.on_job_completed(t, finish)

    def run_constant_rate(
        self,
        job: JobFn,
        rate_jobs_per_sec: float,
        num_jobs: int,
        start_time: Optional[float] = None,
        poisson: bool = True,
    ) -> LoadResult:
        """Submit ``num_jobs`` jobs at ``rate_jobs_per_sec``.

        Arrivals are Poisson by default (deterministic spacing with
        ``poisson=False``).  Each job's delay is ``finish - arrival``,
        so saturation shows up as unbounded queueing delay.
        """
        if rate_jobs_per_sec <= 0:
            raise ValueError(f"rate must be positive: {rate_jobs_per_sec}")
        kernel = self.context.cluster.kernel
        t = start_time if start_time is not None else kernel.now
        arrivals = []
        for _ in range(num_jobs):
            gap = (
                self.rng.expovariate(rate_jobs_per_sec)
                if poisson else 1.0 / rate_jobs_per_sec
            )
            t += gap
            arrivals.append(t)
        out = LoadResult(rate_jobs_per_sec)
        last = self._schedule_arrivals(out, job, arrivals)
        kernel.run_until(max(last, kernel.now))
        return out

    def run_arrivals(self, job: JobFn, arrivals: Sequence[float]) -> LoadResult:
        """Submit one job per explicit arrival timestamp (trace replay)."""
        kernel = self.context.cluster.kernel
        out = LoadResult(rate_jobs_per_sec=0.0)
        last = self._schedule_arrivals(out, job, sorted(arrivals))
        kernel.run_until(max(last, kernel.now))
        return out


def find_max_throughput(
    run_at_rate: Callable[[float], LoadResult],
    delay_cap: float = 0.8,
    lo: float = 1.0,
    hi: float = 512.0,
    tolerance: float = 0.15,
) -> float:
    """Largest rate whose mean delay stays under ``delay_cap``.

    Binary search over the rate axis; ``run_at_rate`` must build a fresh
    system per probe (warm-cache state must not leak between rates).
    """
    if not run_at_rate(lo).mean_delay < delay_cap:
        return 0.0
    while run_at_rate(hi).mean_delay < delay_cap:
        hi *= 2
        if hi > 1e5:
            return hi
    while (hi - lo) / hi > tolerance:
        mid = (lo + hi) / 2
        if run_at_rate(mid).mean_delay < delay_cap:
            lo = mid
        else:
            hi = mid
    return lo
