"""Edge checkpointing baseline (Tachyon's algorithm, compared in §IV-D).

Tachyon's Edge algorithm checkpoints the entire most-recent level of the
DAG — all *leaf* RDDs — whenever it decides to persist.  The paper's
variant (and ours) triggers proactively: whenever any uncheckpointed path
exceeds the recovery bound ``r``, every current leaf is checkpointed.

This guarantees bounded recovery delay but ignores costs: a huge leaf
(``jall`` in the Fig 16 application) is persisted even when a small
upstream RDD (``acnt``) would break the same violating paths — which is
exactly why Fig 18 shows Edge writing several times more data than the
optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

from .checkpoint_optimizer import CheckpointOptimizer, LineageNode

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.rdd import RDD


class EdgeCheckpointer(CheckpointOptimizer):
    """Checkpoint all leaves of the violating sub-DAG when triggered."""

    def select_checkpoint_set(
        self, nodes: Dict[int, LineageNode], violating_targets: Sequence[int]
    ) -> List[int]:
        """Checkpoint every leaf of the *whole* uncheckpointed DAG.

        Edge does no cost analysis: once triggered, the entire most
        recent level is persisted, regardless of whether a leaf lies on a
        violating path or how large it is — the very behaviour the
        optimizer improves on.
        """
        has_child = set()
        for rdd_id, node in nodes.items():
            for parent in node.parents:
                has_child.add(parent)
        leaves = [
            rdd_id for rdd_id, node in nodes.items()
            if rdd_id not in has_child and not node.barrier
        ]
        return sorted(leaves)
