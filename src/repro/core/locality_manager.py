"""LocalityManager: data co-locality for dataset collections (§III-B).

A *namespace* groups the RDDs of one dynamic dataset collection.  All
RDDs registered under a namespace must use an equal partitioner
(co-partitioning); the manager then pins every *collection partition*
(the set of i-th partitions across the collection) to a stable set of
executors, which the DAG scheduler reports as the task's preferred
locations.  The delay scheduler does the rest: tasks of every RDD in the
collection land where their siblings' data already sits, so a cogroup or
join across the whole collection runs PROCESS_LOCAL with zero shuffle
reads.

A collection partition maps to a *set* of executors rather than one:
whenever a task runs remotely anyway (hotspot or contention), the data it
materializes there immediately makes that executor local for subsequent
tasks, so the manager registers it as a replica (§III-B); the
ReplicationManager later trims replicas on eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.partitioner import Partitioner
    from ..engine.rdd import RDD


class NamespaceError(ValueError):
    """Raised when namespace registration rules are violated."""


@dataclass
class Namespace:
    """State of one co-locality namespace."""

    name: str
    partitioner: "Partitioner"
    #: collection partition id -> executor ids holding it (primary first).
    placement: Dict[int, List[int]] = field(default_factory=dict)
    #: rdd ids registered under this namespace, in registration order.
    rdd_ids: List[int] = field(default_factory=list)


class LocalityManager:
    """Driver-side manager of co-locality namespaces."""

    def __init__(self, context: "StarkContext") -> None:
        self.context = context
        self._namespaces: Dict[str, Namespace] = {}
        #: rdd_id -> namespace name (for contention accounting).
        self._rdd_namespace: Dict[int, str] = {}

    # ---- registration -------------------------------------------------------

    def register(self, name: str, partitioner: "Partitioner") -> Namespace:
        """Create namespace ``name`` or validate the partitioner agrees.

        All RDDs under one namespace must use an equal partitioner —
        otherwise their "collection partitions" would not align and
        co-locality would be meaningless.
        """
        if not name:
            raise NamespaceError("namespace name must be non-empty")
        ns = self._namespaces.get(name)
        if ns is None:
            ns = Namespace(name=name, partitioner=partitioner)
            self._assign_initial_placement(ns)
            self._namespaces[name] = ns
            return ns
        if ns.partitioner != partitioner:
            raise NamespaceError(
                f"namespace {name!r} is registered with {ns.partitioner!r}; "
                f"got incompatible {partitioner!r} — all RDDs in a namespace "
                "must share one partitioner"
            )
        return ns

    def register_rdd(self, name: str, rdd: "RDD") -> None:
        ns = self._require(name)
        if rdd.partitioner != ns.partitioner:
            raise NamespaceError(
                f"rdd {rdd.name!r} partitioner {rdd.partitioner!r} does not "
                f"match namespace {name!r}"
            )
        ns.rdd_ids.append(rdd.rdd_id)
        self._rdd_namespace[rdd.rdd_id] = name
        if self.context.config.locality_enabled:
            self.context.group_manager.on_rdd_registered(name, rdd)

    def _assign_initial_placement(self, ns: Namespace) -> None:
        """Pin collection partitions round-robin over alive workers.

        Round-robin (rather than random) keeps load even when the number
        of partitions is a small multiple of the cluster size, matching
        the deliberate layout the paper argues for.
        """
        workers = self.context.cluster.alive_worker_ids()
        if not workers:
            raise RuntimeError("cannot create a namespace with no alive workers")
        for pid in range(ns.partitioner.num_partitions):
            ns.placement[pid] = [workers[pid % len(workers)]]

    # ---- queries ---------------------------------------------------------------

    def has_namespace(self, name: Optional[str]) -> bool:
        return name is not None and name in self._namespaces

    def get_namespace(self, name: str) -> Namespace:
        return self._require(name)

    def namespace_of_rdd(self, rdd_id: int) -> Optional[str]:
        return self._rdd_namespace.get(rdd_id)

    def rdds_in_namespace(self, name: str) -> List[int]:
        return list(self._require(name).rdd_ids)

    def preferred_executors(
        self, name: str, partition: int, group_id: Optional[int] = None
    ) -> List[int]:
        """Executors pinned for a collection partition (or its group).

        When the namespace is under extendable partitioning, placement is
        managed per *group* by the GroupManager; otherwise per partition.
        Dead executors are filtered out (best-effort co-locality).
        """
        ns = self._require(name)
        if not self.context.config.locality_enabled:
            return []
        group_placement = self.context.group_manager.preferred_executors(
            name, partition, group_id
        )
        placement = group_placement if group_placement is not None \
            else ns.placement.get(partition, [])
        cluster = self.context.cluster
        return [
            w for w in placement
            if w in cluster.workers and cluster.get_worker(w).alive
        ]

    # ---- replica management -----------------------------------------------------

    def add_replica(self, name: str, partition: int, worker_id: int) -> None:
        """Record that ``worker_id`` now holds collection ``partition``
        (a remote execution just materialized it there)."""
        ns = self._require(name)
        executors = ns.placement.setdefault(partition, [])
        if worker_id not in executors:
            executors.append(worker_id)
        self.context.group_manager.add_group_replica(name, partition, worker_id)

    def remove_replica(self, name: str, partition: int, worker_id: int) -> None:
        """Drop a replica, but never the last one (the primary home)."""
        ns = self._require(name)
        executors = ns.placement.get(partition, [])
        if worker_id in executors and len(executors) > 1:
            executors.remove(worker_id)

    def remove_executor(self, worker_id: int) -> None:
        """Purge a decommissioned executor from every placement.

        A collection partition whose placement empties is re-homed onto
        the least-loaded alive worker (fewest placements after the
        purge), so preferred locations never dangle on a worker that no
        longer exists.
        """
        alive = [
            w for w in self.context.cluster.alive_worker_ids()
            if w != worker_id
        ]
        load: Dict[int, int] = {w: 0 for w in alive}
        for ns in self._namespaces.values():
            for executors in ns.placement.values():
                for w in executors:
                    if w in load:
                        load[w] += 1
        for ns in self._namespaces.values():
            for pid, executors in ns.placement.items():
                if worker_id in executors:
                    executors.remove(worker_id)
                if not executors and alive:
                    home = min(alive, key=lambda w: (load[w], w))
                    executors.append(home)
                    load[home] += 1

    def replica_count(self, name: str, partition: int) -> int:
        return len(self._require(name).placement.get(partition, []))

    # ---- contention accounting (for MCF, §III-C3) ---------------------------------

    def unique_collection_partitions_cached(self, worker_id: int) -> int:
        """Number of distinct (namespace, collection partition) pairs with
        at least one block cached on ``worker_id`` — Algorithm 1's sort key."""
        store = self.context.block_manager_master.stores.get(worker_id)
        if store is None:
            return 0
        seen: Set = set()
        for rdd_id, pid in store.block_ids():
            ns = self._rdd_namespace.get(rdd_id)
            if ns is not None:
                seen.add((ns, pid))
        return len(seen)

    # ---- internals -------------------------------------------------------------------

    def _require(self, name: str) -> Namespace:
        ns = self._namespaces.get(name)
        if ns is None:
            raise NamespaceError(f"unknown namespace {name!r}")
        return ns
