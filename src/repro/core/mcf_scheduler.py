"""Minimum-Contention-First remote scheduling (§III-C3, Algorithm 1).

Delay scheduling treats all remote workers as equal — reasonable for
MapReduce, but wrong for in-memory computing: launching a task remotely
materializes its whole narrow lineage on that worker, converting it to
NODE_LOCAL for subsequent tasks of the same collection partition, while
crowding the worker's cache may flip *other* partitions back to REMOTE.

MCF therefore changes only what happens once the locality level rises to
ANY: offers are ordered ascending by the number of *unique collection
partitions* already cached on each worker, so replicas pile onto the
least-contended executors instead of churning everyone's cache.  The sort
is the dominant cost — O(|R| log |R|), exactly as the paper analyses.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.task import Task


class MinimumContentionFirstPolicy:
    """Remote policy: pick the offered worker caching the fewest unique
    collection partitions (ties: earliest free slot, then id)."""

    def choose_worker(
        self, context: "StarkContext", task: "Task", offers: Sequence[int],
        now: float,
    ) -> int:
        manager = context.locality_manager
        cluster = context.cluster

        def key(worker_id: int):
            return (
                manager.unique_collection_partitions_cached(worker_id),
                cluster.get_worker(worker_id).earliest_free_time(),
                worker_id,
            )

        return min(offers, key=key)
