"""Extendable partitioner: elasticity without re-partitioning (§III-C2).

The key insight of the paper: resizing via ``get_partition`` would change
the key→partition mapping and force a full shuffle.  The extendable
partitioner therefore *wraps* an ordinary partitioner over ``g * e`` fine
partitions and keeps ``get_partition`` completely intact; elasticity
lives one level up, in the partition→group mapping owned by the
:class:`~repro.core.group_tree.GroupTree`.

Two extendable partitioners are equal when their base partitioners are
equal — group layouts deliberately do not participate in equality,
because splitting or merging groups must NOT make RDDs look
un-co-partitioned (that would reintroduce shuffles, defeating the point).
"""

from __future__ import annotations

from typing import Any

from ..engine.partitioner import Partitioner, StaticRangePartitioner


class ExtendablePartitioner(Partitioner):
    """Wraps a base partitioner over ``g * e`` fine partitions."""

    def __init__(self, base: Partitioner, num_groups: int,
                 partitions_per_group: int) -> None:
        expected = num_groups * partitions_per_group
        if base.num_partitions != expected:
            raise ValueError(
                f"base partitioner must cover g*e = {expected} partitions, "
                f"got {base.num_partitions}"
            )
        super().__init__(expected)
        self.base = base
        self.num_groups = num_groups
        self.partitions_per_group = partitions_per_group

    @classmethod
    def over_key_range(
        cls, lo: int, hi: int, num_groups: int = 4, partitions_per_group: int = 4
    ) -> "ExtendablePartitioner":
        """Extendable range partitioning of the integer key domain
        ``[lo, hi)`` — the natural choice for Z-encoded spatial keys."""
        base = StaticRangePartitioner.uniform(
            lo, hi, num_groups * partitions_per_group
        )
        if base.num_partitions != num_groups * partitions_per_group:
            raise ValueError(
                f"key domain [{lo}, {hi}) too small for "
                f"{num_groups * partitions_per_group} partitions"
            )
        return cls(base, num_groups, partitions_per_group)

    def get_partition(self, key: Any) -> int:
        """Unchanged from the base partitioner — the whole point."""
        return self.base.get_partition(key)

    def initial_group_of(self, key: Any) -> int:
        """Initial group index of ``key`` (before any splits/merges)."""
        return self.get_partition(key) // self.partitions_per_group

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExtendablePartitioner)
            and other.base == self.base
        )

    def __hash__(self) -> int:
        return hash(("ExtendablePartitioner", self.base))

    def __repr__(self) -> str:
        return (
            f"ExtendablePartitioner(g={self.num_groups}, "
            f"e={self.partitions_per_group}, base={self.base!r})"
        )
