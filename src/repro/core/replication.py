"""Contention-aware replication (§III-C3).

Computational demand is not uniform across collection partitions and it
changes over time (the Times-Square-on-a-weekend-evening effect).  Stark
replicates collection partitions *on demand*:

* the **signal** to replicate is a failed locality attempt — the task
  scheduler launching a task at locality level ANY means the partition is
  a hotspot (its pinned executors are saturated) or its executors host too
  many partitions;
* replication itself is free-riding: the remote execution materializes
  and caches the partition on the new worker, so the manager merely
  records the new replica in the LocalityManager;
* **de-replication** happens when cache eviction drops a replica's
  blocks: the manager unregisters the executor so future scheduling stops
  steering there, preventing the cascade of evictions that blind
  replication causes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.task import Task


@dataclass
class ReplicationEvent:
    """One replicate / de-replicate decision, for diagnostics."""

    time: float
    kind: str  # "replicate" | "dereplicate"
    namespace: str
    partition: int
    worker_id: int


class ReplicationManager:
    """Tracks per-collection-partition replicas and their churn."""

    def __init__(self, context: "StarkContext") -> None:
        self.context = context
        self.events: List[ReplicationEvent] = []
        #: (namespace, collection pid) -> replica launch counters.
        self.hotspot_counts: Dict[Tuple[str, int], int] = {}

    # ---- signals ---------------------------------------------------------------

    def on_remote_launch(self, task: "Task", worker_id: int, time: float) -> None:
        """A task ran at ANY level: record the hotspot signal.

        The actual replica registration (LocalityManager placement) is
        done by the context hook; here we keep demand statistics that the
        benchmarks and ablations inspect.
        """
        rdd = task.stage.rdd
        namespace = rdd.namespace
        if namespace is None or not self.context.locality_manager.has_namespace(namespace):
            return
        key = (namespace, task.partition)
        self.hotspot_counts[key] = self.hotspot_counts.get(key, 0) + 1
        self.events.append(
            ReplicationEvent(time, "replicate", namespace, task.partition, worker_id)
        )

    def on_block_evicted(self, worker_id: int, block_id: Tuple[int, int]) -> None:
        """Cache eviction: de-replicate the collection partition from the
        worker that just lost its data."""
        rdd_id, pid = block_id
        manager = self.context.locality_manager
        namespace = manager.namespace_of_rdd(rdd_id)
        if namespace is None:
            return
        # Only de-replicate when no other RDD of the namespace still has
        # this collection partition cached on the worker.
        store = self.context.block_manager_master.stores.get(worker_id)
        if store is not None:
            for other_rdd in manager.rdds_in_namespace(namespace):
                if (other_rdd, pid) in store:
                    return
        manager.remove_replica(namespace, pid, worker_id)
        self.events.append(
            ReplicationEvent(
                self.context.now, "dereplicate", namespace, pid, worker_id
            )
        )

    # ---- diagnostics ---------------------------------------------------------------

    def replication_count(self, namespace: str, partition: int) -> int:
        return self.context.locality_manager.replica_count(namespace, partition)

    def hottest_partitions(self, top: int = 5) -> List[Tuple[Tuple[str, int], int]]:
        return sorted(
            self.hotspot_counts.items(), key=lambda kv: kv[1], reverse=True
        )[:top]
