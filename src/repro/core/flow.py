"""Max-flow / min-cut, implemented from scratch (Dinic's algorithm).

The CheckpointOptimizer (§III-D2) reduces "break every violating lineage
path with minimum checkpoint cost" to a minimum s-t cut.  This module
provides the flow machinery: a residual graph, Dinic's blocking-flow
max-flow, the min-cut side computation, and the *relaxed* cut traversal
the paper uses (stop at edges whose residual capacity is within ``f``
times the flow over them) so checkpoints land nearer the lineage leaves.

Tested against ``networkx.maximum_flow`` as an oracle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

INF = float("inf")


class FlowEdge:
    """One directed edge of the residual graph."""

    __slots__ = ("src", "dst", "capacity", "flow", "is_forward", "_rev_index")

    def __init__(self, src: int, dst: int, capacity: float,
                 is_forward: bool = True) -> None:
        self.src = src
        self.dst = dst
        self.capacity = capacity
        self.flow = 0.0
        self.is_forward = is_forward
        self._rev_index = -1  # index of the reverse edge in adj[dst]

    @property
    def residual(self) -> float:
        return self.capacity - self.flow

    def __repr__(self) -> str:
        return f"FlowEdge({self.src}->{self.dst}, {self.flow}/{self.capacity})"


class FlowNetwork:
    """Directed flow network over integer node ids."""

    def __init__(self) -> None:
        self._adj: Dict[int, List[FlowEdge]] = {}
        self.edges: List[FlowEdge] = []

    def add_node(self, node: int) -> None:
        self._adj.setdefault(node, [])

    def add_edge(self, src: int, dst: int, capacity: float) -> FlowEdge:
        """Add edge ``src -> dst``; a zero-capacity reverse edge is added
        automatically for the residual graph."""
        if capacity < 0:
            raise ValueError(f"negative capacity: {capacity}")
        self.add_node(src)
        self.add_node(dst)
        forward = FlowEdge(src, dst, capacity, is_forward=True)
        backward = FlowEdge(dst, src, 0.0, is_forward=False)
        forward._rev_index = len(self._adj[dst])
        backward._rev_index = len(self._adj[src])
        self._adj[src].append(forward)
        self._adj[dst].append(backward)
        self.edges.append(forward)
        return forward

    def adjacent(self, node: int) -> List[FlowEdge]:
        return self._adj.get(node, [])

    def reverse_of(self, edge: FlowEdge) -> FlowEdge:
        return self._adj[edge.dst][edge._rev_index]

    def nodes(self) -> Iterable[int]:
        return self._adj.keys()

    # ---- Dinic ------------------------------------------------------------------

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum s-t flow; edge ``flow`` fields are updated."""
        if source == sink:
            raise ValueError("source and sink must differ")
        self.add_node(source)
        self.add_node(sink)
        total = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level.get(sink) is None:
                return total
            next_edge = {node: 0 for node in self._adj}
            while True:
                pushed = self._dfs_push(source, sink, INF, level, next_edge)
                if pushed <= 0:
                    break
                total += pushed

    def _bfs_levels(self, source: int, sink: int) -> Dict[int, int]:
        level: Dict[int, int] = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if node == sink:
                continue
            for edge in self._adj[node]:
                if edge.residual > 1e-12 and edge.dst not in level:
                    level[edge.dst] = level[node] + 1
                    queue.append(edge.dst)
        return level

    def _dfs_push(
        self,
        node: int,
        sink: int,
        limit: float,
        level: Dict[int, int],
        next_edge: Dict[int, int],
    ) -> float:
        if node == sink:
            return limit
        adj = self._adj[node]
        while next_edge[node] < len(adj):
            edge = adj[next_edge[node]]
            if edge.residual > 1e-12 and level.get(edge.dst) == level[node] + 1:
                pushed = self._dfs_push(
                    edge.dst, sink, min(limit, edge.residual), level, next_edge
                )
                if pushed > 0:
                    edge.flow += pushed
                    self.reverse_of(edge).flow -= pushed
                    return pushed
            next_edge[node] += 1
        return 0.0

    # ---- cuts ----------------------------------------------------------------------

    def min_cut_source_side(self, source: int) -> Set[int]:
        """After ``max_flow``: nodes reachable from the source in the
        residual graph — the source side of a minimum cut."""
        side = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._adj[node]:
                if edge.residual > 1e-12 and edge.dst not in side:
                    side.add(edge.dst)
                    queue.append(edge.dst)
        return side

    def min_cut_edges(self, source: int) -> List[FlowEdge]:
        """Saturated edges crossing from the source side to the sink side."""
        side = self.min_cut_source_side(source)
        return [
            e for e in self.edges
            if e.src in side and e.dst not in side and e.capacity < INF
        ]

    def relaxed_cut_edges(self, sink: int, relax_factor: float) -> List[FlowEdge]:
        """The paper's f-relaxed cut (§III-D2).

        Trace back from the sink through flow-carrying edges; stop (and
        cut) at the first edges whose residual capacity is within
        ``relax_factor`` times the flow over them.  With ``f = 1`` this
        accepts only saturated edges and coincides with an exact min cut;
        larger ``f`` accepts nearly-saturated edges closer to the sink,
        trading up to ``f``× checkpoint cost for shorter leftover
        uncheckpointed paths.
        """
        if relax_factor < 1.0:
            raise ValueError(f"relax factor must be >= 1: {relax_factor}")
        cut: List[FlowEdge] = []
        visited = {sink}
        queue = deque([sink])
        while queue:
            node = queue.popleft()
            # Walk *backwards* along forward edges carrying flow into node.
            for incoming in self._incoming_flow_edges(node):
                if incoming.capacity == INF:
                    if incoming.src not in visited:
                        visited.add(incoming.src)
                        queue.append(incoming.src)
                    continue
                if incoming.flow > 1e-12 and incoming.residual <= \
                        relax_factor * incoming.flow + 1e-12:
                    cut.append(incoming)
                elif incoming.src not in visited:
                    visited.add(incoming.src)
                    queue.append(incoming.src)
        # Deduplicate while preserving order.
        seen = set()
        unique = []
        for e in cut:
            key = (e.src, e.dst)
            if key not in seen:
                seen.add(key)
                unique.append(e)
        return unique

    def _incoming_flow_edges(self, node: int) -> List[FlowEdge]:
        """Forward edges into ``node`` that carry positive flow.

        They are exactly the reverses of the backward residual edges
        stored in ``node``'s adjacency list.
        """
        out = []
        for edge in self._adj[node]:
            if edge.is_forward:
                continue
            rev = self.reverse_of(edge)
            if rev.is_forward and rev.dst == node and rev.flow > 1e-12:
                out.append(rev)
        return out
