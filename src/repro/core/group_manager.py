"""GroupManager: drives partition-group elasticity per namespace (§III-C2).

The manager owns one :class:`~repro.core.group_tree.GroupTree` per
namespace that uses an :class:`ExtendablePartitioner`, and keeps a
group→executor mapping that the LocalityManager consults for preferred
locations.

Size accounting follows the paper: collection-partition sizes are summed
across the N most recent RDDs of the namespace (configurable window).
Whenever a group's accumulated size exceeds ``max_group_mem_size`` it is
split; whenever two sibling groups together fall below
``min_group_mem_size`` they merge.  Splits keep one child on the old
executor set and place the other child on the least-loaded executors —
"splitting a group also splits the corresponding local executors", which
minimizes data movement because cached partitions of the retained half
never move.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from .extendable_partitioner import ExtendablePartitioner
from .group_tree import GroupNode, GroupTree

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.rdd import RDD


@dataclass
class NamespaceGroups:
    """Per-namespace elasticity state."""

    tree: GroupTree
    #: group_id -> executor ids (primary first).
    placement: Dict[int, List[int]] = field(default_factory=dict)
    #: most recent rdd ids counted toward group sizes.
    recent_rdds: Deque[int] = field(default_factory=deque)
    splits: int = 0
    merges: int = 0


class GroupManager:
    """Extendable-group bookkeeping for all namespaces."""

    def __init__(self, context: "StarkContext") -> None:
        self.context = context
        self._state: Dict[str, NamespaceGroups] = {}

    # ---- setup ------------------------------------------------------------------

    def enable(self, namespace: str, partitioner: ExtendablePartitioner) -> None:
        """Turn on extendable grouping for ``namespace``."""
        if namespace in self._state:
            return
        tree = GroupTree(partitioner.num_groups, partitioner.partitions_per_group)
        state = NamespaceGroups(tree=tree)
        workers = self.context.cluster.alive_worker_ids()
        for i, leaf in enumerate(tree.leaves()):
            state.placement[leaf.group_id] = [workers[i % len(workers)]]
        self._state[namespace] = state

    def is_enabled(self, namespace: str) -> bool:
        return namespace in self._state

    def on_rdd_registered(self, namespace: str, rdd: "RDD") -> None:
        """Called by the LocalityManager for every RDD joining the
        namespace; auto-enables grouping for extendable partitioners and
        tracks the size window."""
        if isinstance(rdd.partitioner, ExtendablePartitioner):
            self.enable(namespace, rdd.partitioner)
        state = self._state.get(namespace)
        if state is None:
            return
        state.recent_rdds.append(rdd.rdd_id)
        window = self.context.config.group_size_window
        while len(state.recent_rdds) > window:
            state.recent_rdds.popleft()

    # ---- size accounting (the reportRDD API, §III-E) --------------------------------

    def report_rdd(self, rdd: "RDD") -> List[str]:
        """Recompute group sizes including ``rdd`` and rebalance.

        Returns a human-readable log of the split/merge operations taken
        (used by tests and the benchmark narrative).
        """
        namespace = rdd.namespace
        if namespace is None or namespace not in self._state:
            return []
        self.on_rdd_noted(namespace, rdd)
        return self.rebalance(namespace)

    def on_rdd_noted(self, namespace: str, rdd: "RDD") -> None:
        state = self._state[namespace]
        if rdd.rdd_id not in state.recent_rdds:
            state.recent_rdds.append(rdd.rdd_id)
            window = self.context.config.group_size_window
            while len(state.recent_rdds) > window:
                state.recent_rdds.popleft()

    def partition_sizes(self, namespace: str) -> Dict[int, float]:
        """Collection-partition size: bytes per fine partition, summed
        over the namespace's recent RDDs (cached blocks + recorded stats)."""
        state = self._state[namespace]
        sizes: Dict[int, float] = {}
        for rdd_id in state.recent_rdds:
            stats = self.context.rdd_stats(rdd_id)
            for pid in stats._sized_partitions:
                sizes[pid] = sizes.get(pid, 0.0)
            # Per-partition detail: read from block manager if cached,
            # otherwise approximate uniformly from recorded total size.
            per_part = self._per_partition_bytes(rdd_id)
            for pid, nbytes in per_part.items():
                sizes[pid] = sizes.get(pid, 0.0) + nbytes
        return sizes

    def _per_partition_bytes(self, rdd_id: int) -> Dict[int, float]:
        bmm = self.context.block_manager_master
        out: Dict[int, float] = {}
        for wid, store in bmm.stores.items():
            for (rid, pid) in store.block_ids():
                if rid == rdd_id:
                    block = store.peek((rid, pid))
                    if block is not None:
                        out[pid] = max(out.get(pid, 0.0), block.size_bytes)
        if out:
            return out
        # Nothing cached: fall back to recorded materialization sizes.
        stats = self.context.rdd_stats(rdd_id)
        try:
            rdd = self.context.get_rdd(rdd_id)
        except KeyError:
            return {}
        if stats.size_bytes <= 0:
            return {}
        uniform = stats.size_bytes / max(1, rdd.num_partitions)
        return {pid: uniform for pid in range(rdd.num_partitions)}

    def group_sizes(self, namespace: str) -> Dict[int, float]:
        state = self._state[namespace]
        part_sizes = self.partition_sizes(namespace)
        out: Dict[int, float] = {}
        for leaf in state.tree.leaves():
            out[leaf.group_id] = sum(part_sizes.get(p, 0.0) for p in leaf.partitions)
        return out

    # ---- rebalancing ---------------------------------------------------------------------

    def rebalance(self, namespace: str) -> List[str]:
        """Split oversized groups, merge undersized sibling pairs.

        Iterates to a fixed point; each split/merge is O(leaves) and only
        rewrites mappings — data movement happens lazily at the next
        action (tasks land on the new executors and recompute/cache there).
        """
        state = self._state[namespace]
        config = self.context.config
        actions: List[str] = []
        changed = True
        while changed:
            changed = False
            part_sizes = self.partition_sizes(namespace)
            for leaf in state.tree.leaves():
                size = sum(part_sizes.get(p, 0.0) for p in leaf.partitions)
                if size > config.max_group_mem_size and leaf.num_partitions >= 2:
                    self._split(state, leaf)
                    actions.append(
                        f"split group [{leaf.start},{leaf.end}) size={size:.0f}B"
                    )
                    changed = True
                    break
            if changed:
                continue
            for leaf in state.tree.leaves():
                sibling = leaf.sibling()
                if sibling is None or not sibling.is_leaf:
                    continue
                size = sum(
                    part_sizes.get(p, 0.0)
                    for p in leaf.partitions + sibling.partitions
                )
                if size < config.min_group_mem_size:
                    self._merge(state, leaf, sibling)
                    actions.append(
                        f"merge groups [{leaf.start},{leaf.end})+"
                        f"[{sibling.start},{sibling.end}) size={size:.0f}B"
                    )
                    changed = True
                    break
        state.tree.check_invariants()
        return actions

    def _split(self, state: NamespaceGroups, leaf: GroupNode) -> None:
        left, right = state.tree.split(leaf)
        old_placement = state.placement.pop(leaf.group_id, [])
        # Keep the left child where the data already lives; give the right
        # child the least-loaded executor (skipping the old one if possible).
        state.placement[left.group_id] = list(old_placement) or \
            [self._least_loaded_executor(set())]
        avoid = set(old_placement)
        state.placement[right.group_id] = [self._least_loaded_executor(avoid)]
        state.splits += 1

    def _merge(self, state: NamespaceGroups, left: GroupNode,
               right: GroupNode) -> None:
        # ``left``/``right`` might arrive in either order.
        first, second = (left, right) if left.start < right.start else (right, left)
        parent = state.tree.merge(first, second)
        placement_first = state.placement.pop(first.group_id, [])
        placement_second = state.placement.pop(second.group_id, [])
        merged = list(dict.fromkeys(placement_first + placement_second))
        state.placement[parent.group_id] = merged or \
            [self._least_loaded_executor(set())]
        state.merges += 1

    def _least_loaded_executor(self, avoid: set) -> int:
        """Alive executor with the fewest placed groups (then least cached
        bytes), preferring ones outside ``avoid``."""
        counts: Dict[int, int] = {w: 0 for w in self.context.cluster.alive_worker_ids()}
        for state in self._state.values():
            for executors in state.placement.values():
                for w in executors:
                    if w in counts:
                        counts[w] += 1
        bmm = self.context.block_manager_master

        def load_key(w: int):
            return (w in avoid, counts[w], bmm.used_bytes(w), w)

        return min(counts, key=load_key)

    # ---- queries used by the schedulers -------------------------------------------------------

    def groups_for(self, namespace: str) -> Optional[List[GroupNode]]:
        """Active groups of a namespace, or ``None`` when grouping is off
        (tasks then go one-per-partition, plain Spark style)."""
        state = self._state.get(namespace)
        if state is None:
            return None
        return state.tree.leaves()

    def preferred_executors(
        self, namespace: str, partition: int, group_id: Optional[int] = None
    ) -> Optional[List[int]]:
        """Executor set pinned for the group owning ``partition``.

        Returns ``None`` when the namespace has no group state, letting
        the LocalityManager fall back to per-partition placement.
        """
        state = self._state.get(namespace)
        if state is None:
            return None
        if group_id is not None:
            placement = state.placement.get(group_id)
            if placement is not None:
                return list(placement)
        if not 0 <= partition < state.tree.num_partitions:
            return []
        leaf = state.tree.group_of_partition(partition)
        return list(state.placement.get(leaf.group_id, []))

    def remove_executor(self, worker_id: int) -> None:
        """Purge a decommissioned executor from every group placement.

        Groups whose executor set empties are re-homed via
        :meth:`_least_loaded_executor`, mirroring how splits place their
        new child — so group locality survives scale-in.
        """
        for state in self._state.values():
            for group_id, executors in state.placement.items():
                if worker_id in executors:
                    executors.remove(worker_id)
        for state in self._state.values():
            for group_id, executors in state.placement.items():
                if not executors:
                    executors.append(self._least_loaded_executor({worker_id}))

    def add_group_replica(self, namespace: str, partition: int,
                          worker_id: int) -> None:
        state = self._state.get(namespace)
        if state is None:
            return
        if not 0 <= partition < state.tree.num_partitions:
            return
        leaf = state.tree.group_of_partition(partition)
        executors = state.placement.setdefault(leaf.group_id, [])
        if worker_id not in executors:
            executors.append(worker_id)

    def stats(self, namespace: str) -> Dict[str, int]:
        state = self._state[namespace]
        return {
            "groups": state.tree.num_groups(),
            "splits": state.splits,
            "merges": state.merges,
        }
