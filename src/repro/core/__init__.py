"""Stark's contributions: co-locality, elasticity, optimal checkpointing."""

from .checkpoint_optimizer import (
    CheckpointDecision,
    CheckpointOptimizer,
    LineageNode,
)
from .edge_checkpoint import EdgeCheckpointer
from .extendable_partitioner import ExtendablePartitioner
from .flow import INF, FlowEdge, FlowNetwork
from .group_manager import GroupManager, NamespaceGroups
from .group_tree import GroupNode, GroupTree, GroupTreeError
from .locality_manager import LocalityManager, Namespace, NamespaceError
from .mcf_scheduler import MinimumContentionFirstPolicy
from .replication import ReplicationEvent, ReplicationManager

__all__ = [
    "CheckpointDecision",
    "CheckpointOptimizer",
    "EdgeCheckpointer",
    "ExtendablePartitioner",
    "FlowEdge",
    "FlowNetwork",
    "GroupManager",
    "GroupNode",
    "GroupTree",
    "GroupTreeError",
    "INF",
    "LineageNode",
    "LocalityManager",
    "MinimumContentionFirstPolicy",
    "Namespace",
    "NamespaceError",
    "NamespaceGroups",
    "ReplicationEvent",
    "ReplicationManager",
]
