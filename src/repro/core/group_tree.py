"""Group Tree: the binary tree behind extendable partition groups (§III-C2).

Stark first divides data into ``g * e`` small, immutable partitions and
then organizes the partitions into non-overlapping *groups* — the leaves
of a full binary tree built over the partition index range.  A group is
the minimum scheduling unit: all partitions of one group are packed into
a single task.  Because groups are sets of consecutive partitions, a
group may *split* into two halves, or *merge* with its sibling, without
moving a single record — only the partition→group mapping changes, and
the key→partition mapping (``get_partition``) is never touched, so no
shuffle is ever triggered by elasticity.

Invariants maintained (and property-tested):

* the leaves always partition ``[0, g*e)`` into contiguous, ordered runs;
* a leaf with one partition cannot split;
* only two sibling leaves under one parent can merge;
* split and merge are exact inverses.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional


class GroupTreeError(ValueError):
    """Raised on illegal split/merge operations."""


class GroupNode:
    """A node of the group tree covering partitions ``[start, end)``."""

    _ids = itertools.count()

    def __init__(self, start: int, end: int,
                 parent: Optional["GroupNode"] = None) -> None:
        if end <= start:
            raise GroupTreeError(f"empty partition range [{start}, {end})")
        self.node_id = next(GroupNode._ids)
        self.start = start
        self.end = end
        self.parent = parent
        self.left: Optional["GroupNode"] = None
        self.right: Optional["GroupNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @property
    def num_partitions(self) -> int:
        return self.end - self.start

    @property
    def partitions(self) -> List[int]:
        return list(range(self.start, self.end))

    @property
    def group_id(self) -> int:
        return self.node_id

    def sibling(self) -> Optional["GroupNode"]:
        if self.parent is None:
            return None
        return self.parent.right if self.parent.left is self else self.parent.left

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "node"
        return f"GroupNode({kind}, [{self.start}, {self.end}))"


class GroupTree:
    """The full binary tree of partition groups for one namespace.

    ``num_groups`` (g) and ``partitions_per_group`` (e) configure the
    initial layout: g leaf groups of e consecutive partitions each.  Both
    should be powers of two for a perfectly full tree; other values are
    accepted and produce the smallest complete binary tree with exactly
    g leaves (the relaxation the paper mentions).
    """

    def __init__(self, num_groups: int = 4, partitions_per_group: int = 4) -> None:
        if num_groups <= 0 or partitions_per_group <= 0:
            raise GroupTreeError(
                f"need positive group counts: g={num_groups}, e={partitions_per_group}"
            )
        self.num_groups_initial = num_groups
        self.partitions_per_group = partitions_per_group
        self.num_partitions = num_groups * partitions_per_group
        self.root = self._build(0, self.num_partitions, num_groups, None)

    def _build(self, start: int, end: int, leaves: int,
               parent: Optional[GroupNode]) -> GroupNode:
        node = GroupNode(start, end, parent)
        if leaves <= 1:
            return node
        left_leaves = leaves // 2 + leaves % 2
        right_leaves = leaves // 2
        mid = start + left_leaves * ((end - start) // leaves)
        node.left = self._build(start, mid, left_leaves, node)
        node.right = self._build(mid, end, right_leaves, node)
        return node

    # ---- queries ------------------------------------------------------------

    def leaves(self) -> List[GroupNode]:
        """Active groups, in partition order."""
        out: List[GroupNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                # Push right first so left pops first (in-order for this
                # shape of tree).
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)  # type: ignore[arg-type]
        return out

    def num_groups(self) -> int:
        return len(self.leaves())

    def group_of_partition(self, pid: int) -> GroupNode:
        if not 0 <= pid < self.num_partitions:
            raise GroupTreeError(
                f"partition {pid} outside [0, {self.num_partitions})"
            )
        node = self.root
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if pid < node.left.end else node.right
        return node

    def find_leaf(self, group_id: int) -> Optional[GroupNode]:
        for leaf in self.leaves():
            if leaf.group_id == group_id:
                return leaf
        return None

    def partition_to_group_map(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for leaf in self.leaves():
            for pid in leaf.partitions:
                mapping[pid] = leaf.group_id
        return mapping

    # ---- operations --------------------------------------------------------------

    def split(self, leaf: GroupNode) -> tuple:
        """Split ``leaf`` into two sub-groups; returns ``(left, right)``.

        O(1): only the partition→group mapping changes; data stays put
        (materialization is deferred to the next action, §III-C2).
        """
        if not leaf.is_leaf:
            raise GroupTreeError(f"can only split a leaf: {leaf!r}")
        if leaf.num_partitions < 2:
            raise GroupTreeError(
                f"group {leaf!r} has a single partition and cannot split"
            )
        mid = leaf.start + leaf.num_partitions // 2
        leaf.left = GroupNode(leaf.start, mid, leaf)
        leaf.right = GroupNode(mid, leaf.end, leaf)
        return leaf.left, leaf.right

    def merge(self, left: GroupNode, right: GroupNode) -> GroupNode:
        """Merge two sibling leaves back into their parent.

        Only siblings under the same parent may merge (the paper's rule —
        it keeps groups aligned to the tree structure so later splits
        reproduce the same boundaries).
        """
        if not (left.is_leaf and right.is_leaf):
            raise GroupTreeError("both merge operands must be leaves")
        parent = left.parent
        if parent is None or right.parent is not parent:
            raise GroupTreeError(
                f"{left!r} and {right!r} are not siblings; only sibling "
                "groups under one parent can merge"
            )
        parent.left = None
        parent.right = None
        return parent

    def merge_by_parent(self, parent: GroupNode) -> GroupNode:
        if parent.is_leaf:
            raise GroupTreeError(f"{parent!r} is already a leaf")
        assert parent.left is not None and parent.right is not None
        return self.merge(parent.left, parent.right)

    # ---- validation -------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if the leaves do not exactly tile ``[0, num_partitions)``."""
        leaves = self.leaves()
        expected = 0
        for leaf in leaves:
            if leaf.start != expected:
                raise AssertionError(
                    f"gap/overlap at partition {expected}: leaf starts at {leaf.start}"
                )
            expected = leaf.end
        if expected != self.num_partitions:
            raise AssertionError(
                f"leaves cover [0, {expected}) but tree has {self.num_partitions}"
            )

    def __repr__(self) -> str:
        ranges = ", ".join(f"[{l.start},{l.end})" for l in self.leaves())
        return f"GroupTree(partitions={self.num_partitions}, groups={ranges})"
