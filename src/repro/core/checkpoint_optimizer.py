"""CheckpointOptimizer: bounded recovery delay at minimum cost (§III-D).

Each RDD carries two measured properties: the recovery **delay** ``d``
(its transformation time, estimated as the maximum across tasks) and the
checkpoint **cost** ``c`` (its materialized size).  An *uncheckpointed
path* is a lineage path containing no checkpointed RDD, no ShuffledRDD
(map outputs persist, truncating recovery), and no source.  When any
uncheckpointed path's total delay exceeds the user bound ``r``, the path
is *violating* and the optimizer must break it.

The optimizer builds the classic node-split flow network: each RDD ``v``
becomes ``v_in -> v_out`` with capacity ``c(v)``; lineage edges get
infinite capacity; a virtual source feeds the roots of the violating
sub-DAG and the triggering RDDs connect to a virtual sink.  A minimum
s-t cut then selects the cheapest RDD set whose checkpointing breaks
every violating path.

With relaxation factor ``f > 1`` the cut tracing stops at nearly
saturated edges close to the sink (``residual <= f * flow``), spending up
to ``f``× the optimal cost to leave shorter uncheckpointed tails — the
Stark-3 configuration that wins over exact optimality (Stark-1) once the
lineage grows (Fig 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, TYPE_CHECKING

from .flow import INF, FlowNetwork

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.rdd import RDD


@dataclass
class LineageNode:
    """One RDD in the optimizer's view of the lineage DAG."""

    rdd_id: int
    delay: float
    cost: float
    parents: List[int] = field(default_factory=list)
    barrier: bool = False  # checkpointed / shuffled / source: recovery stops here


@dataclass
class CheckpointDecision:
    """Outcome of one optimizer invocation."""

    triggered: bool
    violating_paths: int
    chosen_rdd_ids: List[int]
    total_cost: float
    #: Longest uncheckpointed path delay after applying the decision.
    residual_path_delay: float


class CheckpointOptimizer:
    """Selects the minimum-cost RDD set to checkpoint (§III-D2)."""

    def __init__(
        self,
        context: "StarkContext",
        recovery_bound: Optional[float] = None,
        relax_factor: Optional[float] = None,
    ) -> None:
        self.context = context
        self.recovery_bound = (
            recovery_bound if recovery_bound is not None
            else context.config.recovery_delay_bound
        )
        self.relax_factor = (
            relax_factor if relax_factor is not None
            else context.config.checkpoint_relax_factor
        )
        if self.recovery_bound <= 0:
            raise ValueError(f"recovery bound must be positive: {self.recovery_bound}")
        if self.relax_factor < 1.0:
            raise ValueError(f"relax factor must be >= 1: {self.relax_factor}")

    # ---- lineage extraction ------------------------------------------------------

    def build_lineage(self, roots: Sequence["RDD"]) -> Dict[int, LineageNode]:
        """Walk lineage upwards from ``roots``; barriers terminate walks."""
        from ..engine.dependency import ShuffleDependency

        nodes: Dict[int, LineageNode] = {}
        stack = list(roots)
        while stack:
            rdd = stack.pop()
            if rdd.rdd_id in nodes:
                continue
            stats = self.context.rdd_stats(rdd.rdd_id)
            checkpointed = self.context.checkpoint_store.has_checkpoint(rdd.rdd_id)
            has_shuffle_in = any(
                isinstance(d, ShuffleDependency) for d in rdd.dependencies
            )
            is_source = not rdd.dependencies
            node = LineageNode(
                rdd_id=rdd.rdd_id,
                delay=stats.max_partition_delay,
                cost=max(stats.size_bytes, 1.0),
                barrier=checkpointed or has_shuffle_in or is_source,
            )
            nodes[rdd.rdd_id] = node
            if checkpointed:
                # Recovery reads the checkpoint: lineage above is invisible.
                continue
            for dep in rdd.dependencies:
                if isinstance(dep, ShuffleDependency):
                    # Map outputs persist; recovery stops at the shuffle.
                    continue
                node.parents.append(dep.rdd.rdd_id)
                stack.append(dep.rdd)
        return nodes

    # ---- violating paths ------------------------------------------------------------

    def longest_uncheckpointed_delay(
        self, nodes: Dict[int, LineageNode], target: int
    ) -> float:
        """Longest-path delay ending at ``target``, counting only
        uncheckpointed stretches (barriers contribute their own delay but
        stop the walk — recovering them costs one read, not a re-chain)."""
        memo: Dict[int, float] = {}

        def longest(rdd_id: int) -> float:
            if rdd_id in memo:
                return memo[rdd_id]
            node = nodes[rdd_id]
            if node.barrier:
                memo[rdd_id] = node.delay
                return node.delay
            best_parent = max(
                (longest(p) for p in node.parents if p in nodes), default=0.0
            )
            memo[rdd_id] = node.delay + best_parent
            return memo[rdd_id]

        return longest(target)

    def find_violating_targets(
        self, nodes: Dict[int, LineageNode], targets: Sequence[int]
    ) -> List[int]:
        return [
            t for t in targets
            if self.longest_uncheckpointed_delay(nodes, t) > self.recovery_bound
        ]

    def count_violating_paths(
        self, nodes: Dict[int, LineageNode], target: int
    ) -> int:
        """Number of root-to-target paths exceeding the bound (diagnostics)."""

        def walk(rdd_id: int, acc: float) -> int:
            node = nodes[rdd_id]
            total = acc + node.delay
            if node.barrier or not node.parents:
                return 1 if total > self.recovery_bound else 0
            return sum(walk(p, total) for p in node.parents if p in nodes)

        return walk(target, 0.0)

    # ---- the optimization ---------------------------------------------------------------

    def optimize(self, triggering: Sequence["RDD"],
                 max_rounds: int = 16) -> CheckpointDecision:
        """Break every violating path ending at ``triggering`` by
        checkpointing minimum-cost cut sets; repeats until no violating
        path remains.

        Iteration is needed because an exact min cut may land far from
        the leaves, leaving an uncheckpointed suffix that itself violates
        — the paper notes such a cut "would inevitably trigger another
        checkpoint action soon", and the relaxation factor ``f`` exists
        precisely to reduce these follow-up rounds.

        Returns the combined decision (``triggered=False`` if no path
        violated in the first place).
        """
        target_ids = [r.rdd_id for r in triggering]
        nodes = self.build_lineage(triggering)
        violating = self.find_violating_targets(nodes, target_ids)
        if not violating:
            return CheckpointDecision(False, 0, [], 0.0, max(
                (self.longest_uncheckpointed_delay(nodes, t) for t in target_ids),
                default=0.0,
            ))
        num_violating = sum(self.count_violating_paths(nodes, t) for t in violating)

        all_chosen: List[int] = []
        total_cost = 0.0
        for _ in range(max_rounds):
            chosen = self.select_checkpoint_set(nodes, violating)
            if not chosen:
                break
            for rdd_id in chosen:
                total_cost += self.context.checkpoint_rdd(
                    self.context.get_rdd(rdd_id)
                )
            all_chosen.extend(chosen)
            nodes = self.build_lineage(triggering)
            violating = self.find_violating_targets(nodes, target_ids)
            if not violating:
                break

        residual = max(
            self.longest_uncheckpointed_delay(nodes, t) for t in target_ids
        )
        return CheckpointDecision(True, num_violating, all_chosen, total_cost,
                                  residual)

    def select_checkpoint_set(
        self, nodes: Dict[int, LineageNode], violating_targets: Sequence[int]
    ) -> List[int]:
        """Min-cut selection of RDDs to checkpoint (no side effects)."""
        relevant = self._nodes_on_violating_paths(nodes, violating_targets)
        if not relevant:
            return []

        network = FlowNetwork()
        source, sink = -1, -2
        # Node split: in = 2*id, out = 2*id + 1.  The node-split edge's
        # capacity is the RDD's checkpoint cost — except barriers (already
        # persisted; cutting them is meaningless) and the triggering RDDs
        # (the paper cuts *between* roots and the trigger), which are
        # uncuttable and get infinite capacity.
        for rdd_id in relevant:
            node = nodes[rdd_id]
            capacity = node.cost
            if rdd_id in violating_targets or node.barrier:
                capacity = INF
            network.add_edge(2 * rdd_id, 2 * rdd_id + 1, capacity)
        for rdd_id in relevant:
            node = nodes[rdd_id]
            if node.barrier:
                network.add_edge(source, 2 * rdd_id, INF)
            for parent in node.parents:
                if parent in relevant:
                    network.add_edge(2 * parent + 1, 2 * rdd_id, INF)
        for target in violating_targets:
            network.add_edge(2 * target + 1, sink, INF)

        network.max_flow(source, sink)
        if self.relax_factor > 1.0:
            cut_edges = network.relaxed_cut_edges(sink, self.relax_factor)
        else:
            cut_edges = network.min_cut_edges(source)
        chosen = sorted({e.src // 2 for e in cut_edges if e.capacity < INF})
        return [c for c in chosen if not nodes[c].barrier or
                self._barrier_needs_checkpoint(nodes[c])]

    def _barrier_needs_checkpoint(self, node: LineageNode) -> bool:
        """A barrier node never needs checkpointing (already persisted)."""
        return False

    def _nodes_on_violating_paths(
        self, nodes: Dict[int, LineageNode], targets: Sequence[int]
    ) -> Set[int]:
        """Nodes lying on at least one *violating* path (Fig 10's "RDDs on
        Violating Paths").

        A node is kept iff the longest root-to-node delay plus the longest
        node-to-target delay (counting the node once) exceeds the bound.
        Restricting the flow network to these nodes is what the paper
        draws: short side-branches (e.g. a fast filter feeding the same
        join) must not be cut — only paths that actually break the
        recovery bound need breaking.
        """
        ancestors: Set[int] = set()
        stack = [t for t in targets if t in nodes]
        while stack:
            rdd_id = stack.pop()
            if rdd_id in ancestors:
                continue
            ancestors.add(rdd_id)
            node = nodes[rdd_id]
            if node.barrier:
                continue
            for parent in node.parents:
                if parent in nodes:
                    stack.append(parent)

        # Longest delay from any root/barrier down to each node.
        down: Dict[int, float] = {}

        def down_len(rdd_id: int) -> float:
            if rdd_id in down:
                return down[rdd_id]
            node = nodes[rdd_id]
            if node.barrier:
                down[rdd_id] = node.delay
                return node.delay
            best = max((down_len(p) for p in node.parents
                        if p in ancestors), default=0.0)
            down[rdd_id] = node.delay + best
            return down[rdd_id]

        # Longest delay from each node up to any target (children walk).
        children: Dict[int, List[int]] = {a: [] for a in ancestors}
        for rdd_id in ancestors:
            node = nodes[rdd_id]
            if node.barrier:
                continue
            for parent in node.parents:
                if parent in ancestors:
                    children[parent].append(rdd_id)
        target_set = set(targets)
        up: Dict[int, float] = {}

        def up_len(rdd_id: int) -> float:
            if rdd_id in up:
                return up[rdd_id]
            node = nodes[rdd_id]
            best = max((up_len(c) for c in children[rdd_id]), default=None)
            if best is None:
                # Dead end: only counts if it *is* a target.
                up[rdd_id] = node.delay if rdd_id in target_set else float("-inf")
                return up[rdd_id]
            if rdd_id in target_set:
                best = max(best, 0.0)
            up[rdd_id] = node.delay + best
            return up[rdd_id]

        relevant: Set[int] = set()
        for rdd_id in ancestors:
            total = down_len(rdd_id) + up_len(rdd_id) - nodes[rdd_id].delay
            if total > self.recovery_bound:
                relevant.add(rdd_id)
        return relevant
