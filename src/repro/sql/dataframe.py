"""The DataFrame API and SQL session.

A :class:`DataFrame` wraps a logical :class:`~repro.sql.plan.PlanNode`
and a :class:`SQLSession`; transformations
(``select``/``filter``/``group_by``/``agg``/``join``/``order_by``/
``limit``) build new plans lazily, and actions (``collect``/``count``)
optimize → compile → submit an ordinary engine job — so SQL queries get
fair-share pools, speculation, elastic scaling, critical-path tracing,
and cache policies with zero SQL-specific scheduler code.

The session is the query front door: it registers
:class:`~repro.sql.plan.Table` sources, parses SQL text
(:mod:`repro.sql.parser`), counts query outcomes (ground truth for the
``stark trace`` reconciliation row), and posts
``QueryPlanned``/``QueryCompleted``/``QueryFailed`` events.

Registry integration: ``df.to_rdd()`` is a plain RDD whose lineage
fingerprint covers the optimized plan (every columnar node describes
its expressions), so ``DatasetRegistry.register(tenant, name,
df.to_rdd())`` dedups two tenants' identical queries onto one cached
dataset exactly like row pipelines.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from ..columnar.batch import ColumnarBatch, Schema, normalize_schema
from ..columnar.rdd import batch_of
from ..obs.events import QueryCompleted, QueryFailed, QueryPlanned
from .compiler import CompileStats, compile_plan
from .expressions import AggSpec, Alias, Col, Expr
from .optimizer import OptimizerStats, optimize
from .plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    Table,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.rdd import RDD


class DataFrame:
    """A lazy, plan-backed, schema-checked columnar dataset."""

    def __init__(self, session: "SQLSession", plan: PlanNode) -> None:
        self.session = session
        self.plan = plan
        self._optimized: Optional[PlanNode] = None
        self._opt_stats: Optional[OptimizerStats] = None
        self._compile_stats: Optional[CompileStats] = None
        self._rdd: Optional["RDD"] = None
        self._cached = False

    # ---- schema ------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.plan.schema()

    @property
    def columns(self) -> List[str]:
        return [name for name, _ in self.plan.schema()]

    # ---- transformations ---------------------------------------------------

    def _derive(self, plan: PlanNode) -> "DataFrame":
        return DataFrame(self.session, plan)

    def select(self, *items: Union[str, Expr, Alias]) -> "DataFrame":
        """Project columns/expressions; strings select by name, ``Expr``
        values need ``.alias(name)`` unless they are bare columns."""
        exprs: List[Tuple[str, Expr]] = []
        for i, item in enumerate(items):
            if isinstance(item, str):
                exprs.append((item, Col(item)))
            elif isinstance(item, Alias):
                exprs.append((item.name, item.expr))
            elif isinstance(item, Col):
                exprs.append((item.name, item))
            elif isinstance(item, Expr):
                exprs.append((f"col{i}", item))
            else:
                raise TypeError(f"cannot select {item!r}")
        return self._derive(Project(self.plan, exprs))

    def filter(self, predicate: Expr) -> "DataFrame":
        return self._derive(Filter(self.plan, predicate))

    where = filter

    def with_column(self, name: str, expr: Expr) -> "DataFrame":
        """Append (or replace) one computed column."""
        exprs = [(c, Col(c)) for c in self.columns if c != name]
        exprs.append((name, expr))
        return self._derive(Project(self.plan, exprs))

    def group_by(self, *keys: str) -> "GroupedData":
        return GroupedData(self, list(keys))

    def join(self, other: "DataFrame", on: Optional[str] = None,
             left_on: Optional[str] = None,
             right_on: Optional[str] = None) -> "DataFrame":
        """Inner equi-join (``on`` names one shared column, or give
        ``left_on``/``right_on``)."""
        if on is not None:
            left_on = right_on = on
        if left_on is None or right_on is None:
            raise ValueError("join needs on= or left_on=/right_on=")
        return self._derive(Join(self.plan, other.plan, left_on, right_on))

    def order_by(self, *by: Union[str, Tuple[str, bool]],
                 ascending: bool = True) -> "DataFrame":
        spec = [(b, ascending) if isinstance(b, str) else (b[0], bool(b[1]))
                for b in by]
        return self._derive(Sort(self.plan, spec))

    def limit(self, n: int) -> "DataFrame":
        return self._derive(Limit(self.plan, n))

    # ---- physical plan -----------------------------------------------------

    def to_rdd(self) -> "RDD":
        """The compiled (optimized) RDD — cacheable, registrable,
        joinable with hand-built columnar pipelines."""
        if self._rdd is None:
            self._optimized, self._opt_stats = optimize(self.plan)
            self._rdd, self._compile_stats = compile_plan(
                self._optimized, self.session.context)
            if self._cached:
                self._rdd.cache()
        return self._rdd

    def cache(self) -> "DataFrame":
        """Cache the query's result blocks (columnar batches occupy
        their raw byte size — no deserialization overhead factor)."""
        self._cached = True
        if self._rdd is not None:
            self._rdd.cache()
        return self

    def explain(self) -> str:
        """Logical plan, optimized plan, and rewrite counters."""
        self.to_rdd()
        assert self._optimized is not None
        opt, comp = self._opt_stats, self._compile_stats
        return "\n".join([
            "== logical ==", self.plan.pretty(),
            "== optimized ==", self._optimized.pretty(),
            f"== stats == pushed_filters={opt.pushed_filters} "
            f"pruned_columns={opt.pruned_columns} "
            f"exchanges={comp.exchanges} "
            f"elided_exchanges={comp.elided_exchanges}",
        ])

    # ---- actions -----------------------------------------------------------

    def collect(self) -> List[tuple]:
        """Run the query; returns row tuples in schema order."""
        return self.session.execute(self)

    def count(self) -> int:
        return self.session.execute(self, count_only=True)

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{k}" for n, k in self.schema)
        return f"DataFrame([{cols}])"


class GroupedData:
    """Intermediate of :meth:`DataFrame.group_by`."""

    def __init__(self, df: DataFrame, keys: List[str]) -> None:
        self.df = df
        self.keys = keys

    def agg(self, *specs: AggSpec, **named: Tuple[str, ...]) -> DataFrame:
        """Aggregate the groups.

        Positional arguments are :class:`AggSpec` instances; keyword
        arguments name the output: ``total=("sum", "v")``,
        ``n=("count",)``, ``m=("avg", "v")``.
        """
        aggs = list(specs)
        for alias, spec in named.items():
            op = spec[0]
            column = spec[1] if len(spec) > 1 and spec[1] != "*" else None
            aggs.append(AggSpec(op, column, alias))
        return self.df._derive(Aggregate(self.df.plan, self.keys, aggs))


class SQLSession:
    """Table catalogue + query executor for one context.

    Attaches itself as ``context.sql_session`` so the CLI reconciles
    plan events against the session's ground-truth counters, the same
    way ``context.dataset_service`` is discovered.
    """

    def __init__(self, context: "StarkContext") -> None:
        self.context = context
        self.tables: Dict[str, Table] = {}
        self._query_ids = itertools.count(1)
        #: Ground-truth counters (event-reconciliation row).
        self.queries_planned = 0
        self.queries_completed = 0
        self.queries_failed = 0
        context.sql_session = self

    # ---- catalogue ---------------------------------------------------------

    def create_table(self, name: str, schema: Sequence[Tuple[str, str]],
                     generator, num_partitions: int,
                     read_cost: str = "disk") -> Table:
        """Register a deterministic columnar source
        (``generator(pid) -> ColumnarBatch`` of ``schema``)."""
        table = Table(name, schema, generator, num_partitions, read_cost)
        self.tables[name] = table
        return table

    def from_rows(self, name: str, schema: Sequence[Tuple[str, str]],
                  rows: Sequence[tuple], num_partitions: int = 4,
                  read_cost: str = "none") -> Table:
        """Register driver-held rows as a table (contiguous slices)."""
        schema = normalize_schema(schema)
        rows = list(rows)
        per = (len(rows) + num_partitions - 1) // max(num_partitions, 1) or 1

        def generator(pid: int) -> ColumnarBatch:
            return ColumnarBatch.from_rows(
                schema, rows[pid * per:(pid + 1) * per])

        return self.create_table(name, schema, generator, num_partitions,
                                 read_cost=read_cost)

    def table(self, name: str) -> DataFrame:
        if name not in self.tables:
            raise KeyError(f"unknown table {name!r}; registered: "
                           f"{sorted(self.tables)}")
        return DataFrame(self, Scan(self.tables[name]))

    def sql(self, text: str) -> DataFrame:
        """Parse a ``SELECT`` statement into a DataFrame."""
        from .parser import parse_select

        return parse_select(self, text)

    # ---- execution ---------------------------------------------------------

    def execute(self, df: DataFrame, count_only: bool = False):
        """Optimize, compile, and run ``df``'s plan as an engine job."""
        context = self.context
        bus = context.event_bus
        query_id = next(self._query_ids)
        started = context.now
        try:
            rdd = df.to_rdd()
            assert df._optimized is not None
            self.queries_planned += 1
            if bus.active:
                opt, comp = df._opt_stats, df._compile_stats
                bus.post(QueryPlanned(
                    time=context.now, query_id=query_id,
                    description=df._optimized.describe(),
                    num_operators=df._optimized.num_operators(),
                    pushed_filters=opt.pushed_filters,
                    pruned_columns=opt.pruned_columns,
                    exchanges=comp.exchanges,
                    elided_exchanges=comp.elided_exchanges))
            schema = df._optimized.schema()
            if count_only:
                parts = context.run_job(
                    rdd, lambda records: batch_of(records, schema).num_rows,
                    description=f"sql:q{query_id}.count")
                result: object = sum(parts)
                rows = int(result)  # type: ignore[arg-type]
            else:
                parts = context.run_job(
                    rdd, lambda records: batch_of(records, schema).to_rows(),
                    description=f"sql:q{query_id}.collect")
                result = [row for part in parts for row in part]
                rows = len(result)
        except Exception as exc:
            # Planning failures count as planned too: the reconciliation
            # identity is planned == completed + failed.
            if df._optimized is None:
                self.queries_planned += 1
                if bus.active:
                    bus.post(QueryPlanned(
                        time=context.now, query_id=query_id,
                        description=df.plan.describe(),
                        num_operators=df.plan.num_operators(),
                        pushed_filters=0, pruned_columns=0,
                        exchanges=0, elided_exchanges=0))
            self.queries_failed += 1
            if bus.active:
                bus.post(QueryFailed(time=context.now, query_id=query_id,
                                     error=str(exc)))
            raise
        self.queries_completed += 1
        if bus.active:
            bus.post(QueryCompleted(
                time=context.now, query_id=query_id, rows=rows,
                duration=context.now - started))
        return result
