"""Logical-plan optimizer: filter pushdown + projection pruning.

Two classic column-store rewrites (Shark's, in miniature), both pure
tree transformations with measurable effects the benchmark asserts:

* **filter pushdown** — ``Filter`` nodes sink toward their scans:
  through projections (substituting the projected expressions into the
  predicate), into whichever join side covers the predicate's columns,
  through group-bys when the predicate only reads group keys, and
  finally *into* the ``Scan`` node, where the compiled kernel drops
  rows before any downstream operator sees them;
* **projection pruning** — the set of columns each operator actually
  needs propagates root-to-leaf; every ``Scan`` ends up reading only
  the referenced subset, which directly shrinks the simulated bytes
  read (a column store reads columns, not rows).

:func:`optimize` returns the rewritten plan plus
:class:`OptimizerStats`, consumed by the ``QueryPlanned`` event, by
``explain()``, and by the pushdown assertions in
``bench_columnar_tpch``.  Filters never sink below ``Limit`` (that
would change the surviving row set); sinking below ``Sort`` is safe and
done.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from .expressions import Col, Expr, conjoin
from .plan import (
    Aggregate,
    Filter,
    JOIN_SUFFIX,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
)


@dataclass
class OptimizerStats:
    """What the rewrite pass actually changed."""

    #: Filter predicates that landed inside a ``Scan``.
    pushed_filters: int = 0
    #: Table columns scans no longer read.
    pruned_columns: int = 0


def optimize(plan: PlanNode) -> "tuple[PlanNode, OptimizerStats]":
    """Rewrite ``plan``; returns ``(optimized_plan, stats)``."""
    stats = OptimizerStats()
    plan = _push_filters(plan, stats)
    plan = _prune(plan, None, stats)
    return plan, stats


# ---- filter pushdown -------------------------------------------------------

def _right_output_names(join: Join) -> Dict[str, str]:
    """Join-output name -> right-side column name for non-key right
    columns (the ones :data:`JOIN_SUFFIX` may have renamed)."""
    left_names = {name for name, _ in join.left.schema()}
    out: Dict[str, str] = {}
    for name, _ in join.right.schema():
        if name == join.right_on:
            continue
        out_name = name + JOIN_SUFFIX if name in left_names else name
        out[out_name] = name
    return out


def _push_filters(node: PlanNode, stats: OptimizerStats) -> PlanNode:
    if isinstance(node, Filter):
        return _sink(node.predicate, _push_filters(node.child, stats), stats)
    if isinstance(node, Project):
        return Project(_push_filters(node.child, stats), node.exprs)
    if isinstance(node, Aggregate):
        return Aggregate(_push_filters(node.child, stats), node.keys,
                         node.aggs)
    if isinstance(node, Join):
        return Join(_push_filters(node.left, stats),
                    _push_filters(node.right, stats),
                    node.left_on, node.right_on)
    if isinstance(node, Sort):
        return Sort(_push_filters(node.child, stats), node.by)
    if isinstance(node, Limit):
        return Limit(_push_filters(node.child, stats), node.n)
    return node


def _sink(pred: Expr, node: PlanNode, stats: OptimizerStats) -> PlanNode:
    """Push ``pred`` as deep as legality allows over ``node``."""
    if isinstance(node, Scan):
        stats.pushed_filters += 1
        return Scan(node.table, node.columns,
                    conjoin(node.predicate, pred))
    if isinstance(node, Filter):
        return _sink(conjoin(node.predicate, pred), node.child, stats)
    if isinstance(node, Project):
        mapping = {name: expr for name, expr in node.exprs}
        return Project(_sink(pred.substitute(mapping), node.child, stats),
                       node.exprs)
    if isinstance(node, Join):
        cols = pred.columns()
        left_names = {name for name, _ in node.left.schema()}
        if cols <= left_names:
            return Join(_sink(pred, node.left, stats), node.right,
                        node.left_on, node.right_on)
        right_names = _right_output_names(node)
        if all(c in right_names for c in cols):
            subst = {out: Col(orig) for out, orig in right_names.items()}
            return Join(node.left,
                        _sink(pred.substitute(subst), node.right, stats),
                        node.left_on, node.right_on)
        return Filter(node, pred)
    if isinstance(node, Aggregate):
        if pred.columns() <= set(node.keys):
            return Aggregate(_sink(pred, node.child, stats),
                             node.keys, node.aggs)
        return Filter(node, pred)
    if isinstance(node, Sort):
        return Sort(_sink(pred, node.child, stats), node.by)
    # Limit (row set depends on position) and anything unknown: stop here.
    return Filter(node, pred)


# ---- projection pruning ----------------------------------------------------

def _prune(node: PlanNode, required: Optional[Set[str]],
           stats: OptimizerStats) -> PlanNode:
    """Rebuild ``node`` reading only ``required`` output columns
    (``None`` = caller needs everything)."""
    if isinstance(node, Scan):
        need = required
        if node.predicate is not None:
            need = (set(need) if need is not None else
                    {name for name, _ in node.schema()})
            need |= node.predicate.columns()
        if need is None:
            return node
        current = [name for name, _ in node.schema()]
        kept = [c for c in current if c in need]
        if not kept:  # count(*)-style: keep one column for row counts
            kept = [current[0]]
        stats.pruned_columns += len(node.table.schema) - len(kept)
        return Scan(node.table, kept, node.predicate)
    if isinstance(node, Project):
        exprs = (node.exprs if required is None else
                 tuple((n, e) for n, e in node.exprs if n in required)
                 or node.exprs[:1])
        child_need: Set[str] = set()
        for _, expr in exprs:
            child_need |= expr.columns()
        if not child_need:  # pure-literal projection still needs row counts
            child_need = {node.child.schema()[0][0]}
        return Project(_prune(node.child, child_need, stats), exprs)
    if isinstance(node, Filter):
        need = (None if required is None
                else set(required) | node.predicate.columns())
        return Filter(_prune(node.child, need, stats), node.predicate)
    if isinstance(node, Aggregate):
        need = set(node.keys)
        for spec in node.aggs:
            if spec.column is not None:
                need.add(spec.column)
        return Aggregate(_prune(node.child, need, stats), node.keys,
                         node.aggs)
    if isinstance(node, Join):
        if required is None:
            left_need: Optional[Set[str]] = None
            right_need: Optional[Set[str]] = None
        else:
            left_names = {name for name, _ in node.left.schema()}
            right_names = _right_output_names(node)
            left_need = {c for c in required if c in left_names}
            left_need.add(node.left_on)
            right_need: Set[str] = set()
            for out, orig in right_names.items():
                if out in required:
                    right_need.add(orig)
                    if out != orig:
                        # The _r rename exists only because the left side
                        # also outputs `orig`; keep that left column so
                        # downstream references to the suffixed name
                        # survive the rebuild.
                        left_need.add(orig)
            right_need.add(node.right_on)
        return Join(_prune(node.left, left_need, stats),
                    _prune(node.right, right_need, stats),
                    node.left_on, node.right_on)
    if isinstance(node, Sort):
        need = (None if required is None
                else set(required) | {c for c, _ in node.by})
        return Sort(_prune(node.child, need, stats), node.by)
    if isinstance(node, Limit):
        return Limit(_prune(node.child, required, stats), node.n)
    return node
