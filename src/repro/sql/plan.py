"""Logical query plans: the tree the DataFrame API builds.

Nodes are immutable descriptions — no RDDs, no data.  Each node derives
its output :data:`~repro.columnar.batch.Schema` from its children
(catching unknown columns and kind errors at *plan* time) and renders a
deterministic :meth:`~PlanNode.describe` string used by ``explain()``,
the lineage fingerprint, and the optimizer's rewrite bookkeeping.

The optimizer (:mod:`repro.sql.optimizer`) rewrites these trees; the
compiler (:mod:`repro.sql.compiler`) lowers them onto the columnar RDD
operators.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..columnar.batch import Schema, normalize_schema
from ..columnar.kernels import join_schema
from .expressions import AggSpec, Expr

#: Join-output suffix for right columns clashing with left names.
JOIN_SUFFIX = "_r"


class Table:
    """A registered source: deterministic columnar generator + schema."""

    def __init__(self, name: str, schema: Sequence[Tuple[str, str]],
                 generator: Callable[[int], "object"], num_partitions: int,
                 read_cost: str = "disk") -> None:
        self.name = str(name)
        self.schema = normalize_schema(schema)
        self.generator = generator
        self.num_partitions = int(num_partitions)
        self.read_cost = read_cost

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.num_partitions} partitions)"


class PlanNode:
    """Base logical operator.  ``eq=False`` semantics throughout: never
    compare plans (or expressions) with ``==`` — use ``describe()``."""

    def schema(self) -> Schema:
        raise NotImplementedError

    def children(self) -> List["PlanNode"]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def kinds(self) -> dict:
        return dict(self.schema())

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def num_operators(self) -> int:
        return 1 + sum(c.num_operators() for c in self.children())

    def __repr__(self) -> str:
        return self.describe()


class Scan(PlanNode):
    """Read a table; ``columns``/``predicate`` are the pushed-down
    projection and filter (both set only by the optimizer)."""

    def __init__(self, table: Table,
                 columns: Optional[Sequence[str]] = None,
                 predicate: Optional[Expr] = None) -> None:
        self.table = table
        self.columns = tuple(columns) if columns is not None else None
        self.predicate = predicate
        if self.columns is not None:
            known = {name for name, _ in table.schema}
            missing = [c for c in self.columns if c not in known]
            if missing:
                raise ValueError(
                    f"table {table.name!r} has no columns {missing}")

    def schema(self) -> Schema:
        if self.columns is None:
            return self.table.schema
        kinds = dict(self.table.schema)
        return tuple((c, kinds[c]) for c in self.columns)

    def children(self) -> List[PlanNode]:
        return []

    def describe(self) -> str:
        cols = list(self.columns) if self.columns is not None else "*"
        pred = self.predicate.describe() if self.predicate is not None else None
        return f"Scan({self.table.name}, columns={cols}, filter={pred})"


class Project(PlanNode):
    """Compute named output columns from expressions over the child."""

    def __init__(self, child: PlanNode,
                 exprs: Sequence[Tuple[str, Expr]]) -> None:
        self.child = child
        self.exprs = tuple((str(name), expr) for name, expr in exprs)
        if not self.exprs:
            raise ValueError("projection needs at least one column")
        kinds = child.kinds()
        for name, expr in self.exprs:
            unknown = expr.columns() - set(kinds)
            if unknown:
                raise ValueError(f"projection {name!r} references unknown "
                                 f"columns {sorted(unknown)}")
            if expr.kind(kinds) == "bool":
                raise TypeError(f"projection {name!r} is boolean; project "
                                f"comparisons through a filter instead")

    def schema(self) -> Schema:
        kinds = self.child.kinds()
        return tuple((name, expr.kind(kinds)) for name, expr in self.exprs)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        parts = ", ".join(f"{e.describe()} as {n}" for n, e in self.exprs)
        return f"Project({parts})"


class Filter(PlanNode):
    """Keep rows where ``predicate`` evaluates true."""

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        kinds = child.kinds()
        unknown = predicate.columns() - set(kinds)
        if unknown:
            raise ValueError(
                f"filter references unknown columns {sorted(unknown)}")
        if predicate.kind(kinds) != "bool":
            raise TypeError("filter predicate must be boolean")

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.describe()})"


class Aggregate(PlanNode):
    """Group by ``keys`` and compute ``aggs`` (pre-partitioned inputs
    compile without an exchange)."""

    def __init__(self, child: PlanNode, keys: Sequence[str],
                 aggs: Sequence[AggSpec]) -> None:
        self.child = child
        self.keys = tuple(str(k) for k in keys)
        self.aggs = tuple(aggs)
        if not self.keys:
            raise ValueError("group_by needs at least one key column")
        if not self.aggs:
            raise ValueError("agg needs at least one aggregate")
        kinds = child.kinds()
        for key in self.keys:
            if key not in kinds:
                raise ValueError(f"unknown group key {key!r}")
        for spec in self.aggs:
            if spec.column is not None and spec.column not in kinds:
                raise ValueError(f"aggregate over unknown column "
                                 f"{spec.column!r}")
            spec.result_kind(kinds)  # raises on kind errors

    def schema(self) -> Schema:
        kinds = self.child.kinds()
        out = [(k, kinds[k]) for k in self.keys]
        out += [(s.alias, s.result_kind(kinds)) for s in self.aggs]
        return tuple(out)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(s.describe() for s in self.aggs)
        return f"Aggregate(keys={list(self.keys)}, [{aggs}])"


class Join(PlanNode):
    """Inner equi-join; right columns clashing with left names get
    :data:`JOIN_SUFFIX`."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_on: str, right_on: str) -> None:
        self.left = left
        self.right = right
        self.left_on = str(left_on)
        self.right_on = str(right_on)
        left_kinds = dict(left.schema())
        right_kinds = dict(right.schema())
        if self.left_on not in left_kinds:
            raise ValueError(f"unknown left join key {self.left_on!r}")
        if self.right_on not in right_kinds:
            raise ValueError(f"unknown right join key {self.right_on!r}")
        if left_kinds[self.left_on] != right_kinds[self.right_on]:
            # Mixed-kind keys would hash to different partitions in the
            # exchange (stable_hash(2) != stable_hash(2.0)) and silently
            # drop matches; require an explicit cast projection instead.
            raise TypeError(
                f"join key kind mismatch: {self.left_on!r} is "
                f"{left_kinds[self.left_on]}, {self.right_on!r} is "
                f"{right_kinds[self.right_on]}; cast one side first")

    def schema(self) -> Schema:
        return join_schema(self.left.schema(), self.right.schema(),
                           self.right_on, JOIN_SUFFIX)

    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"Join({self.left_on} == {self.right_on})"


class Sort(PlanNode):
    """Global sort by ``(column, ascending)`` specs."""

    def __init__(self, child: PlanNode,
                 by: Sequence[Tuple[str, bool]]) -> None:
        self.child = child
        self.by = tuple((str(c), bool(asc)) for c, asc in by)
        if not self.by:
            raise ValueError("order_by needs at least one column")
        kinds = child.kinds()
        for column, _ in self.by:
            if column not in kinds:
                raise ValueError(f"unknown sort column {column!r}")

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        spec = ", ".join(f"{c} {'asc' if a else 'desc'}" for c, a in self.by)
        return f"Sort({spec})"


class Limit(PlanNode):
    """Keep the first ``n`` rows of the (gathered) child."""

    def __init__(self, child: PlanNode, n: int) -> None:
        if n < 0:
            raise ValueError(f"limit must be >= 0: {n}")
        self.child = child
        self.n = int(n)

    def schema(self) -> Schema:
        return self.child.schema()

    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.n})"
