"""A small SQL parser for the canned-workload subset.

Grammar (one ``SELECT`` statement, no subqueries):

.. code-block:: text

    SELECT item ("," item)*
    FROM name (JOIN name ON col "=" col)*
    (WHERE expr)?
    (GROUP BY col ("," col)*)?
    (ORDER BY col (ASC|DESC)? ("," ...)*)?
    (LIMIT int)?

    item := "*" | expr (AS name)?
          | (SUM|MIN|MAX|AVG|COUNT) "(" (col | "*") ")" (AS name)?
    expr := or-chain of AND chains of comparisons over
            col/int/float/'str' literals and + - * / arithmetic

Aggregate items require a ``GROUP BY``; the parsed statement becomes a
:class:`~repro.sql.dataframe.DataFrame` (the same plan/optimizer/compiler
path as the fluent API), so ``stark sql`` costs nothing extra to support.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, TYPE_CHECKING

from .expressions import AggSpec, BinOp, Col, Expr, Lit
from .plan import Aggregate, Filter, Join, Limit, Project, Scan, Sort

if TYPE_CHECKING:  # pragma: no cover
    from .dataframe import DataFrame, SQLSession

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<str>'(?:[^'\\]|\\.)*')"
    r"|(?P<num>\d+\.\d+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|\(|\)|,)"
    r")")

_KEYWORDS = {
    "select", "from", "join", "on", "where", "group", "by", "order",
    "limit", "as", "and", "or", "not", "asc", "desc",
    "sum", "count", "min", "max", "avg",
}

_AGG_FNS = {"sum", "count", "min", "max", "avg"}


class SQLParseError(ValueError):
    pass


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip() == "" or text[pos:].strip() == ";":
                break
            raise SQLParseError(f"cannot tokenize at: {text[pos:pos + 20]!r}")
        pos = match.end()
        if match.lastgroup == "name":
            word = match.group("name")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(("kw", lowered))
            else:
                tokens.append(("name", word))
        elif match.lastgroup == "num":
            tokens.append(("num", match.group("num")))
        elif match.lastgroup == "str":
            raw = match.group("str")[1:-1]
            tokens.append(("str", raw.replace("\\'", "'")))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and (value is None or token[1] == value):
            self.pos += 1
            return True
        return False

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token = self.peek()
        if token is None or token[0] != kind or \
                (value is not None and token[1] != value):
            raise SQLParseError(
                f"expected {value or kind}, got {token!r}")
        self.pos += 1
        return token[1]

    # ---- expressions (precedence: or < and < not < cmp < add < mul) -----

    def expr(self) -> Expr:
        left = self.expr_and()
        while self.accept("kw", "or"):
            left = BinOp("or", left, self.expr_and())
        return left

    def expr_and(self) -> Expr:
        left = self.expr_not()
        while self.accept("kw", "and"):
            left = BinOp("and", left, self.expr_not())
        return left

    def expr_not(self) -> Expr:
        if self.accept("kw", "not"):
            return ~self.expr_not()
        return self.expr_cmp()

    def expr_cmp(self) -> Expr:
        left = self.expr_add()
        token = self.peek()
        if token and token[0] == "op" and token[1] in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            self.next()
            op = {"=": "==", "<>": "!="}.get(token[1], token[1])
            return BinOp(op, left, self.expr_add())
        return left

    def expr_add(self) -> Expr:
        left = self.expr_mul()
        while True:
            token = self.peek()
            if token and token[0] == "op" and token[1] in ("+", "-"):
                self.next()
                left = BinOp(token[1], left, self.expr_mul())
            else:
                return left

    def expr_mul(self) -> Expr:
        left = self.expr_atom()
        while True:
            token = self.peek()
            if token and token[0] == "op" and token[1] in ("*", "/"):
                self.next()
                left = BinOp(token[1], left, self.expr_atom())
            else:
                return left

    def expr_atom(self) -> Expr:
        token = self.next()
        kind, value = token
        if kind == "name":
            return Col(value)
        if kind == "num":
            return Lit(float(value) if "." in value else int(value))
        if kind == "str":
            return Lit(value)
        if kind == "op" and value == "(":
            inner = self.expr()
            self.expect("op", ")")
            return inner
        if kind == "op" and value == "-":
            atom = self.expr_atom()
            return Lit(0) - atom
        raise SQLParseError(f"unexpected token {value!r} in expression")

    # ---- select items ---------------------------------------------------

    def select_item(self, index: int):
        """Returns ``("agg", AggSpec)`` or ``("expr", name, Expr)``."""
        token = self.peek()
        if token and token[0] == "kw" and token[1] in _AGG_FNS:
            fn = self.next()[1]
            self.expect("op", "(")
            if self.accept("op", "*"):
                if fn != "count":
                    raise SQLParseError(f"{fn}(*) is not supported")
                column = None
            else:
                column = self.expect("name")
            self.expect("op", ")")
            alias = (self.expect("name") if self.accept("kw", "as")
                     else f"{fn}_{column or 'all'}")
            return ("agg", AggSpec(fn, column, alias))
        expr = self.expr()
        if self.accept("kw", "as"):
            name = self.expect("name")
        elif isinstance(expr, Col):
            name = expr.name
        else:
            name = f"col{index}"
        return ("expr", name, expr)


def parse_select(session: "SQLSession", text: str) -> "DataFrame":
    """Parse one ``SELECT`` statement into a DataFrame over ``session``'s
    tables."""
    from .dataframe import DataFrame

    parser = _Parser(_tokenize(text))
    parser.expect("kw", "select")

    star = parser.accept("op", "*")
    items = []
    if not star:
        items.append(parser.select_item(0))
        while parser.accept("op", ","):
            items.append(parser.select_item(len(items)))

    parser.expect("kw", "from")
    table_name = parser.expect("name")
    if table_name not in session.tables:
        raise SQLParseError(f"unknown table {table_name!r}")
    plan = Scan(session.tables[table_name])

    while parser.accept("kw", "join"):
        right_name = parser.expect("name")
        if right_name not in session.tables:
            raise SQLParseError(f"unknown table {right_name!r}")
        parser.expect("kw", "on")
        left_col = parser.expect("name")
        parser.expect("op", "=")
        right_col = parser.expect("name")
        right_scan = Scan(session.tables[right_name])
        right_cols = {name for name, _ in right_scan.schema()}
        # Accept the ON columns in either order.
        if left_col in right_cols and right_col not in right_cols:
            left_col, right_col = right_col, left_col
        plan = Join(plan, right_scan, left_col, right_col)

    if parser.accept("kw", "where"):
        plan = Filter(plan, parser.expr())

    group_keys: List[str] = []
    if parser.accept("kw", "group"):
        parser.expect("kw", "by")
        group_keys.append(parser.expect("name"))
        while parser.accept("op", ","):
            group_keys.append(parser.expect("name"))

    aggs = [item[1] for item in items if item[0] == "agg"]
    plain = [(item[1], item[2]) for item in items if item[0] == "expr"]
    if aggs:
        if not group_keys:
            raise SQLParseError("aggregates require GROUP BY")
        for name, expr in plain:
            if not (isinstance(expr, Col) and expr.name in group_keys):
                raise SQLParseError(
                    f"non-aggregate select item {name!r} must be a "
                    f"GROUP BY key")
        plan = Aggregate(plan, group_keys, aggs)
        selected = [name for name, _ in plain] + [a.alias for a in aggs]
        # Reorder output to the SELECT list when it differs.
        if not star and selected != [name for name, _ in plan.schema()]:
            plan = Project(plan, [(n, Col(n)) for n in selected])
    elif group_keys:
        raise SQLParseError("GROUP BY without aggregate select items")
    elif not star:
        plan = Project(plan, plain)

    if parser.accept("kw", "order"):
        parser.expect("kw", "by")
        by: List[Tuple[str, bool]] = []
        while True:
            column = parser.expect("name")
            ascending = True
            if parser.accept("kw", "desc"):
                ascending = False
            else:
                parser.accept("kw", "asc")
            by.append((column, ascending))
            if not parser.accept("op", ","):
                break
        plan = Sort(plan, by)

    if parser.accept("kw", "limit"):
        plan = Limit(plan, int(parser.expect("num")))

    if parser.peek() is not None:
        raise SQLParseError(f"trailing tokens: {parser.peek()!r}")
    return DataFrame(session, plan)
