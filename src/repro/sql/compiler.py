"""Plan compiler: lower logical plans onto columnar RDD operators.

Lowering rules (``docs/DATAFRAME.md`` walks an example):

* ``Scan`` → :class:`~repro.columnar.rdd.ColumnarScanRDD` with the
  pruned column list and pushed predicate compiled to a mask kernel;
* ``Project``/``Filter`` → narrow
  :class:`~repro.columnar.rdd.ColumnarKernelRDD` kernels;
* ``Aggregate`` → partial-aggregate kernel, hash exchange on the group
  keys, merge kernel.  When the input already carries an equal
  :class:`~repro.columnar.rdd.ColumnarHashPartitioner` the exchange is
  **elided** (every group's rows are already co-resident);
* ``Join`` → exchange both sides onto a shared hash layout, then a
  narrow :class:`~repro.columnar.rdd.ColumnarZipRDD` running the
  vectorized hash join per partition.  Sides already partitioned on
  their join key skip their exchange — the partition-pruning join that
  makes repeated joins against a cached, pre-partitioned dimension
  table single-stage;
* ``Sort``/``Limit`` → gather exchange to one partition + sort/slice
  kernel (skipped when the input is already single-partition).

The compiler is deterministic and emits plain RDDs, so every downstream
engine feature — caching, eviction, speculation, fair-share pools,
registry fingerprint dedup, critical-path tracing — applies to SQL jobs
with no extra code.  :class:`CompileStats` reports elided exchanges for
``explain()`` and the plan events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from ..columnar import kernels as K
from ..columnar.batch import ColumnarBatch
from ..columnar.rdd import (
    ColumnarExchangeRDD,
    ColumnarHashPartitioner,
    ColumnarKernelRDD,
    ColumnarScanRDD,
    ColumnarZipRDD,
)
from .plan import (
    Aggregate,
    Filter,
    JOIN_SUFFIX,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.context import StarkContext
    from ..engine.rdd import RDD


@dataclass
class CompileStats:
    """Physical-planning outcomes."""

    #: Exchanges skipped because the input already had the right layout.
    elided_exchanges: int = 0
    #: Exchanges actually planned.
    exchanges: int = 0


def compile_plan(plan: PlanNode, context: "StarkContext",
                 stats: "CompileStats | None" = None,
                 ) -> "Tuple[RDD, CompileStats]":
    """Lower ``plan`` to an RDD whose partitions are ``[ColumnarBatch]``."""
    stats = stats or CompileStats()
    rdd = _compile(plan, context, stats)
    return rdd, stats


def _mask_kernel(predicate, desc: str):
    def apply_filter(batch: ColumnarBatch) -> ColumnarBatch:
        mask = np.asarray(predicate.eval(batch), dtype=bool)
        return batch.take(mask)
    apply_filter.desc = desc
    return apply_filter


def _compile(node: PlanNode, context: "StarkContext",
             stats: CompileStats) -> "RDD":
    if isinstance(node, Scan):
        table = node.table
        pred = node.predicate
        return ColumnarScanRDD(
            context, table.generator, table.schema, table.num_partitions,
            columns=node.columns,
            pushed_filter=(_mask_kernel(pred, pred.describe())
                           if pred is not None else None),
            filter_desc=pred.describe() if pred is not None else "",
            read_cost=table.read_cost,
            name=f"scan:{table.name}",
        )

    if isinstance(node, Filter):
        child = _compile(node.child, context, stats)
        pred = node.predicate
        return ColumnarKernelRDD(
            child, _mask_kernel(pred, pred.describe()), node.schema(),
            desc=f"filter:{pred.describe()}", kernels=1, name="sql_filter")

    if isinstance(node, Project):
        child = _compile(node.child, context, stats)
        schema = node.schema()
        exprs = node.exprs
        kinds = dict(schema)

        def project(batch: ColumnarBatch) -> ColumnarBatch:
            cols = {}
            n = batch.num_rows
            for name, expr in exprs:
                value = expr.eval(batch)
                if np.ndim(value) == 0:  # literal broadcast
                    value = np.full(
                        n, value,
                        dtype=(str if kinds[name] == "str" else
                               np.int64 if kinds[name] == "int"
                               else np.float64))
                cols[name] = value
            return ColumnarBatch(schema, cols)

        desc = ";".join(f"{n}={e.describe()}" for n, e in exprs)
        # Keys survive a projection only if passed through untouched;
        # conservatively drop the partitioner unless every key column is
        # projected as itself.
        keeps = _projection_preserves_keys(child, exprs)
        return ColumnarKernelRDD(
            child, project, schema, desc=f"project:{desc}",
            kernels=len(exprs), preserves_partitioning=keeps,
            name="sql_project")

    if isinstance(node, Aggregate):
        child = _compile(node.child, context, stats)
        keys = list(node.keys)
        triples = [s.as_triple() for s in node.aggs]
        kinds = node.child.kinds()
        partial_schema = K.partial_agg_schema(
            tuple((k, kinds[k]) for k in keys), triples, kinds)
        out_schema = node.schema()
        desc = ",".join(s.describe() for s in node.aggs)

        partial = ColumnarKernelRDD(
            child,
            lambda b: K.group_aggregate(b, keys, triples),
            partial_schema, desc=f"agg_partial:{keys}:{desc}",
            kernels=2 + len(triples), name="sql_agg_partial")
        layout = ColumnarHashPartitioner(child.num_partitions, keys)
        if child.partitioner is not None and child.partitioner == layout:
            stats.elided_exchanges += 1
            merged = partial  # groups already co-resident
        else:
            stats.exchanges += 1
            merged = ColumnarExchangeRDD(
                partial, keys, child.num_partitions, partial_schema,
                name="sql_agg_exchange")
        return ColumnarKernelRDD(
            merged,
            lambda b: K.merge_aggregate(b, keys, triples),
            out_schema, desc=f"agg_merge:{keys}:{desc}",
            kernels=2 + len(triples), name="sql_agg_merge")

    if isinstance(node, Join):
        left = _compile(node.left, context, stats)
        right = _compile(node.right, context, stats)
        n = max(left.num_partitions, right.num_partitions)
        left_on, right_on = node.left_on, node.right_on
        left = _ensure_layout(left, [left_on], n,
                              tuple(node.left.schema()), stats)
        right = _ensure_layout(right, [right_on], n,
                               tuple(node.right.schema()), stats)
        out_schema = node.schema()

        def zip_join(batches) -> ColumnarBatch:
            return K.hash_join(batches[0], batches[1], left_on, right_on,
                               JOIN_SUFFIX)

        return ColumnarZipRDD(
            [left, right], zip_join, out_schema,
            desc=f"hash_join:{left_on}=={right_on}", kernels=3,
            name="sql_join")

    if isinstance(node, Sort):
        child = _compile(node.child, context, stats)
        by = list(node.by)
        gathered = _gather(child, tuple(node.schema()), stats)
        return ColumnarKernelRDD(
            gathered, lambda b: K.sort_batch(b, by), node.schema(),
            desc=f"sort:{by}", kernels=len(by) + 1, name="sql_sort")

    if isinstance(node, Limit):
        child = _compile(node.child, context, stats)
        gathered = _gather(child, tuple(node.schema()), stats)
        n_rows = node.n
        return ColumnarKernelRDD(
            gathered, lambda b: K.limit_batch(b, n_rows), node.schema(),
            desc=f"limit:{n_rows}", kernels=1, name="sql_limit")

    raise TypeError(f"cannot compile plan node {type(node).__name__}")


def _projection_preserves_keys(child: "RDD", exprs) -> bool:
    """True iff the child's hash layout survives the projection: every
    key column is projected through as itself (same name, bare column
    reference)."""
    from .expressions import Col

    layout = child.partitioner
    if not isinstance(layout, ColumnarHashPartitioner):
        return False
    passthrough = {name for name, expr in exprs
                   if isinstance(expr, Col) and expr.name == name}
    return all(key in passthrough for key in layout.key_columns)


def _ensure_layout(rdd: "RDD", keys, num_partitions: int, schema,
                   stats: CompileStats) -> "RDD":
    """Exchange ``rdd`` onto ``ColumnarHashPartitioner(num_partitions,
    keys)`` unless it is already there (partition-pruning join)."""
    layout = ColumnarHashPartitioner(num_partitions, keys)
    if rdd.partitioner is not None and rdd.partitioner == layout:
        stats.elided_exchanges += 1
        return rdd
    stats.exchanges += 1
    return ColumnarExchangeRDD(rdd, list(keys), num_partitions, schema,
                               name="sql_join_exchange")


def _gather(rdd: "RDD", schema, stats: CompileStats) -> "RDD":
    """All rows into one partition (global sort/limit)."""
    if rdd.num_partitions == 1:
        return rdd
    stats.exchanges += 1
    return ColumnarExchangeRDD(rdd, None, 1, schema, name="sql_gather")
