"""Scalar and aggregate expressions for the DataFrame/SQL layer.

An :class:`Expr` is a small immutable tree (columns, literals, binary
arithmetic/comparison/boolean operators) that evaluates two ways:

* :meth:`Expr.eval` — vectorized, over a
  :class:`~repro.columnar.batch.ColumnarBatch`, returning a numpy array
  (the compiled execution path);
* :meth:`Expr.eval_row` — scalar, over a ``{column: value}`` dict (the
  reference semantics the property tests compare the kernels against).

Expressions overload Python operators, so ``(col("a") + 1) * col("b") >
lit(3)`` builds the expected tree.  **Note** ``==`` is overloaded too:
never compare expressions with ``==``; use :meth:`Expr.describe` for
structural identity (it is also what lineage fingerprinting hashes).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..columnar.batch import ColumnarBatch

_ARITH = {"+", "-", "*", "/"}
_COMPARE = {"==", "!=", "<", "<=", ">", ">="}
_BOOL = {"and", "or"}

_NUMPY_OP = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
    "==": np.equal, "!=": np.not_equal,
    "<": np.less, "<=": np.less_equal,
    ">": np.greater, ">=": np.greater_equal,
    "and": np.logical_and, "or": np.logical_or,
}

_PY_OP = {
    "+": lambda a, b: a + b, "-": lambda a, b: a - b,
    "*": lambda a, b: a * b, "/": lambda a, b: a / b,
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
}


class Expr:
    """Base expression node."""

    def columns(self) -> Set[str]:
        """Every column name the expression reads."""
        raise NotImplementedError

    def eval(self, batch: ColumnarBatch):
        """Vectorized evaluation to a numpy array (or scalar literal)."""
        raise NotImplementedError

    def eval_row(self, row: Dict[str, object]):
        """Scalar reference evaluation over one row dict."""
        raise NotImplementedError

    def kind(self, kinds: Dict[str, str]) -> str:
        """Result kind (``int``/``float``/``str``/``bool``) given input
        column kinds."""
        raise NotImplementedError

    def describe(self) -> str:
        """Deterministic structural description (fingerprint input)."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Expr"]) -> "Expr":
        """Replace column references per ``mapping`` (filter pushdown
        through projections)."""
        raise NotImplementedError

    # ---- operator sugar ----------------------------------------------------

    def _bin(self, op: str, other: object, reflected: bool = False) -> "BinOp":
        rhs = other if isinstance(other, Expr) else Lit(other)
        return BinOp(op, rhs, self) if reflected else BinOp(op, self, rhs)

    def __add__(self, other): return self._bin("+", other)
    def __radd__(self, other): return self._bin("+", other, True)
    def __sub__(self, other): return self._bin("-", other)
    def __rsub__(self, other): return self._bin("-", other, True)
    def __mul__(self, other): return self._bin("*", other)
    def __rmul__(self, other): return self._bin("*", other, True)
    def __truediv__(self, other): return self._bin("/", other)
    def __rtruediv__(self, other): return self._bin("/", other, True)
    def __eq__(self, other): return self._bin("==", other)  # type: ignore[override]
    def __ne__(self, other): return self._bin("!=", other)  # type: ignore[override]
    def __lt__(self, other): return self._bin("<", other)
    def __le__(self, other): return self._bin("<=", other)
    def __gt__(self, other): return self._bin(">", other)
    def __ge__(self, other): return self._bin(">=", other)
    def __and__(self, other): return self._bin("and", other)
    def __or__(self, other): return self._bin("or", other)
    def __invert__(self): return Not(self)

    __hash__ = object.__hash__  # __eq__ builds trees; identity hash is fine

    def alias(self, name: str) -> "Alias":
        return Alias(self, name)

    def __repr__(self) -> str:
        return self.describe()


class Col(Expr):
    """A column reference."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = str(name)

    def columns(self) -> Set[str]:
        return {self.name}

    def eval(self, batch: ColumnarBatch):
        return batch.columns[self.name]

    def eval_row(self, row: Dict[str, object]):
        return row[self.name]

    def kind(self, kinds: Dict[str, str]) -> str:
        return kinds[self.name]

    def describe(self) -> str:
        return f"col({self.name})"

    def substitute(self, mapping: Dict[str, "Expr"]) -> Expr:
        return mapping.get(self.name, self)


class Lit(Expr):
    """A literal constant (int, float, str, or bool)."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        if not isinstance(value, (bool, int, float, str)):
            raise TypeError(f"unsupported literal type {type(value).__name__}")
        self.value = value

    def columns(self) -> Set[str]:
        return set()

    def eval(self, batch: ColumnarBatch):
        return self.value

    def eval_row(self, row: Dict[str, object]):
        return self.value

    def kind(self, kinds: Dict[str, str]) -> str:
        if isinstance(self.value, bool):
            return "bool"
        if isinstance(self.value, int):
            return "int"
        if isinstance(self.value, float):
            return "float"
        return "str"

    def describe(self) -> str:
        return f"lit({self.value!r})"

    def substitute(self, mapping: Dict[str, "Expr"]) -> Expr:
        return self


class BinOp(Expr):
    """Binary operator over two sub-expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _NUMPY_OP:
            raise ValueError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def columns(self) -> Set[str]:
        return self.left.columns() | self.right.columns()

    def eval(self, batch: ColumnarBatch):
        return _NUMPY_OP[self.op](self.left.eval(batch),
                                  self.right.eval(batch))

    def eval_row(self, row: Dict[str, object]):
        return _PY_OP[self.op](self.left.eval_row(row),
                               self.right.eval_row(row))

    def kind(self, kinds: Dict[str, str]) -> str:
        if self.op in _COMPARE or self.op in _BOOL:
            return "bool"
        lk, rk = self.left.kind(kinds), self.right.kind(kinds)
        if self.op == "/":
            return "float"
        if lk == "str" or rk == "str":
            if self.op != "+" or lk != rk:
                raise TypeError(f"cannot apply {self.op!r} to {lk}/{rk}")
            return "str"
        return "float" if "float" in (lk, rk) else "int"

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"

    def substitute(self, mapping: Dict[str, "Expr"]) -> Expr:
        return BinOp(self.op, self.left.substitute(mapping),
                     self.right.substitute(mapping))


class Not(Expr):
    """Logical negation."""

    __slots__ = ("child",)

    def __init__(self, child: Expr) -> None:
        self.child = child

    def columns(self) -> Set[str]:
        return self.child.columns()

    def eval(self, batch: ColumnarBatch):
        return np.logical_not(self.child.eval(batch))

    def eval_row(self, row: Dict[str, object]):
        return not self.child.eval_row(row)

    def kind(self, kinds: Dict[str, str]) -> str:
        return "bool"

    def describe(self) -> str:
        return f"(not {self.child.describe()})"

    def substitute(self, mapping: Dict[str, "Expr"]) -> Expr:
        return Not(self.child.substitute(mapping))


class Alias:
    """An output-name binding for a projected expression."""

    __slots__ = ("expr", "name")

    def __init__(self, expr: Expr, name: str) -> None:
        self.expr = expr
        self.name = str(name)

    def describe(self) -> str:
        return f"{self.expr.describe()} as {self.name}"

    def __repr__(self) -> str:
        return self.describe()


class AggSpec:
    """One aggregate output: ``op`` over ``column`` named ``alias``.

    ``op`` is one of :data:`~repro.columnar.kernels.AGG_OPS`; ``column``
    is ``None`` only for ``count``.  ``min``/``max`` work on any kind;
    ``sum``/``avg`` require numeric columns (checked at planning).
    """

    __slots__ = ("op", "column", "alias")

    def __init__(self, op: str, column: Optional[str], alias: str) -> None:
        from ..columnar.kernels import AGG_OPS

        if op not in AGG_OPS:
            raise ValueError(f"unknown aggregate {op!r}; pick from {AGG_OPS}")
        if column is None and op != "count":
            raise ValueError(f"aggregate {op!r} needs a column")
        self.op = op
        self.column = column
        self.alias = str(alias)

    def result_kind(self, kinds: Dict[str, str]) -> str:
        if self.op == "count":
            return "int"
        kind = kinds[self.column]
        if self.op in ("sum", "avg"):
            if kind == "str":
                raise TypeError(f"{self.op} over string column "
                                f"{self.column!r}")
            return "float"
        return kind  # min/max preserve

    def describe(self) -> str:
        return f"{self.op}({self.column or '*'}) as {self.alias}"

    def __repr__(self) -> str:
        return self.describe()

    def as_triple(self) -> Tuple[str, str, str]:
        """The kernel-facing ``(op, column, alias)`` form; ``count``
        reads no column, any name keeps the kernels uniform."""
        return (self.op, self.column or "", self.alias)


def col(name: str) -> Col:
    return Col(name)


def lit(value: object) -> Lit:
    return Lit(value)


def conjoin(a: Optional[Expr], b: Optional[Expr]) -> Optional[Expr]:
    """AND-combine two optional predicates."""
    if a is None:
        return b
    if b is None:
        return a
    return BinOp("and", a, b)
