"""repro.sql — DataFrame/SQL front-end over the columnar engine.

The Shark-style layer cake: expressions → logical plans → optimizer
(filter pushdown, projection pruning) → compiler → columnar RDDs.  A
:class:`SQLSession` registers tables, parses SQL text, executes
DataFrames as ordinary engine jobs, and emits
``QueryPlanned``/``QueryCompleted``/``QueryFailed`` events for the
``stark trace`` reconciliation table.

Quick tour::

    session = SQLSession(context)
    session.from_rows("t", [("k", "str"), ("v", "int")], rows)
    out = (session.table("t")
           .filter(col("v") > 10)
           .group_by("k")
           .agg(total=("sum", "v"))
           .collect())
    same = session.sql(
        "SELECT k, SUM(v) AS total FROM t WHERE v > 10 GROUP BY k"
    ).collect()
"""

from .compiler import CompileStats, compile_plan
from .dataframe import DataFrame, GroupedData, SQLSession
from .expressions import (
    AggSpec,
    Alias,
    BinOp,
    Col,
    Expr,
    Lit,
    Not,
    col,
    conjoin,
    lit,
)
from .optimizer import OptimizerStats, optimize
from .parser import SQLParseError, parse_select
from .plan import (
    Aggregate,
    Filter,
    JOIN_SUFFIX,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    Table,
)

__all__ = [
    "AggSpec",
    "Aggregate",
    "Alias",
    "BinOp",
    "Col",
    "CompileStats",
    "DataFrame",
    "Expr",
    "Filter",
    "GroupedData",
    "JOIN_SUFFIX",
    "Join",
    "Limit",
    "Lit",
    "Not",
    "OptimizerStats",
    "PlanNode",
    "Project",
    "SQLParseError",
    "SQLSession",
    "Scan",
    "Sort",
    "Table",
    "col",
    "compile_plan",
    "conjoin",
    "lit",
    "optimize",
    "parse_select",
]
