"""The paper's evaluation configurations (§IV-A).

Five partitioning/locality configurations:

* **Spark-R** — a new RangePartitioner per RDD;
* **Spark-H** — one shared HashPartitioner, no locality management;
* **Stark-H** — shared HashPartitioner + co-locality only;
* **Stark-S** — shared StaticRangePartitioner + co-locality only;
* **Stark-E** — Stark-S plus extendable partition groups.

Plus the checkpointing variants of §IV-D: **Stark-1** (exact optimum),
**Stark-3** (relaxation f=3), and **Tachyon** (Edge algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cluster.cluster import Cluster
from ..cluster.cost_model import CostModel
from ..core.extendable_partitioner import ExtendablePartitioner
from ..engine.context import StarkConfig, StarkContext
from ..engine.partitioner import (
    HashPartitioner,
    Partitioner,
    StaticRangePartitioner,
)

SPARK_R = "Spark-R"
SPARK_H = "Spark-H"
STARK_H = "Stark-H"
STARK_S = "Stark-S"
STARK_E = "Stark-E"

ALL_CONFIGS = (SPARK_R, SPARK_H, STARK_H, STARK_S, STARK_E)


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware shape of one experiment."""

    num_workers: int = 8
    cores_per_worker: int = 4
    memory_per_worker: float = 4e9
    cost_model: Optional[CostModel] = None
    seed: int = 0


@dataclass
class ExperimentSetup:
    """A ready-to-use context + partitioner for one configuration."""

    name: str
    context: StarkContext
    partitioner: Optional[Partitioner]
    #: "range-per-rdd" | "shared" — how the app should partition RDDs.
    partition_mode: str
    #: Whether RDDs should register co-locality namespaces.
    locality: bool


def make_context(
    name: str,
    spec: ClusterSpec,
    stark_config: Optional[StarkConfig] = None,
    cache_policy: Optional[str] = None,
    cache_admission_min_cost: Optional[float] = None,
) -> StarkContext:
    """Build a context with the feature switches of configuration ``name``.

    ``cache_policy`` / ``cache_admission_min_cost`` override the cache
    subsystem knobs (see ``repro.cache``) so any evaluation
    configuration can be run under any eviction policy; unset, they
    follow ``stark_config`` (itself defaulting to the CLI-settable
    ``repro.cache.DEFAULTS``).
    """
    if name not in ALL_CONFIGS:
        raise ValueError(f"unknown configuration {name!r}; pick from {ALL_CONFIGS}")
    is_stark = name.startswith("Stark")
    config = stark_config or StarkConfig()
    config = replace(
        config,
        locality_enabled=is_stark,
        mcf_enabled=is_stark,
        replication_enabled=is_stark,
    )
    if cache_policy is not None:
        config = replace(config, cache_policy=cache_policy)
    if cache_admission_min_cost is not None:
        config = replace(config, cache_admission_min_cost=cache_admission_min_cost)
    cluster = Cluster(
        num_workers=spec.num_workers,
        cores_per_worker=spec.cores_per_worker,
        memory_per_worker=spec.memory_per_worker,
        cost_model=spec.cost_model,
        seed=spec.seed,
    )
    return StarkContext(cluster=cluster, config=config)


def make_setup(
    name: str,
    spec: ClusterSpec,
    num_partitions: int = 8,
    key_lo: int = 0,
    key_hi: int = 1 << 16,
    groups: int = 4,
    partitions_per_group: int = 4,
    stark_config: Optional[StarkConfig] = None,
    cache_policy: Optional[str] = None,
    cache_admission_min_cost: Optional[float] = None,
) -> ExperimentSetup:
    """Build the context *and* the partitioner each configuration uses.

    ``key_lo``/``key_hi`` bound the integer key domain for the range
    partitioners (Z-encoded keys for taxi workloads).
    """
    context = make_context(name, spec, stark_config,
                           cache_policy=cache_policy,
                           cache_admission_min_cost=cache_admission_min_cost)
    partitioner: Optional[Partitioner]
    partition_mode = "shared"
    if name == SPARK_R:
        partitioner = None
        partition_mode = "range-per-rdd"
    elif name in (SPARK_H, STARK_H):
        partitioner = HashPartitioner(num_partitions)
    elif name == STARK_S:
        partitioner = StaticRangePartitioner.uniform(key_lo, key_hi, num_partitions)
    else:  # STARK_E
        partitioner = ExtendablePartitioner.over_key_range(
            key_lo, key_hi, groups, partitions_per_group
        )
    return ExperimentSetup(
        name=name,
        context=context,
        partitioner=partitioner,
        partition_mode=partition_mode,
        locality=name.startswith("Stark"),
    )
