"""Benchmark regression gate: compare ``BENCH_*.json`` runs to baselines.

CI runs the result-writing benchmarks with ``--bench-json-dir``, then::

    python -m repro.bench.compare benchmarks/baselines bench-results

Every ``BENCH_<name>.json`` present in the baseline directory must exist
in the current run, and every *tracked* metric (see
:data:`TRACKED_LOWER_IS_BETTER` / :data:`TRACKED_HIGHER_IS_BETTER`) must
stay within ``--threshold`` (default 15%) of its baseline value.  The
comparison prints a markdown delta table — appended to
``$GITHUB_STEP_SUMMARY`` when set — and exits non-zero on any
regression, so the job fails visibly.

Numbers drift for legitimate reasons (a new cost-model term, a retuned
workload).  When a change intentionally moves a metric, refresh the
committed baselines and review the diff like any other code change::

    STARK_BENCH_DIR=bench-results PYTHONPATH=src python -m pytest \
        benchmarks/bench_cache_policies.py benchmarks/bench_speculation_tail.py
    python -m repro.bench.compare benchmarks/baselines bench-results \
        --update-baselines

``config`` subtrees are ignored: they describe the workload, not the
outcome.  Untracked numeric leaves (counts, rates the gate has no
direction for) are compared informationally but never fail the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Metric leaf names where smaller is better (times, delays, costs).
TRACKED_LOWER_IS_BETTER = frozenset({
    "mean_delay", "p95_delay", "p99_delay",
    "mean_task_delay", "p95_task_delay", "p99_task_delay",
    "mean_makespan", "makespan",
    "worker_hours", "recompute_time",
})

#: Metric leaf names where larger is better (savings, hit rates, and the
#: kernel-throughput bench's calibration-normalized wall-clock rates —
#: the raw ``events_per_sec``/``tasks_per_sec`` stay untracked because
#: they depend on the host machine).
TRACKED_HIGHER_IS_BETTER = frozenset({
    "hit_rate", "p99_improvement", "worker_hours_saved",
    "normalized_events_per_sec", "normalized_tasks_per_sec",
    "makespan_speedup", "colocated_transfer_speedup",
})

_TINY = 1e-12


def flatten_metrics(payload: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf, skipping
    ``config`` subtrees (workload knobs, not outcomes)."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            if key == "config":
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten_metrics(payload[key], path)
    elif isinstance(payload, bool):
        return
    elif isinstance(payload, (int, float)):
        yield prefix, float(payload)


def metric_direction(path: str) -> int:
    """-1 if the leaf is lower-is-better, +1 if higher-is-better,
    0 if untracked."""
    leaf = path.rsplit(".", 1)[-1]
    if leaf in TRACKED_LOWER_IS_BETTER:
        return -1
    if leaf in TRACKED_HIGHER_IS_BETTER:
        return +1
    return 0


class Delta:
    """One metric's baseline-vs-current comparison."""

    def __init__(self, bench: str, path: str, baseline: Optional[float],
                 current: Optional[float], threshold: float) -> None:
        self.bench = bench
        self.path = path
        self.baseline = baseline
        self.current = current
        self.direction = metric_direction(path)
        self.regressed = self._regressed(threshold)

    @property
    def change(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if abs(self.baseline) <= _TINY:
            return 0.0 if abs(self.current) <= _TINY else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    def _regressed(self, threshold: float) -> bool:
        if self.direction == 0:
            return False
        if self.baseline is None or self.current is None:
            return True  # tracked metric vanished (or appeared) — fail loud
        change = self.change
        assert change is not None
        if self.direction < 0:  # lower is better: worse means it grew
            return change > threshold
        return change < -threshold  # higher is better: worse means it fell

    def status(self) -> str:
        if self.regressed:
            return "❌ regressed"
        if self.direction == 0:
            return "—"
        return "✅"

    def row(self) -> List[str]:
        fmt = lambda v: "missing" if v is None else f"{v:.6g}"  # noqa: E731
        change = self.change
        pct = "n/a" if change is None else (
            "inf" if change == float("inf") else f"{change:+.1%}")
        return [self.bench, self.path, fmt(self.baseline),
                fmt(self.current), pct, self.status()]


def load_bench_dir(directory: Path) -> Dict[str, Dict[str, float]]:
    """Map benchmark name -> flat metrics for every ``BENCH_*.json``."""
    out: Dict[str, Dict[str, float]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        out[name] = dict(flatten_metrics(json.loads(path.read_text())))
    return out


def compare_dirs(baseline_dir: Path, current_dir: Path,
                 threshold: float,
                 only: Optional[List[str]] = None,
                 ) -> Tuple[List[Delta], List[str]]:
    """All deltas plus a list of problems (missing files/metrics).

    ``only`` restricts the comparison to the named benchmarks — used by
    jobs that run a subset of the suite (the sim-kernel smoke job) so
    absent results for the other baselines don't read as failures.
    Naming a benchmark with no baseline is itself a problem.
    """
    baselines = load_bench_dir(baseline_dir)
    currents = load_bench_dir(current_dir)
    deltas: List[Delta] = []
    problems: List[str] = []
    if only is not None:
        for name in only:
            if name not in baselines:
                problems.append(
                    f"--only names benchmark '{name}' but "
                    f"{baseline_dir} has no BENCH_{name}.json")
        baselines = {k: v for k, v in baselines.items() if k in only}
        currents = {k: v for k, v in currents.items() if k in only}
    if not baselines:
        problems.append(f"no BENCH_*.json baselines under {baseline_dir}")
    for bench, base_metrics in baselines.items():
        cur_metrics = currents.get(bench)
        if cur_metrics is None:
            problems.append(
                f"benchmark '{bench}' has a baseline but produced no "
                f"BENCH_{bench}.json this run")
            continue
        for path in sorted(set(base_metrics) | set(cur_metrics)):
            deltas.append(Delta(bench, path, base_metrics.get(path),
                                cur_metrics.get(path), threshold))
    for bench in sorted(set(currents) - set(baselines)):
        problems.append(
            f"benchmark '{bench}' has no committed baseline — run with "
            f"--update-baselines to add it")
    return deltas, problems


def markdown_table(deltas: List[Delta], tracked_only: bool = True) -> str:
    headers = ["benchmark", "metric", "baseline", "current", "Δ", "status"]
    rows = [d.row() for d in deltas
            if not tracked_only or d.direction != 0 or d.regressed]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(lines)


def update_baselines(baseline_dir: Path, current_dir: Path,
                     only: Optional[List[str]] = None) -> List[str]:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied = []
    for path in sorted(current_dir.glob("BENCH_*.json")):
        if only is not None and path.stem[len("BENCH_"):] not in only:
            continue
        shutil.copyfile(path, baseline_dir / path.name)
        copied.append(path.name)
    return copied


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Compare BENCH_*.json results against baselines; "
                    "exit 1 on regression.")
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("current_dir", type=Path)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative drift on tracked metrics "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--table-out", type=Path, default=None,
                        help="also write the markdown delta table here")
    parser.add_argument("--only", type=str, default=None,
                        help="comma-separated benchmark names; compare "
                             "(or --update-baselines) just these")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy the current BENCH_*.json files over "
                             "the baselines and exit")
    args = parser.parse_args(argv)
    only = ([name.strip() for name in args.only.split(",") if name.strip()]
            if args.only is not None else None)

    if args.update_baselines:
        copied = update_baselines(args.baseline_dir, args.current_dir,
                                  only=only)
        for name in copied:
            print(f"updated {args.baseline_dir / name}")
        if not copied:
            print(f"no BENCH_*.json found under {args.current_dir}",
                  file=sys.stderr)
            return 1
        return 0

    deltas, problems = compare_dirs(args.baseline_dir, args.current_dir,
                                    args.threshold, only=only)
    table = markdown_table(deltas)
    print(f"## Benchmark regression gate (threshold "
          f"{args.threshold:.0%})\n")
    print(table)
    for problem in problems:
        print(f"\n**problem:** {problem}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    sinks = [Path(summary_path)] if summary_path else []
    if args.table_out is not None:
        sinks.append(args.table_out)
    for sink in sinks:
        with open(sink, "a") as fh:
            fh.write(f"## Benchmark regression gate (threshold "
                     f"{args.threshold:.0%})\n\n{table}\n")
            for problem in problems:
                fh.write(f"\n**problem:** {problem}\n")

    regressions = [d for d in deltas if d.regressed]
    if regressions or problems:
        print(f"\nFAIL: {len(regressions)} regression(s), "
              f"{len(problems)} problem(s)", file=sys.stderr)
        return 1
    tracked = sum(1 for d in deltas if d.direction != 0)
    print(f"\nOK: {tracked} tracked metrics within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
