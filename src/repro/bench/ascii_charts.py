"""Tiny ASCII chart rendering for CLI experiment output.

No plotting dependencies exist in the offline environment, so the CLI
renders figures as text: sparklines for time series (Fig 20), horizontal
bars for comparisons (Figs 1/11), and a dot plot for scatter-ish sweeps
(Figs 7/19).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line sparkline of ``values`` (empty string for no data)."""
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(len(_SPARK_LEVELS) - 1, idx))])
    return "".join(out)


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 40,
              unit: str = "") -> str:
    """Horizontal bar chart; one row per (label, value)."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    peak = max(v for _, v in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0,
                        int(value / peak * width))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def series_chart(series: Dict[str, Sequence[float]], width: int = 60,
                 height: int = 10) -> str:
    """Multi-series dot plot on a shared y scale, one glyph per series."""
    if not series:
        return "(no data)"
    glyphs = "*o+x@%"
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return "(no data)"
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    longest = max(len(vs) for vs in series.values())
    grid = [[" "] * min(width, longest) for _ in range(height)]
    for si, (name, vs) in enumerate(sorted(series.items())):
        glyph = glyphs[si % len(glyphs)]
        for i, v in enumerate(list(vs)[: len(grid[0])]):
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][i] = glyph
    lines = [f"{hi:>10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:>10.3g} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
