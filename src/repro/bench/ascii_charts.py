"""Tiny ASCII chart rendering for CLI experiment output.

No plotting dependencies exist in the offline environment, so the CLI
renders figures as text: sparklines for time series (Fig 20), horizontal
bars for comparisons (Figs 1/11), and a dot plot for scatter-ish sweeps
(Figs 7/19).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line sparkline of ``values`` (empty string for no data)."""
    values = list(values)
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[max(0, min(len(_SPARK_LEVELS) - 1, idx))])
    return "".join(out)


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 40,
              unit: str = "") -> str:
    """Horizontal bar chart; one row per (label, value)."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    peak = max(v for _, v in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0,
                        int(value / peak * width))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def timeline_chart(lanes: Dict[str, Sequence[Tuple[float, float]]],
                   width: int = 64) -> str:
    """Gantt-style lanes: ``{label: [(start, end), ...]}`` on a shared
    time axis.  Each interval paints at least one cell, so even very
    short tasks stay visible."""
    spans = [(s, e) for ivs in lanes.values() for s, e in ivs]
    if not spans:
        return "(no data)"
    t0 = min(s for s, _ in spans)
    t1 = max(e for _, e in spans)
    if t1 <= t0:
        t1 = t0 + 1.0
    scale = width / (t1 - t0)
    label_width = max(len(label) for label in lanes)
    lines = []
    for label in sorted(lanes):
        cells = [" "] * width
        for start, end in lanes[label]:
            lo = int((start - t0) * scale)
            hi = max(lo + 1, int((end - t0) * scale))
            for i in range(max(0, lo), min(width, hi)):
                cells[i] = "█" if cells[i] == " " else "▓"
        lines.append(f"{label.rjust(label_width)} |{''.join(cells)}|")
    axis = f"{t0:<10.3g}{t1:>{width - 10}.3g}"
    lines.append(" " * (label_width + 2) + axis)
    return "\n".join(lines)


def utilization_chart(timeline: Sequence[Tuple[float, float]],
                      width: int = 64, unit: str = "") -> str:
    """Render a step function ``[(time, level), ...]`` as a sparkline
    with peak/mean annotations, time-weighted per column."""
    points = sorted(timeline)
    if not points:
        return "(no data)"
    t0, t1 = points[0][0], points[-1][0]
    if t1 <= t0:
        return (f"constant {points[-1][1]:.3g}{unit} "
                f"from t={t0:.3g}s")
    bucket = (t1 - t0) / width
    levels: List[float] = []
    idx = 0
    for col in range(width):
        lo = t0 + col * bucket
        hi = lo + bucket
        area = 0.0
        while idx + 1 < len(points) and points[idx + 1][0] <= lo:
            idx += 1
        j = idx
        while j < len(points):
            seg_lo = max(lo, points[j][0])
            seg_hi = min(hi, points[j + 1][0]) if j + 1 < len(points) else hi
            if seg_hi <= seg_lo:
                break
            area += points[j][1] * (seg_hi - seg_lo)
            j += 1
        levels.append(area / bucket)
    peak = max(p[1] for p in points)
    mean = sum(levels) / len(levels)
    return (f"{sparkline(levels, lo=0.0, hi=peak or 1.0)}\n"
            f"peak {peak:.3g}{unit}, mean {mean:.3g}{unit} "
            f"over [{t0:.3g}s, {t1:.3g}s]")


def series_chart(series: Dict[str, Sequence[float]], width: int = 60,
                 height: int = 10) -> str:
    """Multi-series dot plot on a shared y scale, one glyph per series."""
    if not series:
        return "(no data)"
    glyphs = "*o+x@%"
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return "(no data)"
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    longest = max(len(vs) for vs in series.values())
    grid = [[" "] * min(width, longest) for _ in range(height)]
    for si, (name, vs) in enumerate(sorted(series.items())):
        glyph = glyphs[si % len(glyphs)]
        for i, v in enumerate(list(vs)[: len(grid[0])]):
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][i] = glyph
    lines = [f"{hi:>10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:>10.3g} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
