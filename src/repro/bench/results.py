"""Machine-readable benchmark results (``BENCH_<name>.json``).

The bench harness prints human tables; CI and regression tooling want
numbers.  :func:`write_bench_json` drops one JSON document per benchmark
— configuration knobs, percentiles, worker-hours — into the directory
named by the ``STARK_BENCH_DIR`` environment variable (or an explicit
``directory``).  With neither set, writing is skipped and ``None`` is
returned, so benchmarks never litter the working tree by default.

The ``benchmarks/`` suite exposes ``--bench-json-dir`` (see
``benchmarks/conftest.py``) which sets the variable for a run; the CI
``elastic-smoke`` job uploads the resulting files as artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Environment variable naming the output directory for bench JSON.
BENCH_DIR_ENV = "STARK_BENCH_DIR"


def bench_json_path(name: str,
                    directory: Union[str, Path, None] = None) -> Optional[Path]:
    """Resolve where ``BENCH_<name>.json`` would be written (or None)."""
    target = directory if directory is not None else os.environ.get(BENCH_DIR_ENV)
    if not target:
        return None
    return Path(target) / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    payload: Dict[str, Any],
    directory: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Write ``payload`` as ``BENCH_<name>.json``; returns the path.

    ``name`` becomes part of the filename — keep it a short slug
    (``elastic_diurnal``, ``fig19``).  The payload must be JSON-encodable
    (the writer round-trips through :func:`json.dumps` with sorted keys,
    so files diff cleanly between runs).
    """
    path = bench_json_path(name, directory)
    if path is None:
        return None
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
