"""Process-parallel benchmark sharding driver.

The benchmark suite is dominated by single-threaded simulation, so CI
wall time scales with the number of benchmarks, not with cores.  This
driver fans the suite across ``N`` concurrent pytest processes using the
``--shard I/N`` option from ``benchmarks/conftest.py`` (a deterministic
partition of the collected node ids — no pytest-xdist dependency), gives
each shard a private ``--bench-json-dir``, and merges the resulting
``BENCH_*.json`` files into one output directory for
``repro.bench.compare``::

    PYTHONPATH=src python -m repro.bench.shard --shards 4 \\
        --out bench-results -- benchmarks -q

Everything after ``--`` is passed through to each pytest invocation
(paths, ``-q``, ``--trace-dir``, ...); with no passthrough args the
whole ``benchmarks/`` directory runs.  Per-shard stdout/stderr land in
``<out>/shard-<i>.log`` and are replayed for any failing shard, so CI
failures stay readable.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

#: pytest's "no tests ran" exit code — expected when N exceeds the
#: number of collected benchmarks, not a failure.
_EXIT_NO_TESTS = 5


def run_shards(shards: int, out_dir: Path,
               pytest_args: List[str],
               python: Optional[str] = None) -> int:
    """Run all shards concurrently, merge their JSON, return exit code."""
    python = python or sys.executable
    out_dir.mkdir(parents=True, exist_ok=True)
    if not pytest_args:
        pytest_args = ["benchmarks"]

    procs = []
    started = time.monotonic()
    for index in range(shards):
        shard_json = out_dir / f".shard-{index}"
        shard_json.mkdir(parents=True, exist_ok=True)
        log_path = out_dir / f"shard-{index}.log"
        cmd = [python, "-m", "pytest", *pytest_args,
               "--shard", f"{index}/{shards}",
               "--bench-json-dir", str(shard_json)]
        log = open(log_path, "w")
        proc = subprocess.Popen(cmd, stdout=log, stderr=subprocess.STDOUT,
                                env=os.environ.copy())
        procs.append((index, proc, log, log_path, shard_json))
        print(f"shard {index}/{shards}: pid {proc.pid} -> {log_path}")

    failed = []
    for index, proc, log, log_path, _ in procs:
        code = proc.wait()
        log.close()
        status = "ok" if code in (0, _EXIT_NO_TESTS) else f"FAILED ({code})"
        print(f"shard {index}/{shards}: exit {code} [{status}]")
        if code not in (0, _EXIT_NO_TESTS):
            failed.append((index, log_path))
    elapsed = time.monotonic() - started

    for index, log_path in failed:
        print(f"\n----- shard {index} output ({log_path}) -----",
              file=sys.stderr)
        sys.stderr.write(log_path.read_text())

    merged, clashes = merge_bench_json(
        [shard_json for _, _, _, _, shard_json in procs], out_dir)
    for name in merged:
        print(f"merged {out_dir / name}")
    for name in clashes:
        print(f"ERROR: {name} written by more than one shard — "
              f"sharding is not a partition?", file=sys.stderr)

    print(f"\n{shards} shard(s) in {elapsed:.1f}s wall, "
          f"{len(merged)} BENCH_*.json merged, {len(failed)} failed")
    return 1 if (failed or clashes) else 0


def merge_bench_json(shard_dirs: List[Path], out_dir: Path):
    """Copy each shard's BENCH_*.json into ``out_dir``.

    Returns ``(merged_names, clashing_names)``: a benchmark name showing
    up in two shards means the shard assignment double-ran it, which the
    caller must treat as a failure (the later copy would silently win).
    """
    merged: List[str] = []
    clashes: List[str] = []
    seen = {}
    for shard_dir in shard_dirs:
        for path in sorted(shard_dir.glob("BENCH_*.json")):
            if path.name in seen:
                clashes.append(path.name)
                continue
            seen[path.name] = shard_dir
            shutil.copyfile(path, out_dir / path.name)
            merged.append(path.name)
    return sorted(merged), sorted(set(clashes))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.shard",
        description="Fan the benchmark suite across N concurrent pytest "
                    "processes and merge their BENCH_*.json results.")
    parser.add_argument("--shards", type=int, default=4,
                        help="number of concurrent pytest processes "
                             "(default 4)")
    parser.add_argument("--out", type=Path, required=True,
                        help="directory for merged BENCH_*.json files "
                             "and per-shard logs")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments after -- are passed to every "
                             "pytest shard (default: benchmarks)")
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    return run_shards(args.shards, args.out, args.pytest_args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
