"""Paper-style table/series printing for the benchmark harness.

Every benchmark prints the rows/series its figure reports, in a uniform
plain-text format that survives pytest capture:

    == Fig 11: co-locality job delay ==
    cogroup_rdds | Spark-H (s) | Stark-H (s) | speedup
               1 |        9.21 |        8.95 |    1.0x
    ...
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    floatfmt: str = "{:.3f}",
) -> str:
    """Render an aligned plain-text table with a figure title banner."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    str_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]],
                floatfmt: str = "{:.3f}") -> None:
    print()
    print(format_table(title, headers, rows, floatfmt))


def format_series(title: str, xlabel: str, ylabel: str,
                  points: Sequence[tuple]) -> str:
    """Render an (x, y, ...) series as rows (one per point)."""
    headers = [xlabel, ylabel]
    extra = len(points[0]) - 2 if points else 0
    headers += [f"col{i}" for i in range(extra)]
    return format_table(title, headers, points)


def format_cache_stats(stats: dict, title: str = "cache stats") -> str:
    """One-line summary of :meth:`MetricsCollector.cache_stats`."""
    return (
        f"-- {title}: hit_rate={stats['hit_rate']:.2%} "
        f"(hits={stats['hits']:.0f}, misses={stats['misses']:.0f}), "
        f"evictions={stats['evictions']:.0f}, "
        f"recomputed={stats['recomputed_partitions']:.0f} "
        f"({stats['recompute_time']:.2f}s)"
    )


def print_cache_stats(stats: dict, title: str = "cache stats") -> None:
    print(format_cache_stats(stats, title))


def print_comparison(
    title: str,
    baseline_name: str,
    baseline: float,
    candidate_name: str,
    candidate: float,
    higher_is_better: bool = False,
) -> float:
    """Print a one-line paper-vs-measured comparison; returns the ratio."""
    if higher_is_better:
        ratio = candidate / baseline if baseline > 0 else float("inf")
        verdict = f"{candidate_name} is {ratio:.2f}x of {baseline_name}"
    else:
        ratio = baseline / candidate if candidate > 0 else float("inf")
        verdict = f"{candidate_name} is {ratio:.2f}x faster than {baseline_name}"
    print(f"-- {title}: {baseline_name}={baseline:.4f}, "
          f"{candidate_name}={candidate:.4f} -> {verdict}")
    return ratio
