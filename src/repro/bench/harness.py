"""Experiment drivers: one function per figure of the paper's evaluation.

Each driver builds the system(s), runs the workload, and returns typed
result rows; the ``benchmarks/`` suite calls these, prints paper-style
tables, and asserts the qualitative shape.  All sizes take a ``scale``
knob so the same code runs fast in tests and fuller in benchmarks.

Simulated data sizes use few, large records (e.g. 10 kB lines) instead of
many small ones: byte-driven costs (disk, network, serde, GC pressure)
are identical, while Python-side record handling stays fast.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import statistics
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps.log_mining import LogMiningApp
from ..apps.trending import TrendingApp
from ..cluster.cluster import Cluster
from ..cluster.cost_model import CostModel, HeterogeneityModel, SimStr
from ..cluster.events import SimKernel
from ..cluster.queueing import JobDriver, LoadResult, nearest_rank
from ..columnar.datagen import lineitem_rows, orders_rows, register_tpch_tables
from ..core.checkpoint_optimizer import CheckpointOptimizer
from ..core.edge_checkpoint import EdgeCheckpointer
from ..elastic import (
    DecommissionReport,
    POLICY_NAMES,
    ResourceManager,
    make_scaling_policy,
)
from ..engine.context import StarkConfig, StarkContext
from ..engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from ..obs.profiler import SimProfiler
from ..sql import SQLSession
from ..sql.compiler import compile_plan
from ..sql.optimizer import optimize
from ..workloads.distributions import seeded_rng
from ..workloads.twitter import MergedTaxiTwitterTrace
from ..workloads.taxi import TaxiTrace, TaxiTraceConfig
from ..workloads.wikipedia import WikipediaTrace, WikipediaTraceConfig
from .configs import (
    SPARK_H,
    SPARK_R,
    STARK_E,
    STARK_H,
    STARK_S,
    ClusterSpec,
    ExperimentSetup,
    make_context,
    make_setup,
)
from .results import write_bench_json


def _lines_generator(total_bytes: float, line_bytes: int, num_partitions: int,
                     seed: int = 3) -> Callable[[int], List[str]]:
    """Deterministic text-file generator of ``total_bytes`` of log lines.

    A fixed fraction of lines carry the ERROR marker (for the Fig 1 job)
    and all lines start with an epoch-second timestamp.
    """
    num_lines = max(num_partitions, int(total_bytes / line_bytes))

    def generate(pid: int) -> List[str]:
        rng = seeded_rng(seed, pid)
        lines = []
        for i in range(pid, num_lines, num_partitions):
            level = "ERROR" if rng.random() < 0.3 else "INFO"
            line = f"{1200000000 + i} {level} {'x' * 24}"
            lines.append(SimStr(line, sim_size=line_bytes))
        return lines

    return generate


# ---------------------------------------------------------------------------
# Fig 1(b): the benefit of data locality
# ---------------------------------------------------------------------------

@dataclass
class Fig01Result:
    """Delays of the paper's three bars."""

    c_count_delay: float       # first C.count (load + shuffle + count)
    d_cached_delay: float      # D.count with C cached (locality preserved)
    d_nolocality_delay: float  # D-.count without the cache (recompute)


def run_fig01(
    file_bytes: float = 700e6,
    line_bytes: int = 10_000,
    num_partitions: int = 2,
) -> Fig01Result:
    """The §II-B example: A=textFile.map, B=A.partitionBy(2), C/D filters."""

    def build(sc: StarkContext):
        a = sc.text_file(
            _lines_generator(file_bytes, line_bytes, num_partitions),
            num_partitions, name="A",
        ).map(lambda line: (line.split(" ", 1)[0], line), name="A.map")
        b = a.partition_by(HashPartitioner(num_partitions), name="B")
        c = b.filter(lambda kv: "ERROR" in kv[1], name="C")
        d = c.filter(lambda kv: len(kv[1]) > 30, name="D")
        return c, d

    # Run 1: C.cache().count(); D.count() -- locality preserved.
    sc = StarkContext(num_workers=2, cores_per_worker=2)
    c, d = build(sc)
    c.cache()
    c.count()
    c_delay = sc.metrics.last_job().makespan
    d.count()
    d_cached = sc.metrics.last_job().makespan

    # Run 2: no .cache() -- D- recomputes from B's reduce phase.
    sc2 = StarkContext(num_workers=2, cores_per_worker=2)
    c2, d2 = build(sc2)
    c2.count()
    d2.count()
    d_nolocality = sc2.metrics.last_job().makespan
    return Fig01Result(c_delay, d_cached, d_nolocality)


# ---------------------------------------------------------------------------
# Fig 7: partition-count trade-off
# ---------------------------------------------------------------------------

def run_fig07(
    partition_counts: Sequence[int] = (1, 4, 16, 64, 256, 1024, 4096),
    file_bytes: float = 700e6,
    line_bytes: int = 100_000,
) -> List[Tuple[int, float]]:
    """Delay of the Fig 1 ``C.count`` job as partitions sweep.

    Parallelism first wins (splitting the disk read), then per-task
    launch and driver dispatch overheads dominate.
    """
    points: List[Tuple[int, float]] = []
    for n in partition_counts:
        sc = StarkContext(num_workers=8, cores_per_worker=4)
        a = sc.text_file(
            _lines_generator(file_bytes, line_bytes, n), n, name="A",
        ).map(lambda line: (line.split(" ", 1)[0], line))
        c = a.partition_by(HashPartitioner(n)).filter(
            lambda kv: "ERROR" in kv[1], name="C"
        )
        c.count()
        points.append((n, sc.metrics.last_job().makespan))
    return points


# ---------------------------------------------------------------------------
# Figs 11 / 12: co-locality job and task delay
# ---------------------------------------------------------------------------

@dataclass
class CoLocalityResult:
    """Per-(config, cogroup width) job delay plus task-level detail."""

    config: str
    num_rdds: int
    job_delay: float
    task_delays: List[float]
    task_gc: List[float]


def _wiki_spec(memory_per_worker: float = 4.0e9) -> ClusterSpec:
    """Cluster for the wiki-log experiments.

    One synthetic 40 kB line stands for ~1000 real 40 B requests, so the
    per-record CPU rates are scaled up 1000x to keep compute time true to
    the real record count while Python only touches 1/1000 the records.
    """
    return ClusterSpec(
        num_workers=8, cores_per_worker=2,
        memory_per_worker=memory_per_worker,
        cost_model=CostModel(cpu_per_record=2.0e-4,
                             shuffle_cpu_per_record=4.0e-4),
    )


def run_colocality(
    configs: Sequence[str] = (SPARK_H, STARK_H),
    rdd_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    hour_bytes: float = 800e6,
    num_partitions: int = 8,
    queries_per_point: int = 3,
) -> List[CoLocalityResult]:
    """Figs 11/12: cogroup N wiki-hour RDDs under Spark-H vs Stark-H.

    The trace is sized so each hour-file is ~``hour_bytes``; executor
    memory is chosen so single co-located copies fit through five hours
    while the duplicate copies Spark-H materializes churn the caches, and
    cogrouping six hours pushes heaps past the GC knee (Fig 12).
    """
    line_bytes = 40_000
    requests = int(hour_bytes / line_bytes)
    trace = WikipediaTrace(WikipediaTraceConfig(
        base_requests_per_hour=requests, peak_to_nadir=1.0,
        line_padding_bytes=line_bytes - 40,
    ))
    results: List[CoLocalityResult] = []
    for name in configs:
        for n in rdd_counts:
            setup = make_setup(name, _wiki_spec(), num_partitions=num_partitions)
            app = LogMiningApp(
                setup.context, trace, num_partitions,
                mode="stark" if setup.locality else "spark-h",
                partitioner=setup.partitioner,
            )
            app.load_hours(range(n))
            delays = []
            last_job = None
            for q in range(queries_per_point):
                keyword = f"Article_{q:05d}"
                res = app.query(keyword, list(range(n)))
                delays.append(res.delay)
                last_job = setup.context.metrics.last_job()
            assert last_job is not None
            results.append(CoLocalityResult(
                config=name,
                num_rdds=n,
                job_delay=statistics.fmean(delays),
                task_delays=[t.duration for t in last_job.tasks],
                task_gc=[t.gc_time for t in last_job.tasks],
            ))
    return results


# ---------------------------------------------------------------------------
# Figs 13 / 14 / 15: skewed distributions and extendable groups
# ---------------------------------------------------------------------------

KEY_SPACE = 1 << 16


def skewed_hour_generator(
    hour: int,
    num_partitions: int,
    partitioner: Optional[Partitioner],
    records_per_hour: int,
    payload_bytes: int = 4_000,
    seed: int = 11,
) -> Callable[[int], List[Tuple[int, str]]]:
    """(int key, payload) records; hours 0-2 uniform, later hours skewed.

    Skewed hours put 70% of the mass in a narrow key band whose location
    moves with the hour — the "no static partitioning algorithm could
    always preserve partition size" dynamics of §III-C1.
    """

    def generate(pid: int) -> List[Tuple[int, str]]:
        rng = seeded_rng(seed, hour, pid)
        payload = SimStr("y" * 16, sim_size=payload_bytes)
        out: List[Tuple[int, str]] = []
        band_lo = (hour * 9973) % (KEY_SPACE // 2)
        band_hi = band_lo + KEY_SPACE // 16
        for i in range(records_per_hour):
            if hour >= 3 and rng.random() < 0.7:
                key = rng.randint(band_lo, band_hi)
            else:
                key = rng.randint(0, KEY_SPACE - 1)
            if partitioner is not None:
                if partitioner.get_partition(key) == pid:
                    out.append((key, payload))
            elif i % num_partitions == pid:
                out.append((key, payload))
        return out

    return generate


@dataclass
class SkewResult:
    """Per-(config, collection) delays and task-size detail."""

    config: str
    collection: Tuple[int, ...]
    first_job_delay: float
    second_job_delay: float
    task_input_sizes: List[float]
    task_delays: List[float]
    task_shuffle_times: List[float]


def run_skew(
    configs: Sequence[str] = (STARK_E, STARK_S, SPARK_R),
    records_per_hour: int = 6_000,
    payload_bytes: int = 4_000,
    num_partitions: int = 16,
    groups: int = 4,
) -> List[SkewResult]:
    """Figs 13-15: nine hourly RDDs in three 3-RDD collections.

    Hours 0-2 are uniform; 3-8 are skewed.  Each collection is cogrouped
    twice (first + second job) — Stark-E pays reconstruction on the first
    job after splits, then wins; Stark-S suffers the skew; Spark-R
    balances data but shuffles every job.

    Group split/merge bounds are set around the balanced per-group share,
    so a hot group under skew (~70% of the mass in one band) splits and a
    drained group merges — which is their purpose, not an artefact.
    """
    spec = ClusterSpec(
        num_workers=8, cores_per_worker=2, memory_per_worker=4e9,
        # One 4 kB payload stands for ~100 real 40 B records (see
        # _wiki_spec for the scaling rationale).
        cost_model=CostModel(cpu_per_record=2.0e-5,
                             shuffle_cpu_per_record=4.0e-5),
    )
    hour_bytes = records_per_hour * payload_bytes
    window = 6  # group sizes counted over the 6 most recent RDDs
    balanced_group_share = hour_bytes * window / groups
    stark_config = StarkConfig(
        max_group_mem_size=balanced_group_share * 1.5,
        min_group_mem_size=balanced_group_share * 0.4,
        group_size_window=window,
    )
    results: List[SkewResult] = []
    collections = [(0, 1, 2), (3, 4, 5), (6, 7, 8)]
    for name in configs:
        setup = make_setup(
            name, spec, num_partitions=num_partitions,
            key_lo=0, key_hi=KEY_SPACE,
            groups=groups, partitions_per_group=num_partitions // groups,
            stark_config=stark_config,
        )
        sc = setup.context
        hours: Dict[int, object] = {}
        for hour in range(9):
            if setup.partition_mode == "range-per-rdd":
                sample_rng = seeded_rng(99, hour)
                gen0 = skewed_hour_generator(
                    hour, num_partitions, None, records_per_hour,
                    payload_bytes,
                )
                sample_keys = [k for k, _ in gen0(0)][:500] or [0]
                partitioner: Partitioner = RangePartitioner(
                    num_partitions, sample_keys
                )
            else:
                assert setup.partitioner is not None
                partitioner = setup.partitioner
            n_parts = partitioner.num_partitions
            gen = skewed_hour_generator(hour, n_parts, partitioner,
                                        records_per_hour, payload_bytes)
            base = sc.generated(gen, n_parts, partitioner=partitioner,
                                read_cost="disk", name=f"hour{hour}")
            if setup.locality:
                rdd = base.locality_partition_by(
                    partitioner, "skew-logs"
                )
            else:
                rdd = base
            rdd = rdd.cache()
            rdd.count()
            if setup.locality:
                sc.group_manager.report_rdd(rdd)
            hours[hour] = rdd

        for collection in collections:
            rdds = [hours[h] for h in collection]
            delays = []
            last_jobs = []
            for _run in range(2):
                grouped = rdds[0].cogroup(*rdds[1:])
                counted = grouped.map(lambda kv: len(kv[1]))
                counted.count()
                job = sc.metrics.last_job()
                delays.append(job.makespan)
                last_jobs.append(job)
            job = last_jobs[0]
            # Fig 13/15 look at the cogroup (result-stage) tasks only;
            # Spark-R's extra shuffle-map tasks would skew the size stats.
            final_stage = max(t.stage_id for t in job.tasks)
            result_tasks = [t for t in job.tasks if t.stage_id == final_stage]
            results.append(SkewResult(
                config=name,
                collection=collection,
                first_job_delay=delays[0],
                second_job_delay=delays[1],
                task_input_sizes=[
                    t.input_bytes + t.shuffle_bytes_fetched
                    for t in result_tasks
                ],
                task_delays=[t.duration for t in result_tasks],
                task_shuffle_times=[
                    t.shuffle_fetch_time for t in result_tasks
                ],
            ))
    return results


# ---------------------------------------------------------------------------
# Figs 17 / 18: checkpointing
# ---------------------------------------------------------------------------

@dataclass
class CheckpointSeries:
    """Per-step cumulative checkpointed bytes for one policy."""

    policy: str
    cumulative_bytes: List[float]


def _trending_raw(records_per_step: int, num_keys: int = 200,
                  payload_bytes: int = 2_000, seed: int = 21):
    """Zipf-keyed (key, content) batches for the trending app.

    Zipfian keys make popularity filtering meaningful: only the head of
    the distribution clears the threshold, so the count-side RDDs stay
    small while content-side RDDs carry the bytes — the size asymmetry
    Fig 17 reports and the checkpoint optimizer exploits in Fig 18.
    """
    from ..workloads.distributions import ZipfSampler

    zipf = ZipfSampler(num_keys, 1.0)

    def raw_for_step(step: int, num_partitions: int):
        def generate(pid: int) -> List[Tuple[str, str]]:
            rng = seeded_rng(seed, step, pid)
            out = []
            for i in range(pid, records_per_step, num_partitions):
                key = f"key_{zipf.sample(rng):04d}"
                out.append((key, SimStr(key + ":zz", sim_size=payload_bytes)))
            return out

        return generate

    return raw_for_step


def run_fig17(
    num_steps: int = 4,
    records_per_step: int = 2_000,
    num_partitions: int = 8,
) -> List[Tuple[str, float, float]]:
    """Fig 17: cached-RDD size vs checkpoint size per named RDD.

    Returns ``(rdd_name, cached_bytes, checkpoint_bytes)`` rows; the
    ratio is constant (the serialization factor), which is the property
    that lets cached sizes stand in for checkpoint costs (§IV-D).
    """
    sc = StarkContext(num_workers=8, cores_per_worker=2)
    app = TrendingApp(sc, _trending_raw(records_per_step),
                      num_partitions=num_partitions, popular_threshold=20)
    app.run(num_steps)
    rows: List[Tuple[str, float, float]] = []
    last = app.steps[-1]
    for rdd_name, rdd in last.named().items():
        # Cached footprint is the deserialized (heap) size; checkpointing
        # writes the serialized form — hence the constant ratio of Fig 17.
        cached = sc.rdd_stats(rdd.rdd_id).size_bytes * sc.sizer.memory_overhead
        before = sc.checkpoint_store.total_bytes_written
        sc.checkpoint_rdd(rdd)
        written = sc.checkpoint_store.total_bytes_written - before
        rows.append((rdd_name, cached, written))
    return rows


def run_fig18(
    policies: Sequence[str] = ("Stark-1", "Stark-3", "Tachyon"),
    num_steps: int = 10,
    records_per_step: int = 2_000,
    num_partitions: int = 8,
    recovery_bound: Optional[float] = None,
) -> List[CheckpointSeries]:
    """Fig 18: cumulative checkpointed data over steps, per policy."""
    series: List[CheckpointSeries] = []
    for policy in policies:
        sc = StarkContext(num_workers=8, cores_per_worker=2)
        app = TrendingApp(sc, _trending_raw(records_per_step),
                          num_partitions=num_partitions,
                          popular_threshold=20)
        bound = recovery_bound
        if bound is None:
            # Calibrate from a probe run: the recovery bound is set a few
            # per-step increments above the 2-step path, so the chained
            # lineage violates it every ~3 steps — the regime in which
            # checkpoint-set choice matters (Fig 18's x axis is steps).
            probe_sc = StarkContext(num_workers=8, cores_per_worker=2)
            probe = TrendingApp(probe_sc, _trending_raw(records_per_step),
                                num_partitions=num_partitions,
                                popular_threshold=20)
            lengths = []
            opt = CheckpointOptimizer(probe_sc, recovery_bound=1e9)
            for probe_step in range(3):
                probe.run_step(probe_step)
                nodes = opt.build_lineage(probe.frontier_rdds())
                lengths.append(max(
                    opt.longest_uncheckpointed_delay(nodes, r.rdd_id)
                    for r in probe.frontier_rdds()
                ))
            per_step = max(lengths[2] - lengths[1], 1e-9)
            bound = lengths[1] + 2.5 * per_step

        if policy == "Tachyon":
            checkpointer = EdgeCheckpointer(sc, recovery_bound=bound)
        elif policy == "Stark-3":
            checkpointer = CheckpointOptimizer(sc, recovery_bound=bound,
                                               relax_factor=3.0)
        else:
            checkpointer = CheckpointOptimizer(sc, recovery_bound=bound,
                                               relax_factor=1.0)
        cumulative: List[float] = []

        def on_step(step: int, rdds) -> None:
            checkpointer.optimize(app.frontier_rdds())
            cumulative.append(sc.checkpoint_store.total_bytes_written)

        app.run(num_steps, on_step=on_step)
        series.append(CheckpointSeries(policy=policy,
                                       cumulative_bytes=cumulative))
    return series


# ---------------------------------------------------------------------------
# Cache-policy comparison (repro.cache subsystem)
# ---------------------------------------------------------------------------

@dataclass
class CachePolicyResult:
    """One eviction policy's behaviour on the iterative workload."""

    policy: str
    mean_makespan: float        # mean job makespan after warmup (s)
    hit_rate: float
    evictions: int
    recomputed_partitions: int
    recompute_time: float       # total seconds rebuilding missed blocks
    admission_rejected: int
    #: the raw MetricsCollector.cache_stats() dict of the run.
    cache_stats: Dict[str, float] = field(default_factory=dict)


def run_cache_policies(
    policies: Sequence[str] = ("lru", "fifo", "lrc", "cost"),
    num_hot: int = 4,
    iterations: int = 12,
    warmup_iterations: int = 2,
    records_per_partition: int = 8,
    payload_bytes: int = 1_000_000,
    num_partitions: int = 8,
    num_workers: int = 4,
    cores_per_worker: int = 2,
    memory_per_worker: float = 3.7e8,
    admission_min_cost: float = 0.0,
    auto_unpersist: bool = False,
) -> List[CachePolicyResult]:
    """Iterative multi-job workload under memory pressure, per policy.

    The driver holds ``num_hot`` *hot* cached datasets (expensive: their
    source is a network read) split into two groups that alternate
    between iterations, plus one fresh cheap *cold* dataset per
    iteration that is read exactly once.  Executor memory fits the hot
    set plus only a couple of cold datasets, so every cold
    materialization forces evictions.

    Recency then betrays LRU: at eviction time the off-iteration hot
    group is colder than the just-read dead dataset, so LRU (and worse,
    FIFO) throw away blocks the *next* iteration needs and pay the
    Spark-1.3 miss penalty — a full network re-read — while the
    reference-counting policies evict the dead cold blocks first.  The
    driver declares future uses via ``CacheManager.expect`` (in the
    paper's dynamic-collection setting the query window over the
    dataset collection is known), which is what LRC acts on; the
    cost-aware policy additionally ranks blocks by observed rebuild
    cost, so it demotes cold data even without declarations.
    """
    results: List[CachePolicyResult] = []
    group_of = lambda i: i % 2  # noqa: E731  (hot-group active at iteration i)
    for policy in policies:
        config = StarkConfig(
            cache_policy=policy,
            cache_admission_min_cost=admission_min_cost,
            cache_auto_unpersist=auto_unpersist,
        )
        sc = StarkContext(
            num_workers=num_workers, cores_per_worker=cores_per_worker,
            memory_per_worker=memory_per_worker, config=config,
        )

        def dataset(name: str, read_cost: str, seed: int):
            payload = SimStr("x" * 8, sim_size=payload_bytes)

            def generate(pid: int) -> List[Tuple[int, object]]:
                return [(seed * 10_000 + pid * 100 + i, payload)
                        for i in range(records_per_partition)]

            return sc.generated(generate, num_partitions,
                                read_cost=read_cost, name=name).cache()

        hot = [dataset(f"hot{h}", "network", seed=h) for h in range(num_hot)]
        for h, rdd in enumerate(hot):
            rdd.count()  # materialize into the caches
            uses = sum(1 for i in range(iterations) if group_of(i) == h % 2)
            sc.cache_manager.expect(rdd, uses)

        makespans: List[float] = []
        for i in range(iterations):
            iteration_jobs: List[float] = []
            for h, rdd in enumerate(hot):
                if h % 2 != group_of(i):
                    continue
                rdd.count()
                iteration_jobs.append(sc.metrics.last_job().makespan)
            cold = dataset(f"cold{i}", "none", seed=100 + i)
            sc.cache_manager.expect(cold, 1)
            cold.count()
            iteration_jobs.append(sc.metrics.last_job().makespan)
            if i >= warmup_iterations:
                makespans.extend(iteration_jobs)

        stats = sc.metrics.cache_stats()
        results.append(CachePolicyResult(
            policy=policy,
            mean_makespan=statistics.fmean(makespans),
            hit_rate=stats["hit_rate"],
            evictions=int(stats["evictions"]),
            recomputed_partitions=int(stats["recomputed_partitions"]),
            recompute_time=stats["recompute_time"],
            admission_rejected=sc.cache_manager.admission.rejected,
            cache_stats=stats,
        ))
    if len(results) > 1:
        # Only the multi-policy comparison is a stable regression target;
        # single-policy ablation runs would overwrite it with numbers
        # from a different workload configuration.
        write_bench_json("cache_policies", {
            "config": {
                "policies": list(policies), "num_hot": num_hot,
                "iterations": iterations,
                "warmup_iterations": warmup_iterations,
                "num_partitions": num_partitions,
                "num_workers": num_workers,
                "memory_per_worker": memory_per_worker,
            },
            "policies_results": {
                r.policy: {
                    "mean_makespan": r.mean_makespan,
                    "hit_rate": r.hit_rate,
                    "evictions": r.evictions,
                    "recomputed_partitions": r.recomputed_partitions,
                    "recompute_time": r.recompute_time,
                }
                for r in results
            },
        })
    return results


# ---------------------------------------------------------------------------
# Cluster-wide cache broker vs per-executor LRC (repro.cache.broker)
# ---------------------------------------------------------------------------

@dataclass
class CacheBrokerResult:
    """One arm of the cluster-wide cache broker comparison."""

    arm: str                    # "lrc" (per-executor) | "broker"
    mean_makespan: float        # mean job makespan after warmup (s)
    hit_rate: float             # overall cache hit rate
    cross_job_hits: int         # partitions served from another job's cache
    cross_job_hit_rate: float   # cross-job hits / all cache lookups
    evictions: int
    broker_evictions: int
    broker_migrations: int
    recompute_time: float
    #: the raw MetricsCollector.cache_stats() dict of the run.
    cache_stats: Dict[str, float] = field(default_factory=dict)


def run_cache_broker(
    arms: Sequence[str] = ("lrc", "broker"),
    num_tenants: int = 2,
    iterations: int = 8,
    warmup_iterations: int = 2,
    records_per_partition: int = 8,
    payload_bytes: int = 1_000_000,
    num_partitions: int = 8,
    num_workers: int = 4,
    cores_per_worker: int = 2,
    memory_per_worker: float = 1.2e8,
) -> List[CacheBrokerResult]:
    """PageRank-style two-tenant workload: per-executor LRC vs the
    cluster-wide cache broker.

    ``num_tenants`` drivers each build the *same* expensive pipeline
    from the same code — a cached network-read links table scanned once
    per iteration — plus one cheap single-use cold dataset per tenant
    per iteration for steady memory pressure.  Executor memory fits
    roughly one copy of the links table.

    Under per-executor LRC every tenant materializes its own copy
    (their RDD ids differ), doubling the footprint: the stores thrash
    and the Spark-1.3 miss penalty — a full network re-read — recurs
    every iteration.  The broker's lineage-prefix fingerprints
    recognise the pipelines as structurally identical and serve later
    tenants from the first tenant's cached subgraph (cross-job hits),
    keeping one shared copy resident; its global value ranking evicts
    the dead cold blocks cluster-wide instead of hot links partitions.
    Both mean makespan and cross-job hit rate must favour the broker
    arm, deterministically.
    """
    results: List[CacheBrokerResult] = []
    for arm in arms:
        config = StarkConfig(cache_policy="lrc",
                             cache_broker=(arm == "broker"))
        sc = StarkContext(
            num_workers=num_workers, cores_per_worker=cores_per_worker,
            memory_per_worker=memory_per_worker, config=config,
        )
        payload = SimStr("x" * 8, sim_size=payload_bytes)

        def links_table():
            def generate(pid: int) -> List[Tuple[int, object]]:
                return [(pid * 100 + i, payload)
                        for i in range(records_per_partition)]

            return sc.generated(generate, num_partitions,
                                read_cost="network",
                                name="pagerank-links").cache()

        def cold_dataset(tag: int):
            def generate(pid: int) -> List[Tuple[int, object]]:
                return [(tag * 10_000 + pid * 100 + i, payload)
                        for i in range(records_per_partition // 2)]

            return sc.generated(generate, num_partitions,
                                read_cost="none",
                                name=f"cold{tag}").cache()

        tenants = [links_table() for _ in range(num_tenants)]
        for links in tenants:
            sc.cache_manager.expect(links, iterations)

        makespans: List[float] = []
        for i in range(iterations):
            jobs: List[float] = []
            for t, links in enumerate(tenants):
                links.count()  # the iteration's links scan
                jobs.append(sc.metrics.last_job().makespan)
                cold = cold_dataset(i * num_tenants + t)
                sc.cache_manager.expect(cold, 1)
                cold.count()
                jobs.append(sc.metrics.last_job().makespan)
            if i >= warmup_iterations:
                makespans.extend(jobs)

        stats = sc.metrics.cache_stats()
        broker = sc.cache_broker
        cross_hits = broker.prefix_hits if broker is not None else 0
        lookups = stats["hits"] + stats["misses"]
        results.append(CacheBrokerResult(
            arm=arm,
            mean_makespan=statistics.fmean(makespans),
            hit_rate=stats["hit_rate"],
            cross_job_hits=cross_hits,
            cross_job_hit_rate=cross_hits / max(lookups, 1.0),
            evictions=int(stats["evictions"]),
            broker_evictions=broker.broker_evictions if broker else 0,
            broker_migrations=broker.broker_migrations if broker else 0,
            recompute_time=stats["recompute_time"],
            cache_stats=stats,
        ))
    by = {r.arm: r for r in results}
    if len(results) > 1:
        payload_json = {
            "config": {
                "arms": list(arms), "num_tenants": num_tenants,
                "iterations": iterations,
                "warmup_iterations": warmup_iterations,
                "num_partitions": num_partitions,
                "num_workers": num_workers,
                "memory_per_worker": memory_per_worker,
            },
            "arms": {
                r.arm: {
                    "mean_makespan": r.mean_makespan,
                    "hit_rate": r.hit_rate,
                    # nested so the leaf name "hit_rate" is a tracked
                    # higher-is-better metric in the perf gate.
                    "cross_job": {"hits": r.cross_job_hits,
                                  "hit_rate": r.cross_job_hit_rate},
                    "evictions": r.evictions,
                    "broker_evictions": r.broker_evictions,
                    "broker_migrations": r.broker_migrations,
                    "recompute_time": r.recompute_time,
                }
                for r in results
            },
        }
        if "lrc" in by and "broker" in by:
            payload_json["makespan_speedup"] = (
                by["lrc"].mean_makespan
                / max(by["broker"].mean_makespan, 1e-12))
        write_bench_json("cache_broker", payload_json)
    return results


# ---------------------------------------------------------------------------
# Straggler mitigation: speculative execution on the tail
# ---------------------------------------------------------------------------

@dataclass
class SpeculationTailResult:
    """Tail-latency profile of one arm (speculation off or on)."""

    speculation: bool
    mean_task_delay: float      # mean logical-task delay (s)
    p95_task_delay: float
    p99_task_delay: float
    mean_makespan: float        # mean job makespan (s)
    straggler_incidence: float  # fraction of attempts hit by a slowdown
    speculative_copies: int
    killed_copies: int
    #: digest of the collected job outputs — identical across arms iff
    #: speculation changed nothing about the results.
    results_digest: str


def run_speculation_tail(
    num_jobs: int = 10,
    num_partitions: int = 32,
    records_per_partition: int = 400,
    num_workers: int = 8,
    cores_per_worker: int = 2,
    memory_per_worker: float = 2e9,
    transient_rate: float = 3.0,
    transient_duration: float = 0.1,
    transient_factor: float = 8.0,
    transient_horizon: float = 60.0,
    speculation_multiplier: float = 1.3,
    speculation_quantile: float = 0.5,
    seed: int = 11,
    write_json: bool = True,
) -> List[SpeculationTailResult]:
    """Tail-latency comparison: speculation off vs on, same stragglers.

    Every worker draws transient slowdown windows from the *same* seeded
    RNG in both arms, so both runs face identical stragglers.  At the
    defaults (rate 3.0/s × duration 0.1 s) each worker sits inside a
    window for roughly 30% of simulated time, but because tasks are
    short only ~8% of attempts are actually caught — the table reports
    the measured ``straggler_incidence`` per arm.  Each of ``num_jobs``
    map jobs runs ``num_partitions`` tasks; a task caught in a window
    crawls at ``transient_factor``x until the window closes — exactly the
    tail speculative execution exists to cut.

    The *logical task delay* is, per (job, stage, partition), the first
    successful finish minus the first attempt's start — what a caller
    waiting on the partition experiences, counting retries and
    speculation against (or in favour of) the task.
    """
    results: List[SpeculationTailResult] = []
    for speculation in (False, True):
        config = StarkConfig(
            speculation=speculation,
            speculation_multiplier=speculation_multiplier,
            speculation_quantile=speculation_quantile,
        )
        cluster = Cluster(
            num_workers=num_workers, cores_per_worker=cores_per_worker,
            memory_per_worker=memory_per_worker, seed=seed,
        )
        sc = StarkContext(cluster=cluster, config=config)
        sc.cluster.apply_heterogeneity(HeterogeneityModel(
            transient_rate=transient_rate,
            transient_duration=transient_duration,
            transient_factor=transient_factor,
            horizon=transient_horizon,
        ))

        outputs = []
        for j in range(num_jobs):
            def generate(pid: int, j: int = j) -> List[Tuple[int, int]]:
                return [(pid * 10_000 + i, (j * 7 + pid * 13 + i) % 997)
                        for i in range(records_per_partition)]

            rdd = sc.generated(generate, num_partitions, read_cost="none",
                               name=f"tail{j}")
            outputs.append(rdd.map(lambda kv: (kv[0], kv[1] * 2 + 1))
                           .collect())
        digest = hashlib.sha256(
            json.dumps(outputs, sort_keys=True).encode()).hexdigest()

        delays: List[float] = []
        straggled = attempts = spec_copies = killed = 0
        for job in sc.metrics.jobs:
            by_partition: Dict[Tuple[int, int], List] = {}
            for t in job.tasks:
                attempts += 1
                if t.straggler_time > 0:
                    straggled += 1
                if t.speculative:
                    spec_copies += 1
                if t.status == "killed":
                    killed += 1
                by_partition.setdefault(
                    (t.stage_id, t.partition), []).append(t)
            for group in by_partition.values():
                first_start = min(t.start_time for t in group)
                done = min(t.finish_time for t in group
                           if t.status == "success")
                delays.append(done - first_start)

        delays.sort()
        pct = lambda q: delays[int(q * (len(delays) - 1))]  # noqa: E731
        results.append(SpeculationTailResult(
            speculation=speculation,
            mean_task_delay=statistics.fmean(delays),
            p95_task_delay=pct(0.95),
            p99_task_delay=pct(0.99),
            mean_makespan=statistics.fmean(sc.metrics.makespans()),
            straggler_incidence=straggled / attempts if attempts else 0.0,
            speculative_copies=spec_copies,
            killed_copies=killed,
            results_digest=digest,
        ))
    if write_json:
        off, on = results
        write_bench_json("speculation_tail", {
            "config": {
                "num_jobs": num_jobs, "num_partitions": num_partitions,
                "num_workers": num_workers,
                "transient_rate": transient_rate,
                "transient_duration": transient_duration,
                "transient_factor": transient_factor,
                "speculation_multiplier": speculation_multiplier,
                "speculation_quantile": speculation_quantile,
                "seed": seed,
            },
            "speculation_off": {
                "mean_task_delay": off.mean_task_delay,
                "p95_task_delay": off.p95_task_delay,
                "p99_task_delay": off.p99_task_delay,
                "mean_makespan": off.mean_makespan,
                "straggler_incidence": off.straggler_incidence,
            },
            "speculation_on": {
                "mean_task_delay": on.mean_task_delay,
                "p95_task_delay": on.p95_task_delay,
                "p99_task_delay": on.p99_task_delay,
                "mean_makespan": on.mean_makespan,
                "straggler_incidence": on.straggler_incidence,
                "speculative_copies": on.speculative_copies,
                "killed_copies": on.killed_copies,
            },
            "p99_improvement": 1.0 - (on.p99_task_delay
                                      / off.p99_task_delay)
            if off.p99_task_delay > 0 else 0.0,
        })
    return results


# ---------------------------------------------------------------------------
# Figs 19 / 20: throughput and delay over time
# ---------------------------------------------------------------------------

@dataclass
class ThroughputPoint:
    config: str
    rate: float
    mean_delay: float


#: One synthetic stream event stands in for this many real ~200 B events
#: (see _wiki_spec for the scaling rationale).
STREAM_EVENT_SCALE = 250


def _stream_spec(seed: int = 5) -> ClusterSpec:
    return ClusterSpec(
        num_workers=8, cores_per_worker=2, memory_per_worker=1.4e9,
        cost_model=CostModel(
            cpu_per_record=2.0e-7 * STREAM_EVENT_SCALE,
            shuffle_cpu_per_record=4.0e-7 * STREAM_EVENT_SCALE,
        ),
        seed=seed,
    )


def _stream_stark_config(events_per_step: int, window: int = 6) -> StarkConfig:
    """Group bounds for the stream namespaces.

    A partition group must fit its executor's cache *deserialized*, so
    the split threshold is set well under capacity; the merge threshold
    keeps drained spatial regions from fragmenting the scheduler.
    """
    step_bytes = events_per_step * 2 * 200 * STREAM_EVENT_SCALE
    return StarkConfig(
        max_group_mem_size=step_bytes * window / 8,
        min_group_mem_size=step_bytes * window / 32,
        group_size_window=window,
    )


def _stream_taxi(events_per_step: int, peak_to_nadir: float = 1.0,
                 steps_per_day: int = 288, seed: int = 5) -> TaxiTrace:
    return TaxiTrace(TaxiTraceConfig(
        base_events_per_step=events_per_step, peak_to_nadir=peak_to_nadir,
        steps_per_day=steps_per_day,
        record_bytes=200 * STREAM_EVENT_SCALE, seed=seed,
    ))


def _build_stream_system(
    name: str,
    num_steps: int,
    events_per_step: int,
    num_partitions: int = 16,
    groups: int = 4,
    fine_per_group: int = 16,
    seed: int = 5,
    num_workers: Optional[int] = None,
    stark_config: Optional[StarkConfig] = None,
) -> Tuple[ExperimentSetup, Dict[int, object], TaxiTrace]:
    """Ingest ``num_steps`` merged taxi+twitter timesteps under ``name``.

    Stark-E follows §III-C1: "first divides data into small partitions
    and then organizes partitions into groups" — it gets ``groups *
    fine_per_group`` fine partitions so hot spatial cells can split down
    to fine granularity, while the per-partition configurations use
    ``num_partitions`` plain partitions.
    """
    taxi = _stream_taxi(events_per_step, seed=seed)
    trace = MergedTaxiTwitterTrace(taxi)
    key_space = taxi.encoder.key_space()
    spec = _stream_spec(seed)
    if num_workers is not None:
        spec = replace(spec, num_workers=num_workers)
    setup = make_setup(
        name, spec,
        num_partitions=num_partitions, key_lo=0, key_hi=key_space,
        groups=groups, partitions_per_group=fine_per_group,
        stark_config=stark_config
        if stark_config is not None else _stream_stark_config(events_per_step),
    )
    sc = setup.context
    steps: Dict[int, object] = {}
    for step in range(num_steps):
        if setup.partition_mode == "range-per-rdd":
            gen0 = trace.step_generator(step, num_partitions, None)
            sample = [k for k, _ in gen0(0)][:400] or [0]
            partitioner: Partitioner = RangePartitioner(num_partitions, sample)
        else:
            assert setup.partitioner is not None
            partitioner = setup.partitioner
        gen = trace.step_generator(step, partitioner.num_partitions, partitioner)
        base = sc.generated(
            gen, partitioner.num_partitions, partitioner=partitioner,
            read_cost="network", name=f"step{step}",
        )
        if setup.locality:
            rdd = base.locality_partition_by(partitioner, "stream")
        else:
            rdd = base
        rdd = rdd.cache()
        rdd.count()
        if setup.locality:
            sc.group_manager.report_rdd(rdd)
        steps[step] = rdd
    return setup, steps, taxi


def _stream_query_fn(
    setup: ExperimentSetup,
    steps: Dict[int, object],
    taxi: TaxiTrace,
    seed: int = 17,
) -> Callable[[float, int], float]:
    """Job thunk: cogroup a random step range, filter a random region."""
    rng = random.Random(seed)
    sc = setup.context
    step_ids = sorted(steps)

    def job(arrival: float, index: int) -> float:
        span = rng.randint(2, min(4, len(step_ids)))
        start = rng.randint(0, len(step_ids) - span)
        chosen = [steps[s] for s in step_ids[start:start + span]]
        lo, hi = taxi.random_region_query(rng)
        grouped = chosen[0].cogroup(*chosen[1:])
        region = grouped.filter(lambda kv: lo <= kv[0] <= hi)
        sc.run_job(region, len, description=f"query{index}",
                   submit_time=arrival)
        return sc.metrics.last_job().finish_time

    return job


def _elastic_stream_config(
    events_per_step: int,
    min_workers: Optional[int],
    max_workers: Optional[int],
    scale_policy: Optional[str],
) -> StarkConfig:
    """Stream StarkConfig carrying the CLI's elastic bounds (validated
    against the initial cluster size at context construction)."""
    return replace(
        _stream_stark_config(events_per_step),
        min_workers=min_workers, max_workers=max_workers,
        scale_policy=scale_policy,
    )


def run_fig19(
    configs: Sequence[str] = (SPARK_R, SPARK_H, STARK_E, STARK_H),
    rates: Sequence[float] = (2, 5, 10, 20, 40, 80, 160, 240),
    jobs_per_rate: int = 40,
    warmup_jobs: int = 10,
    num_steps: int = 6,
    events_per_step: int = 1_200,
    delay_cap: float = 0.8,
    min_workers: Optional[int] = None,
    max_workers: Optional[int] = None,
    scale_policy: Optional[str] = None,
) -> Tuple[List[ThroughputPoint], Dict[str, float]]:
    """Fig 19: mean delay vs arrival rate; throughput at the delay cap.

    The first ``warmup_jobs`` delays are discarded: they pay the one-off
    replica/rebalance reconstruction after ingestion (Fig 14's first-job
    effect), while Fig 19 reports steady-state response times.

    With ``scale_policy`` set (one of ``repro.elastic.POLICY_NAMES``),
    every probe starts at ``min_workers`` and a ResourceManager scales
    within ``[min_workers, max_workers]`` as the driver submits jobs.

    Returns the (config, rate, delay) points and, per config, the largest
    probed rate whose mean delay stayed under ``delay_cap``.
    """
    points: List[ThroughputPoint] = []
    throughput: Dict[str, float] = {}
    for name in configs:
        best_rate = 0.0
        for rate in rates:
            setup, steps, taxi = _build_stream_system(
                name, num_steps, events_per_step,
                num_workers=min_workers if scale_policy is not None else None,
                stark_config=_elastic_stream_config(
                    events_per_step, min_workers, max_workers, scale_policy),
            )
            manager = None
            if scale_policy is not None:
                manager = ResourceManager(
                    setup.context, make_scaling_policy(scale_policy),
                    min_workers=min_workers or 1, max_workers=max_workers,
                    slo_delay_cap=delay_cap,
                )
            driver = JobDriver(setup.context, seed=int(rate),
                               resource_manager=manager)
            job = _stream_query_fn(setup, steps, taxi)
            result = driver.run_constant_rate(job, rate, jobs_per_rate)
            result.results = result.results[warmup_jobs:]
            points.append(ThroughputPoint(name, rate, result.mean_delay))
            if result.mean_delay < delay_cap:
                best_rate = max(best_rate, rate)
            else:
                break  # saturated; higher rates only get worse
        throughput[name] = best_rate
    return points, throughput


@dataclass
class DelayOverTimePoint:
    config: str
    hour: float
    mean_delay: float


def run_fig20(
    configs: Sequence[str] = (SPARK_H, STARK_H, STARK_E),
    hours: int = 24,
    steps_per_hour: int = 2,
    jobs_per_step: int = 4,
    base_events_per_step: int = 800,
    num_partitions: int = 16,
    groups: int = 4,
    min_workers: Optional[int] = None,
    max_workers: Optional[int] = None,
    scale_policy: Optional[str] = None,
) -> List[DelayOverTimePoint]:
    """Fig 20: replay a diurnal day; volume doubles at the evening peak.

    Stark-E's groups split as step volume grows, spreading each job over
    more executors — the scaling-out the paper credits for beating
    Stark-H at the peak.  With ``scale_policy`` set the cluster itself
    also scales: it starts at ``min_workers`` and a ResourceManager
    evaluates once per step from the step's job delays.
    """
    out: List[DelayOverTimePoint] = []
    for name in configs:
        taxi = _stream_taxi(base_events_per_step, peak_to_nadir=2.5,
                            steps_per_day=hours * steps_per_hour)
        trace = MergedTaxiTwitterTrace(taxi)
        key_space = taxi.encoder.key_space()
        spec = _stream_spec()
        if scale_policy is not None and min_workers is not None:
            spec = replace(spec, num_workers=min_workers)
        setup = make_setup(
            name, spec,
            num_partitions=num_partitions, key_lo=0, key_hi=key_space,
            groups=groups, partitions_per_group=16,
            stark_config=_elastic_stream_config(
                base_events_per_step, min_workers, max_workers, scale_policy),
        )
        sc = setup.context
        manager = None
        if scale_policy is not None:
            manager = ResourceManager(
                sc, make_scaling_policy(scale_policy),
                min_workers=min_workers or 1, max_workers=max_workers,
            )
        rng = random.Random(41)
        steps: Dict[int, object] = {}
        window = 6
        for step in range(hours * steps_per_hour):
            assert setup.partitioner is not None
            partitioner = setup.partitioner
            gen = trace.step_generator(step, partitioner.num_partitions,
                                       partitioner)
            base = sc.generated(
                gen, partitioner.num_partitions, partitioner=partitioner,
                read_cost="network", name=f"step{step}",
            )
            rdd = (base.locality_partition_by(partitioner, "stream")
                   if setup.locality else base).cache()
            rdd.count()
            if setup.locality:
                sc.group_manager.report_rdd(rdd)
            steps[step] = rdd
            for old in [s for s in steps if s <= step - window]:
                steps.pop(old).unpersist()

            delays = []
            step_ids = sorted(steps)
            for j in range(jobs_per_step):
                span = rng.randint(1, min(4, len(step_ids)))
                if span < 2 and len(step_ids) >= 2:
                    span = 2
                start = rng.randint(0, len(step_ids) - span)
                chosen = [steps[s] for s in step_ids[start:start + span]]
                lo, hi = taxi.random_region_query(rng)
                if len(chosen) == 1:
                    region = chosen[0].filter(lambda kv: lo <= kv[0] <= hi)
                else:
                    grouped = chosen[0].cogroup(*chosen[1:])
                    region = grouped.filter(lambda kv: lo <= kv[0] <= hi)
                region.count()
                delays.append(sc.metrics.last_job().makespan)
            if manager is not None:
                # Feed the latency-SLO window; scaling itself fires on
                # the manager's periodic kernel timer between jobs.
                for delay in delays:
                    manager.note_delay(delay)
            out.append(DelayOverTimePoint(
                config=name,
                hour=step / steps_per_hour,
                mean_delay=statistics.fmean(delays),
            ))
    return out


# ---------------------------------------------------------------------------
# Elastic diurnal replay (repro.elastic subsystem)
# ---------------------------------------------------------------------------

@dataclass
class ElasticDiurnalResult:
    """Autoscaled vs static peak-provisioned replay under one policy."""

    policy: str
    autoscaled_mean_delay: float
    autoscaled_p95: float
    autoscaled_p99: float
    autoscaled_worker_hours: float
    static_p95: float
    static_worker_hours: float
    shed_jobs: int
    scale_outs: int
    scale_ins: int
    migrated_blocks: int
    dropped_blocks: int
    peak_workers: int
    decommissions: List[DecommissionReport] = field(default_factory=list)

    @property
    def worker_hours_saved(self) -> float:
        """Fraction of the static provisioning cost the autoscaler saved."""
        if self.static_worker_hours <= 0:
            return 0.0
        return 1.0 - self.autoscaled_worker_hours / self.static_worker_hours

    @property
    def lost_zero_blocks(self) -> bool:
        """True when every decommission migrated its whole cache."""
        return self.dropped_blocks == 0


def _diurnal_job_factor(hour: int, hours: int, peak_factor: float) -> float:
    """Job-arrival multiplier: nadir at the replay's ends, ``peak_factor``
    in the middle (the evening peak of the taxi traces)."""
    if hours <= 1:
        return peak_factor
    phase = 2.0 * math.pi * hour / (hours - 1)
    return 1.0 + (peak_factor - 1.0) * 0.5 * (1.0 - math.cos(phase))


def _run_diurnal_replay(
    scale_policy: Optional[str],
    hours: int,
    hour_seconds: float,
    base_jobs_per_hour: int,
    peak_factor: float,
    base_events_per_step: int,
    start_workers: int,
    min_workers: int,
    max_workers: int,
    num_partitions: int,
    groups: int,
    delay_cap: float,
    max_pending_jobs: Optional[int],
    seed: int = 7,
) -> Tuple[LoadResult, float, Optional[ResourceManager], StarkContext]:
    """One diurnal replay: hourly ingestion + open-loop queries.

    With ``scale_policy`` the cluster starts at ``start_workers`` and a
    ResourceManager resizes it within ``[min_workers, max_workers]``;
    without, the cluster stays fixed at ``start_workers`` and its
    provisioning cost is ``start_workers x elapsed``.
    """
    taxi = _stream_taxi(base_events_per_step, peak_to_nadir=peak_factor,
                        steps_per_day=hours, seed=seed)
    trace = MergedTaxiTwitterTrace(taxi)
    key_space = taxi.encoder.key_space()
    # Generous per-worker memory: the retained window must fit the
    # *scaled-in* cluster's stores, or graceful decommission has nowhere
    # to put the victim's blocks (migration never evicts survivors).
    spec = replace(_stream_spec(seed), num_workers=start_workers,
                   memory_per_worker=6e9)
    setup = make_setup(
        STARK_E, spec,
        num_partitions=num_partitions, key_lo=0, key_hi=key_space,
        groups=groups, partitions_per_group=16,
        stark_config=_elastic_stream_config(
            base_events_per_step,
            min_workers if scale_policy is not None else None,
            max_workers if scale_policy is not None else None,
            scale_policy),
    )
    sc = setup.context
    manager = None
    if scale_policy is not None:
        manager = ResourceManager(
            sc, make_scaling_policy(scale_policy),
            min_workers=min_workers, max_workers=max_workers,
            cooldown_seconds=hour_seconds / 8.0,
            slo_delay_cap=delay_cap,
            # One replay hour of occupancy history: long enough to smooth
            # job gaps, short enough to track the diurnal ramp.
            occupancy_window=hour_seconds,
        )
    driver = JobDriver(sc, seed=seed, resource_manager=manager,
                       max_pending_jobs=max_pending_jobs)
    rng = random.Random(seed + 13)
    kernel = sc.cluster.kernel
    load = LoadResult(0.0)
    steps: Dict[int, object] = {}
    window = 6
    assert setup.partitioner is not None
    partitioner = setup.partitioner
    for hour in range(hours):
        hour_start = hour * hour_seconds
        kernel.advance_to(max(kernel.now, hour_start))
        kernel.pump()
        gen = trace.step_generator(hour, partitioner.num_partitions,
                                   partitioner)
        base = sc.generated(
            gen, partitioner.num_partitions, partitioner=partitioner,
            read_cost="network", name=f"step{hour}",
        )
        rdd = base.locality_partition_by(partitioner, "stream").cache()
        rdd.count()
        sc.group_manager.report_rdd(rdd)
        steps[hour] = rdd
        for old in [s for s in steps if s <= hour - window]:
            steps.pop(old).unpersist()

        step_ids = tuple(sorted(steps))
        current = dict(steps)

        def job(arrival: float, index: int, _steps=current,
                _ids=step_ids) -> float:
            span = rng.randint(2, min(4, len(_ids))) if len(_ids) >= 2 else 1
            start = rng.randint(0, len(_ids) - span)
            chosen = [_steps[s] for s in _ids[start:start + span]]
            lo, hi = taxi.random_region_query(rng)
            grouped = (chosen[0].map_values(lambda v: (v,))
                       if len(chosen) == 1 else chosen[0].cogroup(*chosen[1:]))
            region = grouped.filter(lambda kv: lo <= kv[0] <= hi)
            sc.run_job(region, len, description=f"q{index}",
                       submit_time=arrival)
            return sc.metrics.last_job().finish_time

        n_jobs = max(1, round(
            base_jobs_per_hour * _diurnal_job_factor(hour, hours, peak_factor)))
        first = max(kernel.now, hour_start)
        gap = max(0.0, hour_start + hour_seconds - first) / n_jobs
        arrivals = [first + (i + 0.5) * gap for i in range(n_jobs)]
        load.merge(driver.run_arrivals(job, arrivals))
    kernel.run_until(max(kernel.now, hours * hour_seconds))
    if manager is not None:
        worker_hours = manager.worker_hours()
    else:
        worker_hours = start_workers * kernel.now / 3600.0
    return load, worker_hours, manager, sc


def run_elastic_diurnal(
    policies: Sequence[str] = POLICY_NAMES,
    hours: int = 12,
    hour_seconds: float = 30.0,
    base_jobs_per_hour: int = 70,
    peak_factor: float = 3.0,
    base_events_per_step: int = 600,
    min_workers: int = 2,
    max_workers: int = 8,
    num_partitions: int = 16,
    groups: int = 4,
    delay_cap: float = 0.8,
    max_pending_jobs: Optional[int] = 32,
    write_json: bool = True,
) -> List[ElasticDiurnalResult]:
    """Diurnal replay per scaling policy vs a static peak cluster.

    The static baseline holds ``max_workers`` for the whole replay; each
    autoscaled run starts at ``min_workers`` and lets the policy chase
    the diurnal load.  The claim under test: autoscaling holds p95 job
    delay under ``delay_cap`` while spending substantially fewer
    worker-hours than peak provisioning, and graceful decommission loses
    zero cached partitions on the way down.

    When ``write_json`` is set (and ``STARK_BENCH_DIR`` names a
    directory), the full comparison lands in
    ``BENCH_elastic_diurnal.json``.
    """
    static_load, static_wh, _, _ = _run_diurnal_replay(
        None, hours, hour_seconds, base_jobs_per_hour, peak_factor,
        base_events_per_step, start_workers=max_workers,
        min_workers=min_workers, max_workers=max_workers,
        num_partitions=num_partitions, groups=groups, delay_cap=delay_cap,
        max_pending_jobs=max_pending_jobs,
    )
    results: List[ElasticDiurnalResult] = []
    for policy in policies:
        load, worker_hours, manager, sc = _run_diurnal_replay(
            policy, hours, hour_seconds, base_jobs_per_hour, peak_factor,
            base_events_per_step, start_workers=min_workers,
            min_workers=min_workers, max_workers=max_workers,
            num_partitions=num_partitions, groups=groups,
            delay_cap=delay_cap, max_pending_jobs=max_pending_jobs,
        )
        assert manager is not None
        results.append(ElasticDiurnalResult(
            policy=policy,
            autoscaled_mean_delay=load.mean_delay,
            autoscaled_p95=load.p95_delay,
            autoscaled_p99=load.p99_delay,
            autoscaled_worker_hours=worker_hours,
            static_p95=static_load.p95_delay,
            static_worker_hours=static_wh,
            shed_jobs=load.shed_jobs,
            scale_outs=manager.scale_outs,
            scale_ins=manager.scale_ins,
            migrated_blocks=sum(
                r.migrated_blocks for r in manager.decommissions),
            dropped_blocks=sum(
                r.dropped_blocks for r in manager.decommissions),
            peak_workers=manager.peak_workers,
            decommissions=list(manager.decommissions),
        ))
    if write_json:
        write_bench_json("elastic_diurnal", {
            "config": {
                "hours": hours, "hour_seconds": hour_seconds,
                "base_jobs_per_hour": base_jobs_per_hour,
                "peak_factor": peak_factor,
                "base_events_per_step": base_events_per_step,
                "min_workers": min_workers, "max_workers": max_workers,
                "delay_cap": delay_cap,
                "max_pending_jobs": max_pending_jobs,
            },
            "static": {
                "p95_delay": static_load.p95_delay,
                "p99_delay": static_load.p99_delay,
                "mean_delay": static_load.mean_delay,
                "worker_hours": static_wh,
            },
            "policies": {
                r.policy: {
                    "mean_delay": r.autoscaled_mean_delay,
                    "p95_delay": r.autoscaled_p95,
                    "p99_delay": r.autoscaled_p99,
                    "worker_hours": r.autoscaled_worker_hours,
                    "worker_hours_saved": r.worker_hours_saved,
                    "shed_jobs": r.shed_jobs,
                    "scale_outs": r.scale_outs,
                    "scale_ins": r.scale_ins,
                    "migrated_blocks": r.migrated_blocks,
                    "dropped_blocks": r.dropped_blocks,
                } for r in results
            },
        })
    return results


# ---------------------------------------------------------------------------
# Multi-tenant fairness: fair-share pools + quotas vs FIFO under an abuser
# ---------------------------------------------------------------------------

@dataclass
class TenantFairnessResult:
    """One arm of the tenant-fairness comparison."""

    arm: str                       # "fair_no_abuser" | "fair" | "fifo"
    scheduling_policy: str
    abuser_active: bool
    compliant_p95_delay: float     # pooled over all compliant tenants (s)
    compliant_mean_delay: float
    compliant_max_delay: float
    abuser_p95_delay: float
    completed_jobs: int
    shed_jobs: int
    quota_evictions: int
    quota_rejections: int
    dedup_hits: int
    cache_hit_rate: float
    per_tenant_p95: Dict[str, float] = field(default_factory=dict)
    #: Online SLO monitoring (0/empty on the reference arm, which *sets*
    #: the target rather than being judged against it).
    slo_target: float = 0.0
    slo_alerts: int = 0            # fire edges, all tenants
    compliant_slo_alerts: int = 0  # fire edges, abuser excluded
    slo_alerts_by_tenant: Dict[str, int] = field(default_factory=dict)


def run_tenant_fairness(
    num_tenants: int = 6,
    zipf_s: float = 1.0,
    base_rate_jobs_per_sec: float = 12.0,
    horizon: float = 18.0,
    burst_jobs: int = 400,
    burst_time: float = 5.0,
    num_partitions: int = 4,
    records_per_partition: int = 300,
    num_workers: int = 4,
    cores_per_worker: int = 2,
    memory_per_worker: float = 64e6,
    tenant_quota_mb: float = 16.0,
    seed: int = 23,
    slo_multiple: float = 3.0,
    slo_window: int = 40,
    write_json: bool = True,
) -> List[TenantFairnessResult]:
    """Zipfian tenant mix with one misbehaving tenant, three arms.

    ``num_tenants - 1`` compliant tenants submit Poisson job streams with
    Zipfian rates (tenant ``k`` arrives at ``base_rate / (k+1)**zipf_s``)
    against their registered, cached datasets; pool weights follow the
    same Zipf profile, so fair share mirrors the intended mix.  The last
    tenant is the *abuser*: at ``burst_time`` it dumps ``burst_jobs``
    jobs at once, each materializing (and caching) a fresh dataset —
    pressure on both the dispatcher and the block stores.

    Arms (identical seeded arrivals throughout):

    * ``fair_no_abuser`` — fair-share + quotas, the abuser stays silent;
      the reference for what compliant tenants deserve.
    * ``fair`` — fair-share + quotas with the burst: weighted vruntime
      scheduling interleaves compliant jobs with the burst, and the
      abuser's quota makes its scratch datasets displace its *own*
      blocks instead of the compliant tenants' hot sets.
    * ``fifo`` — global arrival order, no quotas: the burst runs to
      completion ahead of every compliant job that arrived after it and
      floods the shared cache.

    The headline check (asserted by the CI gate via committed baselines):
    fair-share keeps the compliant pooled p95 within 2x of the no-abuser
    reference while FIFO blows past it.

    One compliant tenant registers the *same* computation as tenant 0
    (same code, same data), so every run also exercises the registry's
    lineage-fingerprint dedup in anger — ``dedup_hits`` reports it.

    The reference arm also *derives the SLO*: every tenant's response-time
    target is ``slo_multiple`` times the reference compliant p95, and a
    :class:`~repro.service.slo.TenantSloMonitor` watches the two abuser
    arms online.  The expected shape (asserted by the benchmark): under
    FIFO the burst makes compliant tenants burn through their budget and
    alert; under fair-share none of them do.
    """
    from ..service import DatasetService, SloTarget, TenantSloMonitor

    if num_tenants < 3:
        raise ValueError(f"need at least 3 tenants: {num_tenants}")
    if zipf_s < 0:
        raise ValueError(f"zipf_s must be >= 0: {zipf_s}")
    tenants = [f"t{k}" for k in range(num_tenants)]
    compliant, abuser = tenants[:-1], tenants[-1]
    rates = {
        name: base_rate_jobs_per_sec / (k + 1) ** zipf_s
        for k, name in enumerate(compliant)
    }

    # The same seeded arrival streams feed every arm.
    arrivals: Dict[str, List[float]] = {}
    for k, name in enumerate(compliant):
        rng = random.Random(seed * 1009 + k)
        t, times = 0.0, []
        while True:
            t += rng.expovariate(rates[name])
            if t >= horizon:
                break
            times.append(t)
        arrivals[name] = times
    burst = [burst_time + 1e-3 * j for j in range(burst_jobs)]

    def run_arm(arm: str, policy: str, abuser_active: bool,
                quota_mb: float,
                slo_target: Optional[float] = None) -> TenantFairnessResult:
        config = StarkConfig(scheduling_policy=policy,
                             tenant_quota_mb=quota_mb)
        sc = StarkContext(num_workers=num_workers,
                          cores_per_worker=cores_per_worker,
                          memory_per_worker=memory_per_worker,
                          config=config)
        svc = DatasetService(sc)
        monitor: Optional[TenantSloMonitor] = None
        if slo_target is not None:
            monitor = TenantSloMonitor(
                sc.event_bus,
                default_target=SloTarget(p95_seconds=slo_target,
                                         window=slo_window))
            sc.event_bus.subscribe(monitor)
        for k, name in enumerate(compliant):
            svc.create_tenant(name, weight=1.0 / (k + 1) ** zipf_s)
        svc.create_tenant(abuser,
                          weight=1.0 / num_tenants ** zipf_s)

        # Each compliant tenant registers one cached dataset; the last
        # compliant tenant files the exact computation of tenant 0, so
        # its handle is deduped onto t0's RDD and served from t0's
        # blocks.
        handles = {}
        for k, name in enumerate(compliant):
            source = 0 if k == len(compliant) - 1 else k

            def gen(pid: int, source: int = source) -> List[Tuple[int, int]]:
                return [(pid * 1000 + i, (i * 31 + source) % 997)
                        for i in range(records_per_partition)]

            rdd = (sc.generated(gen, num_partitions, read_cost="disk",
                                name=f"src{source}")
                   .map(lambda kv: (kv[0], kv[1] + 1)))
            handles[name] = svc.register_dataset(name, f"ds-{name}", rdd)

        def make_job(name: str) -> Callable[[float, int], float]:
            handle = handles[name]

            def job(t: float, i: int) -> float:
                sc.run_job(handle.rdd, len, submit_time=t,
                           description=f"{name}-{i}")
                return sc.metrics.last_job().finish_time

            return job

        def abuser_job(t: float, i: int) -> float:
            def gen(pid: int, i: int = i) -> List[Tuple[int, int]]:
                return [(pid * 1000 + j, (j * 17 + i) % 991)
                        for j in range(records_per_partition)]

            rdd = sc.generated(gen, num_partitions, read_cost="disk",
                               name=f"abuse{i}").cache()
            svc.quotas.own(rdd.rdd_id, abuser)
            sc.run_job(rdd, len, submit_time=t,
                       description=f"{abuser}-{i}")
            return sc.metrics.last_job().finish_time

        for name in compliant:
            svc.submit_arrivals(name, make_job(name), arrivals[name])
        if abuser_active:
            svc.submit_arrivals(abuser, abuser_job, burst)
        svc.run()

        delays: List[float] = []
        per_tenant_p95: Dict[str, float] = {}
        shed = 0
        for name in compliant:
            result = svc.result_of(name)
            delays.extend(r.delay for r in result.results)
            per_tenant_p95[name] = result.p95_delay
            shed += result.shed_jobs
        delays.sort()
        stats = sc.metrics.cache_stats()
        alerts_by_tenant = (dict(monitor.alerts_by_tenant)
                            if monitor else {})
        return TenantFairnessResult(
            arm=arm,
            scheduling_policy=policy,
            abuser_active=abuser_active,
            compliant_p95_delay=nearest_rank(delays, 95.0),
            compliant_mean_delay=(statistics.fmean(delays)
                                  if delays else 0.0),
            compliant_max_delay=delays[-1] if delays else 0.0,
            abuser_p95_delay=svc.result_of(abuser).p95_delay,
            completed_jobs=len(delays),
            shed_jobs=shed + svc.result_of(abuser).shed_jobs,
            quota_evictions=svc.quotas.quota_evictions,
            quota_rejections=svc.quotas.quota_rejections,
            dedup_hits=svc.registry.dedup_hits,
            cache_hit_rate=stats["hit_rate"],
            per_tenant_p95=per_tenant_p95,
            slo_target=slo_target or 0.0,
            slo_alerts=sum(alerts_by_tenant.values()),
            compliant_slo_alerts=sum(
                n for t, n in alerts_by_tenant.items() if t != abuser),
            slo_alerts_by_tenant=alerts_by_tenant,
        )

    reference = run_arm("fair_no_abuser", "fair", False, tenant_quota_mb)
    slo_target = slo_multiple * max(reference.compliant_p95_delay, 1e-9)
    results = [
        reference,
        run_arm("fair", "fair", True, tenant_quota_mb, slo_target),
        run_arm("fifo", "fifo", True, 0.0, slo_target),
    ]
    if write_json:
        by_arm = {r.arm: r for r in results}
        payload = {
            "config": {
                "num_tenants": num_tenants, "zipf_s": zipf_s,
                "base_rate_jobs_per_sec": base_rate_jobs_per_sec,
                "horizon": horizon, "burst_jobs": burst_jobs,
                "burst_time": burst_time,
                "num_partitions": num_partitions,
                "records_per_partition": records_per_partition,
                "num_workers": num_workers,
                "cores_per_worker": cores_per_worker,
                "memory_per_worker": memory_per_worker,
                "tenant_quota_mb": tenant_quota_mb, "seed": seed,
            },
        }
        for arm, r in by_arm.items():
            payload[arm] = {
                "p95_delay": r.compliant_p95_delay,
                "mean_delay": r.compliant_mean_delay,
                "max_delay": r.compliant_max_delay,
                "abuser_p95_delay": r.abuser_p95_delay,
                "completed_jobs": r.completed_jobs,
                "shed_jobs": r.shed_jobs,
                "quota_evictions": r.quota_evictions,
                "dedup_hits": r.dedup_hits,
                "hit_rate": r.cache_hit_rate,
                "slo_alerts": r.slo_alerts,
                "slo_compliant_alerts": r.compliant_slo_alerts,
            }
        payload["slo_target_seconds"] = slo_target
        ref_p95 = max(by_arm["fair_no_abuser"].compliant_p95_delay, 1e-9)
        payload["fair_p95_over_reference"] = (
            by_arm["fair"].compliant_p95_delay / ref_p95)
        payload["fifo_p95_over_reference"] = (
            by_arm["fifo"].compliant_p95_delay / ref_p95)
        payload["digest"] = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()
        write_bench_json("tenant_fairness", payload)
    return results


# ---------------------------------------------------------------------------
# Kernel throughput: how fast the simulator itself runs (wall clock)
# ---------------------------------------------------------------------------

@dataclass
class KernelThroughputResult:
    """Raw simulator speed plus calibration-normalized rates.

    Raw events/tasks per wall second vary with the machine; the gate
    tracks only the ``normalized_*`` rates — raw rate divided by a fixed
    pure-Python reference loop's ops/sec measured in the same process —
    which cancels host speed and catches real kernel slowdowns.
    """

    kernel_events: int
    events_per_sec: float          # pure event churn, no engine on top
    tasks_run: int
    tasks_per_sec: float           # full-stack workload
    calibration_ops_per_sec: float
    normalized_events_per_sec: float
    normalized_tasks_per_sec: float
    profiler_overhead_fraction: float
    heap_peak: int
    #: (callback label, count, total wall seconds), heaviest first.
    hotspots: List[Tuple[str, int, float]] = field(default_factory=list)


def _calibration_ops_per_sec(ops: int = 200_000, repeats: int = 3) -> float:
    """Ops/sec of a fixed pure-Python loop (the normalization unit)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        acc = 0
        for i in range(ops):
            acc = (acc * 31 + i) % 1000003
        best = min(best, perf_counter() - t0)
    return ops / best


def _event_churn_seconds(num_events: int, width: int = 64,
                         profiler: Optional[SimProfiler] = None) -> float:
    """Dispatch exactly ``num_events`` near-empty events through a bare
    SimKernel (``width`` self-rescheduling chains) and return the wall
    seconds spent — the kernel's schedule/heap/dispatch floor."""
    kernel = SimKernel()
    if profiler is not None:
        kernel.attach_profiler(profiler)
    scheduled = [0]

    def tick() -> None:
        if scheduled[0] < num_events:
            scheduled[0] += 1
            kernel.schedule(kernel.now + 1e-3, tick)

    t0 = perf_counter()
    for w in range(min(width, num_events)):
        scheduled[0] += 1
        kernel.schedule(w * 1e-6, tick)
    kernel.run_all()
    return perf_counter() - t0


def _throughput_workload(profiler: Optional[SimProfiler] = None,
                         num_jobs: int = 60,
                         seed: int = 5) -> Tuple[StarkContext, float]:
    """An open-loop job stream over a cached RDD, timed end to end.

    Driven through :class:`~repro.cluster.queueing.JobDriver` so the
    work actually flows through the kernel's event loop (plain
    synchronous jobs never touch the heap) — which is what makes the
    profiled arm representative: each dispatched event executes a whole
    job, the regime the ≤5% overhead contract is stated for.
    """
    context = make_context(
        "Stark-H", ClusterSpec(num_workers=4, cores_per_worker=2, seed=seed))
    if profiler is not None:
        context.cluster.kernel.attach_profiler(profiler)
        profiler.start()
    t0 = perf_counter()
    data = [(i % 64, i) for i in range(4000)]
    rdd = context.parallelize(data, num_partitions=16,
                              name="throughput").cache()
    rdd.count()

    def job(t: float, i: int) -> float:
        rdd.count()
        return context.metrics.last_job().finish_time

    driver = JobDriver(context, seed=seed)
    driver.run_constant_rate(job, rate_jobs_per_sec=20.0, num_jobs=num_jobs)
    wall = perf_counter() - t0
    if profiler is not None:
        profiler.stop()
    return context, wall


def run_kernel_throughput(
    num_events: int = 60_000,
    repeats: int = 3,
    write_json: bool = True,
) -> KernelThroughputResult:
    """Measure simulator wall-clock speed (ROADMAP's raw-speed axis).

    Three measurements, each best-of-``repeats``:

    * **event churn** — ``num_events`` near-empty events through a bare
      kernel: the dispatch floor, reported as ``events_per_sec``;
    * **full stack** — a cached-iteration + shuffle workload, reported
      as ``tasks_per_sec``;
    * **profiler overhead** — the same workload with a
      :class:`~repro.obs.profiler.SimProfiler` attached; the fractional
      wall-time increase must stay small (the attach contract), and the
      profiled run doubles as the source of the hotspot table.
    """
    calibration = _calibration_ops_per_sec()
    churn = min(_event_churn_seconds(num_events) for _ in range(repeats))
    events_per_sec = num_events / churn

    # Interleave the detached and profiled arms and take the best *paired*
    # overhead ratio: under a contended host (the sharded CI job) load
    # drifts over the measurement window, so comparing the two arms'
    # independent minima conflates contention with profiler cost.  A
    # back-to-back pair sees near-identical load, and noise only ever
    # inflates the ratio, so the min over pairs is the honest bound.
    plain = float("inf")
    profiled = float("inf")
    overhead = float("inf")
    profiler = SimProfiler()
    context: Optional[StarkContext] = None
    for _ in range(repeats):
        plain_wall = _throughput_workload()[1]
        plain = min(plain, plain_wall)
        run_profiler = SimProfiler()
        ctx, wall = _throughput_workload(run_profiler)
        if wall < profiled:
            profiled, profiler, context = wall, run_profiler, ctx
        overhead = min(overhead, max(0.0, (wall - plain_wall) / plain_wall))
    assert context is not None
    tasks = context.metrics.total_tasks()
    tasks_per_sec = tasks / plain

    result = KernelThroughputResult(
        kernel_events=num_events,
        events_per_sec=events_per_sec,
        tasks_run=tasks,
        tasks_per_sec=tasks_per_sec,
        calibration_ops_per_sec=calibration,
        normalized_events_per_sec=events_per_sec / calibration,
        normalized_tasks_per_sec=tasks_per_sec / calibration,
        profiler_overhead_fraction=overhead,
        heap_peak=profiler.heap.peak_len,
        hotspots=[(label, stat.count, stat.total_seconds)
                  for label, stat in profiler.hotspots(top=10)],
    )
    if write_json:
        write_bench_json("kernel_throughput", {
            "config": {"num_events": num_events, "repeats": repeats},
            "calibration_ops_per_sec": calibration,
            "kernel_events": float(num_events),
            "events_per_sec": events_per_sec,
            "tasks_run": float(tasks),
            "tasks_per_sec": tasks_per_sec,
            "normalized_events_per_sec": result.normalized_events_per_sec,
            "normalized_tasks_per_sec": result.normalized_tasks_per_sec,
            "profiler_overhead_fraction": overhead,
            "heap_peak": float(profiler.heap.peak_len),
        })
    return result


# ---------------------------------------------------------------------------
# Zero-copy co-located shuffle handoff (Sparkle's shared-memory shuffle)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ZeroCopyArm:
    """One arm (knob off/on) of the zero-copy shuffle comparison."""

    arm: str
    makespan_total: float          # summed job makespans (simulated s)
    local_fetch_seconds: float     # disk-read charges for local buckets
    handoff_seconds: float         # intra-worker handoff charges
    remote_fetch_seconds: float
    handoff_bytes: float
    result_digest: str             # digest of job results (arms must agree)
    wall_seconds: float = field(compare=False, default=0.0)


@dataclass(frozen=True)
class ZeroCopyShuffleResult:
    baseline: ZeroCopyArm
    zero_copy: ZeroCopyArm

    @property
    def makespan_speedup(self) -> float:
        """Simulated end-to-end win of the shared-memory handoff."""
        return self.baseline.makespan_total / self.zero_copy.makespan_total

    @property
    def colocated_transfer_speedup(self) -> float:
        """Per-byte win on the co-located portion of the fetches."""
        if self.zero_copy.handoff_seconds <= 0:
            return 1.0
        return self.baseline.local_fetch_seconds / self.zero_copy.handoff_seconds


def run_zero_copy_shuffle(
    num_workers: int = 2,
    cores_per_worker: int = 2,
    records_per_partition: int = 40,
    payload_bytes: int = 2_000_000,
    num_partitions: int = 8,
    rounds: int = 6,
    write_json: bool = True,
) -> ZeroCopyShuffleResult:
    """Shuffle-heavy aggregation with and without zero-copy handoff.

    A wide ``reduce_by_key`` over fat payloads on a *small* cluster: with
    ``num_workers`` executors, ~1/num_workers of every reduce input is a
    bucket that already lives on the reducer's worker.  The baseline arm
    (paper semantics, knob off) pays a local disk read for those
    buckets; the zero-copy arm hands them over by reference at the cost
    model's intra-worker rate.  Both arms run the identical workload and
    must produce identical job results — only the co-located transfer
    charges (and hence makespans) may differ.
    """
    def run_arm(zero_copy: bool) -> ZeroCopyArm:
        t0 = perf_counter()
        config = StarkConfig(zero_copy_handoff=zero_copy)
        sc = StarkContext(
            num_workers=num_workers, cores_per_worker=cores_per_worker,
            config=config,
        )
        payload = SimStr("x" * 8, sim_size=payload_bytes)
        data = [(i % 16, payload)
                for i in range(records_per_partition * num_partitions)]
        rdd = sc.parallelize(data, num_partitions=num_partitions,
                             name="zero_copy_src")
        # One shuffle write, ``rounds`` re-fetches: the DAG scheduler
        # skips the completed map stage on repeat counts, so the steady
        # state is exactly the path zero-copy optimizes — reducers
        # pulling already-committed co-located buckets.
        reduced = rdd.reduce_by_key(
            lambda a, b: a,
            partitioner=HashPartitioner(num_partitions),
            name="zero_copy_reduce")
        digest = hashlib.sha256()
        makespan_total = 0.0
        for _ in range(rounds):
            digest.update(str(reduced.count()).encode())
            makespan_total += sc.metrics.last_job().makespan
        local = sum(t.shuffle_fetch_local_time
                    for j in sc.metrics.jobs for t in j.tasks)
        handoff = sum(t.shuffle_handoff_time
                      for j in sc.metrics.jobs for t in j.tasks)
        remote = sum(t.shuffle_fetch_remote_time
                     for j in sc.metrics.jobs for t in j.tasks)
        handoff_bytes = handoff * sc.cost_model.intra_worker_bytes_per_sec
        return ZeroCopyArm(
            arm="zero_copy" if zero_copy else "baseline",
            makespan_total=makespan_total,
            local_fetch_seconds=local,
            handoff_seconds=handoff,
            remote_fetch_seconds=remote,
            handoff_bytes=handoff_bytes,
            result_digest=digest.hexdigest(),
            wall_seconds=perf_counter() - t0,
        )

    baseline = run_arm(False)
    zero_copy = run_arm(True)
    result = ZeroCopyShuffleResult(baseline=baseline, zero_copy=zero_copy)
    if write_json:
        write_bench_json("zero_copy_shuffle", {
            "config": {
                "num_workers": num_workers,
                "cores_per_worker": cores_per_worker,
                "records_per_partition": records_per_partition,
                "payload_bytes": payload_bytes,
                "num_partitions": num_partitions,
                "rounds": rounds,
            },
            "baseline_makespan_total": baseline.makespan_total,
            "zero_copy_makespan_total": zero_copy.makespan_total,
            "makespan_speedup": result.makespan_speedup,
            "colocated_transfer_speedup": result.colocated_transfer_speedup,
            "baseline_local_fetch_seconds": baseline.local_fetch_seconds,
            "zero_copy_handoff_seconds": zero_copy.handoff_seconds,
        })
    return result


# ---------------------------------------------------------------------------
# Columnar TPC-H: vectorized DataFrame/SQL engine vs a row-at-a-time pipeline
# ---------------------------------------------------------------------------

COLUMNAR_TPCH_QUERY = (
    "SELECT l_returnflag, SUM(l_extendedprice) AS revenue FROM lineitem "
    "JOIN orders ON l_orderkey = o_orderkey WHERE o_status = 'O' "
    "GROUP BY l_returnflag ORDER BY revenue DESC"
)


@dataclass(frozen=True)
class ColumnarTpchArm:
    arm: str
    result: Tuple[tuple, ...]
    compute_seconds: float
    makespan: float
    input_bytes: int
    tasks: int
    #: Host wall-clock of the query run; excluded from equality so two
    #: back-to-back runs still compare structurally identical.
    wall_seconds: float = field(compare=False, default=0.0)


@dataclass(frozen=True)
class ColumnarTpchResult:
    row: ColumnarTpchArm
    columnar: ColumnarTpchArm
    rows_scanned: int
    cpu_speedup: float
    full_scan_bytes: int
    pushed_bytes: int
    digest: str
    wall_speedup: float = field(compare=False, default=0.0)


def run_columnar_tpch(
    num_partitions: int = 6,
    orders_per_partition: int = 3000,
    lineitems_per_partition: int = 12000,
    seed: int = 17,
    num_workers: int = 4,
    cores_per_worker: int = 2,
    write_json: bool = True,
) -> ColumnarTpchResult:
    """Identical seeded TPC-H-style rows through two execution engines.

    The *row* arm answers the revenue-by-returnflag query with a
    hand-written row RDD pipeline (filter, join, reduce_by_key) — one
    Python record at a time.  The *columnar* arm runs the same query as
    SQL text through the DataFrame stack: parse, optimize (filter
    pushdown + projection pruning), compile to ColumnarRDDs, execute
    vectorized kernels over record batches.  Both arms scan the exact
    same generated partitions, so the simulated CPU accounting and the
    host wall-clock compare like for like.  A third context compiles
    the *unoptimized* logical plan to measure how many simulated bytes
    the optimizer's pushdown avoids reading.
    """
    total_orders = num_partitions * orders_per_partition
    rows_scanned = total_orders + num_partitions * lineitems_per_partition

    def arm_metrics(arm, sc, rows, wall):
        job = sc.metrics.last_job()
        return ColumnarTpchArm(
            arm=arm,
            result=tuple(tuple(r) for r in rows),
            compute_seconds=sum(t.compute_time for t in job.tasks),
            makespan=job.makespan,
            input_bytes=int(sum(t.input_bytes for t in job.tasks)),
            tasks=len(job.tasks),
            wall_seconds=wall,
        )

    # -- row arm --------------------------------------------------------------
    sc_row = StarkContext(num_workers=num_workers,
                          cores_per_worker=cores_per_worker)
    orders = sc_row.generated(
        lambda pid: orders_rows(pid, orders_per_partition, seed=seed),
        num_partitions, name="orders_rows")
    lineitem = sc_row.generated(
        lambda pid: lineitem_rows(pid, lineitems_per_partition,
                                  total_orders, seed=seed),
        num_partitions, name="lineitem_rows")
    open_orders = (orders
                   .filter(lambda r: r[2] == "O", name="open_orders")
                   .map(lambda r: (r[0], 1), name="order_keys"))
    priced = lineitem.map(lambda r: (r[0], (r[4], r[3])), name="li_kv")
    pipeline = (priced.join(open_orders, name="li_join_orders")
                .map(lambda kv: (kv[1][0][0], kv[1][0][1]), name="flag_rev")
                .reduce_by_key(lambda a, b: a + b, name="revenue"))
    started = perf_counter()
    revenue_rows = pipeline.collect()
    row_wall = perf_counter() - started
    row_arm = arm_metrics(
        "row", sc_row,
        sorted(revenue_rows, key=lambda r: (-r[1], r[0])), row_wall)

    # -- columnar arm ---------------------------------------------------------
    sc_col = StarkContext(num_workers=num_workers,
                          cores_per_worker=cores_per_worker)
    session = SQLSession(sc_col)
    register_tpch_tables(session, num_partitions=num_partitions,
                         orders_per_partition=orders_per_partition,
                         lineitems_per_partition=lineitems_per_partition,
                         seed=seed)
    df = session.sql(COLUMNAR_TPCH_QUERY)
    started = perf_counter()
    col_rows = df.collect()
    col_wall = perf_counter() - started
    col_arm = arm_metrics("columnar", sc_col, col_rows, col_wall)

    # -- pushdown accounting --------------------------------------------------
    sc_push = StarkContext(num_workers=num_workers,
                           cores_per_worker=cores_per_worker)
    push_session = SQLSession(sc_push)
    register_tpch_tables(push_session, num_partitions=num_partitions,
                         orders_per_partition=orders_per_partition,
                         lineitems_per_partition=lineitems_per_partition,
                         seed=seed)
    plan = push_session.sql(COLUMNAR_TPCH_QUERY).plan

    def plan_bytes(logical):
        rdd, _ = compile_plan(logical, sc_push)
        sc_push.run_job(rdd, len)
        return int(sum(t.input_bytes
                       for t in sc_push.metrics.last_job().tasks))

    full_scan_bytes = plan_bytes(plan)
    pushed_bytes = plan_bytes(optimize(plan)[0])

    canonical = [[flag, round(rev, 6)] for flag, rev in col_arm.result]
    digest = hashlib.sha256(
        json.dumps(canonical, sort_keys=True).encode()).hexdigest()[:16]

    result = ColumnarTpchResult(
        row=row_arm,
        columnar=col_arm,
        rows_scanned=rows_scanned,
        cpu_speedup=row_arm.compute_seconds / col_arm.compute_seconds,
        full_scan_bytes=full_scan_bytes,
        pushed_bytes=pushed_bytes,
        digest=digest,
        wall_speedup=row_wall / col_wall,
    )
    if write_json:
        write_bench_json("columnar_tpch", {
            "config": {
                "num_partitions": num_partitions,
                "orders_per_partition": orders_per_partition,
                "lineitems_per_partition": lineitems_per_partition,
                "seed": seed,
                "num_workers": num_workers,
                "cores_per_worker": cores_per_worker,
            },
            "digest": digest,
            "rows_scanned": float(rows_scanned),
            "row": {
                "makespan": row_arm.makespan,
                "compute_seconds": row_arm.compute_seconds,
                "input_mb": row_arm.input_bytes / 1e6,
                "tasks": float(row_arm.tasks),
            },
            "columnar": {
                "makespan": col_arm.makespan,
                "compute_seconds": col_arm.compute_seconds,
                "input_mb": col_arm.input_bytes / 1e6,
                "tasks": float(col_arm.tasks),
            },
            "cpu_speedup": result.cpu_speedup,
            "pushdown": {
                "full_scan_mb": full_scan_bytes / 1e6,
                "pushed_mb": pushed_bytes / 1e6,
                "bytes_saved_fraction":
                    1.0 - pushed_bytes / full_scan_bytes,
            },
        })
    return result
