"""Autoscaling policies: cluster-size recommendations from load signals.

Each policy is a pure function of a :class:`ClusterSnapshot` — the
:class:`~repro.elastic.manager.ResourceManager` assembles the snapshot
(backlog from worker slot free-times, occupancy from the
``UtilizationSampler`` timelines, response times from the job driver)
and applies the returned :class:`PolicyDecision` subject to the
``min_workers``/``max_workers`` bounds and a cooldown.

Three signal families, mirroring the knobs real autoscalers expose:

* :class:`BacklogPolicy` — queued work per slot (Spark's
  ``dynamicAllocation`` pending-task heuristic);
* :class:`UtilizationPolicy` — time-weighted slot occupancy against a
  target band (CPU-target autoscaling);
* :class:`LatencySLOPolicy` — recent p95 response time against the
  800 ms delay cap the paper's Fig 19/20 experiments hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

Timeline = List[Tuple[float, float]]

#: Policy names accepted by :func:`make_scaling_policy` (and the CLI's
#: ``--scale-policy`` flag).
POLICY_NAMES: Tuple[str, ...] = ("backlog", "utilization", "latency")


def windowed_mean(timeline: Timeline, start: float, end: float) -> float:
    """Time-weighted mean of a step timeline over ``[start, end]``.

    The timeline is ``(time, level)`` change points (see
    ``repro.obs.sampler``); the level before the first point is 0.
    """
    if end <= start:
        return 0.0
    total = 0.0
    level = 0.0
    t = start
    for time, value in timeline:
        if time <= start:
            level = value
            continue
        if time >= end:
            break
        total += level * (time - t)
        t = time
        level = value
    total += level * (end - t)
    return total / (end - start)


@dataclass(frozen=True)
class ClusterSnapshot:
    """Load signals a policy decides from (one scaling evaluation)."""

    #: Simulated time of the evaluation.
    time: float
    #: Current alive-worker count.
    alive_workers: int
    #: Total task slots across alive workers.
    total_slots: int
    #: Jobs submitted but not yet finished (admission-control queue).
    pending_jobs: int
    #: Queued slot-seconds beyond ``time`` across all alive workers.
    backlog_seconds: float
    #: Time-weighted busy-slot count over the recent occupancy window.
    slot_occupancy: float
    #: Nearest-rank p95 of the recent job response times (0 when none).
    recent_p95_delay: float
    #: The delay SLO the latency policy protects (seconds).
    slo_delay_cap: float

    @property
    def backlog_per_slot(self) -> float:
        return self.backlog_seconds / max(1, self.total_slots)

    @property
    def occupancy_fraction(self) -> float:
        return self.slot_occupancy / max(1, self.total_slots)


@dataclass(frozen=True)
class PolicyDecision:
    """Recommended worker-count change; ``delta`` may be clamped by the
    manager's ``min_workers``/``max_workers`` bounds before applying."""

    delta: int
    reason: str

    @property
    def action(self) -> str:
        if self.delta > 0:
            return "scale_out"
        if self.delta < 0:
            return "scale_in"
        return "hold"


HOLD = PolicyDecision(0, "within band")


class ScalingPolicy:
    """Base class: subclasses override :meth:`decide`."""

    name = "hold"

    def decide(self, snapshot: ClusterSnapshot) -> PolicyDecision:
        raise NotImplementedError


class BacklogPolicy(ScalingPolicy):
    """Scale on queued work per slot.

    Above ``high_backlog`` queued seconds per slot, add workers
    (proportionally: one worker per ``high_backlog`` of excess, capped at
    ``max_step``).  Scale-in is deliberately slower than scale-out:
    instantaneous backlog reads zero the moment the last queued task
    clears, so shrinking on it alone thrashes.  A worker is only removed
    when backlog is below ``low_backlog``, the pending queue is empty,
    *and* the time-weighted occupancy over the sampler window is under
    ``low_occupancy`` — a sustained-idle signal, not a gap between jobs.
    """

    name = "backlog"

    def __init__(self, high_backlog: float = 0.5, low_backlog: float = 0.05,
                 low_occupancy: float = 0.4, max_step: int = 4) -> None:
        if high_backlog <= low_backlog:
            raise ValueError(
                f"high_backlog ({high_backlog}) must exceed "
                f"low_backlog ({low_backlog})")
        self.high_backlog = high_backlog
        self.low_backlog = low_backlog
        self.low_occupancy = low_occupancy
        self.max_step = max_step

    def decide(self, snapshot: ClusterSnapshot) -> PolicyDecision:
        pressure = snapshot.backlog_per_slot
        if pressure > self.high_backlog:
            step = min(self.max_step, max(1, int(pressure / self.high_backlog)))
            return PolicyDecision(
                step, f"backlog {pressure:.2f}s/slot > {self.high_backlog}s")
        if (pressure < self.low_backlog and snapshot.pending_jobs == 0
                and snapshot.occupancy_fraction < self.low_occupancy):
            return PolicyDecision(
                -1, f"backlog {pressure:.2f}s/slot < {self.low_backlog}s, "
                    f"occupancy {snapshot.occupancy_fraction:.0%}")
        return HOLD


class UtilizationPolicy(ScalingPolicy):
    """Scale toward a slot-occupancy target band.

    Uses the time-weighted occupancy the manager computes from the
    ``UtilizationSampler`` slot timeline: above ``high`` fraction busy,
    add a worker; below ``low``, remove one.
    """

    name = "utilization"

    def __init__(self, high: float = 0.85, low: float = 0.30) -> None:
        if not 0.0 < low < high <= 1.0:
            raise ValueError(f"need 0 < low < high <= 1: low={low} high={high}")
        self.high = high
        self.low = low

    def decide(self, snapshot: ClusterSnapshot) -> PolicyDecision:
        occ = snapshot.occupancy_fraction
        if occ > self.high:
            return PolicyDecision(1, f"occupancy {occ:.0%} > {self.high:.0%}")
        if occ < self.low and snapshot.pending_jobs == 0:
            return PolicyDecision(-1, f"occupancy {occ:.0%} < {self.low:.0%}")
        return HOLD


class LatencySLOPolicy(ScalingPolicy):
    """Scale when the recent p95 response time nears the delay SLO.

    Scale-out triggers at ``headroom`` of the cap (act *before* the SLO
    breaks); scale-in requires both a comfortable p95 (below
    ``relax_margin`` of the cap) and sustained low occupancy, so
    shrinking never itself causes a breach.
    """

    name = "latency"

    def __init__(self, headroom: float = 0.75, relax_margin: float = 0.6,
                 low_occupancy: float = 0.4) -> None:
        if not 0.0 < relax_margin < headroom <= 1.0:
            raise ValueError(
                f"need 0 < relax_margin < headroom <= 1: "
                f"headroom={headroom} relax_margin={relax_margin}")
        self.headroom = headroom
        self.relax_margin = relax_margin
        self.low_occupancy = low_occupancy

    def decide(self, snapshot: ClusterSnapshot) -> PolicyDecision:
        cap = snapshot.slo_delay_cap
        p95 = snapshot.recent_p95_delay
        if p95 > self.headroom * cap:
            return PolicyDecision(
                1, f"p95 {p95 * 1e3:.0f}ms > {self.headroom:.0%} of "
                   f"{cap * 1e3:.0f}ms SLO")
        if (p95 and p95 < self.relax_margin * cap
                and snapshot.occupancy_fraction < self.low_occupancy
                and snapshot.pending_jobs == 0):
            return PolicyDecision(
                -1, f"p95 {p95 * 1e3:.0f}ms < {self.relax_margin:.0%} of SLO, "
                    f"occupancy {snapshot.occupancy_fraction:.0%}")
        return HOLD


def make_scaling_policy(name: str) -> ScalingPolicy:
    """Build a policy by CLI name (one of :data:`POLICY_NAMES`)."""
    if name == "backlog":
        return BacklogPolicy()
    if name == "utilization":
        return UtilizationPolicy()
    if name == "latency":
        return LatencySLOPolicy()
    raise ValueError(
        f"unknown scaling policy {name!r}; expected one of {POLICY_NAMES}")
